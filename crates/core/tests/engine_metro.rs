//! End-to-end tests of the ring engine on the paper's metro graph
//! (Figs. 1, 5–7), cross-checked against the naive oracle.

use automata::parser::{self, NumericResolver};
use automata::Regex;
use ring::ring::RingOptions;
use ring::{Graph, Id, Ring, Triple};
use rpq_core::oracle::evaluate_naive;
use rpq_core::{EngineOptions, RpqEngine, RpqQuery, Term};

// Nodes: SA=0, UCh=1, LH=2, BA=3, Baq=4.
// Base predicates: l1=0, l2=1, l5=2, bus=3 (inverses get +4).
const SA: Id = 0;
const UCH: Id = 1;
const BA: Id = 3;
const BAQ: Id = 4;

/// The base metro graph of Fig. 1 (metro lines as explicit edge pairs,
/// three one-way bus edges).
fn metro() -> Graph {
    let t = |s, p, o| Triple::new(s, p, o);
    Graph::from_triples(vec![
        t(BAQ, 0, UCH),
        t(UCH, 0, BAQ),
        t(UCH, 0, 2),
        t(2, 0, UCH),
        t(2, 1, SA),
        t(SA, 1, 2),
        t(SA, 2, BA),
        t(BA, 2, SA),
        t(BA, 2, BAQ),
        t(BAQ, 2, BA),
        t(SA, 3, UCH),
        t(UCH, 3, BA),
        t(BA, 3, SA),
    ])
}

fn metro_ring() -> Ring {
    Ring::build(&metro(), RingOptions::default())
}

fn expr(s: &str) -> Regex {
    // Base alphabet has 4 predicates; inverses are 4..8.
    parser::parse(s, &NumericResolver { n_base: 4 }).unwrap()
}

fn run(q: &RpqQuery, opts: &EngineOptions) -> Vec<(Id, Id)> {
    let ring = metro_ring();
    let mut engine = RpqEngine::new(&ring);
    let out = engine.evaluate(q, opts).unwrap();
    assert!(!out.truncated && !out.timed_out);
    out.sorted_pairs()
}

fn check_against_oracle(q: &RpqQuery) {
    let expected = evaluate_naive(&metro(), q);
    for fast in [false, true] {
        for pruning in [false, true] {
            let opts = EngineOptions {
                fast_paths: fast,
                node_pruning: pruning,
                ..EngineOptions::default()
            };
            assert_eq!(
                run(q, &opts),
                expected,
                "engine (fast={fast}, pruning={pruning}) disagrees with oracle on {q:?}"
            );
        }
    }
}

/// The §4 worked example: (Baq, l5+/bus, y) answers {SA, UCh} —
/// the two stations reported in the Fig. 6 trace.
#[test]
fn paper_example_baq_l5plus_bus() {
    let q = RpqQuery::new(Term::Const(BAQ), expr("2+/3"), Term::Var);
    let got = run(&q, &EngineOptions::default());
    assert_eq!(got, vec![(BAQ, SA), (BAQ, UCH)]);
    check_against_oracle(&q);
}

/// The introduction's example: (Baq, (l1|l2|l5)+, y) — everything on the
/// metro network is reachable from Baquedano.
#[test]
fn intro_example_metro_closure() {
    let q = RpqQuery::new(Term::Const(BAQ), expr("(0|1|2)+"), Term::Var);
    let got = run(&q, &EngineOptions::default());
    assert_eq!(got, vec![(BAQ, 0), (BAQ, 1), (BAQ, 2), (BAQ, 3), (BAQ, 4)]);
    check_against_oracle(&q);
}

#[test]
fn all_shapes_match_oracle() {
    let exprs = [
        "0", "^3", "0|2", "2/3", "2+", "2*", "3/2*", "(0|1|2)+", "2?/3", "^(2/3)", "1/^1",
        "!(0|1)", "(2|^3)+", "0*/1/2*", "3+", "2/2/2",
    ];
    let terms = [
        (Term::Var, Term::Var),
        (Term::Const(BAQ), Term::Var),
        (Term::Var, Term::Const(SA)),
        (Term::Const(BAQ), Term::Const(UCH)),
        (Term::Const(SA), Term::Const(SA)),
    ];
    for e in exprs {
        for (s, o) in terms {
            check_against_oracle(&RpqQuery::new(s, expr(e), o));
        }
    }
}

/// The full Fig. 6 trace, visit by visit. The engine rewrites
/// (Baq, l5+/bus, y) to the reversed ^bus/^l5*/^l5 (the paper keeps l5
/// un-inverted because the metro lines are symmetric; the completed graph
/// makes both traces isomorphic). The product-graph visits must be, in
/// BFS order: BA{1,2}, SA{1,2}, Baq{1,2}, SA{0}→report, UCh{0}→report —
/// exactly the five bold nodes of Fig. 7.
#[test]
fn fig6_exact_product_graph_trace() {
    let ring = metro_ring();
    let mut engine = RpqEngine::new(&ring);
    let q = RpqQuery::new(Term::Const(BAQ), expr("2+/3"), Term::Var);
    let opts = EngineOptions {
        fast_paths: false,
        collect_trace: true,
        ..EngineOptions::default()
    };
    let out = engine.evaluate(&q, &opts).unwrap();
    // Our reversed automaton is ^bus/(^l5)+ with ONE l5 position (the
    // paper expands E+ to E*/E, yielding two); masks therefore differ by
    // that merged state: the paper's D = 0110 (both l5 states) is our
    // {1,2} = 0b110 on first arrival and {1} = 0b010 at Baq, whose start
    // marking already covers the accepting l5 state.
    let first_arrival = 0b110;
    let baq_fresh = 0b010;
    let initial = 0b001;
    assert_eq!(
        out.trace,
        vec![
            (BA, first_arrival),
            (SA, first_arrival),
            (BAQ, baq_fresh),
            (SA, initial),
            (UCH, initial),
        ],
        "Fig. 6 visit sequence"
    );
    assert_eq!(out.sorted_pairs(), vec![(BAQ, SA), (BAQ, UCH)]);
}

#[test]
fn nullable_var_var_includes_diagonal() {
    let q = RpqQuery::new(Term::Var, expr("3*"), Term::Var);
    let got = run(&q, &EngineOptions::default());
    for v in 0..5 {
        assert!(got.contains(&(v, v)), "missing ({v}, {v})");
    }
    check_against_oracle(&q);
}

#[test]
fn limit_truncates() {
    let ring = metro_ring();
    let mut engine = RpqEngine::new(&ring);
    let q = RpqQuery::new(Term::Var, expr("(0|1|2)+"), Term::Var);
    let opts = EngineOptions {
        limit: 3,
        ..EngineOptions::default()
    };
    let out = engine.evaluate(&q, &opts).unwrap();
    assert!(out.truncated);
    assert!(out.pairs.len() <= 3);
}

#[test]
fn stats_are_populated() {
    let ring = metro_ring();
    let mut engine = RpqEngine::new(&ring);
    let q = RpqQuery::new(Term::Const(BAQ), expr("2+/3"), Term::Var);
    let opts = EngineOptions {
        fast_paths: false,
        ..EngineOptions::default()
    };
    let out = engine.evaluate(&q, &opts).unwrap();
    assert!(out.stats.product_nodes > 0);
    assert!(out.stats.product_edges > 0);
    assert!(out.stats.wavelet_nodes > 0);
    assert_eq!(out.stats.reported, 2);
    assert!(engine.working_space_bytes() > 0);
}

#[test]
fn errors_are_typed() {
    let ring = metro_ring();
    let mut engine = RpqEngine::new(&ring);
    // Node out of range.
    let q = RpqQuery::new(Term::Const(99), expr("0"), Term::Var);
    assert!(matches!(
        engine.evaluate(&q, &EngineOptions::default()),
        Err(rpq_core::QueryError::NodeOutOfRange(99))
    ));
    // Ring without inverses.
    let no_inv = Ring::build(
        &metro(),
        RingOptions {
            with_inverses: false,
            ..RingOptions::default()
        },
    );
    let mut engine2 = RpqEngine::new(&no_inv);
    let q = RpqQuery::new(Term::Var, expr("0"), Term::Var);
    assert!(matches!(
        engine2.evaluate(&q, &EngineOptions::default()),
        Err(rpq_core::QueryError::InversesRequired)
    ));
    // Oversized expressions (> 63 positions) evaluate through the
    // explicit-state fallback rather than erroring.
    let mut big = String::from("0");
    for _ in 0..70 {
        big.push_str("/0");
    }
    let q = RpqQuery::new(Term::Var, expr(&big), Term::Const(SA));
    let out = engine2_or(&metro_ring(), &q).unwrap();
    assert_eq!(
        out.sorted_pairs(),
        rpq_core::oracle::evaluate_naive(&metro(), &q)
    );
}

fn engine2_or(ring: &Ring, q: &RpqQuery) -> Result<rpq_core::QueryOutput, rpq_core::QueryError> {
    RpqEngine::new(ring).evaluate(q, &EngineOptions::default())
}

#[test]
fn engine_reuse_across_queries() {
    // One engine, many queries: the epoch reset must isolate them.
    let ring = metro_ring();
    let mut engine = RpqEngine::new(&ring);
    let opts = EngineOptions::default();
    for _ in 0..3 {
        for e in ["2+/3", "0", "(0|1|2)+"] {
            for anchor in [SA, UCH, BA, BAQ] {
                let q = RpqQuery::new(Term::Const(anchor), expr(e), Term::Var);
                let got = engine.evaluate(&q, &opts).unwrap().sorted_pairs();
                assert_eq!(got, evaluate_naive(&metro(), &q), "expr {e} from {anchor}");
            }
        }
    }
}
