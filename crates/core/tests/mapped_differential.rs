//! Mapped-index differential suite: a ring reopened from an `RRPQM01`
//! file — heap-resident and, where the platform allows, mmap-resident —
//! must answer every corpus query bit-identically to the freshly built
//! ring and to the naive oracle, under all four forced routes.

use automata::Regex;
use ring::mapped::{open_index, write_index, OpenMode};
use ring::ring::RingOptions;
use ring::{Dict, Graph, Ring, Triple};
use rpq_core::oracle::evaluate_naive;
use rpq_core::{EngineOptions, EvalRoute, RpqEngine, RpqQuery, Term};
use workload::{GraphGen, GraphGenConfig, QueryGen};

fn star(l: u64) -> Regex {
    Regex::Star(Box::new(Regex::label(l)))
}

fn workload_graph(seed: u64) -> Graph {
    GraphGen::new(GraphGenConfig {
        n_nodes: 30,
        n_preds: 4,
        n_edges: 140,
        pred_zipf: 1.2,
        node_skew: 0.8,
        seed,
    })
    .generate()
}

fn rare_label_graph() -> Graph {
    let mut triples = vec![Triple::new(6, 1, 9)];
    for i in 0..14 {
        triples.push(Triple::new(i, 0, (i + 1) % 16));
        triples.push(Triple::new((i + 2) % 16, 2, (i + 5) % 16));
    }
    Graph::from_triples(triples)
}

/// Table 1 pattern instantiations plus the canonical splittable shape
/// with every endpoint combination — the same mix the route-forcing
/// suite uses.
fn corpus(graph: &Graph, seed: u64) -> Vec<RpqQuery> {
    let mut queries: Vec<RpqQuery> = QueryGen::new(graph, seed)
        .scaled_log(0.0)
        .into_iter()
        .map(|gq| gq.query)
        .collect();
    let split_expr = Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2));
    for (s, o) in [
        (Term::Var, Term::Var),
        (Term::Const(6), Term::Var),
        (Term::Var, Term::Const(9)),
        (Term::Const(6), Term::Const(9)),
    ] {
        queries.push(RpqQuery::new(s, split_expr.clone(), o));
    }
    queries
}

/// Synthesizes dictionaries so the graph can be written as a full
/// `RRPQM01` index (workload graphs carry only numeric ids).
fn dicts_for(graph: &Graph) -> (Dict, Dict) {
    let mut nodes = Dict::new();
    for i in 0..graph.n_nodes() {
        nodes.intern(&format!("<node/{i}>"));
    }
    let mut preds = Dict::new();
    for i in 0..graph.n_preds() {
        preds.intern(&format!("<pred/{i}>"));
    }
    (nodes, preds)
}

fn reopened_rings(graph: &Graph, name: &str) -> Vec<(&'static str, Ring)> {
    let dir = std::env::temp_dir().join(format!("rpq_mapped_diff_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}.rpqm"));
    let ring = Ring::build(graph, RingOptions::default());
    let (nodes, preds) = dicts_for(graph);
    write_index(&path, &ring, &nodes, &preds).unwrap();

    let mut rings = vec![("heap", open_index(&path, OpenMode::Heap).unwrap().ring)];
    #[cfg(all(unix, target_pointer_width = "64"))]
    rings.push(("mmap", open_index(&path, OpenMode::Mmap).unwrap().ring));
    std::fs::remove_file(&path).ok();
    rings
}

#[test]
fn mapped_ring_matches_oracle_on_every_forced_route() {
    let mut checked = 0usize;
    for (graph, name, seed) in [
        (workload_graph(0xD1FF), "workload", 31),
        (rare_label_graph(), "rare", 32),
    ] {
        let built = Ring::build(&graph, RingOptions::default());
        let mut built_engine = RpqEngine::new(&built);
        for (label, reopened) in &reopened_rings(&graph, name) {
            let mut engine = RpqEngine::new(reopened);
            for query in corpus(&graph, seed) {
                let expected = evaluate_naive(&graph, &query);
                for forced in EvalRoute::ALL {
                    let opts = EngineOptions {
                        forced_route: Some(forced),
                        ..EngineOptions::default()
                    };
                    let out = engine
                        .evaluate(&query, &opts)
                        .unwrap_or_else(|e| panic!("{label}: forcing {forced:?}: {e}"));
                    assert_eq!(
                        out.sorted_pairs(),
                        expected,
                        "{label}: forced {forced:?} disagrees with the oracle on {query:?}"
                    );
                    let built_out = built_engine.evaluate(&query, &opts).unwrap();
                    assert_eq!(
                        out.sorted_pairs(),
                        built_out.sorted_pairs(),
                        "{label}: reopened ring diverges from the built ring on {query:?}"
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked >= 100, "corpus shrank: only {checked} combinations");
}
