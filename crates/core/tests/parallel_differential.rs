//! Intra-query parallelism differential suite — the acceptance tests of
//! the shared-pool frontier fan-out.
//!
//! The contract under test: for any query, any route, and any limit /
//! budget combination, evaluation with `intra_query_threads ∈ {2, 4}`
//! produces **bit-for-bit identical output** to the sequential engine —
//! the same pair *stream* (order included, so truncation points match),
//! the same flags, the same trace. Parallel expansion is speculative
//! against a frozen mask snapshot and a sequential merge replays it in
//! frontier order, so this holds at any thread count and on any core
//! count (on a single-core host the pool grants zero helpers and the
//! chunked path still runs — through the caller thread).
//!
//! `RPQ_TEST_THREADS` (comma-separated) overrides the thread counts,
//! the knob CI's parallel differential job turns.

use automata::Regex;
use ring::ring::RingOptions;
use ring::store::TripleStore;
use ring::{Graph, Ring, Triple};
use rpq_core::{EngineOptions, EvalRoute, RpqEngine, RpqQuery, Term};
use workload::{GraphGen, GraphGenConfig, QueryGen};

/// Thread counts to differentiate against the sequential baseline.
fn test_threads() -> Vec<usize> {
    match std::env::var("RPQ_TEST_THREADS") {
        Ok(v) => v
            .split(',')
            .filter_map(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t > 1)
            .collect(),
        Err(_) => vec![2, 4],
    }
}

fn star(l: u64) -> Regex {
    Regex::Star(Box::new(Regex::label(l)))
}

/// A Wikidata-shaped graph big enough that closure frontiers clear the
/// (test-lowered) parallel threshold.
fn workload_graph(seed: u64) -> Graph {
    GraphGen::new(GraphGenConfig {
        n_nodes: 60,
        n_preds: 4,
        n_edges: 320,
        pred_zipf: 1.1,
        node_skew: 0.8,
        seed,
    })
    .generate()
}

/// A layered graph with wide BFS levels: `layers` ranks of `width`
/// nodes, every node wired to three nodes of the next rank with label
/// 0, plus a sprinkling of label-1 shortcuts. `(?x, 0*, ?y)` frontiers
/// here span hundreds of nodes — several chunks at any thread count.
fn wide_graph(width: u64, layers: u64) -> Graph {
    let node = |layer: u64, i: u64| layer * width + i;
    let mut triples = Vec::new();
    for layer in 0..layers - 1 {
        for i in 0..width {
            for k in 0..3u64 {
                triples.push(Triple::new(
                    node(layer, i),
                    0,
                    node(layer + 1, (i + k * 7) % width),
                ));
            }
            if i % 5 == 0 {
                triples.push(Triple::new(node(layer, i), 1, node(layer + 1, i)));
            }
        }
    }
    Graph::from_triples(triples)
}

/// The corpus: Table 1 pattern instantiations plus closure-heavy
/// hand-built shapes whose frontiers actually fan out.
fn corpus(graph: &Graph, seed: u64) -> Vec<RpqQuery> {
    let mut queries: Vec<RpqQuery> = QueryGen::new(graph, seed)
        .scaled_log(0.0)
        .into_iter()
        .map(|gq| gq.query)
        .collect();
    queries.push(RpqQuery::new(Term::Var, star(0), Term::Var));
    queries.push(RpqQuery::new(
        Term::Var,
        Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2)),
        Term::Var,
    ));
    queries.push(RpqQuery::new(
        Term::Const(0),
        Regex::Plus(Box::new(Regex::alt(Regex::label(0), Regex::label(1)))),
        Term::Var,
    ));
    queries
}

/// Runs one `(query, options)` pair sequentially and at every test
/// thread count, asserting the full output is bit-identical: the raw
/// (unsorted) pair stream, every flag, and the trace.
fn assert_bit_identical(
    engine: &mut RpqEngine<'_>,
    query: &RpqQuery,
    base_opts: &EngineOptions,
    context: &str,
) {
    let seq = engine
        .evaluate(query, base_opts)
        .unwrap_or_else(|e| panic!("{context}: sequential run failed: {e}"));
    for threads in test_threads() {
        let opts = EngineOptions {
            intra_query_threads: threads,
            parallel_min_frontier: 2,
            ..*base_opts
        };
        let par = engine
            .evaluate(query, &opts)
            .unwrap_or_else(|e| panic!("{context}: {threads}-thread run failed: {e}"));
        assert_eq!(
            par.pairs, seq.pairs,
            "{context}: {threads}-thread pair stream diverges on {query:?}"
        );
        assert_eq!(
            (par.truncated, par.timed_out, par.budget_exhausted),
            (seq.truncated, seq.timed_out, seq.budget_exhausted),
            "{context}: {threads}-thread flags diverge on {query:?}"
        );
        assert_eq!(
            par.trace, seq.trace,
            "{context}: {threads}-thread trace diverges on {query:?}"
        );
    }
}

/// Every forced route, at every thread count, over the mixed corpus:
/// the parallel engine is byte-for-byte the sequential engine.
#[test]
fn forced_routes_are_bit_identical_at_every_thread_count() {
    let mut checked = 0usize;
    for (graph, seed) in [
        (workload_graph(0x9A11), 31),
        (workload_graph(0x7E57), 32),
        (wide_graph(40, 5), 33),
    ] {
        let ring = Ring::build(&graph, RingOptions::default());
        let mut engine = RpqEngine::new(&ring);
        for query in corpus(&graph, seed) {
            for forced in EvalRoute::ALL {
                let opts = EngineOptions {
                    forced_route: Some(forced),
                    collect_trace: true,
                    ..EngineOptions::default()
                };
                assert_bit_identical(&mut engine, &query, &opts, &format!("forced {forced:?}"));
                checked += 1;
            }
        }
    }
    assert!(checked >= 250, "corpus shrank: only {checked} combinations");
}

/// Truncation determinism: with a limit far below the full answer set,
/// the parallel engine stops at the *same pair* — not just the same
/// count — because replay preserves the sequential emission order.
#[test]
fn truncation_point_is_identical_at_every_thread_count() {
    let graph = wide_graph(48, 5);
    let ring = Ring::build(&graph, RingOptions::default());
    let mut engine = RpqEngine::new(&ring);
    for limit in [1usize, 7, 100, 1000] {
        for forced in EvalRoute::ALL {
            let opts = EngineOptions {
                limit,
                forced_route: Some(forced),
                ..EngineOptions::default()
            };
            let query = RpqQuery::new(Term::Var, star(0), Term::Var);
            assert_bit_identical(
                &mut engine,
                &query,
                &opts,
                &format!("limit {limit}, forced {forced:?}"),
            );
        }
    }
}

/// Budget determinism: an exhausted node budget aborts at the same
/// discovery, leaving the same partial answer, at any thread count.
#[test]
fn budget_exhaustion_is_identical_at_every_thread_count() {
    let graph = wide_graph(48, 5);
    let ring = Ring::build(&graph, RingOptions::default());
    let mut engine = RpqEngine::new(&ring);
    for budget in [1u64, 5, 50, 100_000] {
        for forced in EvalRoute::ALL {
            let opts = EngineOptions {
                node_budget: Some(budget),
                forced_route: Some(forced),
                ..EngineOptions::default()
            };
            let query = RpqQuery::new(Term::Var, star(0), Term::Var);
            assert_bit_identical(
                &mut engine,
                &query,
                &opts,
                &format!("budget {budget}, forced {forced:?}"),
            );
        }
    }
}

/// The parallel path actually engages (it is easy to pass these tests
/// by never going parallel): on a wide-frontier graph the stats must
/// record fanned-out levels split into several chunks — and the answers
/// still match. Covers all three parallel sites: the generic traversal,
/// the §5 fast paths, and the delta-overlay merged traversal.
#[test]
fn wide_frontiers_fan_out_and_counters_record_it() {
    let graph = wide_graph(64, 6);
    let ring = Ring::build(&graph, RingOptions::default());
    let mut engine = RpqEngine::new(&ring);

    // Generic traversal (closure shape, fast paths off the table).
    let query = RpqQuery::new(Term::Var, star(0), Term::Var);
    let opts = EngineOptions {
        intra_query_threads: 4,
        parallel_min_frontier: 2,
        forced_route: Some(EvalRoute::BitParallel),
        ..EngineOptions::default()
    };
    let out = engine.evaluate(&query, &opts).unwrap();
    assert!(
        out.stats.parallel_levels > 0,
        "wide closure never engaged the parallel path: {:?}",
        out.stats
    );
    assert!(
        out.stats.parallel_chunks > out.stats.parallel_levels,
        "levels were never split into multiple chunks: {:?}",
        out.stats
    );
    let seq = engine
        .evaluate(
            &query,
            &EngineOptions {
                forced_route: Some(EvalRoute::BitParallel),
                ..EngineOptions::default()
            },
        )
        .unwrap();
    assert_eq!(out.pairs, seq.pairs);
    assert_eq!(
        seq.stats.parallel_levels, 0,
        "sequential runs must not fan out"
    );

    // §5 fast path (single-label shape batched over all subjects).
    let single = RpqQuery::new(Term::Var, Regex::label(0), Term::Var);
    let opts_fast = EngineOptions {
        intra_query_threads: 4,
        parallel_min_frontier: 2,
        forced_route: Some(EvalRoute::FastPath),
        ..EngineOptions::default()
    };
    let out = engine.evaluate(&single, &opts_fast).unwrap();
    assert_eq!(out.plan.as_ref().unwrap().route, EvalRoute::FastPath);
    assert!(
        out.stats.parallel_levels > 0,
        "fast path never engaged the parallel batches: {:?}",
        out.stats
    );
    let seq = engine
        .evaluate(
            &single,
            &EngineOptions {
                forced_route: Some(EvalRoute::FastPath),
                ..EngineOptions::default()
            },
        )
        .unwrap();
    assert_eq!(out.pairs, seq.pairs);

    // Delta-overlay merged traversal: same graph with live edits on top.
    let store = TripleStore::new(graph).with_auto_compact_ratio(None);
    store.insert(Triple::new(1, 0, 0));
    store.delete(Triple::new(0, 0, 64));
    store.commit();
    let snap = store.snapshot();
    let mut merged = RpqEngine::over(&*snap);
    let out = merged.evaluate(&query, &opts).unwrap();
    assert!(
        out.stats.parallel_levels > 0,
        "merged traversal never engaged the parallel path: {:?}",
        out.stats
    );
    let seq = merged
        .evaluate(
            &query,
            &EngineOptions {
                forced_route: Some(EvalRoute::BitParallel),
                ..EngineOptions::default()
            },
        )
        .unwrap();
    assert_eq!(out.pairs, seq.pairs);
}

/// Live-update overlays at every thread count: the merged traversal
/// (ring + delta) replays speculative chunks in the same order as its
/// sequential twin, edits and tombstones included.
#[test]
fn merged_overlay_is_bit_identical_at_every_thread_count() {
    let graph = wide_graph(40, 4);
    let store = TripleStore::new(graph).with_auto_compact_ratio(None);
    // A batch of live edits: new nodes beyond the ring universe, some
    // tombstones, a shortcut edge.
    for i in 0..20u64 {
        store.insert(Triple::new(160 + i, 0, i));
        store.insert(Triple::new(i, 1, 160 + ((i * 3) % 20)));
    }
    store.delete(Triple::new(0, 0, 40));
    store.delete(Triple::new(5, 0, 45));
    store.commit();
    let snap = store.snapshot();
    let mut engine = RpqEngine::over(&*snap);
    for query in [
        RpqQuery::new(Term::Var, star(0), Term::Var),
        RpqQuery::new(Term::Var, Regex::label(0), Term::Var),
        RpqQuery::new(
            Term::Var,
            Regex::concat(Regex::label(0), Regex::label(1)),
            Term::Var,
        ),
        RpqQuery::new(
            Term::Const(160),
            Regex::Plus(Box::new(Regex::label(0))),
            Term::Var,
        ),
    ] {
        for forced in EvalRoute::ALL {
            let opts = EngineOptions {
                forced_route: Some(forced),
                collect_trace: true,
                ..EngineOptions::default()
            };
            assert_bit_identical(
                &mut engine,
                &query,
                &opts,
                &format!("merged, forced {forced:?}"),
            );
        }
    }
}
