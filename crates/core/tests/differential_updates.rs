//! Randomized update-vs-rebuild differential battery — the correctness
//! backbone of the live-update layer.
//!
//! Each interleaving drives a seeded stream of
//! insert/delete/commit/compact operations (from
//! [`workload::updates::UpdateGen`]) against an id-level
//! [`ring::store::TripleStore`], while an **oracle mirror** tracks the
//! committed triple set. After every published version (commit or
//! compact), the engine evaluates a fresh query log against the store's
//! snapshot — through **all four forced evaluation routes** plus the
//! planner's natural choice — and every answer must be byte-identical
//! (sorted) to `evaluate_naive` over a graph rebuilt from scratch from
//! the mirror. Mid-batch queries additionally pin snapshot isolation:
//! uncommitted operations are invisible.
//!
//! Coverage: 5 fixed seed bases × 40 derived interleavings = 200
//! deterministic interleavings (plus an extra base from `RPQ_TEST_SEED`,
//! the knob CI's `test-seeds` job turns), and a proptest sweep whose
//! failing seeds persist under `proptest-regressions/`.

use std::collections::BTreeSet;

use proptest::prelude::*;
use ring::ring::RingOptions;
use ring::store::TripleStore;
use ring::{Graph, Ring, Triple};
use rpq_core::oracle::evaluate_naive;
use rpq_core::{EngineOptions, EvalRoute, RpqEngine, RpqQuery};
use succinct::io::Persist;
use workload::updates::{apply_op, StreamOp, UpdateGen, UpdateGenConfig};
use workload::{GraphGen, GraphGenConfig, QueryGen};

/// splitmix64 — derives independent sub-seeds from one interleaving seed.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Evaluates `query` on the store snapshot through one route choice.
fn run_route(
    snap: &ring::store::StoreSnapshot,
    query: &RpqQuery,
    forced: Option<EvalRoute>,
) -> Vec<(u64, u64)> {
    let opts = EngineOptions {
        forced_route: forced,
        ..EngineOptions::default()
    };
    let mut engine = RpqEngine::over(snap);
    let out = engine
        .evaluate(query, &opts)
        .unwrap_or_else(|e| panic!("engine failed on {query:?} (forced {forced:?}): {e}"));
    assert!(
        !out.truncated && !out.timed_out && !out.budget_exhausted,
        "unexpected limit on {query:?}"
    );
    out.sorted_pairs()
}

/// Oracle graph for the committed mirror, aligned to the snapshot's id
/// universes so inverse-label encodings (`p̂ = p + |P|`) line up.
fn oracle_graph(snap: &ring::store::StoreSnapshot, committed: &BTreeSet<Triple>) -> Graph {
    Graph::new(
        committed.iter().copied().collect(),
        snap.graph.n_nodes().max(snap.delta.n_nodes()),
        snap.graph.n_preds(),
    )
}

/// Checks every route of every query in a fresh Table-1-patterned log
/// against the from-scratch oracle.
fn check_snapshot(
    snap: &ring::store::StoreSnapshot,
    committed: &BTreeSet<Triple>,
    seed: u64,
    context: &str,
) {
    // The store's live set must equal the mirror exactly.
    let live: BTreeSet<Triple> = snap.live_triples().into_iter().collect();
    assert_eq!(&live, committed, "{context}: live set diverged from mirror");
    if committed.is_empty() {
        return;
    }
    let base = oracle_graph(snap, committed);
    let mut qgen = QueryGen::new(&base, seed);
    let routes = [
        None,
        Some(EvalRoute::FastPath),
        Some(EvalRoute::BitParallel),
        Some(EvalRoute::Split),
        Some(EvalRoute::Fallback),
    ];
    // Three queries per checkpoint, rotating through the 20 Table 1
    // patterns across checkpoints so the whole mix gets exercised.
    let log = qgen.scaled_log(0.0);
    let picks = (0..3).map(|k| (seed as usize + k * 7) % log.len());
    for gq in picks.map(|i| log[i].clone()) {
        let expected = evaluate_naive(&base, &gq.query);
        for forced in routes {
            let got = run_route(snap, &gq.query, forced);
            assert_eq!(
                got, expected,
                "{context}: route {forced:?} diverged from the rebuild oracle on \
                 pattern {:?} ({:?})",
                gq.pattern, gq.query
            );
        }
    }
}

/// One full interleaving: seeded base graph, seeded op stream, a
/// differential checkpoint at every published version, and a final
/// compaction equivalence check (answers *and* `Persist` bytes).
fn run_interleaving(seed: u64) {
    let base = GraphGen::new(GraphGenConfig {
        n_nodes: 8 + mix(seed) % 16,
        n_preds: 2 + mix(seed ^ 1) % 3,
        n_edges: 24 + (mix(seed ^ 2) % 40) as usize,
        pred_zipf: 1.0,
        node_skew: 1.0 + (mix(seed ^ 3) % 10) as f64 / 10.0,
        seed: mix(seed ^ 4),
    })
    .generate();
    let auto_ratio = match mix(seed ^ 5) % 3 {
        0 => None,
        1 => Some(0.75),
        _ => Some(2.0),
    };
    let store = TripleStore::new(base.clone()).with_auto_compact_ratio(auto_ratio);
    let mut pending: BTreeSet<Triple> = base.triples().iter().copied().collect();
    let mut committed = pending.clone();

    let mut gen = UpdateGen::new(
        &base,
        UpdateGenConfig {
            // A third of the interleavings may grow the predicate
            // alphabet, exercising the rebuild-on-commit path.
            new_pred_ratio: if mix(seed ^ 6).is_multiple_of(3) {
                0.05
            } else {
                0.0
            },
            new_node_ratio: 0.12,
            seed: mix(seed ^ 7),
            ..UpdateGenConfig::default()
        },
    );

    let mut checkpoints = 0u32;
    let mut mid_batch_checked = false;
    for i in 0..48 {
        let op = gen.next_op();
        match op {
            StreamOp::Insert(t) => store.insert(t),
            StreamOp::Delete(t) => store.delete(t),
            StreamOp::Commit => {
                store.commit();
            }
            StreamOp::Compact => {
                store.commit();
                store.compact();
            }
        }
        let published = apply_op(op, &mut pending, &mut committed);
        if published {
            checkpoints += 1;
            check_snapshot(
                &store.snapshot(),
                &committed,
                mix(seed ^ (0x1000 + u64::from(checkpoints))),
                &format!("seed {seed:#x}, op #{i}, epoch {}", store.epoch()),
            );
        } else if !mid_batch_checked && store.pending_ops() > 0 && pending != committed {
            // Snapshot isolation: a query placed mid-batch sees only the
            // committed state.
            mid_batch_checked = true;
            check_snapshot(
                &store.snapshot(),
                &committed,
                mix(seed ^ 0x2000),
                &format!("seed {seed:#x}, mid-batch at op #{i}"),
            );
        }
    }

    // Final flush, then the compaction acceptance check: the compacted
    // ring answers like — and serializes byte-identically to — a clean
    // build from the same triple set.
    store.commit();
    committed = pending.clone();
    store.compact();
    let snap = store.snapshot();
    check_snapshot(
        &snap,
        &committed,
        mix(seed ^ 0x3000),
        &format!("seed {seed:#x}, after final compaction"),
    );
    let clean = Ring::build(
        &Graph::new(
            committed.iter().copied().collect(),
            snap.graph.n_nodes(),
            snap.graph.n_preds(),
        ),
        RingOptions::default(),
    );
    let mut compacted_bytes = Vec::new();
    snap.ring.write_to(&mut compacted_bytes).unwrap();
    let mut clean_bytes = Vec::new();
    clean.write_to(&mut clean_bytes).unwrap();
    assert_eq!(
        compacted_bytes, clean_bytes,
        "seed {seed:#x}: compacted ring bytes diverge from a clean build"
    );
}

/// The five fixed seed bases, plus one from `RPQ_TEST_SEED` when set
/// (CI's `test-seeds` job sweeps extra values through this knob).
fn seed_bases() -> Vec<u64> {
    let mut bases = vec![0xA11CE, 0xB0B0B, 0xC0FFEE, 0xD15EA5E, 0xE57A7E];
    if let Ok(s) = std::env::var("RPQ_TEST_SEED") {
        let extra = s.parse::<u64>().unwrap_or_else(|_| {
            s.bytes().fold(0xcbf29ce484222325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x100000001b3)
            })
        });
        bases.push(extra);
    }
    bases
}

/// ≥ 200 deterministic interleavings: 5 (or 6) seed bases × 40 derived
/// seeds each.
#[test]
fn two_hundred_interleavings_match_the_rebuild_oracle() {
    for base in seed_bases() {
        for i in 0..40u64 {
            run_interleaving(mix(base.wrapping_add(i * 0x9E37_79B9)));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fresh random interleavings on every run; failures persist their
    /// seed under `proptest-regressions/` and replay first.
    #[test]
    fn random_interleavings_match_the_rebuild_oracle(seed in 0u64..u64::MAX) {
        run_interleaving(seed);
    }
}
