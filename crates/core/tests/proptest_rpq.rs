//! The central correctness property of the reproduction: on arbitrary
//! graphs and arbitrary 2RPQs, the ring engine (all option combinations)
//! agrees exactly with the naive product-graph oracle.

use automata::ast::{Lit, Regex};
use proptest::prelude::*;
use ring::ring::RingOptions;
use ring::{Graph, Ring, Triple};
use rpq_core::oracle::evaluate_naive;
use rpq_core::{EngineOptions, RpqEngine, RpqQuery, Term};

const N_NODES: u64 = 9;
const N_PREDS: u64 = 3; // completed alphabet: 0..6

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..N_NODES, 0..N_PREDS, 0..N_NODES), 1..60).prop_map(|raw| {
        Graph::new(
            raw.into_iter()
                .map(|(s, p, o)| Triple::new(s, p, o))
                .collect(),
            N_NODES,
            N_PREDS,
        )
    })
}

/// Random expressions over the completed alphabet 0..6.
fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        4 => (0u64..2 * N_PREDS).prop_map(Regex::label),
        1 => prop::collection::btree_set(0u64..2 * N_PREDS, 1..3)
            .prop_map(|s| Regex::Literal(Lit::Class(s.into_iter().collect()))),
        1 => prop::collection::btree_set(0u64..2 * N_PREDS, 1..3)
            .prop_map(|s| Regex::Literal(Lit::NegClass(s.into_iter().collect()))),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::concat(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::alt(a, b)),
            inner.clone().prop_map(|a| Regex::Star(Box::new(a))),
            inner.clone().prop_map(|a| Regex::Plus(Box::new(a))),
            inner.prop_map(|a| Regex::Opt(Box::new(a))),
        ]
    })
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        2 => Just(Term::Var),
        1 => (0..N_NODES).prop_map(Term::Const),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn engine_matches_oracle(
        g in arb_graph(),
        e in arb_regex(),
        s in arb_term(),
        o in arb_term(),
    ) {
        let query = RpqQuery::new(s, e, o);
        let expected = evaluate_naive(&g, &query);
        let ring = Ring::build(&g, RingOptions::default());
        let mut engine = RpqEngine::new(&ring);
        for fast in [false, true] {
            for pruning in [false, true] {
                let opts = EngineOptions { fast_paths: fast, node_pruning: pruning, ..Default::default() };
                let out = engine.evaluate(&query, &opts).unwrap();
                prop_assert!(!out.truncated && !out.timed_out);
                prop_assert_eq!(
                    out.sorted_pairs(), expected.clone(),
                    "mismatch (fast={}, pruning={}) on {:?}", fast, pruning, query
                );
            }
        }
    }

    #[test]
    fn boundary_kinds_agree(
        g in arb_graph(),
        e in arb_regex(),
    ) {
        let query = RpqQuery::new(Term::Var, e, Term::Var);
        let sparse = Ring::build(&g, RingOptions::default());
        let dense = Ring::build(&g, RingOptions { node_boundaries: ring::ring::BoundaryKind::EliasFano, ..Default::default() });
        let a = RpqEngine::new(&sparse).evaluate(&query, &Default::default()).unwrap();
        let b = RpqEngine::new(&dense).evaluate(&query, &Default::default()).unwrap();
        prop_assert_eq!(a.sorted_pairs(), b.sorted_pairs());
    }

    #[test]
    fn fallback_matches_oracle(
        g in arb_graph(),
        e in arb_regex(),
        s in arb_term(),
        o in arb_term(),
    ) {
        // Force the explicit-state fallback path on ordinary expressions:
        // it must agree with the oracle (and hence the main engine) even
        // though the engine would normally take the bit-parallel path.
        let query = RpqQuery::new(s, e, o);
        let ring = Ring::build(&g, RingOptions::default());
        let out = rpq_core::fallback::evaluate(&ring, &query, &EngineOptions::default()).unwrap();
        prop_assert_eq!(out.sorted_pairs(), evaluate_naive(&g, &query), "{:?}", query);
    }

    #[test]
    fn limits_are_respected(
        g in arb_graph(),
        e in arb_regex(),
        limit in 1usize..6,
    ) {
        let query = RpqQuery::new(Term::Var, e, Term::Var);
        let ring = Ring::build(&g, RingOptions::default());
        let mut engine = RpqEngine::new(&ring);
        let opts = EngineOptions { limit, ..Default::default() };
        let out = engine.evaluate(&query, &opts).unwrap();
        prop_assert!(out.pairs.len() <= limit);
        let full = evaluate_naive(&g, &query);
        if full.len() > limit {
            prop_assert!(out.truncated);
        }
        // Every returned pair must be a genuine answer.
        for p in &out.pairs {
            prop_assert!(full.contains(p), "bogus pair {:?}", p);
        }
    }
}
