//! Profile-observation differential suite — the acceptance tests of the
//! "EXPLAIN ANALYZE" profiler.
//!
//! The contract under test: [`EngineOptions::profile`] is **strictly
//! observational**. For any query, any forced route, and any thread
//! count, evaluation with profiling on produces **bit-for-bit identical
//! output** to evaluation with profiling off — the same pair stream
//! (order included), the same flags, the same trace — while attaching a
//! populated [`QueryProfile`] to the output. The planner never sees the
//! flag, so there is no code path where observing a query could change
//! its answer.
//!
//! `RPQ_TEST_THREADS` (comma-separated) overrides the thread counts,
//! matching the parallel differential suite.

use automata::Regex;
use ring::ring::RingOptions;
use ring::{Graph, Ring, Triple};
use rpq_core::{EngineOptions, EvalRoute, RpqEngine, RpqQuery, Term};
use workload::{GraphGen, GraphGenConfig, QueryGen};

/// Thread counts to cover besides the sequential engine.
fn test_threads() -> Vec<usize> {
    match std::env::var("RPQ_TEST_THREADS") {
        Ok(v) => v
            .split(',')
            .filter_map(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t > 1)
            .collect(),
        Err(_) => vec![2, 4],
    }
}

fn star(l: u64) -> Regex {
    Regex::Star(Box::new(Regex::label(l)))
}

/// A Wikidata-shaped graph (Zipf predicates, skewed degrees).
fn workload_graph(seed: u64) -> Graph {
    GraphGen::new(GraphGenConfig {
        n_nodes: 40,
        n_preds: 4,
        n_edges: 200,
        pred_zipf: 1.2,
        node_skew: 0.8,
        seed,
    })
    .generate()
}

/// A graph with one rare label (1) between two dense closures, so the
/// split route is feasible without forcing tricks.
fn rare_label_graph() -> Graph {
    let mut triples = vec![Triple::new(6, 1, 9)];
    for i in 0..14 {
        triples.push(Triple::new(i, 0, (i + 1) % 16));
        triples.push(Triple::new((i + 2) % 16, 2, (i + 5) % 16));
    }
    Graph::from_triples(triples)
}

/// Table 1 pattern instantiations plus the canonical splittable shape.
fn corpus(graph: &Graph, seed: u64) -> Vec<RpqQuery> {
    let mut queries: Vec<RpqQuery> = QueryGen::new(graph, seed)
        .scaled_log(0.0)
        .into_iter()
        .map(|gq| gq.query)
        .collect();
    queries.push(RpqQuery::new(Term::Var, star(0), Term::Var));
    queries.push(RpqQuery::new(
        Term::Var,
        Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2)),
        Term::Var,
    ));
    queries.push(RpqQuery::new(Term::Const(6), star(0), Term::Var));
    queries
}

/// Profiling on vs. off, across every forced route and thread count:
/// identical answers, and a profile attached exactly when asked for.
#[test]
fn profiling_never_changes_the_answer() {
    let mut checked = 0usize;
    let mut thread_counts = vec![1usize];
    thread_counts.extend(test_threads());
    for (graph, seed) in [(workload_graph(0xFACE), 41), (rare_label_graph(), 42)] {
        let ring = Ring::build(&graph, RingOptions::default());
        let mut engine = RpqEngine::new(&ring);
        for query in corpus(&graph, seed) {
            for forced in EvalRoute::ALL {
                for &threads in &thread_counts {
                    let base = EngineOptions {
                        forced_route: Some(forced),
                        collect_trace: true,
                        intra_query_threads: threads,
                        parallel_min_frontier: 2,
                        ..EngineOptions::default()
                    };
                    let off = engine
                        .evaluate(&query, &base)
                        .unwrap_or_else(|e| panic!("unprofiled {forced:?} failed: {e}"));
                    assert!(
                        off.profile.is_none(),
                        "profile attached without being requested on {query:?}"
                    );
                    let opts = EngineOptions {
                        profile: true,
                        ..base
                    };
                    let on = engine
                        .evaluate(&query, &opts)
                        .unwrap_or_else(|e| panic!("profiled {forced:?} failed: {e}"));
                    assert_eq!(
                        on.pairs, off.pairs,
                        "profiling changed the pair stream on {query:?} \
                         (forced {forced:?}, {threads} threads)"
                    );
                    assert_eq!(
                        (on.truncated, on.timed_out, on.budget_exhausted),
                        (off.truncated, off.timed_out, off.budget_exhausted),
                        "profiling changed the flags on {query:?}"
                    );
                    assert_eq!(
                        on.trace, off.trace,
                        "profiling changed the trace on {query:?}"
                    );
                    let (on_plan, off_plan) =
                        (on.plan.as_ref().unwrap(), off.plan.as_ref().unwrap());
                    assert_eq!(
                        (on_plan.route, on_plan.direction, on_plan.estimated_cost),
                        (off_plan.route, off_plan.direction, off_plan.estimated_cost),
                        "profiling changed the plan on {query:?}"
                    );
                    let profile = on
                        .profile
                        .unwrap_or_else(|| panic!("no profile on {query:?}"));
                    // Engine-side profiles leave the server phases unset.
                    assert_eq!(profile.queue_wait_us, None);
                    assert_eq!(profile.compile_us, None);
                    assert_eq!(profile.cache_hit, None);
                    assert!(profile.total_us >= profile.exec_us);
                    checked += 1;
                }
            }
        }
    }
    assert!(checked >= 200, "corpus shrank: only {checked} combinations");
}

/// Truncation is part of the bit-identity contract: with a tight limit
/// the profiled run must stop at the same pair as the unprofiled one.
#[test]
fn truncation_point_survives_profiling() {
    let graph = workload_graph(0xBEEF);
    let ring = Ring::build(&graph, RingOptions::default());
    let mut engine = RpqEngine::new(&ring);
    let query = RpqQuery::new(Term::Var, star(0), Term::Var);
    for limit in [1usize, 5, 50] {
        for forced in EvalRoute::ALL {
            let base = EngineOptions {
                limit,
                forced_route: Some(forced),
                ..EngineOptions::default()
            };
            let off = engine.evaluate(&query, &base).unwrap();
            let on = engine
                .evaluate(
                    &query,
                    &EngineOptions {
                        profile: true,
                        ..base
                    },
                )
                .unwrap();
            assert_eq!(on.pairs, off.pairs, "limit {limit}, forced {forced:?}");
            assert_eq!(on.truncated, off.truncated);
        }
    }
}

/// The profiler must actually observe something: a closure traversal on
/// the bit-parallel route records one sample per BFS level, the rank-op
/// deltas sum to the traversal total, and parallel fan-out shows up in
/// the per-level chunk counts.
#[test]
fn profiles_record_levels_and_fanout() {
    let graph = workload_graph(0xD00D);
    let ring = Ring::build(&graph, RingOptions::default());
    let mut engine = RpqEngine::new(&ring);
    let query = RpqQuery::new(Term::Var, star(0), Term::Var);

    let opts = EngineOptions {
        profile: true,
        forced_route: Some(EvalRoute::BitParallel),
        ..EngineOptions::default()
    };
    let out = engine.evaluate(&query, &opts).unwrap();
    let profile = out.profile.expect("profile requested");
    assert!(
        !profile.levels.is_empty(),
        "a closure traversal has BFS levels"
    );
    let level_rank_ops: u64 = profile.levels.iter().map(|l| l.rank_ops).sum();
    assert!(
        level_rank_ops <= out.stats.rank_ops,
        "per-level deltas ({level_rank_ops}) exceed the traversal total ({})",
        out.stats.rank_ops
    );
    assert!(profile.levels.iter().any(|l| l.frontier > 0));
    assert_eq!(profile.compactions, out.stats.pair_compactions);

    // With helpers granted, fanned-out levels carry their chunk counts.
    let par = engine
        .evaluate(
            &query,
            &EngineOptions {
                intra_query_threads: 4,
                parallel_min_frontier: 2,
                ..opts
            },
        )
        .unwrap();
    let profile = par.profile.expect("profile requested");
    let chunks: u64 = profile.levels.iter().map(|l| l.chunks).sum();
    assert_eq!(
        chunks, par.stats.parallel_chunks,
        "per-level chunks must sum to the traversal counter"
    );
    if par.stats.parallel_levels > 0 {
        assert!(profile.levels.iter().any(|l| l.parallel));
    }

    // The JSON rendering is a single stable object (machine-parseable
    // line in CLI output).
    let json = profile.to_json();
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"levels\":["));
}
