//! Sharded differential suite: a [`ShardedSource`] scatter-gathering a
//! predicate-partitioned [`ShardedIndex`] must be **bit-identical** to
//! the unsharded ring — same sorted answers (equal to the naive oracle),
//! same raw pair stream, same traces and truncation points, same plans —
//! under every forced route, every shard count, and both residency modes
//! of the on-disk `RRPQSH01` directory.

use std::sync::Arc;

use automata::Regex;
use ring::mapped::OpenMode;
use ring::ring::RingOptions;
use ring::sharded::{open_dir, ShardedIndex};
use ring::{Dict, Graph, Ring, Triple};
use rpq_core::oracle::evaluate_naive;
use rpq_core::{EngineOptions, EvalRoute, RpqEngine, RpqQuery, ShardedSource, Term};
use workload::{GraphGen, GraphGenConfig, QueryGen};

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn star(l: u64) -> Regex {
    Regex::Star(Box::new(Regex::label(l)))
}

fn workload_graph(seed: u64) -> Graph {
    GraphGen::new(GraphGenConfig {
        n_nodes: 30,
        n_preds: 4,
        n_edges: 140,
        pred_zipf: 1.2,
        node_skew: 0.8,
        seed,
    })
    .generate()
}

fn rare_label_graph() -> Graph {
    let mut triples = vec![Triple::new(6, 1, 9)];
    for i in 0..14 {
        triples.push(Triple::new(i, 0, (i + 1) % 16));
        triples.push(Triple::new((i + 2) % 16, 2, (i + 5) % 16));
    }
    Graph::from_triples(triples)
}

/// Table 1 pattern instantiations plus the canonical splittable shape
/// with every endpoint combination — the same mix the route-forcing and
/// mapped differential suites use.
fn corpus(graph: &Graph, seed: u64) -> Vec<RpqQuery> {
    let mut queries: Vec<RpqQuery> = QueryGen::new(graph, seed)
        .scaled_log(0.0)
        .into_iter()
        .map(|gq| gq.query)
        .collect();
    let split_expr = Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2));
    for (s, o) in [
        (Term::Var, Term::Var),
        (Term::Const(6), Term::Var),
        (Term::Var, Term::Const(9)),
        (Term::Const(6), Term::Const(9)),
    ] {
        queries.push(RpqQuery::new(s, split_expr.clone(), o));
    }
    queries
}

fn sharded_source(graph: &Graph, n_shards: usize) -> ShardedSource {
    let idx = ShardedIndex::build(graph, n_shards, RingOptions::default());
    ShardedSource::new(idx.into_shards().into_iter().map(Arc::new).collect())
}

/// The core guarantee: for every corpus query, every forced route, and
/// every shard count, the sharded answer is the oracle answer, its plan
/// routes identically to the unsharded plan (the aggregated statistics
/// sum exactly over the disjoint partition), and the *raw* pair stream —
/// order included — equals the unsharded one.
#[test]
fn every_forced_route_is_bit_identical_across_shard_counts() {
    let mut checked = 0usize;
    for (graph, seed) in [(workload_graph(0x5AAD), 41), (rare_label_graph(), 42)] {
        let ring = Ring::build(&graph, RingOptions::default());
        let mut base = RpqEngine::new(&ring);
        for n_shards in SHARD_COUNTS {
            let source = sharded_source(&graph, n_shards);
            let mut engine = RpqEngine::over(&source);
            for query in corpus(&graph, seed) {
                let expected = evaluate_naive(&graph, &query);
                for forced in EvalRoute::ALL {
                    let opts = EngineOptions {
                        forced_route: Some(forced),
                        ..EngineOptions::default()
                    };
                    let out = engine
                        .evaluate(&query, &opts)
                        .unwrap_or_else(|e| panic!("{n_shards} shards, {forced:?}: {e}"));
                    assert_eq!(
                        out.sorted_pairs(),
                        expected,
                        "{n_shards} shards: forced {forced:?} disagrees with the oracle on {query:?}"
                    );
                    let base_out = base.evaluate(&query, &opts).unwrap();
                    assert_eq!(
                        out.pairs, base_out.pairs,
                        "{n_shards} shards: raw pair stream diverges from unsharded on {query:?} ({forced:?})"
                    );
                    assert_eq!(
                        out.plan.as_ref().map(|p| p.route),
                        base_out.plan.as_ref().map(|p| p.route),
                        "{n_shards} shards: executed route diverges on {query:?}"
                    );
                    checked += 1;
                }
            }
        }
    }
    assert!(checked >= 200, "corpus shrank: only {checked} combinations");
}

/// Natural planning (no forcing) must make the same route, direction and
/// split decisions over a sharded source: the planner's inputs
/// (`pred_cardinality`, `n_triples`, `edges_into`, `in_degree`) sum
/// exactly over a disjoint partition.
#[test]
fn natural_plans_are_partition_independent() {
    for (graph, seed) in [(workload_graph(0xBEEF), 43), (rare_label_graph(), 44)] {
        let ring = Ring::build(&graph, RingOptions::default());
        let mut base = RpqEngine::new(&ring);
        let opts = EngineOptions::default();
        for n_shards in SHARD_COUNTS {
            let source = sharded_source(&graph, n_shards);
            let mut engine = RpqEngine::over(&source);
            for query in corpus(&graph, seed) {
                let sharded = engine.evaluate(&query, &opts).unwrap();
                let unsharded = base.evaluate(&query, &opts).unwrap();
                let sp = sharded.plan.expect("engine outputs carry their plan");
                let up = unsharded.plan.expect("engine outputs carry their plan");
                assert_eq!(sp.route, up.route, "{n_shards} shards: route on {query:?}");
                assert_eq!(
                    sp.direction, up.direction,
                    "{n_shards} shards: direction on {query:?}"
                );
                assert_eq!(
                    sp.split_label(),
                    up.split_label(),
                    "{n_shards} shards: split on {query:?}"
                );
                assert_eq!(sharded.pairs, unsharded.pairs);
            }
        }
    }
}

/// Traces and truncation points are part of the partition-independence
/// contract: every merged enumeration primitive returns sorted-distinct
/// nodes, so the BFS visit sequence and the exact prefix surviving a
/// result limit cannot depend on how the triples were partitioned.
/// (They are compared *across shard counts*, not against the unsharded
/// engine: the pure and merged code paths enumerate and batch
/// differently, so only answers — covered by the tests above — are
/// unsharded-identical. Shard count 1 degenerates to the pure path and
/// is excluded here.)
#[test]
fn traces_and_truncation_points_are_partition_independent() {
    let graph = workload_graph(0x7ACE);
    let ring = Ring::build(&graph, RingOptions::default());
    let mut base = RpqEngine::new(&ring);
    let mut truncations = 0usize;
    let traced = EngineOptions {
        collect_trace: true,
        ..EngineOptions::default()
    };
    let limited = EngineOptions {
        limit: 5,
        ..EngineOptions::default()
    };
    for query in corpus(&graph, 45) {
        let base_truncated = base.evaluate(&query, &limited).unwrap().truncated;
        let mut runs = Vec::new();
        for n_shards in [2usize, 4, 8] {
            let source = sharded_source(&graph, n_shards);
            let mut engine = RpqEngine::over(&source);
            let trace = engine.evaluate(&query, &traced).unwrap().trace;
            let out = engine.evaluate(&query, &limited).unwrap();
            assert_eq!(
                out.truncated, base_truncated,
                "{n_shards} shards: truncated flag diverges on {query:?}"
            );
            truncations += usize::from(out.truncated);
            runs.push((n_shards, trace, out.pairs));
        }
        for w in runs.windows(2) {
            let (n_a, trace_a, pairs_a) = &w[0];
            let (n_b, trace_b, pairs_b) = &w[1];
            assert_eq!(
                trace_a, trace_b,
                "BFS trace depends on the partition ({n_a} vs {n_b} shards) on {query:?}"
            );
            assert_eq!(
                pairs_a, pairs_b,
                "truncation point depends on the partition ({n_a} vs {n_b} shards) on {query:?}"
            );
        }
    }
    assert!(
        truncations > 0,
        "the limit of 5 never bit — fixture too small"
    );
}

/// Shard counts exceeding the partition's unit count leave some shards
/// with zero triples; empty sub-rings must gather as no-ops.
#[test]
fn empty_shards_are_harmless() {
    // Two triples, one predicate, four shards: the subject-range split
    // yields two one-triple units, so shards 2 and 3 stay empty.
    let graph = Graph::from_triples(vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2)]);
    let idx = ShardedIndex::build(&graph, 4, RingOptions::default());
    assert_eq!(idx.n_shards(), 4);
    assert!(
        idx.shards().iter().any(|r| r.n_triples() == 0),
        "fixture no longer produces an empty shard"
    );
    let source = ShardedSource::new(idx.into_shards().into_iter().map(Arc::new).collect());
    let mut engine = RpqEngine::over(&source);
    for (expr, expected) in [
        (
            star(0),
            vec![(0, 0), (0, 1), (0, 2), (1, 1), (1, 2), (2, 2)],
        ),
        (Regex::label(0), vec![(0, 1), (1, 2)]),
    ] {
        let query = RpqQuery::new(Term::Var, expr, Term::Var);
        assert_eq!(evaluate_naive(&graph, &query), expected);
        for forced in EvalRoute::ALL {
            let opts = EngineOptions {
                forced_route: Some(forced),
                ..EngineOptions::default()
            };
            let out = engine.evaluate(&query, &opts).unwrap();
            assert_eq!(out.sorted_pairs(), expected, "forced {forced:?}");
        }
    }
}

fn dicts_for(graph: &Graph) -> (Dict, Dict) {
    let mut nodes = Dict::new();
    for i in 0..graph.n_nodes() {
        nodes.intern(&format!("<node/{i}>"));
    }
    let mut preds = Dict::new();
    for i in 0..graph.n_preds() {
        preds.intern(&format!("<pred/{i}>"));
    }
    (nodes, preds)
}

/// A round-tripped `RRPQSH01` directory — heap-resident and, where the
/// platform allows, mmap-resident — answers identically to the fresh
/// in-memory build under every forced route.
#[test]
fn reopened_shard_directories_match_the_oracle() {
    let dir = std::env::temp_dir().join(format!("rpq_sharded_diff_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let graph = workload_graph(0xD15C);
    let idx = ShardedIndex::build(&graph, 4, RingOptions::default());
    let (nodes, preds) = dicts_for(&graph);
    idx.save_dir(&dir, &nodes, &preds).unwrap();

    let mut modes = vec![("heap", OpenMode::Heap)];
    #[cfg(all(unix, target_pointer_width = "64"))]
    modes.push(("mmap", OpenMode::Mmap));

    let ring = Ring::build(&graph, RingOptions::default());
    let mut base = RpqEngine::new(&ring);
    for (label, mode) in modes {
        let shards = open_dir(&dir, mode).unwrap();
        let source = ShardedSource::new(shards.into_iter().map(|idx| Arc::new(idx.ring)).collect());
        let mut engine = RpqEngine::over(&source);
        for query in corpus(&graph, 46) {
            let expected = evaluate_naive(&graph, &query);
            for forced in EvalRoute::ALL {
                let opts = EngineOptions {
                    forced_route: Some(forced),
                    ..EngineOptions::default()
                };
                let out = engine
                    .evaluate(&query, &opts)
                    .unwrap_or_else(|e| panic!("{label}: forcing {forced:?}: {e}"));
                assert_eq!(
                    out.sorted_pairs(),
                    expected,
                    "{label}: forced {forced:?} disagrees with the oracle on {query:?}"
                );
                let base_out = base.evaluate(&query, &opts).unwrap();
                assert_eq!(
                    out.pairs, base_out.pairs,
                    "{label}: reopened shards diverge from the fresh build on {query:?}"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}
