//! Torture and corner-case tests for the RPQ engine: degenerate graphs,
//! degenerate expressions, option extremes — every case cross-checked
//! against the naive oracle where results exist.

use automata::ast::{Lit, Regex};
use ring::ring::RingOptions;
use ring::{Graph, Ring, Triple};
use rpq_core::oracle::evaluate_naive;
use rpq_core::{EngineOptions, RpqEngine, RpqQuery, Term};
use std::time::Duration;

fn ring_of(triples: Vec<Triple>) -> (Graph, Ring) {
    let g = Graph::from_triples(triples);
    let r = Ring::build(&g, RingOptions::default());
    (g, r)
}

fn check(g: &Graph, r: &Ring, q: &RpqQuery) {
    let expected = evaluate_naive(g, q);
    let got = RpqEngine::new(r)
        .evaluate(q, &EngineOptions::default())
        .unwrap()
        .sorted_pairs();
    assert_eq!(got, expected, "query {q:?}");
}

#[test]
fn single_self_loop() {
    let (g, r) = ring_of(vec![Triple::new(0, 0, 0)]);
    for e in [
        Regex::label(0),
        Regex::Star(Box::new(Regex::label(0))),
        Regex::Plus(Box::new(Regex::label(0))),
        Regex::concat(Regex::label(0), Regex::label(1)), // inverse of the loop
        Regex::label(1),
    ] {
        check(&g, &r, &RpqQuery::new(Term::Var, e.clone(), Term::Var));
        check(&g, &r, &RpqQuery::new(Term::Const(0), e.clone(), Term::Var));
        check(&g, &r, &RpqQuery::new(Term::Const(0), e, Term::Const(0)));
    }
}

#[test]
fn two_cycle_closures() {
    // 0 <-> 1 with one label; closures must terminate and dedup.
    let (g, r) = ring_of(vec![Triple::new(0, 0, 1), Triple::new(1, 0, 0)]);
    let star = Regex::Star(Box::new(Regex::label(0)));
    check(&g, &r, &RpqQuery::new(Term::Var, star.clone(), Term::Var));
    // Deep nesting: ((a*)*)* is still a*.
    let deep = Regex::Star(Box::new(Regex::Star(Box::new(star))));
    check(&g, &r, &RpqQuery::new(Term::Var, deep, Term::Var));
}

#[test]
fn epsilon_and_empty_class_expressions() {
    let (g, r) = ring_of(vec![Triple::new(0, 0, 1), Triple::new(1, 1, 2)]);
    // ε: only zero-length paths — the diagonal over existing nodes.
    check(&g, &r, &RpqQuery::new(Term::Var, Regex::Epsilon, Term::Var));
    check(
        &g,
        &r,
        &RpqQuery::new(Term::Const(1), Regex::Epsilon, Term::Var),
    );
    check(
        &g,
        &r,
        &RpqQuery::new(Term::Const(0), Regex::Epsilon, Term::Const(1)),
    );
    // ε? and ε* are still ε.
    check(
        &g,
        &r,
        &RpqQuery::new(Term::Var, Regex::Opt(Box::new(Regex::Epsilon)), Term::Var),
    );
}

#[test]
fn unknown_label_in_expression() {
    // Label 7 doesn't exist in a 2-predicate graph's completed alphabet
    // of size 4 — but ids up to the alphabet bound must simply match
    // nothing rather than error.
    let (g, r) = ring_of(vec![Triple::new(0, 0, 1), Triple::new(0, 1, 1)]);
    let q = RpqQuery::new(Term::Var, Regex::label(3), Term::Var); // ^1
    check(&g, &r, &q);
}

#[test]
fn star_height_and_alternation_blowup() {
    let (g, r) = ring_of(vec![
        Triple::new(0, 0, 1),
        Triple::new(1, 1, 2),
        Triple::new(2, 0, 3),
        Triple::new(3, 1, 0),
    ]);
    // (a|b)*/(b|a)*/(a|b)* — heavily redundant, must still be exact.
    let ab = || Regex::alt(Regex::label(0), Regex::label(1));
    let e = Regex::concat(
        Regex::concat(
            Regex::Star(Box::new(ab())),
            Regex::Star(Box::new(Regex::alt(Regex::label(1), Regex::label(0)))),
        ),
        Regex::Star(Box::new(ab())),
    );
    check(&g, &r, &RpqQuery::new(Term::Var, e, Term::Var));
}

#[test]
fn negated_class_of_everything() {
    let (g, r) = ring_of(vec![Triple::new(0, 0, 1), Triple::new(1, 1, 0)]);
    // Excluding the whole completed alphabet matches nothing.
    let all: Vec<u64> = (0..4).collect();
    let q = RpqQuery::new(Term::Var, Regex::Literal(Lit::NegClass(all)), Term::Var);
    check(&g, &r, &q);
    // Excluding nothing matches every edge.
    let q = RpqQuery::new(
        Term::Var,
        Regex::Literal(Lit::NegClass(vec![99])),
        Term::Var,
    );
    check(&g, &r, &q);
}

#[test]
fn limit_one_and_zero_timeout() {
    let (_, r) = ring_of(vec![
        Triple::new(0, 0, 1),
        Triple::new(0, 0, 2),
        Triple::new(0, 0, 3),
    ]);
    let mut engine = RpqEngine::new(&r);
    let q = RpqQuery::new(Term::Const(0), Regex::label(0), Term::Var);
    let out = engine
        .evaluate(
            &q,
            &EngineOptions {
                limit: 1,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(out.pairs.len(), 1);
    assert!(out.truncated);

    // A zero timeout must terminate quickly and flag itself (tiny queries
    // may still finish before the first deadline check — either way, no
    // hang and no wrong pairs).
    let big: Vec<Triple> = (0..2000)
        .map(|i| Triple::new(i % 500, 0, (i * 7 + 1) % 500))
        .collect();
    let (_, r2) = ring_of(big);
    let mut engine2 = RpqEngine::new(&r2);
    let q = RpqQuery::new(Term::Var, Regex::Star(Box::new(Regex::label(0))), Term::Var);
    let out = engine2
        .evaluate(
            &q,
            &EngineOptions {
                timeout: Some(Duration::ZERO),
                fast_paths: false,
                ..Default::default()
            },
        )
        .unwrap();
    assert!(out.timed_out || out.pairs.len() <= 1_000_000);
}

#[test]
fn isolated_constant_nodes() {
    // Node 5 exists in the universe but has no edges.
    let g = Graph::new(vec![Triple::new(0, 0, 1)], 6, 1);
    let r = Ring::build(&g, RingOptions::default());
    let mut engine = RpqEngine::new(&r);
    // Nullable query anchored at an edge-free node: no (5,5) because the
    // node does not occur in the graph.
    let q = RpqQuery::new(
        Term::Const(5),
        Regex::Star(Box::new(Regex::label(0))),
        Term::Var,
    );
    let out = engine.evaluate(&q, &EngineOptions::default()).unwrap();
    assert!(out.pairs.is_empty());
    // Same against the oracle.
    assert_eq!(evaluate_naive(&g, &q), vec![]);
}

#[test]
fn parallel_edges_and_multigraph_labels() {
    // Several labels between the same pair; set semantics must not
    // duplicate the pair.
    let (g, r) = ring_of(vec![
        Triple::new(0, 0, 1),
        Triple::new(0, 1, 1),
        Triple::new(0, 2, 1),
    ]);
    let e = Regex::alt(
        Regex::alt(Regex::label(0), Regex::label(1)),
        Regex::label(2),
    );
    check(&g, &r, &RpqQuery::new(Term::Var, e.clone(), Term::Var));
    let got = RpqEngine::new(&r)
        .evaluate(
            &RpqQuery::new(Term::Var, e, Term::Var),
            &EngineOptions::default(),
        )
        .unwrap();
    assert_eq!(got.pairs.len(), 1);
}

#[test]
fn sixty_three_positions_is_accepted() {
    // The documented maximum: 63 literal occurrences.
    let (g, r) = ring_of(vec![Triple::new(0, 0, 0)]);
    let mut e = Regex::label(0);
    for _ in 0..62 {
        e = Regex::concat(e, Regex::label(0));
    }
    assert_eq!(e.literal_count(), 63);
    let q = RpqQuery::new(Term::Const(0), e, Term::Const(0));
    // A 63-step loop walk on a self-loop: reachable.
    let out = RpqEngine::new(&r)
        .evaluate(&q, &EngineOptions::default())
        .unwrap();
    assert_eq!(out.pairs, vec![(0, 0)]);
    check(&g, &r, &q);
}

#[test]
fn bipartite_alternating_labels() {
    // Strict alternation a/b/a/b…: parity must be respected.
    let (g, r) = ring_of(vec![
        Triple::new(0, 0, 1),
        Triple::new(1, 1, 2),
        Triple::new(2, 0, 3),
        Triple::new(3, 1, 4),
    ]);
    let ab = Regex::concat(Regex::label(0), Regex::label(1));
    let e = Regex::Plus(Box::new(ab));
    check(&g, &r, &RpqQuery::new(Term::Var, e.clone(), Term::Var));
    let out = RpqEngine::new(&r)
        .evaluate(
            &RpqQuery::new(Term::Const(0), e, Term::Var),
            &EngineOptions::default(),
        )
        .unwrap();
    assert_eq!(out.sorted_pairs(), vec![(0, 2), (0, 4)]);
}

#[test]
fn node_budget_boundaries() {
    // Parallel labels into the same target: (a, p|q, ?y) has exactly ONE
    // distinct answer pair reachable through two edges. A budget of 1 is
    // enough — re-finding the same pair must not exhaust it.
    let (_, r) = ring_of(vec![Triple::new(0, 0, 1), Triple::new(0, 1, 1)]);
    let disj = Regex::alt(Regex::label(0), Regex::label(1));
    let q = RpqQuery::new(Term::Const(0), disj.clone(), Term::Var);
    let budget1 = EngineOptions {
        node_budget: Some(1),
        ..Default::default()
    };
    let out = RpqEngine::new(&r).evaluate(&q, &budget1).unwrap();
    assert!(!out.budget_exhausted, "duplicate pair must not count twice");
    assert_eq!(out.sorted_pairs(), vec![(0, 1)]);

    // The same shape through the general engine (fast paths off).
    let out = RpqEngine::new(&r)
        .evaluate(
            &q,
            &EngineOptions {
                fast_paths: false,
                node_budget: Some(8),
                ..Default::default()
            },
        )
        .unwrap();
    assert!(!out.budget_exhausted);
    assert_eq!(out.sorted_pairs(), vec![(0, 1)]);

    // A chain the budget genuinely cannot cover is flagged, and the
    // pairs that were found stay sound (a subset of the oracle's).
    let (g, r) = ring_of((0..30).map(|i| Triple::new(i, 0, i + 1)).collect());
    let q = RpqQuery::new(Term::Var, Regex::Plus(Box::new(Regex::label(0))), Term::Var);
    let out = RpqEngine::new(&r)
        .evaluate(
            &q,
            &EngineOptions {
                node_budget: Some(3),
                ..Default::default()
            },
        )
        .unwrap();
    assert!(out.budget_exhausted);
    let full = evaluate_naive(&g, &q);
    for pair in out.sorted_pairs() {
        assert!(full.contains(&pair), "budget-aborted answers must be sound");
    }
}
