//! Hand-checked coverage of the four §4.4 query shapes — `(s,E,o)`,
//! `(s,E,?o)`, `(?s,E,o)`, `(?s,E,?o)` — on the paper's metro graph
//! (`workload::metro`), including inverse-predicate (2RPQ) expressions.
//!
//! Every expected answer set below was derived by hand from Fig. 1:
//!
//! ```text
//! l1 : Baquedano <-> UdeChile <-> LosHeroes          (bidirectional)
//! l2 : LosHeroes <-> SantaAna                        (bidirectional)
//! l5 : SantaAna <-> BellasArtes <-> Baquedano        (bidirectional)
//! bus: SantaAna -> UdeChile -> BellasArtes -> SantaAna  (one-way cycle)
//! ```
//!
//! The engine is also cross-checked against the oracle on every query,
//! so a typo in the hand-derived sets cannot silently pass.

use automata::parser::{parse, LabelResolver};
use ring::ring::RingOptions;
use ring::{Id, Ring};
use rpq_core::oracle::evaluate_naive;
use rpq_core::{EngineOptions, RpqEngine, RpqQuery, Term};
use workload::metro::{metro, metro_dicts, nodes};

/// Resolves `l1 l2 l5 bus` by name against the metro dictionaries, with
/// the ring's completed-alphabet inverse layout (base 4, `p̂ = p + 4`).
struct MetroResolver {
    preds: ring::Dict,
}

impl LabelResolver for MetroResolver {
    fn resolve(&self, name: &str) -> Option<u64> {
        self.preds.get(name)
    }

    fn inverse(&self, label: u64) -> u64 {
        let n_base = self.preds.len() as u64;
        if label < n_base {
            label + n_base
        } else {
            label - n_base
        }
    }
}

fn eval(expr: &str, s: Term, o: Term) -> Vec<(Id, Id)> {
    let graph = metro();
    let (_, preds) = metro_dicts();
    let resolver = MetroResolver { preds };
    let e = parse(expr, &resolver).unwrap_or_else(|err| panic!("parse '{expr}': {err}"));
    let query = RpqQuery::new(s, e, o);

    let ring = Ring::build(&graph, RingOptions::default());
    let got = RpqEngine::new(&ring)
        .evaluate(&query, &EngineOptions::default())
        .unwrap_or_else(|err| panic!("evaluate '{expr}': {err}"))
        .sorted_pairs();

    // Guard the hand-derived expectations against authoring mistakes.
    assert_eq!(
        got,
        evaluate_naive(&graph, &query),
        "oracle disagrees on '{expr}'"
    );
    got
}

fn sorted(mut pairs: Vec<(Id, Id)>) -> Vec<(Id, Id)> {
    pairs.sort_unstable();
    pairs
}

use nodes::{BA, BAQ, LH, SA, UCH};

// ---- shape (s, E, o): both endpoints constant (ASK-style) ----------------

#[test]
fn shape_const_const() {
    // Baquedano --l5--> BellasArtes exists.
    assert_eq!(
        eval("l5", Term::Const(BAQ), Term::Const(BA)),
        vec![(BAQ, BA)]
    );
    // No direct l5 edge Baquedano -> SantaAna (needs two hops).
    assert_eq!(eval("l5", Term::Const(BAQ), Term::Const(SA)), vec![]);
    // Two l5 hops reach it.
    assert_eq!(
        eval("l5/l5", Term::Const(BAQ), Term::Const(SA)),
        vec![(BAQ, SA)]
    );
    // The paper's worked pattern: l5+ then one bus hop.
    assert_eq!(
        eval("l5+/bus", Term::Const(BAQ), Term::Const(UCH)),
        vec![(BAQ, UCH)]
    );
    // The full bus cycle returns to its origin.
    assert_eq!(
        eval("bus/bus/bus", Term::Const(SA), Term::Const(SA)),
        vec![(SA, SA)]
    );
}

#[test]
fn shape_const_const_with_inverses() {
    // ^bus from UdeChile means a bus edge INTO UdeChile: SantaAna -> UdeChile.
    assert_eq!(
        eval("^bus", Term::Const(UCH), Term::Const(SA)),
        vec![(UCH, SA)]
    );
    // Riding bus one way and back out against it: BAQ has no bus edges at all.
    assert_eq!(eval("bus/^bus", Term::Const(BAQ), Term::Const(BAQ)), vec![]);
    // SantaAna -bus-> UdeChile -^bus-> SantaAna round-trips.
    assert_eq!(
        eval("bus/^bus", Term::Const(SA), Term::Const(SA)),
        vec![(SA, SA)]
    );
}

// ---- shape (s, E, ?o): constant subject, variable object -----------------

#[test]
fn shape_const_var() {
    // One l1 hop from Baquedano: only UdeChile.
    assert_eq!(eval("l1", Term::Const(BAQ), Term::Var), vec![(BAQ, UCH)]);
    // The metro closure from Baquedano reaches every station (l1 to UCH/LH,
    // l2 on to SA, l5 to BA — and itself via l1 there-and-back).
    assert_eq!(
        eval("(l1|l2|l5)+", Term::Const(BAQ), Term::Var),
        sorted(vec![
            (BAQ, SA),
            (BAQ, UCH),
            (BAQ, LH),
            (BAQ, BA),
            (BAQ, BAQ)
        ])
    );
    // Fig. 6's worked example: l5+ then exactly one bus hop from Baquedano.
    // l5+ reaches {BA, SA, BAQ}; bus edges leave BA (->SA) and SA (->UCH).
    assert_eq!(
        eval("l5+/bus", Term::Const(BAQ), Term::Var),
        sorted(vec![(BAQ, SA), (BAQ, UCH)])
    );
    // Optional step: l2 then optionally l5 from LosHeroes.
    assert_eq!(
        eval("l2/l5?", Term::Const(LH), Term::Var),
        sorted(vec![(LH, SA), (LH, BA)])
    );
}

#[test]
fn shape_const_var_with_inverses() {
    // Stations with a bus edge INTO BellasArtes: only UdeChile.
    assert_eq!(eval("^bus", Term::Const(BA), Term::Var), vec![(BA, UCH)]);
    // Going backwards around the whole bus cycle visits every bus stop.
    assert_eq!(
        eval("(^bus)+", Term::Const(SA), Term::Var),
        sorted(vec![(SA, BA), (SA, UCH), (SA, SA)])
    );
    // A 2RPQ mixing directions: one bus hop forward or backward from UCH.
    assert_eq!(
        eval("bus|^bus", Term::Const(UCH), Term::Var),
        sorted(vec![(UCH, BA), (UCH, SA)])
    );
    // Negated property set: any single step except a metro line, either
    // direction, from SantaAna — exactly its bus neighbourhood.
    assert_eq!(
        eval("!(l1|^l1|l2|^l2|l5|^l5)", Term::Const(SA), Term::Var),
        sorted(vec![(SA, UCH), (SA, BA)])
    );
}

// ---- shape (?s, E, o): variable subject, constant object -----------------

#[test]
fn shape_var_const() {
    // Who reaches SantaAna in one bus hop? Only BellasArtes.
    assert_eq!(eval("bus", Term::Var, Term::Const(SA)), vec![(BA, SA)]);
    // Everything that reaches UdeChile through the one-way bus cycle.
    assert_eq!(
        eval("bus+", Term::Var, Term::Const(UCH)),
        sorted(vec![(SA, UCH), (BA, UCH), (UCH, UCH)])
    );
    // Two-step mixed-line path into BellasArtes.
    assert_eq!(eval("l2/l5", Term::Var, Term::Const(BA)), vec![(LH, BA)]);
}

#[test]
fn shape_var_const_with_inverses() {
    // ?x ^l5 Baquedano: stations reachable FROM Baquedano by l5 — i.e. an
    // l5 edge Baquedano -> x, read backwards. Only BellasArtes.
    assert_eq!(eval("^l5", Term::Var, Term::Const(BAQ)), vec![(BA, BAQ)]);
    // Mixed-direction concat into SantaAna: x -(l2|l5)-> m -^bus-> SA.
    // The inverse step m -^bus-> SA holds iff SA -bus-> m, so m = UCH;
    // but no l2/l5 edge enters UCH (it is only on l1 and bus). Empty.
    assert_eq!(eval("(l2|l5)/^bus", Term::Var, Term::Const(SA)), vec![]);
    // The satisfiable variant: x -l1-> m -^bus-> SA. Again m = UCH, and
    // the l1 edges into UCH come from Baquedano and LosHeroes.
    assert_eq!(
        eval("l1/^bus", Term::Var, Term::Const(SA)),
        sorted(vec![(BAQ, SA), (LH, SA)])
    );
}

// ---- shape (?s, E, ?o): both endpoints variable --------------------------

#[test]
fn shape_var_var() {
    // Every bus edge.
    assert_eq!(
        eval("bus", Term::Var, Term::Var),
        sorted(vec![(SA, UCH), (UCH, BA), (BA, SA)])
    );
    // The l2 line, both directions listed as separate edges.
    assert_eq!(
        eval("l2", Term::Var, Term::Var),
        sorted(vec![(LH, SA), (SA, LH)])
    );
    // bus∘bus: each stop two hops around the cycle.
    assert_eq!(
        eval("bus/bus", Term::Var, Term::Var),
        sorted(vec![(SA, BA), (UCH, SA), (BA, UCH)])
    );
}

#[test]
fn shape_var_var_with_inverses() {
    // ^bus is exactly the reversed bus relation.
    assert_eq!(
        eval("^bus", Term::Var, Term::Var),
        sorted(vec![(UCH, SA), (BA, UCH), (SA, BA)])
    );
    // The symmetric closure of bus relates every pair of bus stops (the
    // cycle is strongly connected and {SA, UCH, BA} are its nodes).
    let mut all_bus_pairs = Vec::new();
    for s in [SA, UCH, BA] {
        for o in [SA, UCH, BA] {
            all_bus_pairs.push((s, o));
        }
    }
    assert_eq!(
        eval("(bus|^bus)+", Term::Var, Term::Var),
        sorted(all_bus_pairs)
    );
    // Colleague-style 2RPQ: x and y depart the same station by l5
    // (x <-l5- m -l5-> y). l5 hubs: SA's l5-neighbour set {BA}, BA's
    // {SA, BAQ}, BAQ's {BA}. Pairs via m=SA: (BA,BA); via m=BA: (SA,SA),
    // (SA,BAQ), (BAQ,SA), (BAQ,BAQ); via m=BAQ: (BA,BA).
    assert_eq!(
        eval("^l5/l5", Term::Var, Term::Var),
        sorted(vec![(BA, BA), (SA, SA), (SA, BAQ), (BAQ, SA), (BAQ, BAQ)])
    );
}

// ---- the shapes are consistent with each other ---------------------------

/// Projecting the `(?s, E, ?o)` answer set onto a constant endpoint must
/// give exactly the `(s, E, ?o)` / `(?s, E, o)` answers, and membership
/// must match `(s, E, o)` — the §4.4 shapes are one relation viewed four
/// ways.
#[test]
fn shapes_are_projections_of_each_other() {
    let all_nodes = [SA, UCH, LH, BA, BAQ];
    for expr in [
        "l5+/bus",
        "(l1|l2|l5)+",
        "bus|^bus",
        "^l5/l5",
        "(^bus)+",
        "l1/^bus",
    ] {
        let var_var = eval(expr, Term::Var, Term::Var);
        for &c in &all_nodes {
            let const_var = eval(expr, Term::Const(c), Term::Var);
            let expected: Vec<(Id, Id)> =
                var_var.iter().copied().filter(|&(s, _)| s == c).collect();
            assert_eq!(const_var, expected, "(c, {expr}, ?o) projection for c={c}");

            let var_const = eval(expr, Term::Var, Term::Const(c));
            let expected: Vec<(Id, Id)> =
                var_var.iter().copied().filter(|&(_, o)| o == c).collect();
            assert_eq!(var_const, expected, "(?s, {expr}, o) projection for o={c}");
        }
        for &s in &all_nodes {
            for &o in &all_nodes {
                let hit = !eval(expr, Term::Const(s), Term::Const(o)).is_empty();
                assert_eq!(
                    hit,
                    var_var.contains(&(s, o)),
                    "(s={s}, {expr}, o={o}) existence"
                );
            }
        }
    }
}
