//! Cross-engine differential harness — the correctness backbone every
//! later performance PR regresses against.
//!
//! Every query engine in the workspace must produce the *same answer
//! set* on the same `(graph, query)` pair:
//!
//! * [`RpqEngine`] — the paper's ring traversal, in all four
//!   fast-path × node-pruning option combinations;
//! * `rpq_core::oracle::evaluate_naive` — the naive product-graph BFS,
//!   used as ground truth;
//! * the `baselines` engines over a shared [`AdjacencyIndex`]:
//!   [`NfaBfsEngine`] (Jena-like), [`SemiNaiveEngine`] (Virtuoso-like),
//!   [`BitParallelAdjEngine`] (Blazegraph-like), and [`RingEngine`]
//!   (the `PathEngine` adapter over the ring).
//!
//! Graphs come from `workload::graphgen` (Wikidata-shaped Zipf
//! predicates, skewed degrees) and queries from `workload::querygen`
//! (the paper's Table 1 pattern mix, including inverse steps), so the
//! harness exercises exactly the distribution the benchmarks run.

use baselines::{
    AdjacencyIndex, BitParallelAdjEngine, NfaBfsEngine, PathEngine, RingEngine, SemiNaiveEngine,
};
use ring::ring::RingOptions;
use ring::{Graph, Ring};
use rpq_core::oracle::evaluate_naive;
use rpq_core::{EngineOptions, RpqEngine, RpqQuery};
use std::sync::Arc;
use workload::{GraphGen, GraphGenConfig, QueryGen};

/// Intra-query thread counts the ring-engine matrix runs under.
/// Parallel expansion must be answer-invisible, so every count joins
/// the same oracle comparison. `RPQ_TEST_THREADS` (comma-separated)
/// overrides — the knob CI's parallel differential job turns.
fn test_threads() -> Vec<usize> {
    match std::env::var("RPQ_TEST_THREADS") {
        Ok(v) => v
            .split(',')
            .filter_map(|s| s.trim().parse::<usize>().ok())
            .filter(|&t| t > 0)
            .collect(),
        Err(_) => vec![1, 4],
    }
}

/// Runs every engine on one `(graph, query)` pair and asserts that all
/// of them reproduce the oracle's answer set exactly.
fn assert_all_engines_agree(
    graph: &Graph,
    ring: &Ring,
    idx: &Arc<AdjacencyIndex>,
    query: &RpqQuery,
    context: &str,
) {
    let expected = evaluate_naive(graph, query);

    // The ring engine, across its option matrix (including intra-query
    // parallelism, which must be invisible in the answers).
    let mut engine = RpqEngine::new(ring);
    for fast_paths in [false, true] {
        for node_pruning in [false, true] {
            for threads in test_threads() {
                let opts = EngineOptions {
                    fast_paths,
                    node_pruning,
                    intra_query_threads: threads,
                    parallel_min_frontier: if threads > 1 { 2 } else { 2048 },
                    ..Default::default()
                };
                let out = engine
                    .evaluate(query, &opts)
                    .unwrap_or_else(|e| panic!("{context}: ring engine failed: {e}"));
                assert!(
                    !out.truncated && !out.timed_out,
                    "{context}: ring engine hit limits unexpectedly"
                );
                assert_eq!(
                    out.sorted_pairs(),
                    expected,
                    "{context}: ring engine (fast_paths={fast_paths}, \
                     node_pruning={node_pruning}, threads={threads}) \
                     disagrees with oracle on {query:?}"
                );
            }
        }
    }

    // The baseline engines, through the uniform PathEngine interface.
    let mut ring_adapter = RingEngine::new(ring);
    let mut nfa_bfs = NfaBfsEngine::new(Arc::clone(idx));
    let mut seminaive = SemiNaiveEngine::new(Arc::clone(idx));
    let mut bitparallel = BitParallelAdjEngine::new(Arc::clone(idx));
    let mut engines: Vec<&mut dyn PathEngine> = vec![
        &mut ring_adapter,
        &mut nfa_bfs,
        &mut seminaive,
        &mut bitparallel,
    ];
    let opts = EngineOptions::default();
    for engine in &mut engines {
        let out = engine
            .run(query, &opts)
            .unwrap_or_else(|e| panic!("{context}: {} failed: {e}", engine.name()));
        assert!(
            !out.truncated && !out.timed_out,
            "{context}: {} hit limits unexpectedly",
            engine.name()
        );
        assert_eq!(
            out.sorted_pairs(),
            expected,
            "{context}: {} disagrees with oracle on {query:?}",
            engine.name()
        );
    }
}

/// Builds the shared indices for one graph and drives a query log
/// through every engine. Returns the number of `(graph, query)` pairs
/// checked.
fn run_differential(graph: &Graph, queries: &[RpqQuery], label: &str) -> usize {
    let ring = Ring::build(graph, RingOptions::default());
    let idx = Arc::new(AdjacencyIndex::from_graph(graph));
    for (i, query) in queries.iter().enumerate() {
        let context = format!("{label}, query #{i}");
        assert_all_engines_agree(graph, &ring, &idx, query, &context);
    }
    queries.len()
}

/// The main harness: Wikidata-shaped graphs of several sizes and
/// skews, each queried with the full Table 1 pattern mix (one
/// instantiation per pattern, 20 patterns). Four graphs × 20 queries =
/// 80 differential pairs, comfortably above the 50-pair floor.
#[test]
fn all_engines_agree_on_generated_workloads() {
    let configs = [
        // (n_nodes, n_preds, n_edges, pred_zipf, node_skew, seed)
        (12u64, 3u64, 40usize, 1.0, 0.8, 0xA1),
        (24, 4, 110, 1.2, 1.0, 0xB2),
        (32, 6, 160, 1.5, 0.6, 0xC3),
        (20, 5, 90, 0.8, 1.4, 0xD4),
    ];
    let mut pairs = 0usize;
    for (n_nodes, n_preds, n_edges, pred_zipf, node_skew, seed) in configs {
        let graph = GraphGen::new(GraphGenConfig {
            n_nodes,
            n_preds,
            n_edges,
            pred_zipf,
            node_skew,
            seed,
        })
        .generate();
        let queries: Vec<RpqQuery> = QueryGen::new(&graph, seed ^ 0x5EED)
            .scaled_log(0.0) // one instantiation of each Table 1 pattern
            .into_iter()
            .map(|gq| gq.query)
            .collect();
        assert_eq!(queries.len(), 20, "Table 1 has 20 patterns");
        let label = format!("graph(seed={seed:#x}, n={n_nodes}, e={n_edges})");
        pairs += run_differential(&graph, &queries, &label);
    }
    assert!(
        pairs >= 50,
        "only {pairs} differential pairs were exercised"
    );
}

/// Degenerate graphs stress boundary handling: a single edge, a single
/// self-loop, one node with parallel edges of every predicate, and a
/// dense tiny clique.
#[test]
fn all_engines_agree_on_degenerate_graphs() {
    use ring::Triple;
    let graphs = vec![
        ("single-edge", Graph::new(vec![Triple::new(0, 0, 1)], 2, 1)),
        ("self-loop", Graph::new(vec![Triple::new(0, 0, 0)], 1, 1)),
        (
            "parallel-preds",
            Graph::new((0..4).map(|p| Triple::new(0, p, 1)).collect(), 2, 4),
        ),
        (
            "tiny-clique",
            Graph::new(
                {
                    let mut ts: Vec<Triple> = Vec::new();
                    for s in 0..3 {
                        for o in 0..3 {
                            ts.push(Triple::new(s, 0, o));
                            ts.push(Triple::new(s, 1, o));
                        }
                    }
                    ts.sort_unstable();
                    ts.dedup();
                    ts
                },
                3,
                2,
            ),
        ),
    ];
    for (name, graph) in &graphs {
        let queries: Vec<RpqQuery> = QueryGen::new(graph, 7)
            .scaled_log(0.0)
            .into_iter()
            .map(|gq| gq.query)
            .collect();
        run_differential(graph, &queries, name);
    }
}

/// Concurrent reads: N threads hammer one shared [`Ring`] with the full
/// mixed query-shape log, each with its own engine (the ring itself is
/// immutable and `Sync`; the per-query mask tables are thread-local).
/// Every thread must reproduce the sequential oracle exactly — the
/// correctness contract the `rpq-server` worker pool relies on.
#[test]
fn concurrent_readers_match_sequential_oracle() {
    const THREADS: usize = 8;
    let graph = GraphGen::new(GraphGenConfig {
        n_nodes: 40,
        n_preds: 5,
        n_edges: 200,
        pred_zipf: 1.1,
        node_skew: 0.9,
        seed: 0xC0C0,
    })
    .generate();
    let ring = Ring::build(&graph, RingOptions::default());
    // Three instantiations of each Table 1 pattern: 60 mixed queries.
    let queries: Vec<RpqQuery> = [7u64, 8, 9]
        .into_iter()
        .flat_map(|seed| {
            QueryGen::new(&graph, seed)
                .scaled_log(0.0)
                .into_iter()
                .map(|gq| gq.query)
        })
        .collect();
    assert_eq!(queries.len(), 60);

    let expected: Vec<Vec<(u64, u64)>> =
        queries.iter().map(|q| evaluate_naive(&graph, q)).collect();

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (ring, queries, expected) = (&ring, &queries, &expected);
            scope.spawn(move || {
                let mut engine = RpqEngine::new(ring);
                // Each thread stresses a different option combination.
                let opts = EngineOptions {
                    fast_paths: t % 2 == 0,
                    node_pruning: (t / 2) % 2 == 0,
                    ..Default::default()
                };
                // Offset the starting point so threads touch the ring in
                // different orders at any instant.
                for i in 0..queries.len() {
                    let i = (i + t * 7) % queries.len();
                    let out = engine
                        .evaluate(&queries[i], &opts)
                        .unwrap_or_else(|e| panic!("thread {t}, query #{i}: {e}"));
                    assert_eq!(
                        out.sorted_pairs(),
                        expected[i],
                        "thread {t} disagrees with the sequential oracle on query #{i}"
                    );
                }
            });
        }
    });
}

/// The paper's own metro graph under the Table 1 mix, several seeds
/// deep — the worked example the figures trace must stay differential-
/// clean as the engine evolves.
#[test]
fn all_engines_agree_on_metro_graph() {
    let graph = workload::metro::metro();
    for seed in [1u64, 2, 3] {
        let queries: Vec<RpqQuery> = QueryGen::new(&graph, seed)
            .scaled_log(0.0)
            .into_iter()
            .map(|gq| gq.query)
            .collect();
        run_differential(&graph, &queries, &format!("metro(seed={seed})"));
    }
}
