//! The rare-label split strategy must compute exactly the same answer set
//! as the default engine on arbitrary `E1/p/E2` expressions.

use automata::Regex;
use proptest::prelude::*;
use ring::ring::RingOptions;
use ring::{Graph, Ring, Triple};
use rpq_core::split::{best_split, evaluate_split, split_candidates};
use rpq_core::{EngineOptions, RpqEngine, RpqQuery, Term};

const N_NODES: u64 = 8;
const N_PREDS: u64 = 3;

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..N_NODES, 0..N_PREDS, 0..N_NODES), 1..40).prop_map(|raw| {
        Graph::new(
            raw.into_iter()
                .map(|(s, p, o)| Triple::new(s, p, o))
                .collect(),
            N_NODES,
            N_PREDS,
        )
    })
}

/// Side expressions: closures/alternations over the completed alphabet.
fn arb_side() -> impl Strategy<Value = Regex> {
    let leaf = (0u64..2 * N_PREDS).prop_map(Regex::label);
    leaf.prop_recursive(2, 6, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::alt(a, b)),
            inner.clone().prop_map(|a| Regex::Star(Box::new(a))),
            inner.clone().prop_map(|a| Regex::Plus(Box::new(a))),
            inner.prop_map(|a| Regex::Opt(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn split_equals_engine(
        g in arb_graph(),
        prefix in arb_side(),
        label in 0..N_PREDS,
        suffix in arb_side(),
        use_eps_prefix in any::<bool>(),
        use_eps_suffix in any::<bool>(),
    ) {
        let prefix = if use_eps_prefix { Regex::Epsilon } else { prefix };
        let suffix = if use_eps_suffix { Regex::Epsilon } else { suffix };
        let full = Regex::concat(Regex::concat(prefix.clone(), Regex::label(label)), suffix.clone());
        let ring = Ring::build(&g, RingOptions::default());
        let opts = EngineOptions::default();

        let split = best_split(&ring, &full).expect("a concat with a literal must split");
        let via_split = evaluate_split(&ring, &split, &opts).unwrap();
        let direct = RpqEngine::new(&ring)
            .evaluate(&RpqQuery::new(Term::Var, full.clone(), Term::Var), &opts)
            .unwrap();
        prop_assert_eq!(
            via_split.sorted_pairs(),
            direct.sorted_pairs(),
            "split {:?} on {}", split.label, full
        );
    }

    #[test]
    fn candidates_cover_every_literal_factor(
        parts in prop::collection::vec(
            prop_oneof![
                (0u64..N_PREDS).prop_map(Regex::label),
                (0u64..N_PREDS).prop_map(|l| Regex::Star(Box::new(Regex::label(l)))),
            ],
            1..6,
        )
    ) {
        let expr = parts.clone().into_iter().reduce(Regex::concat).unwrap();
        let expected = parts.iter().filter(|p| matches!(p, Regex::Literal(_))).count();
        prop_assert_eq!(split_candidates(&expr).len(), expected);
    }
}
