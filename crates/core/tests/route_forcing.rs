//! Route-forcing differential suite: every [`EvalRoute`] must produce
//! byte-identical sorted answers on the same query corpus, and the
//! explained plan must equal the executed one — the acceptance tests of
//! the unified cost-based planner.
//!
//! Forcing uses [`EngineOptions::forced_route`]; an infeasible forcing
//! (fast path on a non-§5 shape, split on an anchored query, …) falls
//! back to the natural choice, so *answers* must match the oracle for
//! every `(query, forcing)` combination unconditionally, while route
//! assertions apply where feasibility is known by construction.

use automata::Regex;
use ring::ring::RingOptions;
use ring::{Graph, Ring, Triple};
use rpq_core::oracle::evaluate_naive;
use rpq_core::planner::{self, Direction};
use rpq_core::stats::RingStatistics;
use rpq_core::{EngineOptions, EvalRoute, PreparedQuery, RpqEngine, RpqQuery, Term};
use workload::{GraphGen, GraphGenConfig, QueryGen};

fn star(l: u64) -> Regex {
    Regex::Star(Box::new(Regex::label(l)))
}

/// A small Wikidata-shaped graph (Zipf predicates, skewed degrees).
fn workload_graph(seed: u64) -> Graph {
    GraphGen::new(GraphGenConfig {
        n_nodes: 30,
        n_preds: 4,
        n_edges: 140,
        pred_zipf: 1.2,
        node_skew: 0.8,
        seed,
    })
    .generate()
}

/// A graph with one rare label (1) between two dense closures — the
/// split route's natural habitat.
fn rare_label_graph() -> Graph {
    let mut triples = vec![Triple::new(6, 1, 9)];
    for i in 0..14 {
        triples.push(Triple::new(i, 0, (i + 1) % 16));
        triples.push(Triple::new((i + 2) % 16, 2, (i + 5) % 16));
    }
    Graph::from_triples(triples)
}

/// The corpus: Table 1 pattern instantiations plus hand-built queries
/// that make each route's feasibility unambiguous.
fn corpus(graph: &Graph, seed: u64) -> Vec<RpqQuery> {
    let mut queries: Vec<RpqQuery> = QueryGen::new(graph, seed)
        .scaled_log(0.0) // one query per Table 1 pattern
        .into_iter()
        .map(|gq| gq.query)
        .collect();
    // The canonical splittable shape, all four endpoint combinations.
    let split_expr = Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2));
    for (s, o) in [
        (Term::Var, Term::Var),
        (Term::Const(6), Term::Var),
        (Term::Var, Term::Const(9)),
        (Term::Const(6), Term::Const(9)),
    ] {
        queries.push(RpqQuery::new(s, split_expr.clone(), o));
    }
    // Multi-factor concatenation: several split candidates.
    queries.push(RpqQuery::new(
        Term::Var,
        Regex::concat(
            Regex::concat(Regex::label(0), star(2)),
            Regex::concat(Regex::label(1), Regex::Opt(Box::new(Regex::label(0)))),
        ),
        Term::Var,
    ));
    // An inverse-step split: ^a*/b/(c|^c)* over the completed alphabet
    // (inverse of base label l is l + n_preds).
    let n_base = graph.n_preds();
    queries.push(RpqQuery::new(
        Term::Var,
        Regex::concat(
            Regex::concat(star(n_base), Regex::label(1)),
            Regex::Star(Box::new(Regex::alt(
                Regex::label(2),
                Regex::label(2 + n_base),
            ))),
        ),
        Term::Var,
    ));
    queries
}

#[test]
fn every_forced_route_matches_the_oracle() {
    let mut checked = 0usize;
    for (graph, seed) in [
        (workload_graph(0xA11CE), 7),
        (workload_graph(0xB0B), 8),
        (rare_label_graph(), 9),
    ] {
        let ring = Ring::build(&graph, RingOptions::default());
        let mut engine = RpqEngine::new(&ring);
        for query in corpus(&graph, seed) {
            let expected = evaluate_naive(&graph, &query);
            for forced in EvalRoute::ALL {
                let opts = EngineOptions {
                    forced_route: Some(forced),
                    ..EngineOptions::default()
                };
                let out = engine
                    .evaluate(&query, &opts)
                    .unwrap_or_else(|e| panic!("forcing {forced:?} on {query:?}: {e}"));
                assert!(
                    !out.truncated && !out.timed_out && !out.budget_exhausted,
                    "forced {forced:?} hit limits unexpectedly on {query:?}"
                );
                assert_eq!(
                    out.sorted_pairs(),
                    expected,
                    "forced {forced:?} disagrees with the oracle on {query:?}"
                );
                // The executed plan is recorded; when the forcing was
                // feasible it must have been obeyed.
                let plan = out.plan.expect("engine outputs carry their plan");
                let prepared = PreparedQuery::compile(
                    &query.expr,
                    &|l| ring.inverse_label(l),
                    opts.bp_split_width,
                )
                .unwrap();
                if planner::route_is_feasible(
                    &RingStatistics::new(&ring),
                    forced,
                    &prepared,
                    query.subject,
                    query.object,
                ) {
                    assert_eq!(plan.route, forced, "feasible forcing ignored on {query:?}");
                } else {
                    assert_ne!(plan.route, forced);
                }
                checked += 1;
            }
        }
    }
    assert!(checked >= 300, "corpus shrank: only {checked} combinations");
}

/// The acceptance criterion: for every corpus query, the explained
/// route/direction/split equals the route/direction/split actually
/// executed (both sides consult the one planner, but this pins the
/// contract against future divergence).
#[test]
fn explain_equals_execution_for_the_whole_corpus() {
    for (graph, seed) in [(workload_graph(0xCAFE), 21), (rare_label_graph(), 22)] {
        let ring = Ring::build(&graph, RingOptions::default());
        let mut engine = RpqEngine::new(&ring);
        for fast_paths in [false, true] {
            let opts = EngineOptions {
                fast_paths,
                ..EngineOptions::default()
            };
            for query in corpus(&graph, seed) {
                let explained = rpq_core::explain::explain_with(&ring, &query, &opts).unwrap();
                let out = engine.evaluate(&query, &opts).unwrap();
                let executed = out.plan.expect("engine outputs carry their plan");
                assert_eq!(
                    explained.plan.route, executed.route,
                    "explain/execute route divergence on {query:?} (fast_paths={fast_paths})"
                );
                assert_eq!(
                    explained.plan.direction, executed.direction,
                    "explain/execute direction divergence on {query:?}"
                );
                assert_eq!(
                    explained.plan.split_label(),
                    executed.split_label(),
                    "explain/execute split divergence on {query:?}"
                );
                assert_eq!(explained.plan.estimated_cost, executed.estimated_cost);
            }
        }
    }
}

/// `EvalRoute::Split` must be reachable *naturally* (no forcing) from
/// both public evaluation entry points, and carry the §4.3-chosen split.
#[test]
fn split_route_is_reachable_from_evaluate_and_evaluate_prepared() {
    let graph = rare_label_graph();
    let ring = Ring::build(&graph, RingOptions::default());
    let expr = Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2));
    let query = RpqQuery::new(Term::Var, expr.clone(), Term::Var);
    let expected = evaluate_naive(&graph, &query);
    assert!(!expected.is_empty(), "fixture must have answers");
    let opts = EngineOptions::default();

    // Natural planning picks the split (the whole point of the fixture).
    let stats = RingStatistics::new(&ring);
    let prepared = PreparedQuery::compile(&expr, &|l| ring.inverse_label(l), 8).unwrap();
    let plan = planner::plan(&stats, &prepared, Term::Var, Term::Var, &opts);
    assert_eq!(plan.route, EvalRoute::Split);
    assert_eq!(plan.split_label(), Some(1));
    assert_eq!(plan.direction, None);

    // Entry point 1: evaluate (compiles internally).
    let mut engine = RpqEngine::new(&ring);
    let out = engine.evaluate(&query, &opts).unwrap();
    assert_eq!(out.plan.as_ref().unwrap().route, EvalRoute::Split);
    assert_eq!(out.sorted_pairs(), expected);

    // Entry point 2: evaluate_prepared (the server's path).
    let out = engine
        .evaluate_prepared(&prepared, Term::Var, Term::Var, &opts)
        .unwrap();
    assert_eq!(out.plan.as_ref().unwrap().route, EvalRoute::Split);
    assert_eq!(out.sorted_pairs(), expected);
}

/// Budgets apply cumulatively across a split's sub-queries: a node
/// budget far below the work needed must surface as `budget_exhausted`,
/// and a generous one must not.
#[test]
fn split_honors_cumulative_budgets() {
    let graph = rare_label_graph();
    let ring = Ring::build(&graph, RingOptions::default());
    let expr = Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2));
    let query = RpqQuery::new(Term::Var, expr, Term::Var);
    let mut engine = RpqEngine::new(&ring);

    let opts = EngineOptions {
        forced_route: Some(EvalRoute::Split),
        node_budget: Some(3),
        ..EngineOptions::default()
    };
    let out = engine.evaluate(&query, &opts).unwrap();
    assert_eq!(out.plan.as_ref().unwrap().route, EvalRoute::Split);
    assert!(out.budget_exhausted, "a 3-node budget cannot finish");

    let opts = EngineOptions {
        forced_route: Some(EvalRoute::Split),
        node_budget: Some(1_000_000),
        ..EngineOptions::default()
    };
    let out = engine.evaluate(&query, &opts).unwrap();
    assert!(!out.budget_exhausted);
    assert_eq!(out.sorted_pairs(), evaluate_naive(&graph, &query));
}

/// Direction choices surface in the plan and flip with the statistics:
/// a constant-to-constant query starts from the endpoint with the
/// cheaper anchored expansion.
#[test]
fn const_const_direction_follows_anchored_costs() {
    // 20 edges into node 1 (label 0), one edge out of node 0 (label 0):
    // for (0, a/a, 1) the object side is the expensive anchor.
    let mut triples = vec![Triple::new(0, 0, 2), Triple::new(2, 0, 1)];
    for i in 3..23 {
        triples.push(Triple::new(i, 0, 1));
    }
    let graph = Graph::from_triples(triples);
    let ring = Ring::build(&graph, RingOptions::default());
    // a/a is a §5 Concat2 shape; disable fast paths to exercise the
    // bit-parallel existence check.
    let opts = EngineOptions {
        fast_paths: false,
        ..EngineOptions::default()
    };
    let q = RpqQuery::new(
        Term::Const(0),
        Regex::concat(Regex::label(0), Regex::label(0)),
        Term::Const(1),
    );
    let out = RpqEngine::new(&ring).evaluate(&q, &opts).unwrap();
    let plan = out.plan.clone().unwrap();
    assert_eq!(plan.route, EvalRoute::BitParallel);
    assert_eq!(
        plan.direction,
        Some(Direction::FromSubject),
        "the 1-edge subject side must win over the 21-in-edge object side"
    );
    assert_eq!(out.sorted_pairs(), vec![(0, 1)]);
    // And the mirrored query (a/^a, costs tied at 1) keeps the default
    // object-side start.
    let q = RpqQuery::new(
        Term::Const(3),
        Regex::concat(Regex::label(0), Regex::label(1)),
        Term::Const(2),
    );
    let out = RpqEngine::new(&ring).evaluate(&q, &opts).unwrap();
    assert_eq!(out.plan.unwrap().direction, Some(Direction::FromObject));
}
