//! The [`TripleSource`] abstraction: what the engine evaluates against —
//! an immutable ring alone, or a ring plus a committed [`DeltaIndex`]
//! overlay (live updates). [`MergedView`] is the step-level merge: every
//! expansion primitive the evaluation routes use (backward step by
//! predicate, per-label source enumeration, node existence, edge
//! membership) answered as *ring results minus tombstones plus delta
//! adds*, so deletes mask ring edges during traversal and adds extend
//! it, triple by triple.
//!
//! When the delta is empty every route runs the unmodified succinct hot
//! path — the overlay costs nothing until the first commit.
//!
//! Horizontal sharding rides the same seam: a [`ShardedSource`] exposes
//! its partition as [`ShardPart`]s, and every [`MergedView`] primitive
//! scatter-gathers the extra shards after the base ring — results stay
//! sorted-distinct, so merged traversal orders (and therefore answers,
//! traces, and truncation points) are independent of how the triples
//! were partitioned.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ring::delta::DeltaIndex;
use ring::store::StoreSnapshot;
use ring::{Id, Ring};

/// One shard of a horizontally partitioned source: its sub-ring plus a
/// relaxed probe counter (how many scatter-gather primitives actually
/// consulted this shard's data — predicate routing skips shards whose
/// alphabet slice is empty for the probed label).
#[derive(Debug)]
pub struct ShardPart {
    /// The shard's sub-ring, built over its triple partition with the
    /// **global** node/predicate universes (so labels and ids agree
    /// across shards).
    pub ring: Arc<Ring>,
    /// Primitives answered by this shard's data (Relaxed; a live gauge
    /// feed for per-shard serving metrics).
    pub probes: AtomicU64,
}

impl ShardPart {
    /// Wraps one sub-ring as a shard part with a zeroed probe counter.
    pub fn new(ring: Arc<Ring>) -> Self {
        Self {
            ring,
            probes: AtomicU64::new(0),
        }
    }

    /// Probes answered so far.
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }

    fn note_probe(&self) {
        self.probes.fetch_add(1, Ordering::Relaxed);
    }
}

/// A source of triples to evaluate against: the immutable ring plus an
/// optional committed delta overlay.
pub trait TripleSource {
    /// The succinct base index.
    fn ring(&self) -> &Ring;
    /// The committed overlay, if this source has (non-empty) live
    /// updates. `None` selects the pure succinct hot path.
    fn delta(&self) -> Option<&DeltaIndex> {
        None
    }
    /// The shard partition of a horizontally sharded source. Empty for
    /// single-ring sources (the pure hot path); when non-empty it has at
    /// least two parts and `shard_parts()[0].ring` is the same ring
    /// [`TripleSource::ring`] returns.
    fn shard_parts(&self) -> &[ShardPart] {
        &[]
    }
}

impl TripleSource for Ring {
    fn ring(&self) -> &Ring {
        self
    }
}

impl TripleSource for StoreSnapshot {
    fn ring(&self) -> &Ring {
        &self.ring
    }

    fn delta(&self) -> Option<&DeltaIndex> {
        (!self.delta.is_empty()).then_some(&*self.delta)
    }
}

/// A shareable, epoch-stamped evaluation snapshot — what a serving layer
/// captures at submit time and holds for the whole evaluation. Cheap to
/// clone; immutable once published.
#[derive(Clone, Debug)]
pub struct SourceSnapshot {
    /// The snapshot version (0 for immutable sources; bumped by every
    /// commit/compaction of an updatable source).
    pub epoch: u64,
    /// The succinct base index (shard 0's ring for sharded sources).
    pub ring: Arc<Ring>,
    /// The committed overlay, if any (never present together with
    /// shards: sharded sources are immutable).
    pub delta: Option<Arc<DeltaIndex>>,
    /// The shard partition (empty for single-ring sources).
    pub shards: Arc<[ShardPart]>,
}

fn no_shards() -> Arc<[ShardPart]> {
    Arc::from(Vec::new())
}

impl SourceSnapshot {
    /// A snapshot of an immutable ring (epoch 0, no overlay).
    pub fn immutable(ring: Arc<Ring>) -> Self {
        Self {
            epoch: 0,
            ring,
            delta: None,
            shards: no_shards(),
        }
    }

    /// The snapshot of an updatable store.
    pub fn from_store(snap: &StoreSnapshot) -> Self {
        Self {
            epoch: snap.epoch,
            ring: Arc::clone(&snap.ring),
            delta: (!snap.delta.is_empty()).then(|| Arc::clone(&snap.delta)),
            shards: no_shards(),
        }
    }

    /// The snapshot of a sharded source (epoch 0 — sharded sources are
    /// immutable). With fewer than two parts this degenerates to
    /// [`SourceSnapshot::immutable`] over the single ring.
    pub fn sharded(parts: Arc<[ShardPart]>) -> Self {
        assert!(!parts.is_empty(), "a sharded snapshot needs >= 1 part");
        Self {
            epoch: 0,
            ring: Arc::clone(&parts[0].ring),
            delta: None,
            shards: if parts.len() > 1 { parts } else { no_shards() },
        }
    }

    /// The evaluation node universe (ring nodes plus delta nodes; shards
    /// share the global universe by construction).
    pub fn n_nodes(&self) -> Id {
        let shard_max = self.shards.iter().map(|p| p.ring.n_nodes()).max();
        self.ring
            .n_nodes()
            .max(self.delta.as_ref().map_or(0, |d| d.n_nodes()))
            .max(shard_max.unwrap_or(0))
    }
}

impl TripleSource for SourceSnapshot {
    fn ring(&self) -> &Ring {
        &self.ring
    }

    fn delta(&self) -> Option<&DeltaIndex> {
        self.delta.as_deref().filter(|d| !d.is_empty())
    }

    fn shard_parts(&self) -> &[ShardPart] {
        &self.shards
    }
}

/// An immutable horizontally sharded source: one sub-ring per shard,
/// evaluated by scatter-gathering every [`MergedView`] primitive across
/// the parts. A single-part source degenerates to the pure (unsharded)
/// hot path.
#[derive(Clone, Debug)]
pub struct ShardedSource {
    parts: Arc<[ShardPart]>,
}

impl ShardedSource {
    /// Wraps the shard sub-rings. Every ring must share the global
    /// node/predicate universes (as `ring::sharded::ShardedIndex`-built
    /// ones do).
    pub fn new(rings: Vec<Arc<Ring>>) -> Self {
        assert!(!rings.is_empty(), "a sharded source needs >= 1 ring");
        let parts: Vec<ShardPart> = rings.into_iter().map(ShardPart::new).collect();
        Self {
            parts: Arc::from(parts),
        }
    }

    /// Wraps pre-built shard parts (at least one).
    pub fn from_parts(parts: Arc<[ShardPart]>) -> Self {
        assert!(!parts.is_empty(), "a sharded source needs >= 1 part");
        Self { parts }
    }

    /// The shard parts, including part 0.
    pub fn parts(&self) -> &Arc<[ShardPart]> {
        &self.parts
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.parts.len()
    }

    /// Total indexed triples across the partition (completed graph G↔).
    pub fn n_triples(&self) -> usize {
        self.parts.iter().map(|p| p.ring.n_triples()).sum()
    }

    /// An epoch-0 snapshot sharing these parts (and their probe
    /// counters).
    pub fn snapshot(&self) -> SourceSnapshot {
        SourceSnapshot::sharded(Arc::clone(&self.parts))
    }
}

impl TripleSource for ShardedSource {
    fn ring(&self) -> &Ring {
        &self.parts[0].ring
    }

    fn shard_parts(&self) -> &[ShardPart] {
        if self.parts.len() > 1 {
            &self.parts
        } else {
            &[]
        }
    }
}

/// The step-level merge of a ring and its delta — or of a shard
/// partition. All label arguments are from the **completed** alphabet
/// `Σ↔` (the delta canonicalizes internally); all node enumerations come
/// back **sorted ascending and distinct**, which also makes merged
/// traversal orders deterministic (and, for shards, independent of the
/// partitioning).
///
/// A delta and shards never co-occur: sharded sources are immutable. The
/// base-ring portion of every primitive is byte-for-byte the single-ring
/// code; shard contributions are appended afterwards and re-sorted.
#[derive(Clone, Copy)]
pub struct MergedView<'a> {
    /// The succinct base index (shard 0's ring when sharded).
    pub ring: &'a Ring,
    /// The committed overlay (`None` = pure ring semantics).
    pub delta: Option<&'a DeltaIndex>,
    /// All shard parts of a sharded source (empty = unsharded; when
    /// non-empty, `shards[0].ring` is the ring `ring` points at and the
    /// primitives gather `shards[1..]` after the base code runs).
    pub shards: &'a [ShardPart],
}

impl<'a> MergedView<'a> {
    /// A view over a source (delta present only when non-empty).
    pub fn new(source: &'a (impl TripleSource + ?Sized)) -> Self {
        Self {
            ring: source.ring(),
            delta: source.delta().filter(|d| !d.is_empty()),
            shards: source.shard_parts(),
        }
    }

    /// A delta-free view (pure ring semantics).
    pub fn ring_only(ring: &'a Ring) -> Self {
        Self {
            ring,
            delta: None,
            shards: &[],
        }
    }

    /// Builds a view from already-split parts (unsharded).
    pub fn from_parts(ring: &'a Ring, delta: Option<&'a DeltaIndex>) -> Self {
        Self {
            ring,
            delta: delta.filter(|d| !d.is_empty()),
            shards: &[],
        }
    }

    /// Builds a view over a shard partition (`shards[0].ring` must be
    /// `ring`; pass the full part list or an empty slice).
    pub fn with_shards(
        ring: &'a Ring,
        delta: Option<&'a DeltaIndex>,
        shards: &'a [ShardPart],
    ) -> Self {
        debug_assert!(
            shards.is_empty() || std::ptr::eq(&*shards[0].ring, ring),
            "shards[0] must be the view's base ring"
        );
        debug_assert!(
            shards.is_empty() || delta.is_none(),
            "sharded sources are immutable"
        );
        Self {
            ring,
            delta: delta.filter(|d| !d.is_empty()),
            shards,
        }
    }

    /// Whether this view merges more than the base ring's own data.
    pub fn layered(&self) -> bool {
        self.delta.is_some() || !self.shards.is_empty()
    }

    /// The extra shard parts past the base ring (empty when unsharded).
    fn extra_shards(&self) -> &'a [ShardPart] {
        if self.shards.is_empty() {
            &[]
        } else {
            &self.shards[1..]
        }
    }

    /// Counts a probe against shard 0 when the view is sharded.
    fn note_base_probe(&self) {
        if let Some(base) = self.shards.first() {
            base.note_probe();
        }
    }

    /// The evaluation node universe.
    pub fn n_nodes(&self) -> Id {
        let shard_max = self.shards.iter().map(|p| p.ring.n_nodes()).max();
        self.ring
            .n_nodes()
            .max(self.delta.map_or(0, |d| d.n_nodes()))
            .max(shard_max.unwrap_or(0))
    }

    /// Whether `v` has at least one live edge (completed-graph
    /// incidence: in the completed graph a node's subject block already
    /// covers both directions).
    pub fn node_exists(&self, v: Id) -> bool {
        let ring_incidence = if v < self.ring.n_nodes() {
            let (b, e) = self.ring.subject_range(v);
            e - b
        } else {
            0
        };
        if !self.shards.is_empty() {
            self.note_base_probe();
            if ring_incidence > 0 {
                return true;
            }
            return self.extra_shards().iter().any(|part| {
                part.note_probe();
                let r = &part.ring;
                if v < r.n_nodes() {
                    let (b, e) = r.subject_range(v);
                    e > b
                } else {
                    false
                }
            });
        }
        match self.delta {
            None => ring_incidence > 0,
            Some(d) => ring_incidence + d.added_incidence(v) > d.deleted_incidence(v),
        }
    }

    /// Whether the completed-alphabet edge `(s, p, o)` is live.
    pub fn has_edge(&self, s: Id, p: Id, o: Id) -> bool {
        if let Some(d) = self.delta {
            if d.del_contains(s, p, o) {
                return false;
            }
            if d.add_contains(s, p, o) {
                return true;
            }
        }
        if self.ring.contains(s, p, o) {
            if !self.shards.is_empty() {
                self.note_base_probe();
            }
            return true;
        }
        if !self.shards.is_empty() {
            self.note_base_probe();
            for part in self.extra_shards() {
                // Predicate routing: a shard with no `p` edges at all
                // cannot hold this one.
                let (pb, pe) = part.ring.pred_range(p);
                if pe == pb {
                    continue;
                }
                part.note_probe();
                if part.ring.contains(s, p, o) {
                    return true;
                }
            }
        }
        false
    }

    /// Replaces `out` with the distinct subjects of live edges
    /// `(s, p, o)` — one merged backward step by predicate into object
    /// `o`: ring subjects (tombstoned edges masked) plus delta adds,
    /// sorted ascending.
    pub fn subjects_into(&self, o: Id, p: Id, out: &mut Vec<Id>) {
        out.clear();
        if o < self.ring.n_nodes() {
            let r = self
                .ring
                .backward_step_by_pred(self.ring.object_range(o), p);
            self.ring
                .l_s()
                .range_distinct(r.0, r.1, &mut |s, _, _| out.push(s));
            out.sort_unstable();
            if let Some(d) = self.delta {
                if d.del_count_into(o, p) > 0 {
                    out.retain(|&s| !d.del_contains(s, p, o));
                }
            }
        }
        if let Some(d) = self.delta {
            let ring_len = out.len();
            d.added_into(o, p, out);
            if out.len() > ring_len {
                out.sort_unstable();
                out.dedup();
            }
        }
        if !self.shards.is_empty() {
            self.note_base_probe();
            let base_len = out.len();
            for part in self.extra_shards() {
                let r = &part.ring;
                let (pb, pe) = r.pred_range(p);
                if pe == pb {
                    continue;
                }
                part.note_probe();
                if o < r.n_nodes() {
                    let range = r.backward_step_by_pred(r.object_range(o), p);
                    r.l_s()
                        .range_distinct(range.0, range.1, &mut |s, _, _| out.push(s));
                }
            }
            if out.len() > base_len {
                out.sort_unstable();
                out.dedup();
            }
        }
    }

    /// Replaces `out` with the distinct subjects that have at least one
    /// live edge labeled `p`, sorted ascending. A ring subject whose
    /// every `p`-edge is tombstoned is excluded.
    pub fn subjects_of_pred(&self, p: Id, out: &mut Vec<Id>) {
        out.clear();
        let (b, e) = self.ring.pred_range(p);
        self.ring
            .l_s()
            .range_distinct(b, e, &mut |s, _, _| out.push(s));
        out.sort_unstable();
        if let Some(d) = self.delta {
            if d.del_count_label(p) > 0 {
                out.retain(|&s| {
                    // Cheap delta probe first: only tombstoned subjects
                    // pay the two wavelet ranks.
                    let deleted = d.del_count_from(s, p);
                    if deleted == 0 {
                        return true;
                    }
                    let ring_count = self.ring.l_s().rank(s, e) - self.ring.l_s().rank(s, b);
                    ring_count > deleted
                });
            }
            let ring_len = out.len();
            d.added_sources(p, out);
            if out.len() > ring_len {
                out.sort_unstable();
                out.dedup();
            }
        }
        if !self.shards.is_empty() {
            self.note_base_probe();
            let base_len = out.len();
            for part in self.extra_shards() {
                let r = &part.ring;
                let (pb, pe) = r.pred_range(p);
                if pe == pb {
                    continue;
                }
                part.note_probe();
                r.l_s().range_distinct(pb, pe, &mut |s, _, _| out.push(s));
            }
            if out.len() > base_len {
                // A subject can source `p` edges in several shards
                // (subject-range splits of skewed predicates put its
                // in-edges — hence its `p̂` sources — wherever the other
                // endpoint lives), so gathers dedup.
                out.sort_unstable();
                out.dedup();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring::ring::RingOptions;
    use ring::{Graph, Triple};

    fn t(s: Id, p: Id, o: Id) -> Triple {
        Triple::new(s, p, o)
    }

    /// 0 -a-> 1 -a-> 2, 2 -b-> 0; delta deletes (1,a,2), adds (0,a,2)
    /// and (4,b,0) (node 4 is delta-only).
    fn fixture() -> (Ring, DeltaIndex) {
        let g = Graph::from_triples(vec![t(0, 0, 1), t(1, 0, 2), t(2, 1, 0)]);
        let ring = Ring::build(&g, RingOptions::default());
        let delta = DeltaIndex::new(vec![t(0, 0, 2), t(4, 1, 0)], vec![t(1, 0, 2)], 2);
        (ring, delta)
    }

    #[test]
    fn merged_steps_mask_deletes_and_add_edges() {
        let (ring, delta) = fixture();
        let v = MergedView::from_parts(&ring, Some(&delta));
        let mut out = Vec::new();
        // Into node 2 by a: ring gives {1}, tombstoned; delta adds {0}.
        v.subjects_into(2, 0, &mut out);
        assert_eq!(out, vec![0]);
        // Into node 0 by b: ring {2} plus delta {4}.
        v.subjects_into(0, 1, &mut out);
        assert_eq!(out, vec![2, 4]);
        // Inverse direction: subjects of ^b into 4 is {0}.
        let bi = ring.inverse_label(1);
        v.subjects_into(4, bi, &mut out);
        assert_eq!(out, vec![0]);
        // Sources of a: ring {0, 1}, but 1 lost its only a-edge.
        v.subjects_of_pred(0, &mut out);
        assert_eq!(out, vec![0]);
        // Sources of b: ring {2} plus delta {4}.
        v.subjects_of_pred(1, &mut out);
        assert_eq!(out, vec![2, 4]);
        assert!(v.has_edge(0, 0, 2));
        assert!(!v.has_edge(1, 0, 2));
        assert!(!v.has_edge(0, ring.inverse_label(0), 0));
        assert!(v.node_exists(4));
        assert_eq!(v.n_nodes(), 5);
    }

    #[test]
    fn delta_free_view_matches_the_ring() {
        let (ring, _) = fixture();
        let v = MergedView::ring_only(&ring);
        let mut out = Vec::new();
        v.subjects_into(2, 0, &mut out);
        assert_eq!(out, vec![1]);
        assert!(v.node_exists(0));
        assert!(!v.node_exists(4));
        assert_eq!(v.n_nodes(), 3);
    }

    #[test]
    fn node_vanishes_when_every_edge_is_tombstoned() {
        let g = Graph::from_triples(vec![t(0, 0, 1)]);
        let ring = Ring::build(&g, RingOptions::default());
        let delta = DeltaIndex::new(vec![], vec![t(0, 0, 1)], 1);
        let v = MergedView::from_parts(&ring, Some(&delta));
        assert!(!v.node_exists(0));
        assert!(!v.node_exists(1));
    }
}
