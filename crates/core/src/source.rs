//! The [`TripleSource`] abstraction: what the engine evaluates against —
//! an immutable ring alone, or a ring plus a committed [`DeltaIndex`]
//! overlay (live updates). [`MergedView`] is the step-level merge: every
//! expansion primitive the evaluation routes use (backward step by
//! predicate, per-label source enumeration, node existence, edge
//! membership) answered as *ring results minus tombstones plus delta
//! adds*, so deletes mask ring edges during traversal and adds extend
//! it, triple by triple.
//!
//! When the delta is empty every route runs the unmodified succinct hot
//! path — the overlay costs nothing until the first commit.

use std::sync::Arc;

use ring::delta::DeltaIndex;
use ring::store::StoreSnapshot;
use ring::{Id, Ring};

/// A source of triples to evaluate against: the immutable ring plus an
/// optional committed delta overlay.
pub trait TripleSource {
    /// The succinct base index.
    fn ring(&self) -> &Ring;
    /// The committed overlay, if this source has (non-empty) live
    /// updates. `None` selects the pure succinct hot path.
    fn delta(&self) -> Option<&DeltaIndex> {
        None
    }
}

impl TripleSource for Ring {
    fn ring(&self) -> &Ring {
        self
    }
}

impl TripleSource for StoreSnapshot {
    fn ring(&self) -> &Ring {
        &self.ring
    }

    fn delta(&self) -> Option<&DeltaIndex> {
        (!self.delta.is_empty()).then_some(&*self.delta)
    }
}

/// A shareable, epoch-stamped evaluation snapshot — what a serving layer
/// captures at submit time and holds for the whole evaluation. Cheap to
/// clone; immutable once published.
#[derive(Clone, Debug)]
pub struct SourceSnapshot {
    /// The snapshot version (0 for immutable sources; bumped by every
    /// commit/compaction of an updatable source).
    pub epoch: u64,
    /// The succinct base index.
    pub ring: Arc<Ring>,
    /// The committed overlay, if any.
    pub delta: Option<Arc<DeltaIndex>>,
}

impl SourceSnapshot {
    /// A snapshot of an immutable ring (epoch 0, no overlay).
    pub fn immutable(ring: Arc<Ring>) -> Self {
        Self {
            epoch: 0,
            ring,
            delta: None,
        }
    }

    /// The snapshot of an updatable store.
    pub fn from_store(snap: &StoreSnapshot) -> Self {
        Self {
            epoch: snap.epoch,
            ring: Arc::clone(&snap.ring),
            delta: (!snap.delta.is_empty()).then(|| Arc::clone(&snap.delta)),
        }
    }

    /// The evaluation node universe (ring nodes plus delta nodes).
    pub fn n_nodes(&self) -> Id {
        self.ring
            .n_nodes()
            .max(self.delta.as_ref().map_or(0, |d| d.n_nodes()))
    }
}

impl TripleSource for SourceSnapshot {
    fn ring(&self) -> &Ring {
        &self.ring
    }

    fn delta(&self) -> Option<&DeltaIndex> {
        self.delta.as_deref().filter(|d| !d.is_empty())
    }
}

/// The step-level merge of a ring and its delta. All label arguments are
/// from the **completed** alphabet `Σ↔` (the delta canonicalizes
/// internally); all node enumerations come back **sorted ascending and
/// distinct**, which also makes merged traversal orders deterministic.
#[derive(Clone, Copy)]
pub struct MergedView<'a> {
    /// The succinct base index.
    pub ring: &'a Ring,
    /// The committed overlay (`None` = pure ring semantics).
    pub delta: Option<&'a DeltaIndex>,
}

impl<'a> MergedView<'a> {
    /// A view over a source (delta present only when non-empty).
    pub fn new(source: &'a (impl TripleSource + ?Sized)) -> Self {
        Self {
            ring: source.ring(),
            delta: source.delta().filter(|d| !d.is_empty()),
        }
    }

    /// A delta-free view (pure ring semantics).
    pub fn ring_only(ring: &'a Ring) -> Self {
        Self { ring, delta: None }
    }

    /// Builds a view from already-split parts.
    pub fn from_parts(ring: &'a Ring, delta: Option<&'a DeltaIndex>) -> Self {
        Self {
            ring,
            delta: delta.filter(|d| !d.is_empty()),
        }
    }

    /// The evaluation node universe.
    pub fn n_nodes(&self) -> Id {
        self.ring
            .n_nodes()
            .max(self.delta.map_or(0, |d| d.n_nodes()))
    }

    /// Whether `v` has at least one live edge (completed-graph
    /// incidence: in the completed graph a node's subject block already
    /// covers both directions).
    pub fn node_exists(&self, v: Id) -> bool {
        let ring_incidence = if v < self.ring.n_nodes() {
            let (b, e) = self.ring.subject_range(v);
            e - b
        } else {
            0
        };
        match self.delta {
            None => ring_incidence > 0,
            Some(d) => ring_incidence + d.added_incidence(v) > d.deleted_incidence(v),
        }
    }

    /// Whether the completed-alphabet edge `(s, p, o)` is live.
    pub fn has_edge(&self, s: Id, p: Id, o: Id) -> bool {
        if let Some(d) = self.delta {
            if d.del_contains(s, p, o) {
                return false;
            }
            if d.add_contains(s, p, o) {
                return true;
            }
        }
        self.ring.contains(s, p, o)
    }

    /// Replaces `out` with the distinct subjects of live edges
    /// `(s, p, o)` — one merged backward step by predicate into object
    /// `o`: ring subjects (tombstoned edges masked) plus delta adds,
    /// sorted ascending.
    pub fn subjects_into(&self, o: Id, p: Id, out: &mut Vec<Id>) {
        out.clear();
        if o < self.ring.n_nodes() {
            let r = self
                .ring
                .backward_step_by_pred(self.ring.object_range(o), p);
            self.ring
                .l_s()
                .range_distinct(r.0, r.1, &mut |s, _, _| out.push(s));
            out.sort_unstable();
            if let Some(d) = self.delta {
                if d.del_count_into(o, p) > 0 {
                    out.retain(|&s| !d.del_contains(s, p, o));
                }
            }
        }
        if let Some(d) = self.delta {
            let ring_len = out.len();
            d.added_into(o, p, out);
            if out.len() > ring_len {
                out.sort_unstable();
                out.dedup();
            }
        }
    }

    /// Replaces `out` with the distinct subjects that have at least one
    /// live edge labeled `p`, sorted ascending. A ring subject whose
    /// every `p`-edge is tombstoned is excluded.
    pub fn subjects_of_pred(&self, p: Id, out: &mut Vec<Id>) {
        out.clear();
        let (b, e) = self.ring.pred_range(p);
        self.ring
            .l_s()
            .range_distinct(b, e, &mut |s, _, _| out.push(s));
        out.sort_unstable();
        if let Some(d) = self.delta {
            if d.del_count_label(p) > 0 {
                out.retain(|&s| {
                    // Cheap delta probe first: only tombstoned subjects
                    // pay the two wavelet ranks.
                    let deleted = d.del_count_from(s, p);
                    if deleted == 0 {
                        return true;
                    }
                    let ring_count = self.ring.l_s().rank(s, e) - self.ring.l_s().rank(s, b);
                    ring_count > deleted
                });
            }
            let ring_len = out.len();
            d.added_sources(p, out);
            if out.len() > ring_len {
                out.sort_unstable();
                out.dedup();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring::ring::RingOptions;
    use ring::{Graph, Triple};

    fn t(s: Id, p: Id, o: Id) -> Triple {
        Triple::new(s, p, o)
    }

    /// 0 -a-> 1 -a-> 2, 2 -b-> 0; delta deletes (1,a,2), adds (0,a,2)
    /// and (4,b,0) (node 4 is delta-only).
    fn fixture() -> (Ring, DeltaIndex) {
        let g = Graph::from_triples(vec![t(0, 0, 1), t(1, 0, 2), t(2, 1, 0)]);
        let ring = Ring::build(&g, RingOptions::default());
        let delta = DeltaIndex::new(vec![t(0, 0, 2), t(4, 1, 0)], vec![t(1, 0, 2)], 2);
        (ring, delta)
    }

    #[test]
    fn merged_steps_mask_deletes_and_add_edges() {
        let (ring, delta) = fixture();
        let v = MergedView::from_parts(&ring, Some(&delta));
        let mut out = Vec::new();
        // Into node 2 by a: ring gives {1}, tombstoned; delta adds {0}.
        v.subjects_into(2, 0, &mut out);
        assert_eq!(out, vec![0]);
        // Into node 0 by b: ring {2} plus delta {4}.
        v.subjects_into(0, 1, &mut out);
        assert_eq!(out, vec![2, 4]);
        // Inverse direction: subjects of ^b into 4 is {0}.
        let bi = ring.inverse_label(1);
        v.subjects_into(4, bi, &mut out);
        assert_eq!(out, vec![0]);
        // Sources of a: ring {0, 1}, but 1 lost its only a-edge.
        v.subjects_of_pred(0, &mut out);
        assert_eq!(out, vec![0]);
        // Sources of b: ring {2} plus delta {4}.
        v.subjects_of_pred(1, &mut out);
        assert_eq!(out, vec![2, 4]);
        assert!(v.has_edge(0, 0, 2));
        assert!(!v.has_edge(1, 0, 2));
        assert!(!v.has_edge(0, ring.inverse_label(0), 0));
        assert!(v.node_exists(4));
        assert_eq!(v.n_nodes(), 5);
    }

    #[test]
    fn delta_free_view_matches_the_ring() {
        let (ring, _) = fixture();
        let v = MergedView::ring_only(&ring);
        let mut out = Vec::new();
        v.subjects_into(2, 0, &mut out);
        assert_eq!(out, vec![1]);
        assert!(v.node_exists(0));
        assert!(!v.node_exists(4));
        assert_eq!(v.n_nodes(), 3);
    }

    #[test]
    fn node_vanishes_when_every_edge_is_tombstoned() {
        let g = Graph::from_triples(vec![t(0, 0, 1)]);
        let ring = Ring::build(&g, RingOptions::default());
        let delta = DeltaIndex::new(vec![], vec![t(0, 0, 1)], 1);
        let v = MergedView::from_parts(&ring, Some(&delta));
        assert!(!v.node_exists(0));
        assert!(!v.node_exists(1));
    }
}
