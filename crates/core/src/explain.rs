//! Query-plan introspection: the planner's decision for a query,
//! rendered without running it.
//!
//! `explain` is a *thin renderer* over [`crate::planner::plan`] — the
//! exact function [`RpqEngine::evaluate_prepared`] dispatches through —
//! so the explained route, direction and split can never diverge from
//! what execution does. (They once could: this module used to re-derive
//! a parallel `Strategy` with its own cost code, and the engine ignored
//! it.) The rendered plan is enriched with the §6 selectivity context a
//! human wants next to the decision: label cardinalities and the full
//! rare-label split candidate list.
//!
//! [`RpqEngine::evaluate_prepared`]: crate::RpqEngine::evaluate_prepared

use ring::{Id, Ring};

use crate::jsonw::JsonWriter;
use crate::plan::{EvalRoute, PreparedQuery};
use crate::planner::{self, Direction, Plan};
use crate::profile::QueryProfile;
use crate::query::{EngineOptions, RpqQuery, Term};
use crate::source::TripleSource;
use crate::split::split_candidates;
use crate::stats::RingStatistics;
use crate::QueryError;

/// An explained query plan: the planner's [`Plan`] plus the automaton
/// and selectivity context that motivates it.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Table 1 pattern string of the query (`c`/`v` endpoints around the
    /// expression).
    pub pattern: String,
    /// The subject endpoint.
    pub subject: Term,
    /// The object endpoint.
    pub object: Term,
    /// The planner's decision — byte-for-byte what the engine executes.
    pub plan: Plan,
    /// Glushkov position count (`m`) of the class-fused expression.
    pub positions: usize,
    /// Whether the expression accepts the empty word (adds the diagonal).
    pub nullable: bool,
    /// Labels the expression mentions, with their edge cardinalities,
    /// rarest first.
    pub label_cardinalities: Vec<(Id, usize)>,
    /// Rare-label split candidates `(label, cardinality)`, best first
    /// (present even when the planner picked another route).
    pub split_candidates: Vec<(Id, usize)>,
}

/// Explains `query` against `ring` under default options (dry run; no
/// traversal happens).
pub fn explain(ring: &Ring, query: &RpqQuery) -> Result<QueryPlan, QueryError> {
    explain_with(ring, query, &EngineOptions::default())
}

/// Explains `query` under explicit options — the same options a later
/// [`RpqEngine::evaluate`](crate::RpqEngine::evaluate) call would use,
/// so toggles like `fast_paths` and `forced_route` show their effect.
pub fn explain_with(
    ring: &Ring,
    query: &RpqQuery,
    opts: &EngineOptions,
) -> Result<QueryPlan, QueryError> {
    explain_source_with(ring, query, opts)
}

/// Explains `query` against any [`TripleSource`] — a bare ring, a
/// live-store snapshot, or a sharded source, whose per-shard
/// cardinalities the statistics provider sums so the explained plan is
/// byte-for-byte the plan the engine would execute over that source.
pub fn explain_source_with(
    source: &(impl TripleSource + ?Sized),
    query: &RpqQuery,
    opts: &EngineOptions,
) -> Result<QueryPlan, QueryError> {
    let ring = source.ring();
    if !ring.has_inverses() {
        return Err(QueryError::InversesRequired);
    }
    let n_nodes = source
        .shard_parts()
        .iter()
        .map(|p| p.ring.n_nodes())
        .fold(ring.n_nodes(), Ord::max);
    for t in [query.subject, query.object] {
        if let Term::Const(c) = t {
            if c >= n_nodes {
                return Err(QueryError::NodeOutOfRange(c));
            }
        }
    }
    let prepared =
        PreparedQuery::compile(&query.expr, &|l| ring.inverse_label(l), opts.bp_split_width)?;
    Ok(explain_prepared_source(
        source,
        &prepared,
        query.subject,
        query.object,
        opts,
    ))
}

/// Explains an already-compiled query (what a serving layer holds in its
/// plan cache) anchored at the given endpoints. Endpoint validity is the
/// caller's responsibility here; the string entry points check it.
pub fn explain_prepared(
    ring: &Ring,
    prepared: &PreparedQuery,
    subject: Term,
    object: Term,
    opts: &EngineOptions,
) -> QueryPlan {
    explain_prepared_source(ring, prepared, subject, object, opts)
}

/// [`explain_prepared`] over any [`TripleSource`] (delta overlays and
/// shard parts feed the same statistics the engine plans with).
pub fn explain_prepared_source(
    source: &(impl TripleSource + ?Sized),
    prepared: &PreparedQuery,
    subject: Term,
    object: Term,
    opts: &EngineOptions,
) -> QueryPlan {
    let ring = source.ring();
    let stats = RingStatistics::with_parts(ring, source.delta(), source.shard_parts());
    let plan = planner::plan(&stats, prepared, subject, object, opts);

    let fused = prepared.expr().fuse_classes();
    let positions = fused.literal_count();
    let nullable = match prepared.tables() {
        Some((bp, _)) => bp.is_nullable(),
        None => {
            let nfa = automata::Nfa::from_regex(prepared.expr());
            nfa.accepting[nfa.initial]
        }
    };

    let mut label_cardinalities: Vec<(Id, usize)> = prepared
        .expr()
        .mentioned_labels()
        .into_iter()
        .filter(|&l| l < ring.n_preds())
        .map(|l| (l, stats.pred_cardinality(l)))
        .collect();
    label_cardinalities.sort_by_key(|&(l, c)| (c, l));

    let mut splits: Vec<(Id, usize)> = split_candidates(prepared.expr())
        .into_iter()
        .filter(|s| s.label < ring.n_preds())
        .map(|s| (s.label, stats.pred_cardinality(s.label)))
        .collect();
    splits.sort_by_key(|&(l, c)| (c, l));
    splits.dedup();

    QueryPlan {
        pattern: pattern_of(prepared, subject, object),
        subject,
        object,
        plan,
        positions,
        nullable,
        label_cardinalities,
        split_candidates: splits,
    }
}

fn pattern_of(prepared: &PreparedQuery, subject: Term, object: Term) -> String {
    let t = |term: Term| match term {
        Term::Const(_) => "c",
        Term::Var => "v",
    };
    format!("{} {} {}", t(subject), prepared.expr(), t(object))
}

impl QueryPlan {
    /// Renders the plan as one stable JSON object (fixed key order, no
    /// whitespace) — the machine-readable `--explain` output scripts can
    /// diff across runs and versions. Built on the shared
    /// [`crate::jsonw`] writer, so the pattern string gets *JSON*
    /// escaping (the previous `format!("{:?}")` rendering produced
    /// Rust's `\u{..}` escapes, which are invalid JSON for non-ASCII
    /// patterns).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("pattern", &self.pattern)
            .field_str("route", self.plan.route.name());
        w.key("direction");
        match self.plan.direction {
            Some(d) => w.str(d.name()),
            None => w.null(),
        };
        match self.plan.split_label() {
            Some(l) => {
                let card = self
                    .split_candidates
                    .iter()
                    .find(|&&(c, _)| c == l)
                    .map_or(0, |&(_, c)| c);
                w.field_u64("split_label", l)
                    .field_u64("split_label_edges", card as u64);
            }
            None => {
                w.key("split_label").null();
                w.key("split_label_edges").null();
            }
        }
        w.field_u64("estimated_cost", self.plan.estimated_cost)
            .field_u64("intra_query_threads", self.plan.intra_query_threads as u64)
            .field_u64("positions", self.positions as u64)
            .field_bool("nullable", self.nullable)
            .end_object();
        w.finish()
    }
}

impl QueryProfile {
    /// Renders the profile as one stable JSON object (fixed key order,
    /// no whitespace) — the "EXPLAIN ANALYZE" counterpart of
    /// [`QueryPlan::to_json`]. Core keys are always present; the
    /// server-path keys (`queue_wait_us`, `compile_us`, `cache_hit`)
    /// appear only when the serving layer filled them, so the schema is
    /// determined by the path that produced the profile, never by
    /// timing.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_u64("plan_us", self.plan_us)
            .field_u64("exec_us", self.exec_us)
            .field_u64("total_us", self.total_us)
            .field_u64("compactions", self.compactions)
            .key("levels")
            .begin_array();
        for l in &self.levels {
            w.begin_object()
                .field_u64("frontier", l.frontier)
                .field_u64("rank_ops", l.rank_ops)
                .field_u64("chunks", l.chunks)
                .field_bool("parallel", l.parallel)
                .end_object();
        }
        w.end_array();
        if let Some(q) = self.queue_wait_us {
            w.field_u64("queue_wait_us", q);
        }
        if let Some(c) = self.compile_us {
            w.field_u64("compile_us", c);
        }
        if let Some(h) = self.cache_hit {
            w.field_bool("cache_hit", h);
        }
        w.end_object();
        w.finish()
    }
}

impl std::fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "query:    {}", self.pattern)?;
        writeln!(
            f,
            "automaton: {} positions{}",
            self.positions,
            if self.nullable {
                " (nullable: includes the diagonal)"
            } else {
                ""
            }
        )?;
        write!(f, "route:    {}\nstrategy: ", self.plan.route.name())?;
        match (self.plan.route, self.subject, self.object) {
            (EvalRoute::FastPath, ..) => writeln!(f, "fast path — §5 join specialization")?,
            (EvalRoute::Split, ..) => writeln!(
                f,
                "rare-label split at label {} — enumerate its edges, complete both sides",
                self.plan.split_label().unwrap_or(0)
            )?,
            (EvalRoute::Fallback, ..) => writeln!(
                f,
                "explicit-state fallback (expression beyond the word width), {}",
                match self.plan.direction {
                    Some(Direction::FromObject) => "backward traversal from the object",
                    _ => "forward walk from the subject side",
                }
            )?,
            (EvalRoute::BitParallel, Term::Var, Term::Const(o)) => {
                writeln!(f, "backward traversal from object {o}")?
            }
            (EvalRoute::BitParallel, Term::Const(s), Term::Var) => writeln!(
                f,
                "backward traversal of the reversed expression from subject {s}"
            )?,
            (EvalRoute::BitParallel, Term::Const(s), Term::Const(o)) => {
                let (from, rev) = match self.plan.direction {
                    Some(Direction::FromSubject) => (s, " (reversed expression)"),
                    _ => (o, ""),
                };
                writeln!(f, "existence check from node {from}{rev}")?
            }
            (EvalRoute::BitParallel, Term::Var, Term::Var) => writeln!(
                f,
                "two-pass: full-range pass collects {}, then per-anchor queries",
                match self.plan.direction {
                    Some(Direction::FromObject) => "targets",
                    _ => "sources",
                }
            )?,
        }
        writeln!(
            f,
            "first-expansion cost estimate: {} edges",
            self.plan.estimated_cost
        )?;
        if !self.label_cardinalities.is_empty() {
            writeln!(f, "label cardinalities (rarest first):")?;
            for (l, c) in &self.label_cardinalities {
                writeln!(f, "  label {l}: {c} edges")?;
            }
        }
        if !self.split_candidates.is_empty() {
            writeln!(
                f,
                "rare-label split available at label {} ({} edges)",
                self.split_candidates[0].0, self.split_candidates[0].1
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring::ring::RingOptions;
    use ring::{Graph, Triple};

    fn ring() -> Ring {
        Ring::build(
            &Graph::from_triples(vec![
                Triple::new(0, 0, 1),
                Triple::new(1, 0, 2),
                Triple::new(2, 1, 3),
                Triple::new(3, 2, 0),
            ]),
            RingOptions::default(),
        )
    }

    use automata::Regex;

    fn star(l: u64) -> Regex {
        Regex::Star(Box::new(Regex::label(l)))
    }

    #[test]
    fn fast_path_detected() {
        let r = ring();
        let q = RpqQuery::new(Term::Var, Regex::label(0), Term::Var);
        let plan = explain(&r, &q).unwrap();
        assert_eq!(plan.plan.route, EvalRoute::FastPath);
        assert_eq!(plan.positions, 1);
        let text = plan.to_string();
        assert!(text.contains("fast path"), "{text}");
        assert!(plan.to_json().contains("\"route\":\"fastpath\""));
    }

    #[test]
    fn direction_choices() {
        let r = ring();
        let e = Regex::concat(star(0), Regex::label(1));
        let plan = explain(&r, &RpqQuery::new(Term::Var, e.clone(), Term::Const(3))).unwrap();
        assert_eq!(plan.plan.route, EvalRoute::BitParallel);
        assert_eq!(plan.plan.direction, Some(Direction::FromObject));
        assert!(plan
            .to_string()
            .contains("backward traversal from object 3"));
        let plan = explain(&r, &RpqQuery::new(Term::Const(0), e.clone(), Term::Var)).unwrap();
        assert_eq!(plan.plan.direction, Some(Direction::FromSubject));
        let plan = explain(&r, &RpqQuery::new(Term::Var, e.clone(), Term::Var)).unwrap();
        assert!(matches!(
            plan.plan.route,
            EvalRoute::BitParallel | EvalRoute::Split
        ));
        let plan = explain(&r, &RpqQuery::new(Term::Const(0), e, Term::Const(3))).unwrap();
        assert!(plan.to_string().contains("existence check"), "{plan}");
    }

    #[test]
    fn split_candidates_surface_rarest() {
        let r = ring();
        // a*/b/c*: b (label 1) is the only split point.
        let e = Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2));
        let plan = explain(&r, &RpqQuery::new(Term::Var, e, Term::Var)).unwrap();
        assert_eq!(plan.split_candidates, vec![(1, 1)]);
        assert!(!plan.nullable);
        assert!(plan
            .to_string()
            .contains("rare-label split available at label 1"));
    }

    #[test]
    fn json_is_stable_and_complete() {
        let r = ring();
        let e = Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2));
        let plan = explain(&r, &RpqQuery::new(Term::Var, e, Term::Var)).unwrap();
        let json = plan.to_json();
        // The textbook split query on this tiny ring: the planner's JSON
        // names every decision field.
        for key in [
            "\"pattern\":",
            "\"route\":",
            "\"direction\":",
            "\"split_label\":",
            "\"estimated_cost\":",
            "\"positions\":3",
            "\"nullable\":false",
        ] {
            assert!(json.contains(key), "{json} missing {key}");
        }
    }

    #[test]
    fn profile_json_is_stable() {
        use crate::profile::LevelSample;
        let p = QueryProfile {
            plan_us: 1,
            exec_us: 2,
            total_us: 3,
            compactions: 1,
            levels: vec![LevelSample {
                frontier: 4,
                rank_ops: 5,
                chunks: 0,
                parallel: false,
            }],
            queue_wait_us: None,
            compile_us: None,
            cache_hit: None,
        };
        assert_eq!(
            p.to_json(),
            "{\"plan_us\":1,\"exec_us\":2,\"total_us\":3,\"compactions\":1,\
             \"levels\":[{\"frontier\":4,\"rank_ops\":5,\"chunks\":0,\"parallel\":false}]}"
        );
        // Server-path keys appear exactly when filled, in fixed order.
        let p = QueryProfile {
            queue_wait_us: Some(7),
            compile_us: Some(0),
            cache_hit: Some(true),
            ..QueryProfile::default()
        };
        let json = p.to_json();
        assert!(
            json.ends_with("\"queue_wait_us\":7,\"compile_us\":0,\"cache_hit\":true}"),
            "{json}"
        );
    }

    #[test]
    fn errors_propagate() {
        let r = ring();
        let q = RpqQuery::new(Term::Const(99), Regex::label(0), Term::Var);
        assert!(matches!(
            explain(&r, &q),
            Err(QueryError::NodeOutOfRange(99))
        ));
    }
}
