//! Query-plan introspection: what the engine *would* do for a query,
//! without running it — the §5/§6 planning decisions (fast paths,
//! traversal direction, cardinalities, split candidates) made visible.

use automata::{BitParallel, Glushkov};
use ring::{Id, Ring};

use crate::fastpath::{shape_of, Shape};
use crate::query::{RpqQuery, Term};
use crate::split::{best_split, split_candidates};
use crate::QueryError;

/// The strategy the engine would choose.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// §5 fast path, bypassing the automaton.
    FastPath(&'static str),
    /// One backward traversal anchored at the object constant.
    BackwardFromObject(Id),
    /// One backward traversal of the reversed expression anchored at the
    /// subject constant.
    BackwardFromSubject(Id),
    /// Constant-to-constant existence check, from the cheaper side.
    Existence {
        /// The anchor node the traversal starts from.
        from: Id,
        /// Whether the reversed expression is used (start = subject).
        reversed: bool,
    },
    /// §4.4 two-pass strategy for variable-to-variable queries.
    TwoPass {
        /// Whether pass 1 collects sources (else targets).
        sources_first: bool,
    },
}

/// An explained query plan.
#[derive(Clone, Debug)]
pub struct QueryPlan {
    /// Table 1 pattern string of the query.
    pub pattern: String,
    /// The chosen strategy.
    pub strategy: Strategy,
    /// Glushkov position count (`m`).
    pub positions: usize,
    /// Whether the expression accepts the empty word (adds the diagonal).
    pub nullable: bool,
    /// Labels the expression mentions, with their edge cardinalities.
    pub label_cardinalities: Vec<(Id, usize)>,
    /// Estimated first-expansion cost of the chosen direction.
    pub first_expansion_cost: u64,
    /// Rare-label split candidates `(label, cardinality)`, best first.
    pub split_candidates: Vec<(Id, usize)>,
}

/// Explains `query` against `ring` (§5 planning heuristics, dry run).
pub fn explain(ring: &Ring, query: &RpqQuery) -> Result<QueryPlan, QueryError> {
    if !ring.has_inverses() {
        return Err(QueryError::InversesRequired);
    }
    for t in [query.subject, query.object] {
        if let Term::Const(c) = t {
            if c >= ring.n_nodes() {
                return Err(QueryError::NodeOutOfRange(c));
            }
        }
    }
    let expr = query.expr.fuse_classes();
    let g = Glushkov::new(&expr)?;
    let bp = BitParallel::new(&g);
    let inv = |l: Id| ring.inverse_label(l);
    let rev = expr.reversed(&inv);
    let bp_rev = BitParallel::new(&Glushkov::new(&rev)?);

    let full_cost = |b: &BitParallel| -> u64 {
        b.positive_label_masks()
            .iter()
            .filter(|(_, m)| m & b.accept_mask() != 0)
            .map(|&(l, _)| ring.pred_cardinality(l) as u64)
            .sum()
    };

    let strategy = match (query.subject, query.object) {
        _ if matches!(
            shape_of(&query.expr),
            Shape::Single(_) | Shape::Disjunction(_) | Shape::Concat2(_, _)
        ) =>
        {
            Strategy::FastPath(match shape_of(&query.expr) {
                Shape::Single(_) => "single-label backward search",
                Shape::Disjunction(_) => "disjunction of backward searches",
                Shape::Concat2(_, _) => "wavelet range intersection",
                Shape::Other => unreachable!(),
            })
        }
        (Term::Var, Term::Const(o)) => Strategy::BackwardFromObject(o),
        (Term::Const(s), Term::Var) => Strategy::BackwardFromSubject(s),
        (Term::Const(s), Term::Const(o)) => {
            // Mirror the engine's anchored-cost comparison.
            let anchored = |b: &BitParallel, anchor: Id| -> u64 {
                let range = ring.object_range(anchor);
                b.positive_label_masks()
                    .iter()
                    .filter(|(_, m)| m & b.accept_mask() != 0)
                    .map(|&(l, _)| {
                        let (lo, hi) = ring.backward_step_by_pred(range, l);
                        (hi - lo) as u64
                    })
                    .sum()
            };
            if anchored(&bp, o) <= anchored(&bp_rev, s) {
                Strategy::Existence {
                    from: o,
                    reversed: false,
                }
            } else {
                Strategy::Existence {
                    from: s,
                    reversed: true,
                }
            }
        }
        (Term::Var, Term::Var) => Strategy::TwoPass {
            sources_first: full_cost(&bp) <= full_cost(&bp_rev),
        },
    };

    let mut label_cardinalities: Vec<(Id, usize)> = expr
        .mentioned_labels()
        .into_iter()
        .filter(|&l| l < ring.n_preds())
        .map(|l| (l, ring.pred_cardinality(l)))
        .collect();
    label_cardinalities.sort_by_key(|&(_, c)| c);

    let mut splits: Vec<(Id, usize)> = split_candidates(&expr)
        .into_iter()
        .filter(|s| s.label < ring.n_preds())
        .map(|s| (s.label, ring.pred_cardinality(s.label)))
        .collect();
    splits.sort_by_key(|&(_, c)| c);
    debug_assert_eq!(
        splits.first().map(|&(l, _)| l),
        best_split(ring, &expr).map(|s| s.label)
    );

    let chosen_cost = match &strategy {
        Strategy::TwoPass { sources_first } => {
            if *sources_first {
                full_cost(&bp)
            } else {
                full_cost(&bp_rev)
            }
        }
        _ => full_cost(&bp),
    };

    Ok(QueryPlan {
        pattern: pattern_of(query, ring.n_preds_base()),
        strategy,
        positions: g.positions(),
        nullable: g.nullable(),
        label_cardinalities,
        first_expansion_cost: chosen_cost,
        split_candidates: splits,
    })
}

fn pattern_of(query: &RpqQuery, _n_base: Id) -> String {
    let t = |term: Term| match term {
        Term::Const(_) => "c",
        Term::Var => "v",
    };
    format!("{} {} {}", t(query.subject), query.expr, t(query.object))
}

impl std::fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "query:    {}", self.pattern)?;
        writeln!(
            f,
            "automaton: {} positions{}",
            self.positions,
            if self.nullable {
                " (nullable: includes the diagonal)"
            } else {
                ""
            }
        )?;
        write!(f, "strategy: ")?;
        match &self.strategy {
            Strategy::FastPath(k) => writeln!(f, "fast path — {k}")?,
            Strategy::BackwardFromObject(o) => writeln!(f, "backward traversal from object {o}")?,
            Strategy::BackwardFromSubject(s) => writeln!(
                f,
                "backward traversal of the reversed expression from subject {s}"
            )?,
            Strategy::Existence { from, reversed } => writeln!(
                f,
                "existence check from node {from}{}",
                if *reversed {
                    " (reversed expression)"
                } else {
                    ""
                }
            )?,
            Strategy::TwoPass { sources_first } => writeln!(
                f,
                "two-pass: full-range pass collects {}, then per-anchor queries",
                if *sources_first { "sources" } else { "targets" }
            )?,
        }
        writeln!(
            f,
            "first-expansion cost estimate: {} edges",
            self.first_expansion_cost
        )?;
        if !self.label_cardinalities.is_empty() {
            writeln!(f, "label cardinalities (rarest first):")?;
            for (l, c) in &self.label_cardinalities {
                writeln!(f, "  label {l}: {c} edges")?;
            }
        }
        if !self.split_candidates.is_empty() {
            writeln!(
                f,
                "rare-label split available at label {} ({} edges)",
                self.split_candidates[0].0, self.split_candidates[0].1
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring::ring::RingOptions;
    use ring::{Graph, Triple};

    fn ring() -> Ring {
        Ring::build(
            &Graph::from_triples(vec![
                Triple::new(0, 0, 1),
                Triple::new(1, 0, 2),
                Triple::new(2, 1, 3),
                Triple::new(3, 2, 0),
            ]),
            RingOptions::default(),
        )
    }

    use automata::Regex;

    fn star(l: u64) -> Regex {
        Regex::Star(Box::new(Regex::label(l)))
    }

    #[test]
    fn fast_path_detected() {
        let r = ring();
        let q = RpqQuery::new(Term::Var, Regex::label(0), Term::Var);
        let plan = explain(&r, &q).unwrap();
        assert!(matches!(plan.strategy, Strategy::FastPath(_)));
        assert_eq!(plan.positions, 1);
        let text = plan.to_string();
        assert!(text.contains("fast path"), "{text}");
    }

    #[test]
    fn direction_choices() {
        let r = ring();
        let e = Regex::concat(star(0), Regex::label(1));
        let plan = explain(&r, &RpqQuery::new(Term::Var, e.clone(), Term::Const(3))).unwrap();
        assert_eq!(plan.strategy, Strategy::BackwardFromObject(3));
        let plan = explain(&r, &RpqQuery::new(Term::Const(0), e.clone(), Term::Var)).unwrap();
        assert_eq!(plan.strategy, Strategy::BackwardFromSubject(0));
        let plan = explain(&r, &RpqQuery::new(Term::Var, e.clone(), Term::Var)).unwrap();
        assert!(matches!(plan.strategy, Strategy::TwoPass { .. }));
        let plan = explain(&r, &RpqQuery::new(Term::Const(0), e, Term::Const(3))).unwrap();
        assert!(matches!(plan.strategy, Strategy::Existence { .. }));
    }

    #[test]
    fn split_candidates_surface_rarest() {
        let r = ring();
        // a*/b/c*: b (label 1) is the only split point.
        let e = Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2));
        let plan = explain(&r, &RpqQuery::new(Term::Var, e, Term::Var)).unwrap();
        assert_eq!(plan.split_candidates, vec![(1, 1)]);
        assert!(!plan.nullable);
        assert!(plan
            .to_string()
            .contains("rare-label split available at label 1"));
    }

    #[test]
    fn errors_propagate() {
        let r = ring();
        let q = RpqQuery::new(Term::Const(99), Regex::label(0), Term::Var);
        assert!(matches!(
            explain(&r, &q),
            Err(QueryError::NodeOutOfRange(99))
        ));
    }
}
