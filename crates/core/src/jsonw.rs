//! A minimal hand-rolled JSON writer.
//!
//! The workspace has no external dependencies, so every JSON surface
//! (plan explain output, query profiles, the server metrics registry)
//! renders by hand. Before this module each site carried its own ad-hoc
//! `format!` chains — with subtly different (and partly *wrong*, e.g.
//! Rust-`{:?}` instead of JSON) string escaping. `JsonWriter` is the one
//! shared implementation: a push-style builder over a `String` that
//! tracks nesting and comma placement, plus a standalone
//! [`escape_into`] for the rare call site that only needs escaping.
//!
//! Output is deterministic and compact (no whitespace), so renderers
//! built on it stay byte-stable across runs — a property CI greps rely
//! on.

use std::fmt::Write as _;

/// Append `s` to `out` with JSON string escaping (quotes, backslash,
/// and control characters; everything else, including non-ASCII, passes
/// through as UTF-8, which JSON permits).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `s` rendered as a quoted JSON string literal.
pub fn quoted(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

#[derive(Clone, Copy)]
enum Frame {
    Object { first: bool },
    Array { first: bool },
}

/// Push-style JSON builder. Call [`begin_object`](Self::begin_object) /
/// [`begin_array`](Self::begin_array) to open containers,
/// [`key`](Self::key) before each object member's value, and the typed
/// value methods anywhere a value is expected; commas are inserted
/// automatically. [`finish`](Self::finish) returns the rendered string.
///
/// The writer does not validate that containers are balanced — callers
/// are trusted (and unit-tested) renderers, not arbitrary input.
#[derive(Default)]
pub struct JsonWriter {
    out: String,
    stack: Vec<Frame>,
    after_key: bool,
}

impl JsonWriter {
    /// A fresh writer with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    fn before_value(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        match self.stack.last_mut() {
            Some(Frame::Object { first }) | Some(Frame::Array { first }) => {
                if *first {
                    *first = false;
                } else {
                    self.out.push(',');
                }
            }
            None => {}
        }
    }

    /// Open an object (`{`).
    pub fn begin_object(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('{');
        self.stack.push(Frame::Object { first: true });
        self
    }

    /// Close the innermost object (`}`).
    pub fn end_object(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push('}');
        self
    }

    /// Open an array (`[`).
    pub fn begin_array(&mut self) -> &mut Self {
        self.before_value();
        self.out.push('[');
        self.stack.push(Frame::Array { first: true });
        self
    }

    /// Close the innermost array (`]`).
    pub fn end_array(&mut self) -> &mut Self {
        self.stack.pop();
        self.out.push(']');
        self
    }

    /// Write an object member key; the next value call supplies its
    /// value.
    pub fn key(&mut self, k: &str) -> &mut Self {
        if let Some(Frame::Object { first }) = self.stack.last_mut() {
            if *first {
                *first = false;
            } else {
                self.out.push(',');
            }
        }
        self.out.push('"');
        escape_into(&mut self.out, k);
        self.out.push_str("\":");
        self.after_key = true;
        self
    }

    /// Write a string value (escaped).
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.before_value();
        self.out.push('"');
        escape_into(&mut self.out, v);
        self.out.push('"');
        self
    }

    /// Write an unsigned integer value.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Write a signed integer value.
    pub fn i64(&mut self, v: i64) -> &mut Self {
        self.before_value();
        let _ = write!(self.out, "{v}");
        self
    }

    /// Write a float value (shortest round-trippable rendering; `NaN`
    /// and infinities fall back to `null`, which JSON requires).
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.before_value();
        if v.is_finite() {
            let _ = write!(self.out, "{v}");
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Write a boolean value.
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.before_value();
        self.out.push_str(if v { "true" } else { "false" });
        self
    }

    /// Write a `null` value.
    pub fn null(&mut self) -> &mut Self {
        self.before_value();
        self.out.push_str("null");
        self
    }

    /// Splice a pre-rendered JSON fragment in value position. The
    /// fragment must itself be valid JSON — used to compose renderers
    /// without re-parsing.
    pub fn raw(&mut self, v: &str) -> &mut Self {
        self.before_value();
        self.out.push_str(v);
        self
    }

    /// Convenience: `key` + string value.
    pub fn field_str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k).str(v)
    }

    /// Convenience: `key` + unsigned integer value.
    pub fn field_u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k).u64(v)
    }

    /// Convenience: `key` + boolean value.
    pub fn field_bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k).bool(v)
    }

    /// Consume the writer, returning the rendered JSON.
    pub fn finish(self) -> String {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_quotes_backslash_and_controls() {
        assert_eq!(quoted("plain"), "\"plain\"");
        assert_eq!(quoted("a\"b"), "\"a\\\"b\"");
        assert_eq!(quoted("a\\b"), "\"a\\\\b\"");
        assert_eq!(quoted("a\nb\tc\rd"), "\"a\\nb\\tc\\rd\"");
        assert_eq!(quoted("\u{1}\u{1f}"), "\"\\u0001\\u001f\"");
        // Non-ASCII passes through as UTF-8 — *not* Rust's `{:?}`
        // `\u{..}` escapes, which are invalid JSON.
        assert_eq!(quoted("métro→"), "\"métro→\"");
    }

    #[test]
    fn writer_places_commas_in_objects_and_arrays() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_str("a", "x")
            .field_u64("b", 7)
            .key("c")
            .begin_array()
            .u64(1)
            .u64(2)
            .begin_object()
            .field_bool("d", true)
            .end_object()
            .end_array()
            .key("e")
            .null()
            .end_object();
        assert_eq!(
            w.finish(),
            "{\"a\":\"x\",\"b\":7,\"c\":[1,2,{\"d\":true}],\"e\":null}"
        );
    }

    #[test]
    fn writer_handles_raw_and_floats() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("frag")
            .raw("[1,2]")
            .key("f")
            .f64(1.5)
            .key("nan")
            .f64(f64::NAN)
            .end_object();
        assert_eq!(w.finish(), "{\"frag\":[1,2],\"f\":1.5,\"nan\":null}");
    }

    #[test]
    fn empty_containers_render() {
        let mut w = JsonWriter::new();
        w.begin_object()
            .key("o")
            .begin_object()
            .end_object()
            .key("a")
            .begin_array()
            .end_array()
            .end_object();
        assert_eq!(w.finish(), "{\"o\":{},\"a\":[]}");
    }
}
