//! The §5 fast paths: query patterns `v p v`, `v ^p v`, `v p|q v`,
//! `v p/q v` (and their anchored variants) evaluated with plain backward
//! search and wavelet-tree range operations, bypassing the automaton.
//!
//! "Such paths can be solved as join queries, with more efficient
//! algorithms" — the paper concedes these patterns to the competitors'
//! join machinery; these handlers are the ring's equivalent.

use automata::ast::{Lit, Regex};
use automata::Label;
use ring::{Id, Ring};
use std::time::Instant;
use succinct::util::FxHashSet;

use crate::query::{EngineOptions, QueryOutput, Term};
use crate::QueryError;

/// Recognized specializable expression shapes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Shape {
    /// A single label (possibly an inverse): `p` or `^p`.
    Single(Label),
    /// A union of labels: `p1|p2|…` (also label classes).
    Disjunction(Vec<Label>),
    /// A two-step concatenation of single labels: `p1/p2`.
    Concat2(Label, Label),
    /// Anything else goes through the general engine.
    Other,
}

/// Classifies an expression.
pub fn shape_of(expr: &Regex) -> Shape {
    fn disj_labels(e: &Regex, out: &mut Vec<Label>) -> bool {
        match e {
            Regex::Literal(Lit::Label(l)) => {
                out.push(*l);
                true
            }
            Regex::Literal(Lit::Class(ls)) if !ls.is_empty() => {
                out.extend_from_slice(ls);
                true
            }
            Regex::Alt(a, b) => disj_labels(a, out) && disj_labels(b, out),
            _ => false,
        }
    }
    match expr {
        Regex::Literal(Lit::Label(l)) => Shape::Single(*l),
        Regex::Literal(Lit::Class(ls)) if ls.len() == 1 => Shape::Single(ls[0]),
        Regex::Literal(Lit::Class(ls)) if !ls.is_empty() => Shape::Disjunction(ls.clone()),
        Regex::Alt(_, _) => {
            let mut v = Vec::new();
            if disj_labels(expr, &mut v) {
                v.sort_unstable();
                v.dedup();
                Shape::Disjunction(v)
            } else {
                Shape::Other
            }
        }
        Regex::Concat(a, b) => match (a.as_ref(), b.as_ref()) {
            (Regex::Literal(Lit::Label(p1)), Regex::Literal(Lit::Label(p2))) => {
                Shape::Concat2(*p1, *p2)
            }
            _ => Shape::Other,
        },
        _ => Shape::Other,
    }
}

/// Evaluates a specializable shape anchored at the given endpoints.
pub fn evaluate(
    ring: &Ring,
    shape: &Shape,
    subject: Term,
    object: Term,
    opts: &EngineOptions,
    deadline: Option<Instant>,
) -> Result<QueryOutput, QueryError> {
    let mut out = QueryOutput::default();
    let mut sink = Sink {
        pairs: FxHashSet::default(),
        limit: opts.limit,
        // The fast paths touch one product node per reported pair, so the
        // node budget degenerates to a pair cap here.
        node_budget: opts.node_budget.map_or(usize::MAX, |nb| nb as usize),
        deadline,
        truncated: false,
        timed_out: false,
        budget_exhausted: false,
    };
    match shape {
        Shape::Single(p) => single(ring, *p, subject, object, &mut sink),
        Shape::Disjunction(ps) => {
            for &p in ps {
                single(ring, p, subject, object, &mut sink);
                if sink.full() {
                    break;
                }
            }
        }
        Shape::Concat2(p1, p2) => concat2(ring, *p1, *p2, subject, object, &mut sink),
        Shape::Other => unreachable!("fastpath::evaluate called on a general shape"),
    }
    out.stats.reported = sink.pairs.len() as u64;
    out.stats.product_nodes = sink.pairs.len() as u64;
    out.truncated = sink.truncated;
    out.timed_out = sink.timed_out;
    out.budget_exhausted = sink.budget_exhausted;
    out.pairs = sink.pairs.into_iter().collect();
    Ok(out)
}

struct Sink {
    pairs: FxHashSet<(Id, Id)>,
    limit: usize,
    node_budget: usize,
    deadline: Option<Instant>,
    truncated: bool,
    timed_out: bool,
    budget_exhausted: bool,
}

impl Sink {
    fn push(&mut self, pair: (Id, Id)) {
        if self.pairs.len() >= self.node_budget {
            // Only a pair that would *grow* the set exhausts the budget;
            // re-finding an already-counted pair is free.
            if !self.pairs.contains(&pair) {
                self.budget_exhausted = true;
            }
            return;
        }
        if self.pairs.len() < self.limit {
            self.pairs.insert(pair);
        }
        if self.pairs.len() >= self.limit {
            self.truncated = true;
        }
    }

    fn full(&mut self) -> bool {
        if self.truncated || self.budget_exhausted {
            return true;
        }
        if let Some(dl) = self.deadline {
            if self.pairs.len() % 1024 == 1023 && Instant::now() >= dl {
                self.timed_out = true;
                return true;
            }
        }
        false
    }
}

/// Distinct symbols of a wavelet range of `L_s`, pushed through `f`.
fn distinct_ls(ring: &Ring, range: (usize, usize), f: &mut impl FnMut(Id)) {
    ring.l_s()
        .range_distinct(range.0, range.1, &mut |v, _, _| f(v));
}

/// `(x, p, y)` and its anchored forms, via backward search only (§5):
/// subjects of `p` come from `L_s[C_p[p]..C_p[p+1])`; objects of a given
/// subject `s` are the subjects of `p̂` into `s`.
fn single(ring: &Ring, p: Label, subject: Term, object: Term, sink: &mut Sink) {
    let pi = ring.inverse_label(p);
    match (subject, object) {
        (Term::Const(s), Term::Const(o)) => {
            let r = ring.backward_step_by_pred(ring.object_range(o), p);
            if ring.l_s().rank(s, r.1) > ring.l_s().rank(s, r.0) {
                sink.push((s, o));
            }
        }
        (Term::Var, Term::Const(o)) => {
            let r = ring.backward_step_by_pred(ring.object_range(o), p);
            distinct_ls(ring, r, &mut |s| sink.push((s, o)));
        }
        (Term::Const(s), Term::Var) => {
            let r = ring.backward_step_by_pred(ring.object_range(s), pi);
            distinct_ls(ring, r, &mut |o| sink.push((s, o)));
        }
        (Term::Var, Term::Var) => {
            // All subjects of p, then the objects of each.
            let mut subjects = Vec::new();
            distinct_ls(ring, ring.pred_range(p), &mut |s| subjects.push(s));
            for s in subjects {
                if sink.full() {
                    return;
                }
                let r = ring.backward_step_by_pred(ring.object_range(s), pi);
                distinct_ls(ring, r, &mut |o| sink.push((s, o)));
            }
        }
    }
}

/// `(x, p1/p2, y)` and anchored forms. The variable-to-variable case is
/// the paper's intersection algorithm: midpoints `z` are the wavelet
/// intersection of the subjects of `p̂1` (targets of `p1`) and the
/// subjects of `p2` (sources of `p2`).
fn concat2(ring: &Ring, p1: Label, p2: Label, subject: Term, object: Term, sink: &mut Sink) {
    let p1i = ring.inverse_label(p1);
    let p2i = ring.inverse_label(p2);
    match (subject, object) {
        (Term::Var, Term::Var) => {
            let targets_of_p1 = ring.pred_range(p1i);
            let sources_of_p2 = ring.pred_range(p2);
            let mids = ring.l_s().range_intersect(targets_of_p1, sources_of_p2);
            for (z, _, _) in mids {
                if sink.full() {
                    return;
                }
                let mut sources = Vec::new();
                distinct_ls(
                    ring,
                    ring.backward_step_by_pred(ring.object_range(z), p1),
                    &mut |s| sources.push(s),
                );
                let mut objects = Vec::new();
                distinct_ls(
                    ring,
                    ring.backward_step_by_pred(ring.object_range(z), p2i),
                    &mut |o| objects.push(o),
                );
                for &s in &sources {
                    for &o in &objects {
                        sink.push((s, o));
                    }
                }
            }
        }
        (Term::Const(s), Term::Var) => {
            let mut mids = Vec::new();
            distinct_ls(
                ring,
                ring.backward_step_by_pred(ring.object_range(s), p1i),
                &mut |z| mids.push(z),
            );
            for z in mids {
                if sink.full() {
                    return;
                }
                distinct_ls(
                    ring,
                    ring.backward_step_by_pred(ring.object_range(z), p2i),
                    &mut |o| sink.push((s, o)),
                );
            }
        }
        (Term::Var, Term::Const(o)) => {
            let mut mids = Vec::new();
            distinct_ls(
                ring,
                ring.backward_step_by_pred(ring.object_range(o), p2),
                &mut |z| mids.push(z),
            );
            for z in mids {
                if sink.full() {
                    return;
                }
                distinct_ls(
                    ring,
                    ring.backward_step_by_pred(ring.object_range(z), p1),
                    &mut |s| sink.push((s, o)),
                );
            }
        }
        (Term::Const(s), Term::Const(o)) => {
            let mut mids = Vec::new();
            distinct_ls(
                ring,
                ring.backward_step_by_pred(ring.object_range(s), p1i),
                &mut |z| mids.push(z),
            );
            for z in mids {
                let r = ring.backward_step_by_pred(ring.object_range(o), p2);
                if ring.l_s().rank(z, r.1) > ring.l_s().rank(z, r.0) {
                    sink.push((s, o));
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_recognized() {
        assert_eq!(shape_of(&Regex::label(3)), Shape::Single(3));
        assert_eq!(
            shape_of(&Regex::alt(Regex::label(1), Regex::label(2))),
            Shape::Disjunction(vec![1, 2])
        );
        assert_eq!(
            shape_of(&Regex::concat(Regex::label(1), Regex::label(2))),
            Shape::Concat2(1, 2)
        );
        assert_eq!(
            shape_of(&Regex::Star(Box::new(Regex::label(1)))),
            Shape::Other
        );
        assert_eq!(
            shape_of(&Regex::Literal(Lit::Class(vec![4]))),
            Shape::Single(4)
        );
        assert_eq!(
            shape_of(&Regex::alt(
                Regex::label(1),
                Regex::Literal(Lit::NegClass(vec![2]))
            )),
            Shape::Other
        );
        assert_eq!(
            shape_of(&Regex::concat(
                Regex::label(1),
                Regex::Star(Box::new(Regex::label(2)))
            )),
            Shape::Other
        );
    }
}
