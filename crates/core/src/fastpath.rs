//! The §5 fast paths: query patterns `v p v`, `v ^p v`, `v p|q v`,
//! `v p/q v` (and their anchored variants) evaluated with plain backward
//! search and wavelet-tree range operations, bypassing the automaton.
//!
//! "Such paths can be solved as join queries, with more efficient
//! algorithms" — the paper concedes these patterns to the competitors'
//! join machinery; these handlers are the ring's equivalent.

use automata::ast::{Lit, Regex};
use automata::Label;
use ring::{Id, Ring};
use std::time::Instant;
use succinct::wavelet_matrix::MultiRangeGuide;

use crate::pairbuf::PairBuffer;
use crate::query::{EngineOptions, QueryOutput, Term};
use crate::source::MergedView;
use crate::QueryError;

/// Midpoints/subjects stepped through the wavelet layers per batch: the
/// backward-search ranks of a whole batch share one node-start chain
/// ([`ring::Ring::backward_step_by_pred_multi`]) and the distinct-subject
/// sweeps share node entries; limits are re-checked between batches.
const STEP_BATCH: usize = 256;

/// Recognized specializable expression shapes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Shape {
    /// A single label (possibly an inverse): `p` or `^p`.
    Single(Label),
    /// A union of labels: `p1|p2|…` (also label classes).
    Disjunction(Vec<Label>),
    /// A two-step concatenation of single labels: `p1/p2`.
    Concat2(Label, Label),
    /// Anything else goes through the general engine.
    Other,
}

/// Classifies an expression.
pub fn shape_of(expr: &Regex) -> Shape {
    fn disj_labels(e: &Regex, out: &mut Vec<Label>) -> bool {
        match e {
            Regex::Literal(Lit::Label(l)) => {
                out.push(*l);
                true
            }
            Regex::Literal(Lit::Class(ls)) if !ls.is_empty() => {
                out.extend_from_slice(ls);
                true
            }
            Regex::Alt(a, b) => disj_labels(a, out) && disj_labels(b, out),
            _ => false,
        }
    }
    match expr {
        Regex::Literal(Lit::Label(l)) => Shape::Single(*l),
        Regex::Literal(Lit::Class(ls)) if ls.len() == 1 => Shape::Single(ls[0]),
        Regex::Literal(Lit::Class(ls)) if !ls.is_empty() => Shape::Disjunction(ls.clone()),
        Regex::Alt(_, _) => {
            let mut v = Vec::new();
            if disj_labels(expr, &mut v) {
                v.sort_unstable();
                v.dedup();
                Shape::Disjunction(v)
            } else {
                Shape::Other
            }
        }
        Regex::Concat(a, b) => match (a.as_ref(), b.as_ref()) {
            (Regex::Literal(Lit::Label(p1)), Regex::Literal(Lit::Label(p2))) => {
                Shape::Concat2(*p1, *p2)
            }
            _ => Shape::Other,
        },
        _ => Shape::Other,
    }
}

/// Intra-query fan-out policy for the batched fast-path sweeps: engage
/// `threads − 1` pool helpers only when a batch has at least
/// `min_items` items (small joins pay zero overhead). Chunk geometry is
/// always the sequential [`STEP_BATCH`], and results are consumed in
/// chunk order, so output — including limit/budget truncation points —
/// is bit-for-bit identical to the sequential sweep.
#[derive(Clone, Copy)]
struct Par {
    threads: usize,
    min_items: usize,
}

impl Par {
    fn of(opts: &EngineOptions, threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            min_items: opts.parallel_min_frontier.max(2),
        }
    }

    /// Extra threads to request for a sweep over `n_items` (0 = stay
    /// sequential).
    fn extra_for(&self, n_items: usize) -> usize {
        if self.threads > 1 && n_items >= self.min_items {
            self.threads - 1
        } else {
            0
        }
    }
}

/// Evaluates a specializable shape anchored at the given endpoints,
/// fanning large variable-to-variable sweeps across up to `threads`
/// pool workers.
pub fn evaluate(
    ring: &Ring,
    shape: &Shape,
    subject: Term,
    object: Term,
    opts: &EngineOptions,
    deadline: Option<Instant>,
    threads: usize,
) -> Result<QueryOutput, QueryError> {
    let par = Par::of(opts, threads);
    let mut sink = Sink {
        buf: PairBuffer::new(),
        limit: opts.limit,
        // The fast paths touch one product node per reported pair, so the
        // node budget degenerates to a pair cap here.
        node_budget: opts.node_budget.map_or(usize::MAX, |nb| nb as usize),
        at_budget: false,
        deadline,
        truncated: false,
        timed_out: false,
        budget_exhausted: false,
        par_levels: 0,
        par_chunks: 0,
    };
    match shape {
        Shape::Single(p) => single(ring, *p, subject, object, &mut sink, par),
        Shape::Disjunction(ps) => {
            for &p in ps {
                single(ring, p, subject, object, &mut sink, par);
                if sink.full() {
                    break;
                }
            }
        }
        Shape::Concat2(p1, p2) => concat2(ring, *p1, *p2, subject, object, &mut sink, par),
        Shape::Other => unreachable!("fastpath::evaluate called on a general shape"),
    }
    Ok(finish(sink))
}

/// Drains a sink into a finished output (shared by the pure and merged
/// entry points).
fn finish(mut sink: Sink) -> QueryOutput {
    let mut out = QueryOutput::default();
    sink.settle();
    let distinct = sink.buf.distinct_len() as u64;
    out.stats.reported = distinct;
    out.stats.product_nodes = distinct;
    out.stats.parallel_levels = sink.par_levels;
    out.stats.parallel_chunks = sink.par_chunks;
    out.stats.pair_compactions = sink.buf.compactions();
    out.truncated = sink.truncated;
    out.timed_out = sink.timed_out;
    out.budget_exhausted = sink.budget_exhausted;
    out.pairs = sink.buf.into_sorted_vec();
    out
}

/// Evaluates a specializable shape against a merged source: the same §5
/// join algorithms, with every backward step and source enumeration
/// merged with the delta (tombstones masked, adds included) at node
/// granularity.
pub(crate) fn evaluate_merged(
    view: &MergedView<'_>,
    shape: &Shape,
    subject: Term,
    object: Term,
    opts: &EngineOptions,
    deadline: Option<Instant>,
    threads: usize,
) -> Result<QueryOutput, QueryError> {
    let par = Par::of(opts, threads);
    let mut sink = Sink {
        buf: PairBuffer::new(),
        limit: opts.limit,
        node_budget: opts.node_budget.map_or(usize::MAX, |nb| nb as usize),
        at_budget: false,
        deadline,
        truncated: false,
        timed_out: false,
        budget_exhausted: false,
        par_levels: 0,
        par_chunks: 0,
    };
    match shape {
        Shape::Single(p) => merged_single(view, *p, subject, object, &mut sink, par),
        Shape::Disjunction(ps) => {
            for &p in ps {
                merged_single(view, p, subject, object, &mut sink, par);
                if sink.full() {
                    break;
                }
            }
        }
        Shape::Concat2(p1, p2) => merged_concat2(view, *p1, *p2, subject, object, &mut sink, par),
        Shape::Other => unreachable!("fastpath::evaluate_merged called on a general shape"),
    }
    Ok(finish(sink))
}

/// `(x, p, y)` and anchored forms over the merged source.
fn merged_single(
    view: &MergedView<'_>,
    p: Label,
    subject: Term,
    object: Term,
    sink: &mut Sink,
    par: Par,
) {
    let pi = view.ring.inverse_label(p);
    let mut buf = Vec::new();
    match (subject, object) {
        (Term::Const(s), Term::Const(o)) => {
            if view.has_edge(s, p, o) {
                sink.push((s, o));
            }
        }
        (Term::Var, Term::Const(o)) => {
            view.subjects_into(o, p, &mut buf);
            for &s in &buf {
                sink.push((s, o));
            }
        }
        (Term::Const(s), Term::Var) => {
            view.subjects_into(s, pi, &mut buf);
            for &o in &buf {
                sink.push((s, o));
            }
        }
        (Term::Var, Term::Var) => {
            let mut subjects = Vec::new();
            view.subjects_of_pred(p, &mut subjects);
            let extra = par.extra_for(subjects.len());
            if extra > 0 {
                // The sequential loop consults `full()` once per subject,
                // so the replay keeps per-subject granularity: each chunk
                // maps to one pair list per subject.
                sink.par_levels += 1;
                crate::parallel::map_chunks_ordered(
                    &subjects,
                    STEP_BATCH,
                    extra,
                    |_, chunk| {
                        let mut buf = Vec::new();
                        let mut per_subject = Vec::with_capacity(chunk.len());
                        for &s in chunk {
                            view.subjects_into(s, pi, &mut buf);
                            per_subject.push(buf.iter().map(|&o| (s, o)).collect::<Vec<_>>());
                        }
                        per_subject
                    },
                    |per_subject| {
                        sink.par_chunks += 1;
                        for pairs in per_subject {
                            if sink.full() {
                                return false;
                            }
                            for pair in pairs {
                                sink.push(pair);
                            }
                        }
                        true
                    },
                );
                return;
            }
            for s in subjects {
                if sink.full() {
                    return;
                }
                view.subjects_into(s, pi, &mut buf);
                for &o in &buf {
                    sink.push((s, o));
                }
            }
        }
    }
}

/// `(x, p1/p2, y)` and anchored forms over the merged source: midpoints
/// are live targets of `p1` intersected with live sources of `p2`.
fn merged_concat2(
    view: &MergedView<'_>,
    p1: Label,
    p2: Label,
    subject: Term,
    object: Term,
    sink: &mut Sink,
    par: Par,
) {
    let p1i = view.ring.inverse_label(p1);
    let p2i = view.ring.inverse_label(p2);
    let mut mids = Vec::new();
    let mut buf = Vec::new();
    match (subject, object) {
        (Term::Var, Term::Var) => {
            // Live targets of p1 ∩ live sources of p2 (both come back
            // sorted, so the intersection is a linear merge).
            let mut targets = Vec::new();
            view.subjects_of_pred(p1i, &mut targets);
            let mut sources = Vec::new();
            view.subjects_of_pred(p2, &mut sources);
            let mut i = 0;
            for &z in &targets {
                while i < sources.len() && sources[i] < z {
                    i += 1;
                }
                if i < sources.len() && sources[i] == z {
                    mids.push(z);
                }
            }
            let extra = par.extra_for(mids.len());
            if extra > 0 {
                // Per-midpoint replay granularity, matching the
                // sequential loop's `full()` cadence.
                sink.par_levels += 1;
                crate::parallel::map_chunks_ordered(
                    &mids,
                    STEP_BATCH,
                    extra,
                    |_, chunk| {
                        let mut srcs = Vec::new();
                        let mut objs = Vec::new();
                        let mut per_mid = Vec::with_capacity(chunk.len());
                        for &z in chunk {
                            view.subjects_into(z, p1, &mut srcs);
                            view.subjects_into(z, p2i, &mut objs);
                            let mut pairs = Vec::with_capacity(srcs.len() * objs.len());
                            for &s in &srcs {
                                for &o in &objs {
                                    pairs.push((s, o));
                                }
                            }
                            per_mid.push(pairs);
                        }
                        per_mid
                    },
                    |per_mid| {
                        sink.par_chunks += 1;
                        for pairs in per_mid {
                            if sink.full() {
                                return false;
                            }
                            for pair in pairs {
                                sink.push(pair);
                            }
                        }
                        true
                    },
                );
                return;
            }
            let mut srcs = Vec::new();
            for z in mids {
                if sink.full() {
                    return;
                }
                view.subjects_into(z, p1, &mut srcs);
                view.subjects_into(z, p2i, &mut buf);
                for &s in &srcs {
                    for &o in &buf {
                        sink.push((s, o));
                    }
                }
            }
        }
        (Term::Const(s), Term::Var) => {
            view.subjects_into(s, p1i, &mut mids);
            for &z in &mids {
                if sink.full() {
                    return;
                }
                view.subjects_into(z, p2i, &mut buf);
                for &o in &buf {
                    sink.push((s, o));
                }
            }
        }
        (Term::Var, Term::Const(o)) => {
            view.subjects_into(o, p2, &mut mids);
            for &z in &mids {
                if sink.full() {
                    return;
                }
                view.subjects_into(z, p1, &mut buf);
                for &s in &buf {
                    sink.push((s, o));
                }
            }
        }
        (Term::Const(s), Term::Const(o)) => {
            view.subjects_into(s, p1i, &mut mids);
            for &z in &mids {
                if view.has_edge(z, p2, o) {
                    sink.push((s, o));
                    return;
                }
            }
        }
    }
}

/// Result collector: a [`PairBuffer`] (sorted-vec dedup, no hashing on
/// the hot path) plus exact limit/budget threshold tracking.
struct Sink {
    buf: PairBuffer,
    limit: usize,
    node_budget: usize,
    /// The distinct count has reached `node_budget`: the answer set must
    /// not grow further, only flag attempts to grow it.
    at_budget: bool,
    deadline: Option<Instant>,
    truncated: bool,
    timed_out: bool,
    budget_exhausted: bool,
    /// Sweeps that fanned out across pool workers.
    par_levels: u64,
    /// Chunks whose speculative results were merged from the pool.
    par_chunks: u64,
}

impl Sink {
    fn push(&mut self, pair: (Id, Id)) {
        if self.at_budget {
            // Only a pair that would *grow* the set exhausts the budget;
            // re-finding an already-counted pair is free.
            if !self.buf.contains(pair) {
                self.budget_exhausted = true;
            }
            return;
        }
        if self.truncated {
            return;
        }
        self.buf.push(pair);
        // Amortized probe against the nearest cap; `settle()` applies the
        // exact thresholds (detection lag only means a bounded amount of
        // extra enumeration — truncation keeps the answer set exact).
        let cap = self.limit.min(self.node_budget);
        if cap != usize::MAX && self.buf.maybe_reached(cap) {
            self.settle();
        }
    }

    /// Applies the limit/budget thresholds exactly (compacts once).
    fn settle(&mut self) {
        if self.at_budget || self.truncated {
            return;
        }
        let d = self.buf.distinct_len();
        if self.node_budget != usize::MAX && d >= self.node_budget {
            if d > self.node_budget {
                // A pair grew the set past the cap before detection.
                self.budget_exhausted = true;
            }
            self.buf.truncate_distinct(self.node_budget);
            self.at_budget = true;
        }
        if d >= self.limit {
            self.buf.truncate_distinct(self.limit);
            self.truncated = true;
        }
    }

    fn full(&mut self) -> bool {
        if self.truncated || self.budget_exhausted {
            return true;
        }
        // `full()` is consulted once per enumeration batch, not per pair,
        // so an unconditional clock read is cheap — and a conditional one
        // would almost never fire.
        if let Some(dl) = self.deadline {
            if Instant::now() >= dl {
                self.timed_out = true;
                return true;
            }
        }
        false
    }
}

/// Distinct symbols of a wavelet range of `L_s`, pushed through `f`.
fn distinct_ls(ring: &Ring, range: (usize, usize), f: &mut impl FnMut(Id)) {
    ring.l_s()
        .range_distinct(range.0, range.1, &mut |v, _, _| f(v));
}

/// Distinct symbols of many `L_s` ranges in one batched sweep:
/// `f(item, sym)` per distinct symbol of `ranges[item]`.
fn distinct_ls_multi(ring: &Ring, ranges: &[(usize, usize)], f: &mut impl FnMut(u32, Id)) {
    struct All<'a, F>(&'a mut F);
    impl<F: FnMut(u32, u64)> MultiRangeGuide for All<'_, F> {
        fn enter_node(&mut self, _: usize, _: u64) -> bool {
            true
        }
        fn enter_item(&mut self, _: u32, _: usize, _: u64) -> bool {
            true
        }
        fn leaf(&mut self, item: u32, sym: u64, _: usize, _: usize) {
            (self.0)(item, sym)
        }
    }
    ring.l_s().guided_traverse_multi(ranges, &mut All(f));
}

/// `(x, p, y)` and its anchored forms, via backward search only (§5):
/// subjects of `p` come from `L_s[C_p[p]..C_p[p+1])`; objects of a given
/// subject `s` are the subjects of `p̂` into `s`.
fn single(ring: &Ring, p: Label, subject: Term, object: Term, sink: &mut Sink, par: Par) {
    let pi = ring.inverse_label(p);
    match (subject, object) {
        (Term::Const(s), Term::Const(o)) => {
            let r = ring.backward_step_by_pred(ring.object_range(o), p);
            if ring.l_s().rank(s, r.1) > ring.l_s().rank(s, r.0) {
                sink.push((s, o));
            }
        }
        (Term::Var, Term::Const(o)) => {
            let r = ring.backward_step_by_pred(ring.object_range(o), p);
            distinct_ls(ring, r, &mut |s| sink.push((s, o)));
        }
        (Term::Const(s), Term::Var) => {
            let r = ring.backward_step_by_pred(ring.object_range(s), pi);
            distinct_ls(ring, r, &mut |o| sink.push((s, o)));
        }
        (Term::Var, Term::Var) => {
            // All subjects of p, then the objects of each — backward
            // steps and distinct sweeps batched STEP_BATCH subjects at
            // a time.
            let mut subjects = Vec::new();
            distinct_ls(ring, ring.pred_range(p), &mut |s| subjects.push(s));
            let extra = par.extra_for(subjects.len());
            if extra > 0 {
                // Same STEP_BATCH geometry as below, chunks mapped
                // speculatively on the pool and replayed in order: the
                // `full()` check / push sequence the sink observes is
                // identical to the sequential loop's.
                sink.par_levels += 1;
                crate::parallel::map_chunks_ordered(
                    &subjects,
                    STEP_BATCH,
                    extra,
                    |_, chunk| {
                        let ranges: Vec<(usize, usize)> =
                            chunk.iter().map(|&s| ring.object_range(s)).collect();
                        let mut stepped = Vec::with_capacity(chunk.len());
                        ring.backward_step_by_pred_multi(&ranges, pi, &mut stepped);
                        let mut pairs = Vec::new();
                        distinct_ls_multi(ring, &stepped, &mut |item, o| {
                            pairs.push((chunk[item as usize], o))
                        });
                        pairs
                    },
                    |pairs| {
                        if sink.full() {
                            return false;
                        }
                        sink.par_chunks += 1;
                        for pair in pairs {
                            sink.push(pair);
                        }
                        true
                    },
                );
                return;
            }
            let mut stepped = Vec::with_capacity(STEP_BATCH);
            for chunk in subjects.chunks(STEP_BATCH) {
                if sink.full() {
                    return;
                }
                let ranges: Vec<(usize, usize)> =
                    chunk.iter().map(|&s| ring.object_range(s)).collect();
                stepped.clear();
                ring.backward_step_by_pred_multi(&ranges, pi, &mut stepped);
                distinct_ls_multi(ring, &stepped, &mut |item, o| {
                    sink.push((chunk[item as usize], o))
                });
            }
        }
    }
}

/// `(x, p1/p2, y)` and anchored forms. The variable-to-variable case is
/// the paper's intersection algorithm: midpoints `z` are the wavelet
/// intersection of the subjects of `p̂1` (targets of `p1`) and the
/// subjects of `p2` (sources of `p2`).
fn concat2(
    ring: &Ring,
    p1: Label,
    p2: Label,
    subject: Term,
    object: Term,
    sink: &mut Sink,
    par: Par,
) {
    let p1i = ring.inverse_label(p1);
    let p2i = ring.inverse_label(p2);
    match (subject, object) {
        (Term::Var, Term::Var) => {
            let targets_of_p1 = ring.pred_range(p1i);
            let sources_of_p2 = ring.pred_range(p2);
            let mids = ring.l_s().range_intersect(targets_of_p1, sources_of_p2);
            let extra = par.extra_for(mids.len());
            if extra > 0 {
                // Speculative per-chunk expansion on the pool, replayed
                // in chunk order with the sequential loop's exact
                // `full()` cadence.
                sink.par_levels += 1;
                crate::parallel::map_chunks_ordered(
                    &mids,
                    STEP_BATCH,
                    extra,
                    |_, chunk| {
                        let ranges: Vec<(usize, usize)> = chunk
                            .iter()
                            .map(|&(z, _, _)| ring.object_range(z))
                            .collect();
                        let mut sources: Vec<Vec<Id>> = vec![Vec::new(); chunk.len()];
                        let mut objects: Vec<Vec<Id>> = vec![Vec::new(); chunk.len()];
                        let mut stepped = Vec::with_capacity(chunk.len());
                        ring.backward_step_by_pred_multi(&ranges, p1, &mut stepped);
                        distinct_ls_multi(ring, &stepped, &mut |item, s| {
                            sources[item as usize].push(s)
                        });
                        stepped.clear();
                        ring.backward_step_by_pred_multi(&ranges, p2i, &mut stepped);
                        distinct_ls_multi(ring, &stepped, &mut |item, o| {
                            objects[item as usize].push(o)
                        });
                        let mut pairs = Vec::new();
                        for i in 0..chunk.len() {
                            for &s in &sources[i] {
                                for &o in &objects[i] {
                                    pairs.push((s, o));
                                }
                            }
                        }
                        pairs
                    },
                    |pairs| {
                        if sink.full() {
                            return false;
                        }
                        sink.par_chunks += 1;
                        for pair in pairs {
                            sink.push(pair);
                        }
                        true
                    },
                );
                return;
            }
            // Per batch of midpoints: both backward steps share their
            // rank chains, and the source/object sweeps each run as one
            // batched traversal.
            let mut sources: Vec<Vec<Id>> = Vec::new();
            let mut objects: Vec<Vec<Id>> = Vec::new();
            let mut stepped = Vec::with_capacity(STEP_BATCH);
            for chunk in mids.chunks(STEP_BATCH) {
                if sink.full() {
                    return;
                }
                let ranges: Vec<(usize, usize)> = chunk
                    .iter()
                    .map(|&(z, _, _)| ring.object_range(z))
                    .collect();
                sources.iter_mut().for_each(Vec::clear);
                sources.resize_with(sources.len().max(chunk.len()), Vec::new);
                stepped.clear();
                ring.backward_step_by_pred_multi(&ranges, p1, &mut stepped);
                distinct_ls_multi(ring, &stepped, &mut |item, s| {
                    sources[item as usize].push(s)
                });
                objects.iter_mut().for_each(Vec::clear);
                objects.resize_with(objects.len().max(chunk.len()), Vec::new);
                stepped.clear();
                ring.backward_step_by_pred_multi(&ranges, p2i, &mut stepped);
                distinct_ls_multi(ring, &stepped, &mut |item, o| {
                    objects[item as usize].push(o)
                });
                for i in 0..chunk.len() {
                    for &s in &sources[i] {
                        for &o in &objects[i] {
                            sink.push((s, o));
                        }
                    }
                }
            }
        }
        (Term::Const(s), Term::Var) => {
            let mut mids = Vec::new();
            distinct_ls(
                ring,
                ring.backward_step_by_pred(ring.object_range(s), p1i),
                &mut |z| mids.push(z),
            );
            let mut stepped = Vec::with_capacity(STEP_BATCH);
            for chunk in mids.chunks(STEP_BATCH) {
                if sink.full() {
                    return;
                }
                let ranges: Vec<(usize, usize)> =
                    chunk.iter().map(|&z| ring.object_range(z)).collect();
                stepped.clear();
                ring.backward_step_by_pred_multi(&ranges, p2i, &mut stepped);
                distinct_ls_multi(ring, &stepped, &mut |_, o| sink.push((s, o)));
            }
        }
        (Term::Var, Term::Const(o)) => {
            let mut mids = Vec::new();
            distinct_ls(
                ring,
                ring.backward_step_by_pred(ring.object_range(o), p2),
                &mut |z| mids.push(z),
            );
            let mut stepped = Vec::with_capacity(STEP_BATCH);
            for chunk in mids.chunks(STEP_BATCH) {
                if sink.full() {
                    return;
                }
                let ranges: Vec<(usize, usize)> =
                    chunk.iter().map(|&z| ring.object_range(z)).collect();
                stepped.clear();
                ring.backward_step_by_pred_multi(&ranges, p1, &mut stepped);
                distinct_ls_multi(ring, &stepped, &mut |_, s| sink.push((s, o)));
            }
        }
        (Term::Const(s), Term::Const(o)) => {
            let mut mids = Vec::new();
            distinct_ls(
                ring,
                ring.backward_step_by_pred(ring.object_range(s), p1i),
                &mut |z| mids.push(z),
            );
            for z in mids {
                let r = ring.backward_step_by_pred(ring.object_range(o), p2);
                if ring.l_s().rank(z, r.1) > ring.l_s().rank(z, r.0) {
                    sink.push((s, o));
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_recognized() {
        assert_eq!(shape_of(&Regex::label(3)), Shape::Single(3));
        assert_eq!(
            shape_of(&Regex::alt(Regex::label(1), Regex::label(2))),
            Shape::Disjunction(vec![1, 2])
        );
        assert_eq!(
            shape_of(&Regex::concat(Regex::label(1), Regex::label(2))),
            Shape::Concat2(1, 2)
        );
        assert_eq!(
            shape_of(&Regex::Star(Box::new(Regex::label(1)))),
            Shape::Other
        );
        assert_eq!(
            shape_of(&Regex::Literal(Lit::Class(vec![4]))),
            Shape::Single(4)
        );
        assert_eq!(
            shape_of(&Regex::alt(
                Regex::label(1),
                Regex::Literal(Lit::NegClass(vec![2]))
            )),
            Shape::Other
        );
        assert_eq!(
            shape_of(&Regex::concat(
                Regex::label(1),
                Regex::Star(Box::new(Regex::label(2)))
            )),
            Shape::Other
        );
    }
}
