//! Prepared queries: compile the automaton machinery of a path expression
//! once, evaluate it many times.
//!
//! Compiling a 2RPQ means fusing label classes, building the Glushkov
//! position automaton for the expression *and* for its reversal `Ê`
//! (§4.4 needs both directions), and materializing the split bit-parallel
//! transition tables (§3.3). None of that depends on the query's
//! endpoints, so a serving layer can key compiled plans by the
//! *normalized pattern* — [`PreparedQuery::cache_key`] — and share one
//! [`PreparedQuery`] across any number of concurrent workers: the type is
//! immutable after construction (`Send + Sync`), and
//! [`RpqEngine::evaluate_prepared`](crate::RpqEngine::evaluate_prepared)
//! only reads it.

use automata::{BitParallel, Glushkov, Label, Regex};

use crate::fastpath::{self, Shape};
use crate::QueryError;

/// Which evaluation route a plan takes — the label a serving layer uses
/// for per-engine latency accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalRoute {
    /// A §5 fast-path shape (single label, disjunction, two-step
    /// concatenation) evaluated with plain backward search.
    FastPath,
    /// The general §4 bit-parallel product-graph traversal.
    BitParallel,
    /// The explicit-state fallback for expressions beyond the word width.
    Fallback,
}

impl EvalRoute {
    /// Stable lowercase name (used as a metrics key).
    pub fn name(self) -> &'static str {
        match self {
            EvalRoute::FastPath => "fastpath",
            EvalRoute::BitParallel => "bitparallel",
            EvalRoute::Fallback => "fallback",
        }
    }
}

/// A compiled path expression: everything `evaluate` derives from the
/// regex alone, ready to be shared (it is immutable) and re-anchored at
/// arbitrary endpoints.
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    /// The original expression (the fallback route and [`Self::cache_key`]
    /// work on this form).
    expr: Regex,
    /// The §5 fast-path classification of `expr`.
    shape: Shape,
    /// Whether the expression exceeds the bit-parallel word width.
    fallback: bool,
    /// Bit-parallel tables for the fused expression (absent on fallback).
    bp: Option<BitParallel>,
    /// Bit-parallel tables for the reversed-and-inverted expression.
    bp_rev: Option<BitParallel>,
    /// The split width the tables were built with.
    split_width: usize,
}

impl PreparedQuery {
    /// Compiles `expr`. `inv` is the ring's label involution `p ↔ p̂`
    /// (used to reverse the two-way expression), `split_width` the
    /// vertical split `d` of the transition tables.
    pub fn compile(
        expr: &Regex,
        inv: &impl Fn(Label) -> Label,
        split_width: usize,
    ) -> Result<Self, QueryError> {
        let shape = fastpath::shape_of(expr);
        // Both traversal directions are compiled eagerly: a plan is
        // shared and re-anchored at arbitrary endpoints, so it cannot
        // know which direction later calls need (one-shot anchored
        // queries pay one unused table build — a few microseconds
        // against the traversal they precede).
        let fused = expr.fuse_classes();
        let fallback = crate::fallback::needs_fallback_fused(&fused);
        let (bp, bp_rev) = if fallback {
            (None, None)
        } else {
            let rev = fused.reversed(inv);
            let g = Glushkov::new(&fused)?;
            let g_rev = Glushkov::new(&rev)?;
            (
                Some(BitParallel::with_split_width(&g, split_width)),
                Some(BitParallel::with_split_width(&g_rev, split_width)),
            )
        };
        Ok(Self {
            expr: expr.clone(),
            shape,
            fallback,
            bp,
            bp_rev,
            split_width,
        })
    }

    /// The normalized pattern key: the canonical fully-parenthesized
    /// rendering of an id-level expression. Two surface strings that parse
    /// to the same expression (whitespace, redundant parentheses, IRI
    /// prefixes resolved to the same predicate ids) share one key, hence
    /// one cached plan.
    pub fn cache_key(expr: &Regex) -> String {
        expr.to_string()
    }

    /// This plan's own normalized key.
    pub fn key(&self) -> String {
        Self::cache_key(&self.expr)
    }

    /// The original expression.
    pub fn expr(&self) -> &Regex {
        &self.expr
    }

    /// The fast-path classification.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Whether evaluation goes through the explicit-state fallback.
    pub fn uses_fallback(&self) -> bool {
        self.fallback
    }

    /// The split width the tables were built with (evaluation uses the
    /// prebuilt tables, not the per-call option).
    pub fn split_width(&self) -> usize {
        self.split_width
    }

    /// Forward tables (absent on the fallback route).
    pub(crate) fn tables(&self) -> Option<(&BitParallel, &BitParallel)> {
        Some((self.bp.as_ref()?, self.bp_rev.as_ref()?))
    }

    /// The route `evaluate` takes under `fast_paths`-enabled options —
    /// the per-engine label for latency histograms.
    pub fn route(&self, fast_paths: bool) -> EvalRoute {
        if fast_paths && !matches!(self.shape, Shape::Other) {
            EvalRoute::FastPath
        } else if self.fallback {
            EvalRoute::Fallback
        } else {
            EvalRoute::BitParallel
        }
    }

    /// Approximate heap footprint, for cache byte accounting.
    pub fn size_bytes(&self) -> usize {
        let tables = self.bp.as_ref().map_or(0, BitParallel::size_bytes)
            + self.bp_rev.as_ref().map_or(0, BitParallel::size_bytes);
        // The AST is pointer-heavy; charge a flat word-count estimate per
        // literal occurrence plus the enum spine.
        let ast = 64 + 48 * self.expr.literal_count().max(1);
        std::mem::size_of::<Self>() + tables + ast
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(l: Label) -> Label {
        if l < 8 {
            l + 8
        } else {
            l - 8
        }
    }

    #[test]
    fn routes_and_keys() {
        let single = Regex::label(1);
        let p = PreparedQuery::compile(&single, &inv, 8).unwrap();
        assert_eq!(p.route(true), EvalRoute::FastPath);
        assert_eq!(p.route(false), EvalRoute::BitParallel);
        assert!(!p.uses_fallback());
        assert_eq!(p.key(), "1");

        let star = Regex::Star(Box::new(Regex::label(1)));
        let p = PreparedQuery::compile(&star, &inv, 8).unwrap();
        assert_eq!(p.route(true), EvalRoute::BitParallel);
        assert!(p.tables().is_some());
        assert!(p.size_bytes() > 0);
    }

    #[test]
    fn key_normalizes_structure() {
        // a/(b) and (a)/b parse to the same AST; the key is the canonical
        // rendering of that AST, independent of surface parentheses.
        let e1 = Regex::concat(Regex::label(0), Regex::label(1));
        let e2 = Regex::concat(Regex::label(0), Regex::label(1));
        assert_eq!(PreparedQuery::cache_key(&e1), PreparedQuery::cache_key(&e2));
        assert_eq!(PreparedQuery::cache_key(&e1), "(0/1)");
    }

    #[test]
    fn fallback_plans_skip_tables() {
        let mut e = Regex::label(0);
        for _ in 1..70 {
            e = Regex::concat(e, Regex::label(0));
        }
        let p = PreparedQuery::compile(&e, &inv, 8).unwrap();
        assert!(p.uses_fallback());
        assert!(p.tables().is_none());
        assert_eq!(p.route(true), EvalRoute::Fallback);
    }
}
