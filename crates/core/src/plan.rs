//! Prepared queries: compile the automaton machinery of a path expression
//! once, evaluate it many times.
//!
//! Compiling a 2RPQ means fusing label classes, building the Glushkov
//! position automaton for the expression *and* for its reversal `Ê`
//! (§4.4 needs both directions), and materializing the split bit-parallel
//! transition tables (§3.3). None of that depends on the query's
//! endpoints, so a serving layer can key compiled plans by the
//! *normalized pattern* — [`PreparedQuery::cache_key`] — and share one
//! [`PreparedQuery`] across any number of concurrent workers: the type is
//! immutable after construction (`Send + Sync`), and
//! [`RpqEngine::evaluate_prepared`](crate::RpqEngine::evaluate_prepared)
//! only reads it.

use automata::{BitParallel, Glushkov, Label, Regex};

use crate::fastpath::{self, Shape};
use crate::QueryError;

/// Which evaluation route the planner chose — the label a serving layer
/// uses for per-route latency accounting. The choice itself is made by
/// [`crate::planner::plan`] from the query, its endpoints and the
/// ring's selectivity statistics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalRoute {
    /// A §5 fast-path shape (single label, disjunction, two-step
    /// concatenation) evaluated with plain backward search.
    FastPath,
    /// The general §4 bit-parallel product-graph traversal.
    BitParallel,
    /// Rare-label splitting (§2/§6): enumerate the edges of a rare
    /// mandatory label and complete the prefix/suffix from each edge's
    /// endpoints. Variable-to-variable queries only.
    Split,
    /// The explicit-state fallback for expressions beyond the word width.
    Fallback,
}

impl EvalRoute {
    /// Every route, in metrics-index order (see [`Self::index`]).
    pub const ALL: [EvalRoute; 4] = [
        EvalRoute::FastPath,
        EvalRoute::BitParallel,
        EvalRoute::Split,
        EvalRoute::Fallback,
    ];

    /// Stable lowercase name (used as a metrics key).
    pub fn name(self) -> &'static str {
        match self {
            EvalRoute::FastPath => "fastpath",
            EvalRoute::BitParallel => "bitparallel",
            EvalRoute::Split => "split",
            EvalRoute::Fallback => "fallback",
        }
    }

    /// Dense index into per-route tables (`ALL[route.index()] == route`).
    pub fn index(self) -> usize {
        match self {
            EvalRoute::FastPath => 0,
            EvalRoute::BitParallel => 1,
            EvalRoute::Split => 2,
            EvalRoute::Fallback => 3,
        }
    }
}

/// A compiled path expression: everything `evaluate` derives from the
/// regex alone, ready to be shared (it is immutable) and re-anchored at
/// arbitrary endpoints.
#[derive(Clone, Debug)]
pub struct PreparedQuery {
    /// The original expression (the fallback route and [`Self::cache_key`]
    /// work on this form).
    expr: Regex,
    /// The §5 fast-path classification of `expr`.
    shape: Shape,
    /// Whether the expression exceeds the bit-parallel word width.
    fallback: bool,
    /// Bit-parallel tables for the fused expression (absent on fallback).
    bp: Option<BitParallel>,
    /// Bit-parallel tables for the reversed-and-inverted expression.
    bp_rev: Option<BitParallel>,
    /// The §3.3 vertical split width the tables were built with.
    bp_split_width: usize,
}

impl PreparedQuery {
    /// Compiles `expr`. `inv` is the ring's label involution `p ↔ p̂`
    /// (used to reverse the two-way expression), `bp_split_width` the
    /// §3.3 vertical split `d` of the bit-parallel transition tables
    /// (unrelated to rare-label splitting).
    pub fn compile(
        expr: &Regex,
        inv: &impl Fn(Label) -> Label,
        bp_split_width: usize,
    ) -> Result<Self, QueryError> {
        let shape = fastpath::shape_of(expr);
        // Both traversal directions are compiled eagerly: a plan is
        // shared and re-anchored at arbitrary endpoints, so it cannot
        // know which direction later calls need (one-shot anchored
        // queries pay one unused table build — a few microseconds
        // against the traversal they precede).
        let fused = expr.fuse_classes();
        let fallback = crate::fallback::needs_fallback_fused(&fused);
        let (bp, bp_rev) = if fallback {
            (None, None)
        } else {
            let rev = fused.reversed(inv);
            let g = Glushkov::new(&fused)?;
            let g_rev = Glushkov::new(&rev)?;
            (
                Some(BitParallel::with_split_width(&g, bp_split_width)),
                Some(BitParallel::with_split_width(&g_rev, bp_split_width)),
            )
        };
        Ok(Self {
            expr: expr.clone(),
            shape,
            fallback,
            bp,
            bp_rev,
            bp_split_width,
        })
    }

    /// The normalized pattern key: the canonical fully-parenthesized
    /// rendering of an id-level expression. Two surface strings that parse
    /// to the same expression (whitespace, redundant parentheses, IRI
    /// prefixes resolved to the same predicate ids) share one key, hence
    /// one cached plan.
    pub fn cache_key(expr: &Regex) -> String {
        expr.to_string()
    }

    /// This plan's own normalized key.
    pub fn key(&self) -> String {
        Self::cache_key(&self.expr)
    }

    /// The original expression.
    pub fn expr(&self) -> &Regex {
        &self.expr
    }

    /// The fast-path classification.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Whether evaluation goes through the explicit-state fallback.
    pub fn uses_fallback(&self) -> bool {
        self.fallback
    }

    /// The §3.3 vertical split width the bit-parallel tables were built
    /// with (evaluation uses the prebuilt tables, not the per-call
    /// option). Unrelated to rare-label splitting.
    pub fn bp_split_width(&self) -> usize {
        self.bp_split_width
    }

    /// Both directions' transition tables (absent on the fallback
    /// route). The planner reads these for its cost estimates.
    pub(crate) fn tables(&self) -> Option<(&BitParallel, &BitParallel)> {
        Some((self.bp.as_ref()?, self.bp_rev.as_ref()?))
    }

    /// Approximate heap footprint, for cache byte accounting.
    pub fn size_bytes(&self) -> usize {
        let tables = self.bp.as_ref().map_or(0, BitParallel::size_bytes)
            + self.bp_rev.as_ref().map_or(0, BitParallel::size_bytes);
        // The AST is pointer-heavy; charge a flat word-count estimate per
        // literal occurrence plus the enum spine.
        let ast = 64 + 48 * self.expr.literal_count().max(1);
        std::mem::size_of::<Self>() + tables + ast
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(l: Label) -> Label {
        if l < 8 {
            l + 8
        } else {
            l - 8
        }
    }

    #[test]
    fn routes_and_keys() {
        let single = Regex::label(1);
        let p = PreparedQuery::compile(&single, &inv, 8).unwrap();
        assert!(!p.uses_fallback());
        assert_eq!(p.key(), "1");
        assert!(!matches!(p.shape(), Shape::Other));

        let star = Regex::Star(Box::new(Regex::label(1)));
        let p = PreparedQuery::compile(&star, &inv, 8).unwrap();
        assert!(matches!(p.shape(), Shape::Other));
        assert!(p.tables().is_some());
        assert!(p.size_bytes() > 0);
    }

    #[test]
    fn route_names_and_indices_are_dense() {
        for (i, r) in EvalRoute::ALL.into_iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(EvalRoute::Split.name(), "split");
    }

    #[test]
    fn key_normalizes_structure() {
        // a/(b) and (a)/b parse to the same AST; the key is the canonical
        // rendering of that AST, independent of surface parentheses.
        let e1 = Regex::concat(Regex::label(0), Regex::label(1));
        let e2 = Regex::concat(Regex::label(0), Regex::label(1));
        assert_eq!(PreparedQuery::cache_key(&e1), PreparedQuery::cache_key(&e2));
        assert_eq!(PreparedQuery::cache_key(&e1), "(0/1)");
    }

    #[test]
    fn fallback_plans_skip_tables() {
        let mut e = Regex::label(0);
        for _ in 1..70 {
            e = Regex::concat(e, Regex::label(0));
        }
        let p = PreparedQuery::compile(&e, &inv, 8).unwrap();
        assert!(p.uses_fallback());
        assert!(p.tables().is_none());
    }
}
