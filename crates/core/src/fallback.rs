//! Large-expression fallback: expressions with more than 63 literal
//! occurrences do not fit one machine word, the regime §3.3 handles by
//! splitting `D` across `⌈(m+1)/w⌉` words at an `O(m/w)` slowdown. Rather
//! than multi-word bit-parallelism, this module evaluates such queries
//! with an explicit-state-set product-graph BFS that reads its adjacency
//! from the ring (per-label backward-search steps) — same answers, no
//! position limit, proportionally slower; the engine switches to it
//! automatically.

use automata::ast::Lit;
use automata::{Nfa, Regex};
use ring::{Id, Ring};
use std::collections::VecDeque;
use std::time::Instant;
use succinct::util::FxHashSet;

use crate::query::{EngineOptions, QueryOutput, RpqQuery, Term};
use crate::source::MergedView;
use crate::QueryError;

/// Evaluates `query` with the explicit-state fallback over the pure
/// ring.
pub fn evaluate(
    ring: &Ring,
    query: &RpqQuery,
    opts: &EngineOptions,
) -> Result<QueryOutput, QueryError> {
    evaluate_view(&MergedView::ring_only(ring), query, opts)
}

/// Evaluates `query` with the explicit-state fallback over a merged
/// source: every expansion step enumerates live edges (ring minus
/// tombstones plus delta adds).
pub fn evaluate_view(
    view: &MergedView<'_>,
    query: &RpqQuery,
    opts: &EngineOptions,
) -> Result<QueryOutput, QueryError> {
    let ring = view.ring;
    let deadline = opts.timeout.map(|t| Instant::now() + t);
    let inv = |l: Id| ring.inverse_label(l);
    let mut out = QueryOutput::default();
    match (query.subject, query.object) {
        (Term::Const(s), Term::Var) => {
            let nfa = Nfa::from_regex(&query.expr);
            forward_bfs(view, &nfa, s, None, opts, deadline, &mut out, |s, r| (s, r));
        }
        (Term::Var, Term::Const(o)) => {
            let nfa = Nfa::from_regex(&query.expr.reversed(&inv));
            forward_bfs(view, &nfa, o, None, opts, deadline, &mut out, |o, r| (r, o));
        }
        (Term::Const(s), Term::Const(o)) => {
            let nfa = Nfa::from_regex(&query.expr);
            forward_bfs(view, &nfa, s, Some(o), opts, deadline, &mut out, |s, o| {
                (s, o)
            });
        }
        (Term::Var, Term::Var) => {
            // Per-source runs over existing nodes, like the classical ALP.
            // The node budget is cumulative: each per-source run gets what
            // the previous ones left over.
            let nfa = Nfa::from_regex(&query.expr);
            let mut pairs: FxHashSet<(Id, Id)> = FxHashSet::default();
            for s in 0..view.n_nodes() {
                if out.timed_out || out.truncated || out.budget_exhausted {
                    break;
                }
                if !view.node_exists(s) {
                    continue;
                }
                let sub_opts = EngineOptions {
                    node_budget: opts
                        .node_budget
                        .map(|nb| nb.saturating_sub(out.stats.product_nodes)),
                    ..*opts
                };
                let mut sub = QueryOutput::default();
                forward_bfs(
                    view,
                    &nfa,
                    s,
                    None,
                    &sub_opts,
                    deadline,
                    &mut sub,
                    |s, r| (s, r),
                );
                pairs.extend(sub.pairs);
                out.timed_out |= sub.timed_out;
                out.budget_exhausted |= sub.budget_exhausted;
                out.stats.add(&sub.stats);
                if pairs.len() >= opts.limit {
                    out.truncated = true;
                }
            }
            out.pairs = pairs.into_iter().collect();
        }
    }
    out.stats.reported = out.pairs.len() as u64;
    Ok(out)
}

/// BFS over `(node, nfa state)` reading edges from the merged source:
/// outgoing edges of `v` labeled `p` are the (live) subjects of `p̂`
/// arriving at `v`.
#[allow(clippy::too_many_arguments)]
fn forward_bfs(
    view: &MergedView<'_>,
    nfa: &Nfa,
    start: Id,
    target: Option<Id>,
    opts: &EngineOptions,
    deadline: Option<Instant>,
    out: &mut QueryOutput,
    pair_of: impl Fn(Id, Id) -> (Id, Id),
) {
    let ring = view.ring;
    if !view.node_exists(start) {
        return;
    }
    // Labels of the completed alphabet each NFA literal can use, resolved
    // once (negated classes expand against the live alphabet; commits
    // never extend it — alphabet growth rebuilds the ring).
    let alphabet: Vec<Id> = (0..ring.n_preds()).collect();
    let mut visited: FxHashSet<(Id, u32)> = FxHashSet::default();
    let mut reported: FxHashSet<Id> = FxHashSet::default();
    let mut queue: VecDeque<(Id, u32)> = VecDeque::new();
    visited.insert((start, nfa.initial as u32));
    queue.push_back((start, nfa.initial as u32));
    let mut pops = 0u64;
    let mut step_buf: Vec<Id> = Vec::new();
    while let Some((v, q)) = queue.pop_front() {
        pops += 1;
        out.stats.bfs_steps += 1;
        if let Some(dl) = deadline {
            if pops.is_multiple_of(256) && Instant::now() >= dl {
                out.timed_out = true;
                return;
            }
        }
        if let Some(nb) = opts.node_budget {
            if out.stats.product_nodes >= nb {
                out.budget_exhausted = true;
                return;
            }
        }
        if nfa.accepting[q as usize] && reported.insert(v) {
            out.stats.reported += 1;
            match target {
                Some(t) if t != v => {}
                _ => {
                    out.pairs.push(pair_of(start, v));
                    if target.is_some() {
                        return;
                    }
                    if out.pairs.len() >= opts.limit {
                        out.truncated = true;
                        return;
                    }
                }
            }
        }
        for (lit, q2) in &nfa.transitions[q as usize] {
            let mut follow_label = |p: Id| {
                // v --p--> w  ⟺  w --p̂--> v in the completed graph:
                // enumerate the live subjects of p̂ into v.
                let pi = ring.inverse_label(p);
                view.subjects_into(v, pi, &mut step_buf);
                for &w in &step_buf {
                    out.stats.product_edges += 1;
                    if visited.insert((w, *q2 as u32)) {
                        out.stats.product_nodes += 1;
                        queue.push_back((w, *q2 as u32));
                    }
                }
            };
            match lit {
                Lit::Label(p) => follow_label(*p),
                Lit::Class(ps) => {
                    for &p in ps {
                        if p < ring.n_preds() {
                            follow_label(p);
                        }
                    }
                }
                Lit::NegClass(_) => {
                    for &p in &alphabet {
                        if lit.matches(p) {
                            follow_label(p);
                        }
                    }
                }
            }
        }
    }
}

/// Whether an expression needs the fallback (more positions than the
/// bit-parallel word holds).
pub fn needs_fallback(expr: &Regex) -> bool {
    needs_fallback_fused(&expr.fuse_classes())
}

/// The same test on an already class-fused expression — the single
/// definition of the word-width regime boundary (`PreparedQuery` reuses
/// it on the fused form it builds anyway).
pub fn needs_fallback_fused(fused: &Regex) -> bool {
    fused.literal_count() > 63
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::evaluate_naive;
    use ring::ring::RingOptions;
    use ring::{Graph, Triple};

    fn chain_graph(n: u64) -> Graph {
        Graph::from_triples((0..n - 1).map(|i| Triple::new(i, 0, i + 1)).collect())
    }

    /// A 70-literal concatenation: over the 63-position limit.
    fn long_expr(k: usize) -> Regex {
        let mut e = Regex::label(0);
        for _ in 1..k {
            e = Regex::concat(e, Regex::label(0));
        }
        e
    }

    #[test]
    fn needs_fallback_detection() {
        assert!(!needs_fallback(&long_expr(63)));
        assert!(needs_fallback(&long_expr(64)));
        // Fused classes count once.
        let alt = (0..70).map(Regex::label).reduce(Regex::alt).unwrap();
        assert!(!needs_fallback(&alt));
    }

    #[test]
    fn long_chain_walks_exactly() {
        // A 70-step path on an 80-node chain has exactly one match.
        let g = chain_graph(80);
        let ring = Ring::build(&g, RingOptions::default());
        let q = RpqQuery::new(Term::Const(0), long_expr(70), Term::Var);
        let out = evaluate(&ring, &q, &EngineOptions::default()).unwrap();
        assert_eq!(out.sorted_pairs(), vec![(0, 70)]);
        assert_eq!(out.sorted_pairs(), evaluate_naive(&g, &q));
    }

    #[test]
    fn fallback_matches_oracle_on_all_shapes() {
        let g = Graph::from_triples(vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 1, 0),
            Triple::new(2, 0, 3),
        ]);
        let ring = Ring::build(&g, RingOptions::default());
        // A >63-literal expression with real structure: 64 copies of
        // (a|^a)? then b.
        let step = Regex::Opt(Box::new(Regex::alt(Regex::label(0), Regex::label(2))));
        let mut e = step.clone();
        for _ in 1..64 {
            e = Regex::concat(e, step.clone());
        }
        e = Regex::concat(e, Regex::label(1));
        assert!(needs_fallback(&e));
        for (s, o) in [
            (Term::Var, Term::Var),
            (Term::Const(1), Term::Var),
            (Term::Var, Term::Const(0)),
            (Term::Const(1), Term::Const(0)),
        ] {
            let q = RpqQuery::new(s, e.clone(), o);
            let out = evaluate(&ring, &q, &EngineOptions::default()).unwrap();
            assert_eq!(out.sorted_pairs(), evaluate_naive(&g, &q), "{s:?} {o:?}");
        }
    }
}
