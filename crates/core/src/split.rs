//! Rare-label splitting: evaluate `E1/p/E2` from the `p`-edges outward.
//!
//! §2 describes the strategy (Koschmieder & Leser \[30\]): when a
//! concatenation contains a label `p` with few edges, every matching path
//! must cross one of them, so enumerate the `p`-edges `(u, p, v)` and
//! complete each side — sources matching `E1` into `u` (a backward run)
//! and targets matching `E2` out of `v` (a backward run of `Ê2`). §6
//! notes the ring permits "running the NFA forwards or backwards from
//! those labels".
//!
//! The planner ([`crate::planner`]) picks this route —
//! [`crate::EvalRoute::Split`] — for variable-to-variable queries whose
//! rarest mandatory label undercuts the two-pass strategy's first
//! expansion, and
//! [`RpqEngine::evaluate_prepared`](crate::RpqEngine::evaluate_prepared)
//! executes it through the crate-internal `evaluate_split_in`:
//! sub-queries run on the *caller's* engine with the node budget and
//! deadline shared cumulatively across every per-edge completion.

use automata::Regex;
use ring::{Id, Ring};
use std::time::Instant;
use succinct::util::FxHashMap;

use crate::engine::RpqEngine;
use crate::pairbuf::PairBuffer;
use crate::plan::PreparedQuery;
use crate::query::{EngineOptions, QueryOutput, Term};
use crate::QueryError;

/// A split of a top-level concatenation `E = prefix / label / suffix`
/// (either side may be `ε`).
#[derive(Clone, Debug)]
pub struct Split {
    /// The part before the split label.
    pub prefix: Regex,
    /// The split label (a plain literal).
    pub label: Id,
    /// The part after the split label.
    pub suffix: Regex,
}

/// All ways to split `expr` at a top-level plain-label factor.
pub fn split_candidates(expr: &Regex) -> Vec<Split> {
    fn flatten<'e>(e: &'e Regex, out: &mut Vec<&'e Regex>) {
        match e {
            Regex::Concat(a, b) => {
                flatten(a, out);
                flatten(b, out);
            }
            _ => out.push(e),
        }
    }
    fn reassemble(parts: &[&Regex]) -> Regex {
        parts
            .iter()
            .cloned()
            .cloned()
            .reduce(Regex::concat)
            .unwrap_or(Regex::Epsilon)
    }
    let mut factors = Vec::new();
    flatten(expr, &mut factors);
    let mut out = Vec::new();
    for (i, f) in factors.iter().enumerate() {
        if let Regex::Literal(automata::ast::Lit::Label(p)) = f {
            out.push(Split {
                prefix: reassemble(&factors[..i]),
                label: *p,
                suffix: reassemble(&factors[i + 1..]),
            });
        }
    }
    out
}

/// Picks the candidate whose label has the smallest cardinality.
pub fn best_split(ring: &Ring, expr: &Regex) -> Option<Split> {
    best_split_with(&crate::stats::RingStatistics::new(ring), expr)
}

/// Like [`best_split`], but counting **live** cardinalities through a
/// statistics provider (delta-adjusted when the source has an overlay) —
/// the variant the planner consults.
pub fn best_split_with(stats: &crate::stats::RingStatistics<'_>, expr: &Regex) -> Option<Split> {
    split_candidates(expr)
        .into_iter()
        .filter(|s| s.label < stats.ring().n_preds())
        .min_by_key(|s| stats.pred_cardinality(s.label))
}

/// Evaluates the variable-to-variable query `(x, prefix/label/suffix, y)`
/// on a fresh engine over `ring`. Convenience wrapper for standalone
/// use (examples, property tests); the engine's own dispatch goes
/// through the crate-internal `evaluate_split_in` so the split route
/// shares the caller's mask tables, budget and deadline.
pub fn evaluate_split(
    ring: &Ring,
    split: &Split,
    opts: &EngineOptions,
) -> Result<QueryOutput, QueryError> {
    let deadline = opts.timeout.map(|t| Instant::now() + t);
    evaluate_split_in(&mut RpqEngine::new(ring), split, opts, deadline)
}

/// Evaluates a split on the caller's engine, enumerating the label's
/// edges and completing both sides with anchored sub-queries, caching
/// per-endpoint sub-results.
///
/// Budgets are cumulative: each sub-query runs under the node budget the
/// previous ones left over, and `deadline` (derived once from
/// `opts.timeout` by the caller) bounds the whole split, not each
/// completion. Sub-queries plan normally — any forced route in `opts`
/// applies to the split decision already made, not to the (anchored,
/// hence unsplittable) sides.
///
/// Produces exactly the default engine's answer set when no run hits a
/// limit; under truncation the strategies keep different (equally valid)
/// subsets of the answer set, with the same flags raised.
pub(crate) fn evaluate_split_in(
    engine: &mut RpqEngine<'_>,
    split: &Split,
    opts: &EngineOptions,
    deadline: Option<Instant>,
) -> Result<QueryOutput, QueryError> {
    let ring = engine.ring();
    let inv = |l: Id| ring.inverse_label(l);
    // Compile each non-trivial side once; every per-edge completion
    // re-anchors the same prepared query.
    let prefix_plan = (!matches!(split.prefix, Regex::Epsilon))
        .then(|| PreparedQuery::compile(&split.prefix, &inv, opts.bp_split_width))
        .transpose()?;
    let suffix_plan = (!matches!(split.suffix, Regex::Epsilon))
        .then(|| PreparedQuery::compile(&split.suffix, &inv, opts.bp_split_width))
        .transpose()?;

    let mut out = QueryOutput::default();
    let mut pairs = PairBuffer::new();
    let mut sources_cache: FxHashMap<Id, Vec<Id>> = FxHashMap::default();
    let mut targets_cache: FxHashMap<Id, Vec<Id>> = FxHashMap::default();

    // Sub-queries inherit the caller's limits but plan on their own (the
    // split decision is already made) and share the remaining budget.
    let sub_opts = |out: &QueryOutput, deadline: Option<Instant>| EngineOptions {
        forced_route: None,
        node_budget: opts
            .node_budget
            .map(|nb| nb.saturating_sub(out.stats.product_nodes)),
        timeout: deadline.map(|dl| dl.saturating_duration_since(Instant::now())),
        ..*opts
    };

    // Enumerate the split label's edges (u, p, v) — through the merged
    // view whenever the engine's source carries a delta overlay or shard
    // parts beyond the base ring.
    let view = engine.view();
    let delta = engine.layered();
    let mut subjects: Vec<Id> = Vec::new();
    if delta {
        view.subjects_of_pred(split.label, &mut subjects);
    } else {
        let (b, e) = ring.pred_range(split.label);
        ring.l_s()
            .range_distinct(b, e, &mut |u, _, _| subjects.push(u));
    }

    'outer: for u in subjects {
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                out.timed_out = true;
                break;
            }
        }
        if out.budget_exhausted {
            break;
        }
        // Sources reaching u through the prefix.
        if let std::collections::hash_map::Entry::Vacant(entry) = sources_cache.entry(u) {
            let srcs = match &prefix_plan {
                None => vec![u],
                Some(plan) => {
                    let mut sub = engine.evaluate_prepared(
                        plan,
                        Term::Var,
                        Term::Const(u),
                        &sub_opts(&out, deadline),
                    )?;
                    absorb(&mut out, &mut sub);
                    sub.pairs.into_iter().map(|(s, _)| s).collect()
                }
            };
            entry.insert(srcs);
        }
        if sources_cache[&u].is_empty() {
            continue;
        }

        // Objects v of (u, p, v): narrow the label's L_s block to u's
        // occurrences; the backward step lands on their objects in L_o.
        // With a delta, objects are the live subjects of p̂ into u.
        let mut objects: Vec<Id> = Vec::new();
        if delta {
            view.subjects_into(u, ring.inverse_label(split.label), &mut objects);
        } else {
            let vr = ring.backward_step_by_subject(ring.pred_range(split.label), u);
            ring.l_o()
                .range_distinct(vr.0, vr.1, &mut |v, _, _| objects.push(v));
        }

        for v in objects {
            if out.budget_exhausted || out.timed_out {
                break 'outer;
            }
            if let std::collections::hash_map::Entry::Vacant(entry) = targets_cache.entry(v) {
                let tgts = match &suffix_plan {
                    None => vec![v],
                    Some(plan) => {
                        let mut sub = engine.evaluate_prepared(
                            plan,
                            Term::Const(v),
                            Term::Var,
                            &sub_opts(&out, deadline),
                        )?;
                        absorb(&mut out, &mut sub);
                        sub.pairs.into_iter().map(|(_, o)| o).collect()
                    }
                };
                entry.insert(tgts);
            }
            for &s in &sources_cache[&u] {
                for &o in &targets_cache[&v] {
                    pairs.push((s, o));
                    // Amortized probe; the post-loop settle is exact.
                    if pairs.maybe_reached(opts.limit) {
                        pairs.truncate_distinct(opts.limit);
                        out.truncated = true;
                        break 'outer;
                    }
                }
            }
        }
    }
    if pairs.distinct_reached(opts.limit) {
        pairs.truncate_distinct(opts.limit);
        out.truncated = true;
    }
    pairs.compact();
    out.stats.pair_compactions += pairs.compactions();
    out.pairs = pairs.into_sorted_vec();
    out.stats.reported = out.pairs.len() as u64;
    Ok(out)
}

/// Folds a sub-query's statistics and limit flags into the split's
/// accumulated output (a truncated or budget-capped side means the
/// overall answer set may be incomplete too). When the sub-query was
/// profiled (split sub-queries inherit the caller's
/// [`EngineOptions::profile`]), its per-level samples are moved into a
/// partial profile on `out`, which `evaluate_prepared` folds into the
/// final one — so a split's profile shows the concatenated levels of
/// every completion it ran.
fn absorb(out: &mut QueryOutput, sub: &mut QueryOutput) {
    out.stats.add(&sub.stats);
    out.timed_out |= sub.timed_out;
    out.truncated |= sub.truncated;
    out.budget_exhausted |= sub.budget_exhausted;
    if let Some(p) = sub.profile.take() {
        out.profile
            .get_or_insert_with(Default::default)
            .levels
            .extend(p.levels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::evaluate_naive;
    use crate::query::RpqQuery;
    use ring::ring::RingOptions;
    use ring::{Graph, Triple};

    fn graph() -> Graph {
        Graph::from_triples(vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 1, 3), // the rare b edge
            Triple::new(3, 2, 4),
            Triple::new(4, 2, 5),
            Triple::new(5, 2, 3),
            Triple::new(0, 0, 0),
        ])
    }

    fn star(l: u64) -> Regex {
        Regex::Star(Box::new(Regex::label(l)))
    }

    #[test]
    fn candidates_enumerate_plain_factors() {
        // a*/b/c* has exactly one plain-label factor: b.
        let e = Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2));
        let cands = split_candidates(&e);
        assert_eq!(cands.len(), 1);
        assert_eq!(cands[0].label, 1);
        assert_eq!(cands[0].prefix, star(0));
        assert_eq!(cands[0].suffix, star(2));
        // b alone splits into (ε, b, ε).
        let cands = split_candidates(&Regex::label(1));
        assert_eq!(cands.len(), 1);
        assert!(matches!(cands[0].prefix, Regex::Epsilon));
        assert!(matches!(cands[0].suffix, Regex::Epsilon));
        // A pure star has no split point.
        assert!(split_candidates(&star(0)).is_empty());
    }

    #[test]
    fn best_split_picks_rarest() {
        let ring = Ring::build(&graph(), RingOptions::default());
        // a/b/c: b has 1 edge, a has 3, c has 3.
        let e = Regex::concat(
            Regex::concat(Regex::label(0), Regex::label(1)),
            Regex::label(2),
        );
        let best = best_split(&ring, &e).unwrap();
        assert_eq!(best.label, 1);
    }

    #[test]
    fn split_evaluation_matches_engine() {
        let g = graph();
        let ring = Ring::build(&g, RingOptions::default());
        let opts = EngineOptions::default();
        // a*/b/c* — the canonical rare-label query from §2.
        let e = Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2));
        let split = best_split(&ring, &e).unwrap();
        let got = evaluate_split(&ring, &split, &opts).unwrap();
        let expected = evaluate_naive(&g, &RpqQuery::new(Term::Var, e, Term::Var));
        assert_eq!(got.sorted_pairs(), expected);
        assert!(!expected.is_empty());
    }

    #[test]
    fn split_with_inverse_sides_matches() {
        let g = graph();
        let ring = Ring::build(&g, RingOptions::default());
        let opts = EngineOptions::default();
        // ^a*/b/(c|^c)* exercises inverse labels on both sides.
        let e = Regex::concat(
            Regex::concat(star(3), Regex::label(1)),
            Regex::Star(Box::new(Regex::alt(Regex::label(2), Regex::label(5)))),
        );
        let split = best_split(&ring, &e).unwrap();
        assert_eq!(split.label, 1);
        let got = evaluate_split(&ring, &split, &opts).unwrap();
        let expected = evaluate_naive(&g, &RpqQuery::new(Term::Var, e, Term::Var));
        assert_eq!(got.sorted_pairs(), expected);
    }
}
