#![warn(missing_docs)]

//! **Ring-RPQ**: regular path queries on the ring, the primary contribution
//! of "Time- and Space-Efficient Regular Path Queries on Graphs"
//! (Arroyuelo, Hogan, Navarro, Rojas-Ledesma; arXiv:2111.04556).
//!
//! The engine ([`RpqEngine`]) evaluates 2RPQs `(s, E, o)` directly on the
//! succinct [`ring::Ring`] index by traversing, backwards, exactly the
//! subgraph `G'_E` of the product graph that the query induces:
//!
//! 1. **Part one** (§4.1): from the `L_p` range of the current object(s),
//!    a B-masked wavelet-matrix traversal finds every distinct predicate
//!    that (a) reaches the object and (b) leads to an active NFA state —
//!    `D & B[v] ≠ 0` prunes whole subtrees, so no time is spent on
//!    irrelevant labels (Fact 1).
//! 2. **Part two** (§4.2): each surviving predicate's backward-search range
//!    of `L_s` is traversed with a visited-mask filter, yielding every
//!    subject that contributes *new* NFA states; the bit-parallel reverse
//!    step `D ← T'[D & B[p]]` (Eq. 2) applies to all of them at once.
//! 3. **Part three** (§4.3): each fresh subject is re-interpreted as an
//!    object via `C_o`, and the BFS continues; subjects whose state set
//!    contains the initial state are reported as answers.
//!
//! All four query shapes of §4.4 are supported; route, traversal
//! direction and rare-label splits are chosen by the shared cost-based
//! [`planner`], which every layer — the engine, [`explain`], a serving
//! layer's metrics — executes or renders (one decision, no divergence).
//!
//! Modules: [`query`] (query types, options, outputs, statistics),
//! [`engine`] (the traversal), [`planner`] (the §4.3/§6 cost-based route
//! and direction choice), [`fastpath`] (§5 specializations), [`split`]
//! (§2 rare-label splitting), [`stats`] (§6 on-the-fly selectivity),
//! [`oracle`] (a naive reference evaluator for differential testing).

pub mod engine;
pub mod explain;
pub mod fallback;
pub mod fastpath;
pub mod jsonw;
mod merged;
pub mod oracle;
pub mod pairbuf;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod profile;
pub mod query;
pub mod source;
pub mod split;
pub mod stats;

pub use engine::RpqEngine;
pub use plan::{EvalRoute, PreparedQuery};
pub use planner::{Direction, Plan};
pub use profile::{LevelSample, QueryProfile};
pub use query::{EngineOptions, QueryOutput, RpqQuery, Term, TraversalStats};
pub use source::{MergedView, ShardPart, ShardedSource, SourceSnapshot, TripleSource};

/// Errors from query evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// The regular expression could not be compiled.
    Automaton(automata::AutomatonError),
    /// A constant term is outside the graph's node universe.
    NodeOutOfRange(ring::Id),
    /// The query needs inverse edges but the ring was built without them.
    InversesRequired,
    /// The evaluation machinery itself failed (a panicked batch worker,
    /// a poisoned engine) — not a property of the query. The payload is
    /// a human-readable diagnostic.
    Internal(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Automaton(e) => write!(f, "automaton construction failed: {e}"),
            QueryError::NodeOutOfRange(id) => write!(f, "node id {id} out of range"),
            QueryError::InversesRequired => {
                write!(f, "query requires a ring built with inverse edges")
            }
            QueryError::Internal(msg) => write!(f, "internal evaluation failure: {msg}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl From<automata::AutomatonError> for QueryError {
    fn from(e: automata::AutomatonError) -> Self {
        QueryError::Automaton(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `Send + Sync` audit: everything a serving layer shares between
    /// worker threads — queries, plans, options, outputs — must be free
    /// of interior mutability. (The engine itself is deliberately *not*
    /// shared: each worker owns one, for its mask tables.)
    #[test]
    fn shared_query_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RpqQuery>();
        assert_send_sync::<PreparedQuery>();
        assert_send_sync::<EngineOptions>();
        assert_send_sync::<QueryOutput>();
        assert_send_sync::<TraversalStats>();
        assert_send_sync::<QueryError>();
        // Engines are Send (movable into a worker thread), one per worker.
        fn assert_send<T: Send>() {}
        assert_send::<RpqEngine<'static>>();
    }
}
