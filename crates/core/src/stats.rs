//! On-the-fly selectivity statistics from the ring's wavelet matrices —
//! the §6 observation that "the wavelet tree offers powerful operations
//! that provide on-the-fly selectivity statistics, which can be used for
//! even more sophisticated query planning".

use automata::Regex;
use ring::delta::DeltaIndex;
use ring::{Id, Ring};

use crate::source::ShardPart;

/// Statistics provider over a ring, optionally adjusted by a committed
/// delta overlay: cardinalities count *live* edges (ring − tombstones +
/// adds), so the planner's cost model follows updates without a rebuild.
///
/// For a sharded source the provider sums over the parts. Every input
/// the planner consumes (`n_triples`, `pred_cardinality`, `in_degree`,
/// `edges_into`) sums **exactly** across a disjoint triple partition, so
/// the chosen plan — and with it the whole evaluation — is identical at
/// any shard count.
pub struct RingStatistics<'r> {
    ring: &'r Ring,
    delta: Option<&'r DeltaIndex>,
    /// Extra shard parts past the base ring (empty when unsharded).
    extra: &'r [ShardPart],
}

impl<'r> RingStatistics<'r> {
    /// Creates the provider over an immutable ring.
    pub fn new(ring: &'r Ring) -> Self {
        Self {
            ring,
            delta: None,
            extra: &[],
        }
    }

    /// Creates the provider over a ring plus a delta overlay (an empty
    /// delta degenerates to [`Self::new`]).
    pub fn with_delta(ring: &'r Ring, delta: Option<&'r DeltaIndex>) -> Self {
        Self {
            ring,
            delta: delta.filter(|d| !d.is_empty()),
            extra: &[],
        }
    }

    /// Creates the provider over a full source: ring, optional delta,
    /// and an optional shard partition (`shards[0].ring` must be `ring`;
    /// an empty slice means unsharded).
    pub fn with_parts(
        ring: &'r Ring,
        delta: Option<&'r DeltaIndex>,
        shards: &'r [ShardPart],
    ) -> Self {
        debug_assert!(
            shards.is_empty() || std::ptr::eq(&*shards[0].ring, ring),
            "shards[0] must be the base ring"
        );
        Self {
            ring,
            delta: delta.filter(|d| !d.is_empty()),
            extra: if shards.is_empty() { &[] } else { &shards[1..] },
        }
    }

    /// The underlying ring (statistics are cheap views over it).
    pub fn ring(&self) -> &'r Ring {
        self.ring
    }

    /// Total triples in the completed graph `G^` (live: delta adds and
    /// tombstones each count twice, once per direction) — the coarse
    /// upper bound a negated-class position or a whole-graph scan
    /// charges.
    pub fn n_triples(&self) -> usize {
        let base = self.ring.n_triples();
        let base = match self.delta {
            None => base,
            Some(d) => (base + 2 * d.n_adds()).saturating_sub(2 * d.n_dels()),
        };
        base + self.extra.iter().map(|p| p.ring.n_triples()).sum::<usize>()
    }

    /// Number of live edges labeled `p`.
    pub fn pred_cardinality(&self, p: Id) -> usize {
        let base = self.ring.pred_cardinality(p);
        let base = match self.delta {
            None => base,
            Some(d) => (base + d.add_count_label(p)).saturating_sub(d.del_count_label(p)),
        };
        base + self
            .extra
            .iter()
            .map(|s| s.ring.pred_cardinality(p))
            .sum::<usize>()
    }

    /// In-degree of `o` (live edges of any label arriving at `o`).
    pub fn in_degree(&self, o: Id) -> usize {
        let base = if o < self.ring.n_nodes() {
            let (b, e) = self.ring.object_range(o);
            e - b
        } else {
            0
        };
        let base = match self.delta {
            None => base,
            // A node's completed in-edges mirror its completed
            // out-edges' incidence: adds/dels at `o` as canonical object
            // or subject.
            Some(d) => (base + d.added_incidence(o)).saturating_sub(d.deleted_incidence(o)),
        };
        base + self
            .extra
            .iter()
            .map(|s| {
                if o < s.ring.n_nodes() {
                    let (b, e) = s.ring.object_range(o);
                    e - b
                } else {
                    0
                }
            })
            .sum::<usize>()
    }

    /// Out-degree of `s` (live).
    pub fn out_degree(&self, s: Id) -> usize {
        let base = if s < self.ring.n_nodes() {
            let (b, e) = self.ring.subject_range(s);
            e - b
        } else {
            0
        };
        let base = match self.delta {
            None => base,
            Some(d) => (base + d.added_incidence(s)).saturating_sub(d.deleted_incidence(s)),
        };
        base + self
            .extra
            .iter()
            .map(|part| {
                if s < part.ring.n_nodes() {
                    let (b, e) = part.ring.subject_range(s);
                    e - b
                } else {
                    0
                }
            })
            .sum::<usize>()
    }

    /// Number of **distinct** labels on edges arriving at `o`, in
    /// *O*(log |P|) per distinct label (§6's first example statistic).
    /// Summed per shard, so a label arriving at `o` in several shards
    /// counts once each — an overcount the planner never consumes.
    pub fn distinct_preds_into(&self, o: Id) -> usize {
        let one = |r: &Ring| {
            if o < r.n_nodes() {
                let (b, e) = r.object_range(o);
                r.l_p().count_distinct(b, e)
            } else {
                0
            }
        };
        one(self.ring) + self.extra.iter().map(|s| one(&s.ring)).sum::<usize>()
    }

    /// Number of **distinct** source nodes of edges labeled `p` (§6's
    /// second example statistic). Summed per shard (same overcount
    /// caveat as [`Self::distinct_preds_into`]).
    pub fn distinct_subjects_of(&self, p: Id) -> usize {
        let one = |r: &Ring| {
            let (b, e) = r.pred_range(p);
            r.l_s().count_distinct(b, e)
        };
        one(self.ring) + self.extra.iter().map(|s| one(&s.ring)).sum::<usize>()
    }

    /// Number of live edges labeled `p` arriving at `o` without
    /// enumerating them (a backward-search step is just two ranks; the
    /// delta contributes two binary searches).
    pub fn edges_into(&self, p: Id, o: Id) -> usize {
        let base = if o < self.ring.n_nodes() {
            let (b, e) = self
                .ring
                .backward_step_by_pred(self.ring.object_range(o), p);
            e - b
        } else {
            0
        };
        let base = match self.delta {
            None => base,
            Some(d) => (base + d.add_count_into(o, p)).saturating_sub(d.del_count_into(o, p)),
        };
        base + self
            .extra
            .iter()
            .map(|s| {
                if o < s.ring.n_nodes() {
                    let (b, e) = s.ring.backward_step_by_pred(s.ring.object_range(o), p);
                    e - b
                } else {
                    0
                }
            })
            .sum::<usize>()
    }

    /// Number of edges whose subject lies in the id interval
    /// `[s_lo, s_hi)` among edges labeled `p` — a 2-D count via
    /// [`succinct::WaveletMatrix::range_count_within`].
    pub fn edges_of_pred_from_subject_range(&self, p: Id, s_lo: Id, s_hi: Id) -> usize {
        let one = |r: &Ring| {
            let (b, e) = r.pred_range(p);
            r.l_s().range_count_within(b, e, s_lo, s_hi)
        };
        one(self.ring) + self.extra.iter().map(|s| one(&s.ring)).sum::<usize>()
    }

    /// The rarest plain label mentioned by `expr`, with its cardinality —
    /// the split point the rare-label strategy wants (§2, \[30\]).
    pub fn rarest_label(&self, expr: &Regex) -> Option<(Id, usize)> {
        expr.mentioned_labels()
            .into_iter()
            .filter(|&l| l < self.ring.n_preds())
            .map(|l| (l, self.pred_cardinality(l)))
            .min_by_key(|&(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring::ring::RingOptions;
    use ring::{Graph, Triple};

    fn ring() -> Ring {
        // 0 -a-> 1, 0 -a-> 2, 1 -b-> 2, 2 -b-> 2, 3 -c-> 2
        let g = Graph::from_triples(vec![
            Triple::new(0, 0, 1),
            Triple::new(0, 0, 2),
            Triple::new(1, 1, 2),
            Triple::new(2, 1, 2),
            Triple::new(3, 2, 2),
        ]);
        Ring::build(&g, RingOptions::default())
    }

    #[test]
    fn cardinalities_and_degrees() {
        let r = ring();
        let s = RingStatistics::new(&r);
        assert_eq!(s.pred_cardinality(0), 2);
        assert_eq!(s.pred_cardinality(1), 2);
        assert_eq!(s.pred_cardinality(2), 1);
        // Node 2: incoming a, b, b, c plus inverse edges of its out-edge
        // (2 -b-> 2 contributes ^b into 2 as well).
        assert_eq!(s.out_degree(0), 2);
        assert_eq!(s.in_degree(1), 1 + 1); // a from 0, ^b from 2? no: 1 -b-> 2 gives ^b into 1.
    }

    #[test]
    fn distinct_statistics() {
        let r = ring();
        let s = RingStatistics::new(&r);
        // Labels into node 2: a, b (twice), c, and ^b (from 2 -b-> 2).
        assert_eq!(s.distinct_preds_into(2), 4);
        // Distinct subjects of b: nodes 1 and 2.
        assert_eq!(s.distinct_subjects_of(1), 2);
        assert_eq!(s.edges_into(1, 2), 2);
        assert_eq!(s.edges_into(0, 1), 1);
        assert_eq!(s.edges_into(2, 1), 0);
    }

    #[test]
    fn subject_range_counts() {
        let r = ring();
        let s = RingStatistics::new(&r);
        // Edges labeled a with subject in [0, 1): both a-edges start at 0.
        assert_eq!(s.edges_of_pred_from_subject_range(0, 0, 1), 2);
        assert_eq!(s.edges_of_pred_from_subject_range(0, 1, 4), 0);
        assert_eq!(s.edges_of_pred_from_subject_range(1, 0, 4), 2);
    }

    #[test]
    fn rarest_label_detection() {
        let r = ring();
        let s = RingStatistics::new(&r);
        // a*/c/b*: c is rarest (1 edge).
        let e = Regex::concat(
            Regex::concat(Regex::Star(Box::new(Regex::label(0))), Regex::label(2)),
            Regex::Star(Box::new(Regex::label(1))),
        );
        assert_eq!(s.rarest_label(&e), Some((2, 1)));
        assert_eq!(s.rarest_label(&Regex::Epsilon), None);
    }
}
