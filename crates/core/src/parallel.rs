//! Threaded evaluation: batch parallelism across queries and the shared
//! worker-token pool behind intra-query frontier fan-out.
//!
//! The ring is immutable after construction, so any number of engines can
//! read it concurrently — each worker thread gets its own [`RpqEngine`]
//! (the per-query mask tables are the only mutable state). This is the
//! intra-machine counterpart of the parallel/distributed RPQ frameworks
//! §2 surveys, and what a server embedding the ring would do per client.
//!
//! ## The process-wide helper pool
//!
//! Every parallel region — a batch, a BFS level fanned out by
//! [`EngineOptions::intra_query_threads`], a fast-path sweep — draws its
//! *extra* threads from one global token budget of
//! `available_parallelism − 1` tokens (`acquire_helpers`). The calling
//! thread always participates, so total running threads can never exceed
//! the core count no matter how many queries (or server workers) fan out
//! concurrently; when tokens run dry a region simply degrades to the
//! caller-only sequential path. Tokens are released on drop, making the
//! accounting panic-safe.

use ring::Ring;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::engine::RpqEngine;
use crate::query::{EngineOptions, QueryOutput, RpqQuery};
use crate::source::TripleSource;
use crate::QueryError;

/// The global budget of *extra* worker tokens (the calling thread is
/// always implicit and free). Initialized on first use to
/// `available_parallelism − 1`, overridable with the
/// `RPQ_PARALLEL_POOL` environment variable (useful to exercise real
/// concurrency in tests on small machines, or to fence the engine off a
/// few cores).
static HELPER_TOKENS: OnceLock<AtomicUsize> = OnceLock::new();
static POOL_CAPACITY: OnceLock<usize> = OnceLock::new();

/// The total extra-worker budget of the process-wide pool (see module
/// docs): `available_parallelism − 1`, or the `RPQ_PARALLEL_POOL`
/// override. Observability surfaces (the server's metrics JSON) report
/// it so parallel-efficiency numbers have a denominator.
pub fn pool_capacity() -> usize {
    *POOL_CAPACITY.get_or_init(|| {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        std::env::var("RPQ_PARALLEL_POOL")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or_else(|| cores.saturating_sub(1))
    })
}

fn tokens() -> &'static AtomicUsize {
    HELPER_TOKENS.get_or_init(|| AtomicUsize::new(pool_capacity()))
}

/// Extra-worker tokens currently checked out of the pool — a
/// point-in-time utilization gauge (`pool_capacity()` is the
/// denominator). Exported by the server's metrics endpoints; inherently
/// racy, like any gauge.
pub fn pool_in_use() -> usize {
    pool_capacity().saturating_sub(tokens().load(Ordering::Acquire))
}

/// A grant of extra worker tokens; tokens return to the pool on drop
/// (panic-safe, so an unwinding parallel region cannot leak capacity).
pub struct HelperGrant(usize);

impl HelperGrant {
    /// How many extra threads this grant allows (0 = run caller-only).
    pub fn count(&self) -> usize {
        self.0
    }
}

impl Drop for HelperGrant {
    fn drop(&mut self) {
        if self.0 > 0 {
            tokens().fetch_add(self.0, Ordering::AcqRel);
        }
    }
}

/// Takes up to `want` extra-worker tokens from the process-wide pool
/// (possibly 0 — the caller then runs alone). Never blocks: intra-query
/// parallelism is opportunistic by design, so contention degrades to
/// sequential evaluation instead of queuing.
pub fn acquire_helpers(want: usize) -> HelperGrant {
    if want == 0 {
        return HelperGrant(0);
    }
    let pool = tokens();
    let mut cur = pool.load(Ordering::Acquire);
    loop {
        let take = cur.min(want);
        if take == 0 {
            return HelperGrant(0);
        }
        match pool.compare_exchange_weak(cur, cur - take, Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return HelperGrant(take),
            Err(now) => cur = now,
        }
    }
}

/// Maps `items` chunk-by-chunk on the shared pool and consumes results
/// **in chunk order** — the primitive behind the deterministic fast-path
/// fan-out. `map(chunk_index, chunk)` must be pure with respect to shared
/// state (it runs concurrently); `consume` runs on the caller thread, in
/// ascending chunk order, and returns `false` to stop early (pending
/// speculative chunks are discarded, exactly like the sequential loop
/// never computing them).
///
/// Scheduling is in waves of `4 × workers` chunks so an early stop
/// bounds wasted speculation; within a wave chunks are claimed from an
/// atomic cursor, so skew balances. With an empty grant this degrades to
/// the plain sequential map-consume loop.
pub fn map_chunks_ordered<I, T, M, C>(
    items: &[I],
    chunk_size: usize,
    extra_threads: usize,
    map: M,
    mut consume: C,
) where
    I: Sync,
    T: Send + Sync,
    M: Fn(usize, &[I]) -> T + Sync,
    C: FnMut(T) -> bool,
{
    let grant = acquire_helpers(extra_threads);
    if grant.count() == 0 {
        for (c, chunk) in items.chunks(chunk_size).enumerate() {
            if !consume(map(c, chunk)) {
                return;
            }
        }
        return;
    }
    let n_chunks = items.len().div_ceil(chunk_size);
    let wave = (grant.count() + 1) * 4;
    let mut start = 0;
    while start < n_chunks {
        let end = (start + wave).min(n_chunks);
        let slots: Vec<OnceLock<T>> = (start..end).map(|_| OnceLock::new()).collect();
        let cursor = AtomicUsize::new(start);
        std::thread::scope(|scope| {
            let work = || loop {
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= end {
                    break;
                }
                let lo = c * chunk_size;
                let hi = (lo + chunk_size).min(items.len());
                let _ = slots[c - start].set(map(c, &items[lo..hi]));
            };
            for _ in 0..grant.count().min(end - start - 1) {
                scope.spawn(work);
            }
            work();
        });
        for slot in slots {
            let t = slot
                .into_inner()
                .expect("every chunk of a completed wave is filled");
            if !consume(t) {
                return;
            }
        }
        start = end;
    }
}

/// Evaluates `queries` over `ring` using up to `n_threads` workers
/// (clamped to at least 1), returning one result per query in input
/// order.
///
/// Work is distributed dynamically (an atomic cursor), so skewed query
/// costs — the norm in RPQ logs — balance across workers. A panicking
/// worker is contained: its in-flight query reports
/// [`QueryError::Internal`] and every other query still completes (the
/// calling thread re-claims whatever the dead worker would have run).
pub fn evaluate_batch(
    ring: &Ring,
    queries: &[RpqQuery],
    opts: &EngineOptions,
    n_threads: usize,
) -> Vec<Result<QueryOutput, QueryError>> {
    evaluate_batch_with(ring, queries, opts, n_threads, &|engine, q, opts| {
        engine.evaluate(q, opts)
    })
}

/// [`evaluate_batch`] over any [`TripleSource`] — each worker's engine is
/// built with [`RpqEngine::over`], so delta overlays and shard parts
/// merge into every evaluation exactly as they do single-threaded.
pub fn evaluate_batch_over(
    source: &(impl TripleSource + Sync + ?Sized),
    queries: &[RpqQuery],
    opts: &EngineOptions,
    n_threads: usize,
) -> Vec<Result<QueryOutput, QueryError>> {
    evaluate_batch_core(
        &|| RpqEngine::over(source),
        queries,
        opts,
        n_threads,
        &|engine, q, opts| engine.evaluate(q, opts),
    )
}

/// The generic core of [`evaluate_batch`], with the per-query evaluation
/// injected — the seam the panic-containment tests use.
pub(crate) fn evaluate_batch_with(
    ring: &Ring,
    queries: &[RpqQuery],
    opts: &EngineOptions,
    n_threads: usize,
    eval: &(dyn Fn(&mut RpqEngine, &RpqQuery, &EngineOptions) -> Result<QueryOutput, QueryError>
          + Sync),
) -> Vec<Result<QueryOutput, QueryError>> {
    evaluate_batch_core(&|| RpqEngine::new(ring), queries, opts, n_threads, eval)
}

/// The shared worker loop: one engine per worker (built by
/// `make_engine`), dynamic work claiming, panic containment.
fn evaluate_batch_core<'r>(
    make_engine: &(dyn Fn() -> RpqEngine<'r> + Sync),
    queries: &[RpqQuery],
    opts: &EngineOptions,
    n_threads: usize,
    eval: &(dyn Fn(&mut RpqEngine, &RpqQuery, &EngineOptions) -> Result<QueryOutput, QueryError>
          + Sync),
) -> Vec<Result<QueryOutput, QueryError>> {
    let n = queries.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = n_threads.max(1).min(n);
    let cursor = AtomicUsize::new(0);
    let done: Vec<OnceLock<Result<QueryOutput, QueryError>>> =
        (0..n).map(|_| OnceLock::new()).collect();
    std::thread::scope(|scope| {
        // Helpers run without a panic guard: a panic kills only that
        // worker, and the explicit join below swallows it so the scope
        // does not re-raise. Its in-flight query keeps an empty slot.
        let worker = || {
            let mut engine = make_engine();
            loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let _ = done[i].set(eval(&mut engine, &queries[i], opts));
            }
        };
        let handles: Vec<_> = (1..workers).map(|_| scope.spawn(worker)).collect();
        // The caller participates too, but guards each query so one
        // poisoned evaluation cannot sink the whole batch: on a panic the
        // engine (whose mask tables may be mid-update) is rebuilt.
        let mut engine = make_engine();
        loop {
            let i = cursor.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                break;
            }
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eval(&mut engine, &queries[i], opts)
            }));
            let r = r.unwrap_or_else(|cause| {
                engine = make_engine();
                Err(QueryError::Internal(panic_message(&cause)))
            });
            let _ = done[i].set(r);
        }
        for h in handles {
            // A worker that panicked left its in-flight slot empty; the
            // post-scope sweep converts it. Swallowing the join error is
            // the fix for the old `.expect("worker panicked")` abort.
            let _ = h.join();
        }
    });
    done.into_iter()
        .map(|slot| {
            slot.into_inner().unwrap_or_else(|| {
                Err(QueryError::Internal(
                    "batch worker panicked while evaluating this query".to_string(),
                ))
            })
        })
        .collect()
}

/// Best-effort rendering of a panic payload.
fn panic_message(cause: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = cause.downcast_ref::<&str>() {
        format!("evaluation panicked: {s}")
    } else if let Some(s) = cause.downcast_ref::<String>() {
        format!("evaluation panicked: {s}")
    } else {
        "evaluation panicked".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Term;
    use automata::Regex;
    use ring::ring::RingOptions;
    use ring::{Graph, Triple};

    fn ring() -> Ring {
        let triples = (0..200u64)
            .map(|i| Triple::new(i % 40, i % 3, (i * 7 + 1) % 40))
            .collect();
        Ring::build(&Graph::from_triples(triples), RingOptions::default())
    }

    fn queries() -> Vec<RpqQuery> {
        let mut qs = Vec::new();
        for p in 0..3u64 {
            for anchor in 0..10u64 {
                qs.push(RpqQuery::new(
                    Term::Const(anchor),
                    Regex::Plus(Box::new(Regex::label(p))),
                    Term::Var,
                ));
                qs.push(RpqQuery::new(
                    Term::Var,
                    Regex::concat(Regex::label(p), Regex::Star(Box::new(Regex::label(2 - p)))),
                    Term::Const(anchor),
                ));
            }
        }
        qs
    }

    #[test]
    fn parallel_matches_sequential() {
        let r = ring();
        let qs = queries();
        let opts = EngineOptions::default();
        let mut engine = RpqEngine::new(&r);
        let sequential: Vec<_> = qs
            .iter()
            .map(|q| engine.evaluate(q, &opts).unwrap().sorted_pairs())
            .collect();
        for threads in [1, 2, 4, 7] {
            let parallel = evaluate_batch(&r, &qs, &opts, threads);
            assert_eq!(parallel.len(), qs.len());
            for (i, res) in parallel.into_iter().enumerate() {
                assert_eq!(
                    res.unwrap().sorted_pairs(),
                    sequential[i],
                    "query {i} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn empty_batch_and_errors_propagate() {
        let r = ring();
        let opts = EngineOptions::default();
        assert!(evaluate_batch(&r, &[], &opts, 4).is_empty());
        // Bad query keeps its slot.
        let qs = vec![
            RpqQuery::new(Term::Const(0), Regex::label(0), Term::Var),
            RpqQuery::new(Term::Const(9999), Regex::label(0), Term::Var),
        ];
        let res = evaluate_batch(&r, &qs, &opts, 2);
        assert!(res[0].is_ok());
        assert!(matches!(
            res[1],
            Err(crate::QueryError::NodeOutOfRange(9999))
        ));
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let r = ring();
        let qs = queries();
        let opts = EngineOptions::default();
        let res = evaluate_batch(&r, &qs, &opts, 0);
        assert_eq!(res.len(), qs.len());
        assert!(res.into_iter().all(|r| r.is_ok()));
    }

    /// A worker panicking mid-batch must not abort the process: the
    /// poisoned query reports `Internal` and every other query completes
    /// with the right answer.
    #[test]
    fn worker_panic_is_contained() {
        let r = ring();
        let qs = queries();
        let opts = EngineOptions::default();
        let mut engine = RpqEngine::new(&r);
        let sequential: Vec<_> = qs
            .iter()
            .map(|q| engine.evaluate(q, &opts).unwrap().sorted_pairs())
            .collect();
        // Poison one mid-batch query, identified by its content.
        let victim = qs.len() / 2;
        let victim_subject = qs[victim].subject;
        let victim_expr = qs[victim].expr.clone();
        // Quiet the default hook: the injected panics are expected.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        for threads in [0, 1, 2, 4] {
            let res = evaluate_batch_with(&r, &qs, &opts, threads, &|engine, q, opts| {
                if q.subject == victim_subject && q.expr == victim_expr {
                    panic!("injected worker failure");
                }
                engine.evaluate(q, opts)
            });
            assert_eq!(res.len(), qs.len());
            for (i, r) in res.into_iter().enumerate() {
                if qs[i].subject == victim_subject && qs[i].expr == victim_expr {
                    assert!(
                        matches!(r, Err(QueryError::Internal(_))),
                        "victim {i} with {threads} threads: {r:?}"
                    );
                } else {
                    assert_eq!(
                        r.unwrap().sorted_pairs(),
                        sequential[i],
                        "query {i} with {threads} threads"
                    );
                }
            }
        }
        std::panic::set_hook(prev_hook);
    }

    /// Serializes the tests that observe or drain the global token pool
    /// (the test harness runs tests concurrently).
    static POOL_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn helper_tokens_are_returned_on_drop() {
        let _guard = POOL_TEST_LOCK.lock().unwrap();
        // Capacity is machine-dependent; what must hold is conservation.
        let before = tokens().load(Ordering::Acquire);
        {
            let g1 = acquire_helpers(2);
            assert!(g1.count() <= before.min(2));
            let remaining = tokens().load(Ordering::Acquire);
            assert_eq!(remaining, before - g1.count());
            let g2 = acquire_helpers(usize::MAX);
            assert_eq!(g2.count(), remaining);
            assert_eq!(tokens().load(Ordering::Acquire), 0);
        }
        assert_eq!(tokens().load(Ordering::Acquire), before);
        assert_eq!(acquire_helpers(0).count(), 0);
    }

    #[test]
    fn map_chunks_ordered_replays_in_order_and_stops_early() {
        let _guard = POOL_TEST_LOCK.lock().unwrap();
        let items: Vec<usize> = (0..1000).collect();
        for extra in [0, 3] {
            let mut seen = Vec::new();
            map_chunks_ordered(
                &items,
                64,
                extra,
                |c, chunk| (c, chunk.iter().sum::<usize>()),
                |t| {
                    seen.push(t);
                    true
                },
            );
            let expect: Vec<(usize, usize)> = items
                .chunks(64)
                .enumerate()
                .map(|(c, ch)| (c, ch.iter().sum()))
                .collect();
            assert_eq!(seen, expect, "extra={extra}");
            // Early stop after 3 chunks consumes exactly 3.
            let mut n = 0;
            map_chunks_ordered(
                &items,
                64,
                extra,
                |c, _| c,
                |_| {
                    n += 1;
                    n < 3
                },
            );
            assert_eq!(n, 3, "extra={extra}");
        }
    }
}
