//! Batch evaluation across threads.
//!
//! The ring is immutable after construction, so any number of engines can
//! read it concurrently — each worker thread gets its own [`RpqEngine`]
//! (the per-query mask tables are the only mutable state). This is the
//! intra-machine counterpart of the parallel/distributed RPQ frameworks
//! §2 surveys, and what a server embedding the ring would do per client.

use ring::Ring;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::engine::RpqEngine;
use crate::query::{EngineOptions, QueryOutput, RpqQuery};
use crate::QueryError;

/// Evaluates `queries` over `ring` using `n_threads` workers, returning
/// one result per query in input order.
///
/// Work is distributed dynamically (an atomic cursor), so skewed query
/// costs — the norm in RPQ logs — balance across workers.
///
/// # Panics
/// Panics if `n_threads == 0`.
pub fn evaluate_batch(
    ring: &Ring,
    queries: &[RpqQuery],
    opts: &EngineOptions,
    n_threads: usize,
) -> Vec<Result<QueryOutput, QueryError>> {
    assert!(n_threads > 0, "need at least one worker");
    let n = queries.len();
    let mut results: Vec<Result<QueryOutput, QueryError>> =
        (0..n).map(|_| Ok(QueryOutput::default())).collect();
    if n == 0 {
        return results;
    }
    let cursor = AtomicUsize::new(0);
    // Hand each worker a disjoint view of the results via raw chunking:
    // collect (index, result) pairs per worker instead, then scatter.
    let workers = n_threads.min(n);
    let mut per_worker: Vec<Vec<(usize, Result<QueryOutput, QueryError>)>> =
        (0..workers).map(|_| Vec::new()).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                scope.spawn(move || {
                    let mut engine = RpqEngine::new(ring);
                    let mut mine = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, engine.evaluate(&queries[i], opts)));
                    }
                    mine
                })
            })
            .collect();
        for (slot, h) in per_worker.iter_mut().zip(handles) {
            *slot = h.join().expect("worker panicked");
        }
    });
    for batch in per_worker {
        for (i, r) in batch {
            results[i] = r;
        }
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Term;
    use automata::Regex;
    use ring::ring::RingOptions;
    use ring::{Graph, Triple};

    fn ring() -> Ring {
        let triples = (0..200u64)
            .map(|i| Triple::new(i % 40, i % 3, (i * 7 + 1) % 40))
            .collect();
        Ring::build(&Graph::from_triples(triples), RingOptions::default())
    }

    fn queries() -> Vec<RpqQuery> {
        let mut qs = Vec::new();
        for p in 0..3u64 {
            for anchor in 0..10u64 {
                qs.push(RpqQuery::new(
                    Term::Const(anchor),
                    Regex::Plus(Box::new(Regex::label(p))),
                    Term::Var,
                ));
                qs.push(RpqQuery::new(
                    Term::Var,
                    Regex::concat(Regex::label(p), Regex::Star(Box::new(Regex::label(2 - p)))),
                    Term::Const(anchor),
                ));
            }
        }
        qs
    }

    #[test]
    fn parallel_matches_sequential() {
        let r = ring();
        let qs = queries();
        let opts = EngineOptions::default();
        let mut engine = RpqEngine::new(&r);
        let sequential: Vec<_> = qs
            .iter()
            .map(|q| engine.evaluate(q, &opts).unwrap().sorted_pairs())
            .collect();
        for threads in [1, 2, 4, 7] {
            let parallel = evaluate_batch(&r, &qs, &opts, threads);
            assert_eq!(parallel.len(), qs.len());
            for (i, res) in parallel.into_iter().enumerate() {
                assert_eq!(
                    res.unwrap().sorted_pairs(),
                    sequential[i],
                    "query {i} with {threads} threads"
                );
            }
        }
    }

    #[test]
    fn empty_batch_and_errors_propagate() {
        let r = ring();
        let opts = EngineOptions::default();
        assert!(evaluate_batch(&r, &[], &opts, 4).is_empty());
        // Bad query keeps its slot.
        let qs = vec![
            RpqQuery::new(Term::Const(0), Regex::label(0), Term::Var),
            RpqQuery::new(Term::Const(9999), Regex::label(0), Term::Var),
        ];
        let res = evaluate_batch(&r, &qs, &opts, 2);
        assert!(res[0].is_ok());
        assert!(matches!(
            res[1],
            Err(crate::QueryError::NodeOutOfRange(9999))
        ));
    }
}
