//! Query execution profiles — the "EXPLAIN ANALYZE" side of the
//! engine.
//!
//! [`explain`](crate::explain) answers *what the planner decided*;
//! a [`QueryProfile`] answers *what the execution actually did*:
//! per-phase wall time (planning vs. execution), a per-BFS-level record
//! of frontier sizes, rank-operation deltas and fan-out decisions, and
//! the [`PairBuffer`](crate::pairbuf::PairBuffer) compaction count. The paper's
//! whole argument is cost accounting — rank/select operations decide
//! whether the ring beats the baselines — and the profile is where
//! those costs become visible per query instead of as process-wide
//! aggregates.
//!
//! Profiles are **opt-in and strictly observational**
//! ([`EngineOptions::profile`](crate::EngineOptions::profile)): the
//! planner never sees the flag, so the executed plan — and with it the
//! answer set, flags, trace and truncation point — is bit-identical
//! with profiling on or off. When the flag is off no clock is read and
//! nothing is allocated; the only unconditional cost anywhere is the
//! one-increment compaction counter inside `PairBuffer`.
//!
//! The server fills the three `Option` fields with its own phase
//! timings (queue wait, pattern compilation, cache disposition); core
//! evaluation leaves them `None`.

/// One BFS level of a product-graph traversal, as the profiler saw it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LevelSample {
    /// Frontier size at the head of the level (ranges/items expanded).
    pub frontier: u64,
    /// Wavelet rank operations charged to this level.
    pub rank_ops: u64,
    /// Frontier chunks fanned across the intra-query pool on this level
    /// (0 when the level ran sequentially).
    pub chunks: u64,
    /// Whether the level took the speculative parallel path.
    pub parallel: bool,
}

/// A per-query execution profile. Attached to
/// [`QueryOutput::profile`](crate::QueryOutput::profile) when
/// [`EngineOptions::profile`](crate::EngineOptions::profile) is set;
/// rendered as stable JSON by
/// [`QueryProfile::to_json`](crate::profile::QueryProfile::to_json)
/// (defined alongside the plan renderer in [`crate::explain`]).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct QueryProfile {
    /// Wall time spent planning (cost estimation + route choice), µs.
    pub plan_us: u64,
    /// Wall time spent executing the chosen route, µs.
    pub exec_us: u64,
    /// End-to-end wall time inside the engine (≥ `plan_us + exec_us`),
    /// µs.
    pub total_us: u64,
    /// Per-BFS-level samples in traversal order. Routes without a level
    /// structure (the §5 fast paths) leave this empty; multi-traversal
    /// routes (var-to-var two-pass, rare-label splits) concatenate their
    /// passes.
    pub levels: Vec<LevelSample>,
    /// `PairBuffer` compactions that did real work (mirrors
    /// [`TraversalStats::pair_compactions`](crate::TraversalStats::pair_compactions)).
    pub compactions: u64,
    /// Server path only: wall time the job waited in the queue before a
    /// worker picked it up, µs.
    pub queue_wait_us: Option<u64>,
    /// Server path only: pattern compilation time on a plan-cache miss,
    /// µs (`Some(0)` on a plan-cache hit).
    pub compile_us: Option<u64>,
    /// Server path only: whether the answer came from the result cache
    /// (a hit skips planning and execution entirely).
    pub cache_hit: Option<bool>,
}

/// Per-level sample collector threaded through the traversal loops.
///
/// The loops feed it *cumulative* counters; the collector turns them
/// into per-level deltas. Protocol: call [`enter`](Self::enter) at each
/// level head with the frontier size and the current cumulative
/// rank-op / parallel-chunk counts, and [`finish`](Self::finish) once
/// after the loop (early exits included). `enter` closes the previous
/// level, so a query that runs several traversals (two-pass var-to-var,
/// split sub-queries) can share one collector — the passes simply
/// concatenate.
#[derive(Debug, Default)]
pub struct LevelProf {
    samples: Vec<LevelSample>,
    mark_rank: u64,
    mark_chunks: u64,
    open: bool,
}

impl LevelProf {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Begin a level: `frontier` items about to expand, cumulative
    /// counters as of now.
    pub fn enter(&mut self, frontier: u64, rank_ops: u64, chunks: u64) {
        self.close(rank_ops, chunks);
        self.samples.push(LevelSample {
            frontier,
            ..LevelSample::default()
        });
        self.mark_rank = rank_ops;
        self.mark_chunks = chunks;
        self.open = true;
    }

    /// Close the last open level with the final cumulative counters.
    /// Idempotent; safe to call on a collector that never saw a level.
    pub fn finish(&mut self, rank_ops: u64, chunks: u64) {
        self.close(rank_ops, chunks);
    }

    fn close(&mut self, rank_ops: u64, chunks: u64) {
        if !self.open {
            return;
        }
        self.open = false;
        if let Some(last) = self.samples.last_mut() {
            last.rank_ops = rank_ops.saturating_sub(self.mark_rank);
            last.chunks = chunks.saturating_sub(self.mark_chunks);
            last.parallel = last.chunks > 0;
        }
    }

    /// The collected samples, consuming the collector.
    pub fn into_samples(self) -> Vec<LevelSample> {
        self.samples
    }

    /// Number of levels recorded so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no level was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_are_per_level() {
        let mut p = LevelProf::new();
        p.enter(4, 0, 0);
        p.enter(9, 10, 0); // closes level 0: 10 rank ops, sequential
        p.enter(2, 25, 3); // closes level 1: 15 rank ops, 3 chunks
        p.finish(27, 3); // closes level 2: 2 rank ops, no new chunks
        p.finish(99, 9); // idempotent: already closed
        let s = p.into_samples();
        assert_eq!(s.len(), 3);
        assert_eq!((s[0].frontier, s[0].rank_ops, s[0].chunks), (4, 10, 0));
        assert!(!s[0].parallel);
        assert_eq!((s[1].frontier, s[1].rank_ops, s[1].chunks), (9, 15, 3));
        assert!(s[1].parallel);
        assert_eq!((s[2].frontier, s[2].rank_ops, s[2].chunks), (2, 2, 0));
    }

    #[test]
    fn passes_concatenate_with_independent_marks() {
        let mut p = LevelProf::new();
        // Pass one, counters end at 7/1.
        p.enter(3, 0, 0);
        p.finish(7, 1);
        // Pass two restarts from its own cumulative baseline.
        p.enter(5, 7, 1);
        p.finish(9, 1);
        let s = p.into_samples();
        assert_eq!(s[0].rank_ops, 7);
        assert_eq!(s[1].rank_ops, 2);
        assert_eq!(s[1].chunks, 0);
    }

    #[test]
    fn empty_collector_is_harmless() {
        let mut p = LevelProf::new();
        p.finish(0, 0);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(p.into_samples().is_empty());
    }
}
