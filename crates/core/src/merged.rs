//! The merged bit-parallel route: the §4 backward product-graph
//! traversal evaluated against a [`MergedView`] — node-granular
//! expansion where every backward step merges ring subjects (tombstones
//! masked) with delta adds. Selected by the engine only when the source
//! carries a non-empty delta; the pure succinct hot path is untouched
//! otherwise.
//!
//! Same answers as the wavelet-batched traversal by construction: both
//! are BFS over the product `G'_E` with the monotone visited masks
//! `D[s]`; this one just reads its adjacency through the overlay.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use automata::glushkov::INITIAL;
use automata::{BitParallel, Label};
use ring::Id;
use succinct::util::{EpochArray, FxHashMap};

use crate::pairbuf::PairBuffer;
use crate::planner::Direction;
use crate::profile::LevelProf;
use crate::query::{EngineOptions, QueryOutput, Term, TraversalStats};
use crate::source::MergedView;
use crate::QueryError;

/// Why a merged traversal stopped early (if it did).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Stop {
    Completed,
    TimedOut,
    Budget,
}

/// Per-label admission masks `B[p]` for every label that can fire, from
/// the positive literal masks plus negated-class positions expanded
/// against the completed alphabet. Sorted by label for deterministic
/// expansion order.
fn relevant_labels(view: &MergedView<'_>, bp: &BitParallel) -> Vec<(Label, u64)> {
    let mut masks: FxHashMap<Label, u64> = FxHashMap::default();
    for &(label, mask) in bp.positive_label_masks() {
        *masks.entry(label).or_insert(0) |= mask;
    }
    let neg = bp.negated_positions();
    if !neg.is_empty() {
        for p in 0..view.ring.n_preds() {
            let mut bits = 0u64;
            for (bit, excluded) in neg {
                if excluded.binary_search(&p).is_err() {
                    bits |= bit;
                }
            }
            if bits != 0 {
                *masks.entry(p).or_insert(0) |= bits;
            }
        }
    }
    let mut out: Vec<(Label, u64)> = masks.into_iter().collect();
    out.sort_unstable_by_key(|&(p, _)| p);
    out
}

/// Evaluates the bit-parallel route against a merged source. Mirrors the
/// engine's pure-ring dispatch: anchored queries traverse backward from
/// the constant, const-const is an existence check from the planner's
/// cheaper end, and variable-to-variable runs §4.4's two-pass strategy.
#[allow(clippy::too_many_arguments)]
pub(crate) fn evaluate_bitparallel(
    view: &MergedView<'_>,
    masks: &mut EpochArray,
    bp: &BitParallel,
    bp_rev: &BitParallel,
    direction: Option<Direction>,
    subject: Term,
    object: Term,
    opts: &EngineOptions,
    deadline: Option<Instant>,
    threads: usize,
    mut prof: Option<&mut LevelProf>,
) -> Result<QueryOutput, QueryError> {
    let mut out = QueryOutput::default();
    match (subject, object) {
        (Term::Var, Term::Const(o)) => {
            let labels = relevant_labels(view, bp);
            eval_to_object(
                view,
                masks,
                bp,
                &labels,
                o,
                None,
                opts,
                deadline,
                threads,
                prof.as_deref_mut(),
                &mut out,
                |s, o| (s, o),
            );
        }
        (Term::Const(s), Term::Var) => {
            let labels = relevant_labels(view, bp_rev);
            eval_to_object(
                view,
                masks,
                bp_rev,
                &labels,
                s,
                None,
                opts,
                deadline,
                threads,
                prof.as_deref_mut(),
                &mut out,
                |r, s| (s, r),
            );
        }
        (Term::Const(s), Term::Const(o)) => {
            if direction == Some(Direction::FromObject) {
                let labels = relevant_labels(view, bp);
                eval_to_object(
                    view,
                    masks,
                    bp,
                    &labels,
                    o,
                    Some(s),
                    opts,
                    deadline,
                    threads,
                    prof.as_deref_mut(),
                    &mut out,
                    |s, o| (s, o),
                );
            } else {
                let labels = relevant_labels(view, bp_rev);
                eval_to_object(
                    view,
                    masks,
                    bp_rev,
                    &labels,
                    s,
                    Some(o),
                    opts,
                    deadline,
                    threads,
                    prof.as_deref_mut(),
                    &mut out,
                    |o, s| (s, o),
                );
            }
        }
        (Term::Var, Term::Var) => {
            out = eval_var_var(
                view,
                masks,
                bp,
                bp_rev,
                direction == Some(Direction::FromSubject),
                opts,
                deadline,
                threads,
                prof,
            )?;
        }
    }
    Ok(out)
}

/// Anchored traversal from `anchor`, reporting every node where the
/// initial state activates. `target` turns it into an existence check.
#[allow(clippy::too_many_arguments)]
fn eval_to_object(
    view: &MergedView<'_>,
    masks: &mut EpochArray,
    bp: &BitParallel,
    labels: &[(Label, u64)],
    anchor: Id,
    target: Option<Id>,
    opts: &EngineOptions,
    deadline: Option<Instant>,
    threads: usize,
    prof: Option<&mut LevelProf>,
    out: &mut QueryOutput,
    pair_of: impl Fn(Id, Id) -> (Id, Id),
) {
    let limit = opts.limit;
    let budget = opts
        .node_budget
        .map(|nb| nb.saturating_sub(out.stats.product_nodes));
    let mut stats = TraversalStats::default();
    let mut truncated = false;
    let mut trace = Vec::new();
    let stop = traverse(
        view,
        masks,
        bp,
        labels,
        &[anchor],
        true,
        deadline,
        budget,
        threads,
        opts.parallel_min_frontier,
        &mut stats,
        prof,
        opts.collect_trace.then_some(&mut trace),
        &mut |r| {
            if let Some(t) = target {
                if r == t {
                    out.pairs.push(pair_of(t, anchor));
                    return false;
                }
                return true;
            }
            out.pairs.push(pair_of(r, anchor));
            if out.pairs.len() >= limit {
                truncated = true;
                return false;
            }
            true
        },
    );
    out.trace.extend(trace);
    out.truncated |= truncated;
    out.timed_out |= stop == Stop::TimedOut;
    out.budget_exhausted |= stop == Stop::Budget;
    out.stats.add(&stats);
}

/// §4.4 two-pass variable-to-variable strategy over the merged source:
/// pass 1 seeds every live node at once (the merged stand-in for the
/// full-range start) to collect useful anchors, pass 2 anchors one
/// traversal per anchor. The node budget is cumulative across passes.
#[allow(clippy::too_many_arguments)]
fn eval_var_var(
    view: &MergedView<'_>,
    masks: &mut EpochArray,
    bp_e: &BitParallel,
    bp_rev: &BitParallel,
    sources_first: bool,
    opts: &EngineOptions,
    deadline: Option<Instant>,
    threads: usize,
    mut prof: Option<&mut LevelProf>,
) -> Result<QueryOutput, QueryError> {
    let mut out = QueryOutput::default();
    let mut pairs = PairBuffer::new();

    let live: Vec<Id> = (0..view.n_nodes())
        .filter(|&v| view.node_exists(v))
        .collect();

    // Zero-length paths: every live node pairs with itself.
    if bp_e.is_nullable() {
        for &v in &live {
            pairs.push((v, v));
            if pairs.distinct_reached(opts.limit) {
                pairs.truncate_distinct(opts.limit);
                out.truncated = true;
                break;
            }
        }
    }

    // Pass 1: useful anchors, from all live nodes at once (seeds are
    // unmarked, exactly like the full-range start of the pure path).
    // Label-admission tables depend only on (view, bp): built once per
    // direction, shared by every anchored traversal of pass 2.
    let pass_bp = if sources_first { bp_e } else { bp_rev };
    let pass_labels = relevant_labels(view, pass_bp);
    let mut anchors: Vec<Id> = Vec::new();
    let mut stats = TraversalStats::default();
    if !out.truncated {
        let stop = traverse(
            view,
            masks,
            pass_bp,
            &pass_labels,
            &live,
            false,
            deadline,
            opts.node_budget,
            threads,
            opts.parallel_min_frontier,
            &mut stats,
            prof.as_deref_mut(),
            opts.collect_trace.then_some(&mut out.trace),
            &mut |r| {
                anchors.push(r);
                true
            },
        );
        out.timed_out |= stop == Stop::TimedOut;
        out.budget_exhausted |= stop == Stop::Budget;
    }
    out.stats.add(&stats);

    // Pass 2: one anchored traversal per useful node.
    let per_bp = if sources_first { bp_rev } else { bp_e };
    let per_labels = relevant_labels(view, per_bp);
    'outer: for &a in &anchors {
        if out.timed_out || out.truncated || out.budget_exhausted {
            break;
        }
        let budget = opts
            .node_budget
            .map(|nb| nb.saturating_sub(out.stats.product_nodes));
        let mut stats = TraversalStats::default();
        let mut hit_limit = false;
        let mut trace = Vec::new();
        let stop = traverse(
            view,
            masks,
            per_bp,
            &per_labels,
            &[a],
            true,
            deadline,
            budget,
            threads,
            opts.parallel_min_frontier,
            &mut stats,
            prof.as_deref_mut(),
            opts.collect_trace.then_some(&mut trace),
            &mut |r| {
                let pair = if sources_first { (a, r) } else { (r, a) };
                pairs.push(pair);
                if pairs.maybe_reached(opts.limit) {
                    pairs.truncate_distinct(opts.limit);
                    hit_limit = true;
                    return false;
                }
                true
            },
        );
        out.trace.extend(trace);
        out.stats.add(&stats);
        out.timed_out |= stop == Stop::TimedOut;
        out.budget_exhausted |= stop == Stop::Budget;
        if hit_limit {
            out.truncated = true;
            break 'outer;
        }
    }

    if pairs.distinct_reached(opts.limit) {
        pairs.truncate_distinct(opts.limit);
        out.truncated = true;
    }
    pairs.compact();
    out.stats.pair_compactions += pairs.compactions();
    out.pairs = pairs.into_sorted_vec();
    Ok(out)
}

/// The merged backward product BFS. `starts` seed the first level with
/// the accepting mask; when `mark_starts` is set they are recorded in the
/// visited masks and reported for zero-length matches (anchored starts),
/// otherwise they behave like the pure path's full-range start (pass 1).
/// Calls `report(r)` for every node where the initial state newly
/// activates; a `false` return aborts. Mirrors the pure traversal's
/// budget/deadline semantics.
///
/// Levels are expanded level-synchronously (the queue was strictly FIFO,
/// so per-level vectors visit nodes in the identical order). When
/// `threads > 1` and a level has at least `min_frontier` items, the
/// level is fanned out across pool workers in two phases: phase A
/// computes per-chunk candidate lists against a frozen snapshot of the
/// visited masks (read-only, so chunks race-free), phase B replays the
/// chunks in order on this thread, re-checking freshness against the
/// live masks and applying budget/trace/report/next-level effects in
/// the exact sequential order. The frozen filter only drops subjects
/// whose live `fresh` would also be zero (masks grow monotonically), so
/// phase B's pairs, flags, trace and counters are bit-for-bit identical
/// to the sequential walk.
#[allow(clippy::too_many_arguments)]
fn traverse(
    view: &MergedView<'_>,
    masks: &mut EpochArray,
    bp: &BitParallel,
    labels: &[(Label, u64)],
    starts: &[Id],
    mark_starts: bool,
    deadline: Option<Instant>,
    budget: Option<u64>,
    threads: usize,
    min_frontier: usize,
    stats: &mut TraversalStats,
    mut prof: Option<&mut LevelProf>,
    trace: Option<&mut Vec<(Id, u64)>>,
    report: &mut dyn FnMut(Id) -> bool,
) -> Stop {
    let stop = traverse_impl(
        view,
        masks,
        bp,
        labels,
        starts,
        mark_starts,
        deadline,
        budget,
        threads,
        min_frontier,
        stats,
        prof.as_deref_mut(),
        trace,
        report,
    );
    // Close the last open level with this run's final counters — the
    // body below exits early on deadline/budget/report aborts.
    if let Some(p) = prof {
        p.finish(stats.rank_ops, stats.parallel_chunks);
    }
    stop
}

#[allow(clippy::too_many_arguments)]
fn traverse_impl(
    view: &MergedView<'_>,
    masks: &mut EpochArray,
    bp: &BitParallel,
    labels: &[(Label, u64)],
    starts: &[Id],
    mark_starts: bool,
    deadline: Option<Instant>,
    budget: Option<u64>,
    threads: usize,
    min_frontier: usize,
    stats: &mut TraversalStats,
    mut prof: Option<&mut LevelProf>,
    mut trace: Option<&mut Vec<(Id, u64)>>,
    report: &mut dyn FnMut(Id) -> bool,
) -> Stop {
    let d0 = bp.accept_mask();
    if d0 == 0 {
        return Stop::Completed;
    }
    masks.reset();
    let mut frontier: Vec<(Id, u64)> = Vec::with_capacity(starts.len());
    let mut next: Vec<(Id, u64)> = Vec::new();
    for &o in starts {
        if mark_starts {
            masks.set(o as usize, d0);
            if d0 & INITIAL != 0 && view.node_exists(o) {
                stats.reported += 1;
                if !report(o) {
                    return Stop::Completed;
                }
            }
        }
        frontier.push((o, d0));
    }
    let threads = threads.max(1);
    let min_frontier = min_frontier.max(2);
    let mut subjects: Vec<Id> = Vec::new();
    while !frontier.is_empty() {
        if let Some(p) = prof.as_deref_mut() {
            p.enter(frontier.len() as u64, stats.rank_ops, stats.parallel_chunks);
        }
        if threads > 1 && frontier.len() >= min_frontier {
            // Phase A: speculative chunk expansion against frozen masks.
            let plans = expand_level_frozen(view, bp, labels, masks, &frontier, deadline, threads);
            stats.parallel_levels += 1;
            // Phase B: ordered replay with live masks.
            for plan in &plans {
                stats.parallel_chunks += 1;
                if plan.deadline_hit {
                    return Stop::TimedOut;
                }
                for item in &plan.items {
                    stats.bfs_steps += 1;
                    if let Some(dl) = deadline {
                        if stats.bfs_steps.is_multiple_of(64) && Instant::now() >= dl {
                            return Stop::TimedOut;
                        }
                    }
                    stats.product_edges += item.n_edges;
                    for &(d_new, ref cands) in &item.preds {
                        for &s in cands {
                            let old = masks.get(s as usize);
                            let fresh = d_new & !old;
                            if fresh == 0 {
                                continue;
                            }
                            if let Some(nb) = budget {
                                if stats.product_nodes >= nb {
                                    return Stop::Budget;
                                }
                            }
                            masks.set(s as usize, old | d_new);
                            stats.product_nodes += 1;
                            if let Some(t) = trace.as_deref_mut() {
                                t.push((s, fresh));
                            }
                            if fresh & INITIAL != 0 {
                                stats.reported += 1;
                                if !report(s) {
                                    return Stop::Completed;
                                }
                            }
                            next.push((s, fresh));
                        }
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next);
            next.clear();
            continue;
        }
        for &(o, d) in &frontier {
            stats.bfs_steps += 1;
            if let Some(dl) = deadline {
                if stats.bfs_steps.is_multiple_of(64) && Instant::now() >= dl {
                    return Stop::TimedOut;
                }
            }
            for &(p, bmask) in labels {
                let d_and_b = d & bmask;
                if d_and_b == 0 {
                    continue;
                }
                stats.product_edges += 1;
                // Eq. 2: the same new state set for every subject (Fact 1).
                let d_new = bp.apply_bwd(d_and_b);
                if d_new == 0 {
                    continue;
                }
                view.subjects_into(o, p, &mut subjects);
                for &s in &subjects {
                    let old = masks.get(s as usize);
                    let fresh = d_new & !old;
                    if fresh == 0 {
                        continue;
                    }
                    if let Some(nb) = budget {
                        if stats.product_nodes >= nb {
                            return Stop::Budget;
                        }
                    }
                    masks.set(s as usize, old | d_new);
                    stats.product_nodes += 1;
                    if let Some(t) = trace.as_deref_mut() {
                        t.push((s, fresh));
                    }
                    if fresh & INITIAL != 0 {
                        stats.reported += 1;
                        if !report(s) {
                            return Stop::Completed;
                        }
                    }
                    next.push((s, fresh));
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    Stop::Completed
}

/// A frontier chunk expanded speculatively against frozen masks: per
/// item, the labels that fire and the frozen-fresh candidate subjects.
struct LevelChunk {
    items: Vec<LevelItem>,
    /// The deadline had already passed when this chunk was claimed; the
    /// replay turns this into `Stop::TimedOut`.
    deadline_hit: bool,
}

/// One frontier item's speculative expansion.
struct LevelItem {
    /// Labels with a non-empty state intersection (the sequential
    /// `product_edges` increment, counted even when `d_new == 0`).
    n_edges: u64,
    /// `(d_new, candidates)` per label that survives `apply_bwd`;
    /// candidates are the merged subjects still fresh against the frozen
    /// masks, in merged (sorted) order.
    preds: Vec<(u64, Vec<Id>)>,
}

/// Phase A: fans `frontier` chunks across pool helpers (plus this
/// thread), each chunk reading only the ring/delta and the frozen
/// `masks` snapshot. Chunk geometry depends on `(frontier.len, threads)`
/// alone — never on how many helpers the pool actually grants — so the
/// replay order is deterministic.
fn expand_level_frozen(
    view: &MergedView<'_>,
    bp: &BitParallel,
    labels: &[(Label, u64)],
    masks: &EpochArray,
    frontier: &[(Id, u64)],
    deadline: Option<Instant>,
    threads: usize,
) -> Vec<LevelChunk> {
    // ~4 chunks per requested thread for dynamic load balancing, but
    // don't shatter small levels.
    let chunk_size = frontier.len().div_ceil(threads * 4).clamp(64, 4096);
    let n_chunks = frontier.len().div_ceil(chunk_size);
    let grant = crate::parallel::acquire_helpers(threads.saturating_sub(1));
    let slots: Vec<OnceLock<LevelChunk>> = (0..n_chunks).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let work = || loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(frontier.len());
            let _ = slots[c].set(expand_chunk_frozen(
                view,
                bp,
                labels,
                masks,
                &frontier[lo..hi],
                deadline,
            ));
        };
        for _ in 0..grant.count().min(n_chunks.saturating_sub(1)) {
            scope.spawn(work);
        }
        work();
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("phase A fills every chunk slot"))
        .collect()
}

/// Expands one chunk read-only: the merged adjacency and the frozen
/// masks. Dropping subjects that are stale against the snapshot is safe
/// because masks only grow — their live `fresh` would be zero too.
fn expand_chunk_frozen(
    view: &MergedView<'_>,
    bp: &BitParallel,
    labels: &[(Label, u64)],
    masks: &EpochArray,
    chunk: &[(Id, u64)],
    deadline: Option<Instant>,
) -> LevelChunk {
    let mut out = LevelChunk {
        items: Vec::with_capacity(chunk.len()),
        deadline_hit: false,
    };
    if let Some(dl) = deadline {
        if Instant::now() >= dl {
            out.deadline_hit = true;
            return out;
        }
    }
    let mut subjects: Vec<Id> = Vec::new();
    for &(o, d) in chunk {
        let mut item = LevelItem {
            n_edges: 0,
            preds: Vec::new(),
        };
        for &(p, bmask) in labels {
            let d_and_b = d & bmask;
            if d_and_b == 0 {
                continue;
            }
            item.n_edges += 1;
            let d_new = bp.apply_bwd(d_and_b);
            if d_new == 0 {
                continue;
            }
            view.subjects_into(o, p, &mut subjects);
            let cands: Vec<Id> = subjects
                .iter()
                .copied()
                .filter(|&s| d_new & !masks.get(s as usize) != 0)
                .collect();
            if !cands.is_empty() {
                item.preds.push((d_new, cands));
            }
        }
        out.items.push(item);
    }
    out
}
