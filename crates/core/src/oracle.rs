//! A naive reference evaluator for differential testing: classical
//! product-graph BFS over an uncompressed adjacency list (the §3.2
//! textbook algorithm \[36\]), with the same result semantics as the ring
//! engine. Deliberately simple — shared bugs with the succinct path are
//! implausible.

use automata::{Label, Nfa};
use ring::{Graph, Id};

use crate::query::{RpqQuery, Term};

/// The oracle: forward adjacency of the *completed* graph.
pub struct NaiveOracle {
    adj: Vec<Vec<(Label, Id)>>,
    exists: Vec<bool>,
    n_nodes: usize,
}

impl NaiveOracle {
    /// Builds the oracle from the **base** graph (completion with inverse
    /// labels `p̂ = p + |P|` happens internally, matching
    /// `Ring::build(.., with_inverses: true)`).
    pub fn new(base: &Graph) -> Self {
        let completed = base.completed();
        let n_nodes = completed.n_nodes() as usize;
        let mut adj: Vec<Vec<(Label, Id)>> = vec![Vec::new(); n_nodes];
        let mut exists = vec![false; n_nodes];
        for t in completed.triples() {
            adj[t.s as usize].push((t.p, t.o));
            exists[t.s as usize] = true;
            exists[t.o as usize] = true;
        }
        Self {
            adj,
            exists,
            n_nodes,
        }
    }

    /// Evaluates `query`, returning sorted distinct `(s, o)` pairs.
    pub fn evaluate(&self, query: &RpqQuery) -> Vec<(Id, Id)> {
        let nfa = Nfa::from_regex(&query.expr);
        let mut pairs = Vec::new();
        match (query.subject, query.object) {
            (Term::Const(s), _) => self.bfs_from_source(s, &nfa, query.object, &mut pairs),
            (Term::Var, _) => {
                for s in 0..self.n_nodes as Id {
                    if self.exists[s as usize] {
                        self.bfs_from_source(s, &nfa, query.object, &mut pairs);
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// BFS over the product graph from `(s, initial)`.
    fn bfs_from_source(&self, s: Id, nfa: &Nfa, object: Term, pairs: &mut Vec<(Id, Id)>) {
        if s as usize >= self.n_nodes || !self.exists[s as usize] {
            return;
        }
        let n_states = nfa.n_states;
        let mut visited = vec![false; self.n_nodes * n_states];
        let mut queue = std::collections::VecDeque::new();
        visited[s as usize * n_states + nfa.initial] = true;
        queue.push_back((s, nfa.initial));
        while let Some((v, q)) = queue.pop_front() {
            if nfa.accepting[q] {
                match object {
                    Term::Const(o) if o != v => {}
                    _ => pairs.push((s, v)),
                }
            }
            for &(ref lit, q2) in &nfa.transitions[q] {
                for &(p, w) in &self.adj[v as usize] {
                    if lit.matches(p) && !visited[w as usize * n_states + q2] {
                        visited[w as usize * n_states + q2] = true;
                        queue.push_back((w, q2));
                    }
                }
            }
        }
    }
}

/// One-call convenience wrapper.
pub fn evaluate_naive(base: &Graph, query: &RpqQuery) -> Vec<(Id, Id)> {
    NaiveOracle::new(base).evaluate(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::Regex;
    use ring::Triple;

    fn chain() -> Graph {
        // 0 -a-> 1 -a-> 2 -b-> 3
        Graph::from_triples(vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 1, 3),
        ])
    }

    #[test]
    fn star_concat() {
        let g = chain();
        // a*/b from variable to variable (labels over Σ↔: a=0, b=1).
        let e = Regex::concat(Regex::Star(Box::new(Regex::label(0))), Regex::label(1));
        let got = evaluate_naive(&g, &RpqQuery::new(Term::Var, e, Term::Var));
        assert_eq!(got, vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn inverse_label() {
        let g = chain();
        // ^a (= label 2 after completion with |P| = 2): from 1 we reach 0.
        let e = Regex::label(2);
        let got = evaluate_naive(&g, &RpqQuery::new(Term::Const(1), e, Term::Var));
        assert_eq!(got, vec![(1, 0)]);
    }

    #[test]
    fn nullable_includes_self() {
        let g = chain();
        let e = Regex::Star(Box::new(Regex::label(0)));
        let got = evaluate_naive(&g, &RpqQuery::new(Term::Var, e, Term::Var));
        assert!(got.contains(&(3, 3))); // zero-length path on an existing node
        assert!(got.contains(&(0, 2)));
        assert!(!got.contains(&(2, 3)));
    }

    #[test]
    fn const_const() {
        let g = chain();
        let e = Regex::Plus(Box::new(Regex::label(0)));
        let hit = evaluate_naive(
            &g,
            &RpqQuery::new(Term::Const(0), e.clone(), Term::Const(2)),
        );
        assert_eq!(hit, vec![(0, 2)]);
        let miss = evaluate_naive(&g, &RpqQuery::new(Term::Const(0), e, Term::Const(3)));
        assert!(miss.is_empty());
    }
}
