//! The cost-based query planner — the single decision point every
//! evaluation and introspection layer consults.
//!
//! The paper's §6 observes that the wavelet trees "provide on-the-fly
//! selectivity statistics, which can be used for even more sophisticated
//! query planning"; §4.3/§5 pick traversal directions by the smallest
//! first-expansion cardinality; §2 describes rare-label splitting
//! (Koschmieder & Leser). Historically those ideas lived in three
//! disconnected places — the engine's inline route choices, `explain`'s
//! parallel re-derivation, and a `split` module no evaluation path ever
//! reached. This module collapses them: [`plan`] consumes a compiled
//! [`PreparedQuery`], the query's endpoints and [`RingStatistics`], and
//! emits one [`Plan`] that *every* layer executes or renders:
//!
//! * [`RpqEngine::evaluate_prepared`](crate::RpqEngine::evaluate_prepared)
//!   dispatches on `Plan::route` and honors `Plan::direction`;
//! * [`explain`](crate::explain) renders the identical `Plan`, so the
//!   explained strategy can never diverge from the executed one;
//! * a serving layer keys its per-route metrics on the `Plan` recorded
//!   in [`QueryOutput::plan`](crate::QueryOutput::plan).
//!
//! ## The route lattice
//!
//! | Route | When it wins |
//! |---|---|
//! | [`EvalRoute::FastPath`] | §5 shapes (single label, disjunction, 2-step concat): plain backward search beats the automaton |
//! | [`EvalRoute::BitParallel`] | the general §4 product-graph traversal, `m ≤ w` positions |
//! | [`EvalRoute::Split`] | variable-to-variable `E1/p/E2` with a rare `p`: enumerate the `p`-edges, complete both sides (§2/§6) |
//! | [`EvalRoute::Fallback`] | `m > w` positions: explicit-state BFS (§3.3's multi-word regime) |
//!
//! Costs are *first-expansion estimates* in edges, read off the ring's
//! wavelet matrices in `O(log)` time per label — the §4.3 range/degree
//! estimates: a predicate's cardinality is one `C_p` range length, the
//! edges into an anchor one backward-search step.

use automata::BitParallel;
use ring::Id;

use crate::fastpath::Shape;
use crate::plan::{EvalRoute, PreparedQuery};
use crate::query::{EngineOptions, Term};
use crate::split::{best_split_with, Split};
use crate::stats::RingStatistics;

/// Which endpoint drives the traversal (meaningful for the routes that
/// have a direction choice; `None` in [`Plan::direction`] otherwise).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Driven from the subject side: the reversed expression `Ê` is
    /// traversed backward from the subject constant (anchored queries),
    /// or pass 1 of §4.4's two-pass strategy collects *sources* first
    /// (variable-to-variable).
    FromSubject,
    /// Driven from the object side: the expression `E` is traversed
    /// backward from the object constant, or pass 1 collects *targets*
    /// first.
    FromObject,
}

impl Direction {
    /// Stable lowercase name (used in metrics and the JSON explain
    /// output).
    pub fn name(self) -> &'static str {
        match self {
            Direction::FromSubject => "from_subject",
            Direction::FromObject => "from_object",
        }
    }
}

/// The planner's decision for one `(query, endpoints, ring)` triple:
/// the route, the traversal direction, the chosen rare-label split (on
/// the split route) and the first-expansion cost estimate that backed
/// the choice.
#[derive(Clone, Debug)]
pub struct Plan {
    /// The evaluation route.
    pub route: EvalRoute,
    /// Traversal direction, where the route has a choice (`None` for the
    /// fast paths and the split route, which are driven per-shape /
    /// from the split label's edges).
    pub direction: Option<Direction>,
    /// The chosen rare-label split; present iff `route` is
    /// [`EvalRoute::Split`].
    pub split: Option<Split>,
    /// Estimated first-expansion cost of the chosen route, in edges.
    pub estimated_cost: u64,
    /// Threads the executed route may fan frontier work across: the
    /// caller's [`EngineOptions::intra_query_threads`] when the
    /// estimated cost clears
    /// [`EngineOptions::parallel_min_frontier`], else 1 — small queries
    /// never pay fan-out overhead. Purely advisory above 1: the runtime
    /// additionally gates each BFS level on its actual frontier size
    /// and on the process-wide worker-token pool.
    pub intra_query_threads: usize,
}

impl Plan {
    /// The split label, when this is a split plan (convenience for
    /// renderers and metrics).
    pub fn split_label(&self) -> Option<Id> {
        self.split.as_ref().map(|s| s.label)
    }

    /// How far off [`Self::estimated_cost`] was from what evaluation
    /// actually visited, as a ratio ×1000: `(actual + 1) * 1000 /
    /// (estimated + 1)`. 1000 is a perfect estimate; above it the
    /// planner underestimated, below it overestimated. The +1 smoothing
    /// keeps zero estimates and zero-node runs finite and symmetric.
    pub fn misprediction_x1000(&self, actual: u64) -> u64 {
        (actual + 1).saturating_mul(1000) / (self.estimated_cost + 1)
    }
}

/// A split must undercut the alternative's first expansion by this
/// factor before the planner picks it: enumerating each rare edge costs
/// two anchored sub-queries, not one wavelet step.
const SPLIT_COST_FACTOR: u64 = 8;

/// Σ of cardinalities of the predicates that can fire on the *first*
/// backward expansion: labels whose `B[p]` intersects the accepting
/// set. Negated-class positions can fire on any label, so they charge
/// the whole triple count.
pub fn first_expansion_cost(stats: &RingStatistics<'_>, bp: &BitParallel) -> u64 {
    let accept = bp.accept_mask();
    let mut cost: u64 = 0;
    for &(label, mask) in bp.positive_label_masks() {
        if mask & accept != 0 {
            cost += stats.pred_cardinality(label) as u64;
        }
    }
    for (bit, _) in bp.negated_positions() {
        if bit & accept != 0 {
            cost += stats.n_triples() as u64;
        }
    }
    cost
}

/// First-expansion cost anchored at `anchor`: edges into the anchor
/// whose label can fire on the first backward step — one backward-search
/// range per label (the §4.3 range/degree estimate).
pub fn anchored_expansion_cost(stats: &RingStatistics<'_>, bp: &BitParallel, anchor: Id) -> u64 {
    let accept = bp.accept_mask();
    let mut cost: u64 = 0;
    for &(label, mask) in bp.positive_label_masks() {
        if mask & accept != 0 {
            cost += stats.edges_into(label, anchor) as u64;
        }
    }
    for (bit, _) in bp.negated_positions() {
        if bit & accept != 0 {
            cost += stats.in_degree(anchor) as u64;
        }
    }
    cost
}

/// Whether `route` can evaluate this `(prepared, endpoints)` pair at
/// all on the given ring. Forcing an infeasible route falls back to the
/// natural choice. (The split route needs the ring: a candidate whose
/// label is outside the live alphabet is not executable, exactly the
/// filter [`best_split_with`] applies.)
pub fn route_is_feasible(
    stats: &RingStatistics<'_>,
    route: EvalRoute,
    prepared: &PreparedQuery,
    subject: Term,
    object: Term,
) -> bool {
    match route {
        EvalRoute::FastPath => !matches!(prepared.shape(), Shape::Other),
        EvalRoute::BitParallel => !prepared.uses_fallback(),
        EvalRoute::Fallback => true,
        EvalRoute::Split => split_choice(stats, prepared, subject, object).is_some(),
    }
}

/// Plans one query: the single planning brain shared by
/// [`RpqEngine::evaluate_prepared`](crate::RpqEngine::evaluate_prepared),
/// [`explain`](crate::explain::explain) and (through them) the serving
/// layer. Deterministic: the same `(ring, prepared, endpoints, opts)`
/// always yields the same plan.
pub fn plan(
    stats: &RingStatistics<'_>,
    prepared: &PreparedQuery,
    subject: Term,
    object: Term,
    opts: &EngineOptions,
) -> Plan {
    // Enumerate the split candidates once; every later consumer — route
    // feasibility, the cost comparison, the emitted plan — shares this
    // one choice, so a Split route always carries its executable split.
    let split_choice = split_choice(stats, prepared, subject, object);
    let route = choose_route(stats, prepared, opts, split_choice.as_ref());
    let split = match route {
        EvalRoute::Split => split_choice,
        _ => None,
    };
    let direction = choose_direction(stats, prepared, subject, object, route);
    let estimated_cost = estimate_cost(stats, prepared, subject, object, route, split.as_ref());
    let intra_query_threads =
        if opts.intra_query_threads > 1 && estimated_cost >= opts.parallel_min_frontier as u64 {
            opts.intra_query_threads
        } else {
            1
        };
    Plan {
        route,
        direction,
        split,
        estimated_cost,
        intra_query_threads,
    }
}

/// The split the split route would execute, if the route is available
/// at all: variable-to-variable endpoints and a best (rarest, in-range)
/// split point — the same filter [`best_split_with`] applies, so feasibility
/// and execution can never disagree.
fn split_choice(
    stats: &RingStatistics<'_>,
    prepared: &PreparedQuery,
    subject: Term,
    object: Term,
) -> Option<Split> {
    if !matches!((subject, object), (Term::Var, Term::Var)) {
        return None;
    }
    best_split_with(stats, prepared.expr())
}

fn choose_route(
    stats: &RingStatistics<'_>,
    prepared: &PreparedQuery,
    opts: &EngineOptions,
    split_choice: Option<&Split>,
) -> EvalRoute {
    if let Some(forced) = opts.forced_route {
        let feasible = match forced {
            EvalRoute::FastPath => !matches!(prepared.shape(), Shape::Other),
            EvalRoute::BitParallel => !prepared.uses_fallback(),
            EvalRoute::Fallback => true,
            EvalRoute::Split => split_choice.is_some(),
        };
        if feasible {
            return forced;
        }
    }
    if opts.fast_paths && !matches!(prepared.shape(), Shape::Other) {
        return EvalRoute::FastPath;
    }
    if prepared.uses_fallback() {
        // A variable-to-variable fallback run is a per-source scan of the
        // whole graph; completing each side of a split from its anchored
        // endpoints is strictly more focused whenever a split exists.
        return if split_choice.is_some() {
            EvalRoute::Split
        } else {
            EvalRoute::Fallback
        };
    }
    if let Some(split) = split_choice {
        let split_cost =
            (stats.pred_cardinality(split.label) as u64).saturating_mul(SPLIT_COST_FACTOR);
        if let Some((bp, bp_rev)) = prepared.tables() {
            let two_pass = first_expansion_cost(stats, bp).min(first_expansion_cost(stats, bp_rev));
            if split_cost < two_pass {
                return EvalRoute::Split;
            }
        }
    }
    EvalRoute::BitParallel
}

fn choose_direction(
    stats: &RingStatistics<'_>,
    prepared: &PreparedQuery,
    subject: Term,
    object: Term,
    route: EvalRoute,
) -> Option<Direction> {
    match route {
        // The fast paths are per-shape join algorithms and the split
        // route is driven from the split label's edges — neither has an
        // endpoint-direction choice.
        EvalRoute::FastPath | EvalRoute::Split => None,
        // The explicit-state fallback always walks forward along `E`:
        // from the subject constant when there is one, per source
        // otherwise; only a `(x, E, o)` query flips to the reversed
        // expression from the object.
        EvalRoute::Fallback => Some(match (subject, object) {
            (Term::Var, Term::Const(_)) => Direction::FromObject,
            _ => Direction::FromSubject,
        }),
        EvalRoute::BitParallel => {
            let (bp, bp_rev) = prepared.tables()?;
            Some(match (subject, object) {
                // Anchored queries have one sensible driving end.
                (Term::Var, Term::Const(_)) => Direction::FromObject,
                (Term::Const(_), Term::Var) => Direction::FromSubject,
                // Existence check: start from whichever endpoint admits
                // the cheaper first expansion (§4.3 / §5).
                (Term::Const(s), Term::Const(o)) => {
                    if anchored_expansion_cost(stats, bp, o)
                        <= anchored_expansion_cost(stats, bp_rev, s)
                    {
                        Direction::FromObject
                    } else {
                        Direction::FromSubject
                    }
                }
                // §4.4 two-pass: collect whichever end's predicates have
                // the smaller total cardinality first.
                (Term::Var, Term::Var) => {
                    if first_expansion_cost(stats, bp) <= first_expansion_cost(stats, bp_rev) {
                        Direction::FromSubject
                    } else {
                        Direction::FromObject
                    }
                }
            })
        }
    }
}

fn estimate_cost(
    stats: &RingStatistics<'_>,
    prepared: &PreparedQuery,
    subject: Term,
    object: Term,
    route: EvalRoute,
    split: Option<&Split>,
) -> u64 {
    match route {
        EvalRoute::FastPath => match prepared.shape() {
            Shape::Single(p) => stats.pred_cardinality(*p) as u64,
            Shape::Disjunction(ps) => ps
                .iter()
                .map(|&p| stats.pred_cardinality(p) as u64)
                .sum::<u64>(),
            // The intersection of targets(p1) and sources(p2) is bounded
            // by the smaller side.
            Shape::Concat2(p1, p2) => {
                (stats.pred_cardinality(*p1).min(stats.pred_cardinality(*p2))) as u64
            }
            Shape::Other => 0,
        },
        EvalRoute::Split => split
            .map(|s| (stats.pred_cardinality(s.label) as u64).saturating_mul(SPLIT_COST_FACTOR))
            .unwrap_or(0),
        // The explicit-state fallback reads whole per-label adjacency
        // ranges; the triple count is the honest coarse bound.
        EvalRoute::Fallback => stats.n_triples() as u64,
        EvalRoute::BitParallel => {
            let Some((bp, bp_rev)) = prepared.tables() else {
                return stats.n_triples() as u64;
            };
            match (subject, object) {
                (Term::Var, Term::Const(o)) => anchored_expansion_cost(stats, bp, o),
                (Term::Const(s), Term::Var) => anchored_expansion_cost(stats, bp_rev, s),
                (Term::Const(s), Term::Const(o)) => anchored_expansion_cost(stats, bp, o)
                    .min(anchored_expansion_cost(stats, bp_rev, s)),
                (Term::Var, Term::Var) => {
                    first_expansion_cost(stats, bp).min(first_expansion_cost(stats, bp_rev))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::Regex;
    use ring::ring::RingOptions;
    use ring::{Graph, Ring, Triple};

    fn ring() -> Ring {
        // Many a- and c-edges, one rare b-edge: the textbook split case
        // (the a/c sides must outweigh the split factor × 1 b-edge).
        let mut triples = vec![Triple::new(2, 1, 3)];
        for i in 0..12 {
            triples.push(Triple::new(i, 0, (i + 1) % 16));
            triples.push(Triple::new(i + 2, 2, (i + 3) % 16));
        }
        Ring::build(&Graph::from_triples(triples), RingOptions::default())
    }

    fn star(l: u64) -> Regex {
        Regex::Star(Box::new(Regex::label(l)))
    }

    fn prepared(ring: &Ring, e: &Regex) -> PreparedQuery {
        PreparedQuery::compile(e, &|l| ring.inverse_label(l), 8).unwrap()
    }

    #[test]
    fn fast_path_and_toggle() {
        let r = ring();
        let stats = RingStatistics::new(&r);
        let p = prepared(&r, &Regex::label(0));
        let opts = EngineOptions::default();
        let plan = plan(&stats, &p, Term::Var, Term::Var, &opts);
        assert_eq!(plan.route, EvalRoute::FastPath);
        assert_eq!(plan.direction, None);
        let opts = EngineOptions {
            fast_paths: false,
            ..opts
        };
        let plan = super::plan(&stats, &p, Term::Var, Term::Var, &opts);
        assert_eq!(plan.route, EvalRoute::BitParallel);
    }

    #[test]
    fn rare_label_split_is_chosen_and_costed() {
        let r = ring();
        let stats = RingStatistics::new(&r);
        // a*/b/c*: b has 1 edge against 12 a/c edges → split wins.
        let e = Regex::concat(Regex::concat(star(0), Regex::label(1)), star(2));
        let p = prepared(&r, &e);
        let plan = plan(&stats, &p, Term::Var, Term::Var, &EngineOptions::default());
        assert_eq!(plan.route, EvalRoute::Split);
        assert_eq!(plan.split_label(), Some(1));
        assert_eq!(plan.estimated_cost, SPLIT_COST_FACTOR);
        // Anchoring either endpoint rules the split route out.
        let plan = super::plan(
            &stats,
            &p,
            Term::Const(0),
            Term::Var,
            &EngineOptions::default(),
        );
        assert_eq!(plan.route, EvalRoute::BitParallel);
        assert_eq!(plan.direction, Some(Direction::FromSubject));
        assert!(plan.split.is_none());
    }

    #[test]
    fn forcing_wins_when_feasible_only() {
        let r = ring();
        let stats = RingStatistics::new(&r);
        let p = prepared(&r, &star(0));
        for (forced, expect) in [
            // star is not a fast-path shape: forcing falls back.
            (EvalRoute::FastPath, EvalRoute::BitParallel),
            (EvalRoute::Fallback, EvalRoute::Fallback),
            (EvalRoute::BitParallel, EvalRoute::BitParallel),
            // a* has no split point either.
            (EvalRoute::Split, EvalRoute::BitParallel),
        ] {
            let opts = EngineOptions {
                forced_route: Some(forced),
                ..EngineOptions::default()
            };
            assert_eq!(
                plan(&stats, &p, Term::Var, Term::Var, &opts).route,
                expect,
                "forcing {forced:?}"
            );
        }
    }

    #[test]
    fn out_of_alphabet_split_labels_never_plan_a_split() {
        // An oversized expression whose only literal factor lies outside
        // the ring's alphabet compiles (the fallback regime never builds
        // the reversed tables, so the label involution is not consulted)
        // and has split *candidates* — but no executable split. The
        // planner must not emit route=Split with split=None (it used to,
        // panicking the engine's dispatch).
        let r = ring();
        let stats = RingStatistics::new(&r);
        let mut big = star(0);
        for _ in 0..70 {
            big = Regex::concat(big, star(0));
        }
        let e = Regex::concat(big, Regex::label(99));
        let p = prepared(&r, &e);
        assert!(p.uses_fallback());
        assert!(!crate::split::split_candidates(p.expr()).is_empty());
        for opts in [
            EngineOptions::default(),
            EngineOptions {
                forced_route: Some(EvalRoute::Split),
                ..EngineOptions::default()
            },
        ] {
            let plan = plan(&stats, &p, Term::Var, Term::Var, &opts);
            assert_eq!(plan.route, EvalRoute::Fallback);
            assert!(plan.split.is_none());
        }
        assert!(!route_is_feasible(
            &stats,
            EvalRoute::Split,
            &p,
            Term::Var,
            Term::Var
        ));
    }

    #[test]
    fn oversized_expressions_route_to_fallback_or_split() {
        let r = ring();
        let stats = RingStatistics::new(&r);
        let mut e = star(0);
        for _ in 0..70 {
            e = Regex::concat(e, star(0));
        }
        let p = prepared(&r, &e);
        assert!(p.uses_fallback());
        let plan = plan(&stats, &p, Term::Var, Term::Var, &EngineOptions::default());
        assert_eq!(plan.route, EvalRoute::Fallback);
        assert_eq!(plan.direction, Some(Direction::FromSubject));
        // The same monster with a mandatory rare factor splits instead.
        let e = Regex::concat(Regex::concat(e, Regex::label(1)), star(2));
        let p = prepared(&r, &e);
        assert!(p.uses_fallback());
        let plan = super::plan(&stats, &p, Term::Var, Term::Var, &EngineOptions::default());
        assert_eq!(plan.route, EvalRoute::Split);
        assert_eq!(plan.split_label(), Some(1));
    }
}
