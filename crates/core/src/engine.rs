//! The Ring-RPQ evaluation engine (§4 of the paper).

use automata::glushkov::INITIAL;
use automata::{BitParallel, Label};
use ring::delta::DeltaIndex;
use ring::{Id, Ring};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use succinct::util::{BitSet, EpochArray};
use succinct::wavelet_matrix::{MultiRangeGuide, MultiTraversal, RangeGuide};
use succinct::WaveletMatrix;

use crate::pairbuf::PairBuffer;
use crate::plan::{EvalRoute, PreparedQuery};
use crate::planner::{self, Direction};
use crate::profile::{LevelProf, QueryProfile};
use crate::query::{EngineOptions, QueryOutput, RpqQuery, Term, TraversalStats};
use crate::source::{MergedView, ShardPart, TripleSource};
use crate::stats::RingStatistics;
use crate::{fastpath, merged, QueryError};

/// Frontier items batched through one `L_p` traversal at a time (bounds
/// the per-level scratch; a BFS level larger than this is processed in
/// chunks, in order).
const FRONTIER_CHUNK: usize = 1024;

/// The RPQ engine: borrows a [`Ring`] and owns the per-query working
/// memory (the `B[v]`, `D[v]` and `D[s]` mask tables with constant-time
/// lazy reset, §4.1–4.2).
///
/// ```
/// use automata::Regex;
/// use ring::{Graph, Ring, Triple};
/// use ring::ring::RingOptions;
/// use rpq_core::{EngineOptions, RpqEngine, RpqQuery, Term};
///
/// // 0 --a--> 1 --a--> 2 --b--> 3
/// let g = Graph::from_triples(vec![
///     Triple::new(0, 0, 1),
///     Triple::new(1, 0, 2),
///     Triple::new(2, 1, 3),
/// ]);
/// let ring = Ring::build(&g, RingOptions::default());
/// let mut engine = RpqEngine::new(&ring);
///
/// // (x, a*/b, 3): all nodes reaching 3 by a-steps then one b.
/// let expr = Regex::concat(Regex::Star(Box::new(Regex::label(0))), Regex::label(1));
/// let q = RpqQuery::new(Term::Var, expr, Term::Const(3));
/// let out = engine.evaluate(&q, &EngineOptions::default()).unwrap();
/// assert_eq!(out.sorted_pairs(), vec![(0, 3), (1, 3), (2, 3)]);
/// ```
pub struct RpqEngine<'r> {
    ring: &'r Ring,
    /// The committed delta overlay of an updatable source, when present
    /// and non-empty. Routes evaluation through the merged (ring ⊎
    /// delta) expansion; `None` keeps the pure succinct hot path.
    delta: Option<&'r DeltaIndex>,
    /// The shard partition of a sharded source (empty = unsharded;
    /// `shards[0].ring` is `ring`). Like a delta, a non-empty partition
    /// routes every evaluation through the merged expansion — the
    /// extra shards are gathered after each base-ring step.
    shards: &'r [ShardPart],
    /// `B[v]` masks over the wavelet nodes of `L_p`, heap-ordered.
    lp_masks: EpochArray,
    /// `D[v]`/`D[s]` masks over the wavelet nodes of `L_s`; the leaf level
    /// (`node_index(width, s)`) holds the per-graph-node visited sets, and
    /// internal nodes hold the intersection of the visited sets below them
    /// (subject-free subtrees counting as saturated).
    ls_masks: EpochArray,
    /// `occ[v]`: whether any subject below wavelet node `v` of `L_s`
    /// occurs in the sequence (static per ring; drives the intersection
    /// semantics of `ls_masks`). Packed one bit per node so the whole
    /// table stays cache-resident on large rings.
    ls_occupancy: BitSet,
    /// Reusable frontier-batching scratch (buffers persist across
    /// queries; no per-query allocation on the traversal hot path).
    scratch: TraverseScratch,
    /// Per-node visited masks of the merged traversal (empty until the
    /// first delta-backed evaluation; `O(1)` reset afterwards).
    merged_masks: EpochArray,
    /// Threads the *current* evaluation may fan frontier work across —
    /// the planner's [`Plan::intra_query_threads`] decision, stashed
    /// here by `evaluate_prepared` so the traversal internals need no
    /// extra parameter. 1 = the sequential path.
    ///
    /// [`Plan::intra_query_threads`]: crate::planner::Plan::intra_query_threads
    active_threads: usize,
    /// Per-level profile collector of the *current* evaluation, present
    /// iff [`EngineOptions::profile`] was set — same stashing pattern as
    /// `active_threads`, so the traversal internals need no extra
    /// parameter. `None` (profiling off) costs one pointer check per
    /// BFS level.
    prof_levels: Option<LevelProf>,
}

/// Scratch buffers for the frontier-batched backward traversal.
#[derive(Default)]
struct TraverseScratch {
    /// Batched `L_p` traversal state (layer-2 primitive).
    mt: MultiTraversal,
    /// The current BFS level: `(range of L_p, state mask)` per item.
    frontier: Vec<(usize, usize, u64)>,
    /// The next BFS level, accumulated while the current one is processed.
    next_frontier: Vec<(usize, usize, u64)>,
    /// Chunk ranges handed to the batched traversal.
    ranges: Vec<(usize, usize)>,
    /// Chunk state masks, parallel to `ranges`.
    ds: Vec<u64>,
    /// Per-item part-one output: `(pred, rank_b, rank_e, D & B[p])`.
    pred_hits: Vec<Vec<(Label, usize, usize, u64)>>,
    /// Part-two output: `(subject, fresh states)`.
    subjects: Vec<(Id, u64)>,
}

/// Where a backward traversal starts.
enum Start {
    /// From one object's `L_p` block (queries with a constant endpoint).
    Object(Id),
    /// From the full `L_p` range — all objects at once (§4.4).
    Full,
}

/// Why a backward traversal stopped early (if it did).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Stop {
    /// Ran to completion (or the report callback asked to stop).
    Completed,
    /// The wall-clock deadline passed.
    TimedOut,
    /// The product-node budget ran out.
    Budget,
}

impl<'r> RpqEngine<'r> {
    /// Creates an engine over `ring`. Allocates the mask tables once
    /// (`O(|P| + |V|)` words); queries reset them in *O*(1).
    pub fn new(ring: &'r Ring) -> Self {
        Self::with_delta(ring, None)
    }

    /// Creates an engine over any [`TripleSource`] — an immutable ring,
    /// a store snapshot whose delta overlay the engine merges into every
    /// expansion step, or a sharded source whose parts it
    /// scatter-gathers.
    pub fn over<S: TripleSource + ?Sized>(source: &'r S) -> Self {
        let mut engine = Self::with_delta(source.ring(), source.delta());
        engine.shards = source.shard_parts();
        engine
    }

    /// Creates an engine over a ring plus an optional delta overlay (an
    /// empty delta selects the pure path).
    pub fn with_delta(ring: &'r Ring, delta: Option<&'r DeltaIndex>) -> Self {
        let ls = ring.l_s();
        let width = ls.width();
        let table_len = ls.node_table_len();
        // Leaf occupancy from the predicate boundary of L_s: a node acts
        // as a subject iff its subject block is non-empty; internal nodes
        // OR their children, bottom-up.
        let mut occ = BitSet::new(table_len);
        for s in 0..ring.n_nodes() {
            let (b, e) = ring.subject_range(s);
            if e > b {
                occ.set(WaveletMatrix::node_index(width, s));
            }
        }
        for level in (0..width).rev() {
            for prefix in 0..(1usize << level) {
                let v = WaveletMatrix::node_index(level, prefix as u64);
                let l = WaveletMatrix::node_index(level + 1, (prefix as u64) << 1);
                if occ.get(l) || occ.get(l + 1) {
                    occ.set(v);
                }
            }
        }
        Self {
            lp_masks: EpochArray::new(ring.l_p().node_table_len()),
            ls_masks: EpochArray::new(table_len),
            ls_occupancy: occ,
            scratch: TraverseScratch::default(),
            merged_masks: EpochArray::new(0),
            active_threads: 1,
            prof_levels: None,
            ring,
            delta: delta.filter(|d| !d.is_empty()),
            shards: &[],
        }
    }

    /// The underlying ring (borrowed for the engine's full lifetime, so
    /// the reference outlives any `&mut self` evaluation borrow).
    pub fn ring(&self) -> &'r Ring {
        self.ring
    }

    /// Whether evaluation must go through the merged expansion (a delta
    /// overlay or a multi-shard partition is layered over the base
    /// ring); `false` keeps the pure succinct hot path.
    pub(crate) fn layered(&self) -> bool {
        self.delta.is_some() || !self.shards.is_empty()
    }

    /// The merged step-level view of this engine's source.
    pub(crate) fn view(&self) -> MergedView<'r> {
        MergedView::with_shards(self.ring, self.delta, self.shards)
    }

    /// The evaluation node universe (ring nodes plus delta nodes; shard
    /// universes are global by construction, but max defensively).
    fn n_nodes_universe(&self) -> Id {
        let shard_max = self.shards.iter().map(|p| p.ring.n_nodes()).max();
        self.ring
            .n_nodes()
            .max(self.delta.map_or(0, |d| d.n_nodes()))
            .max(shard_max.unwrap_or(0))
    }

    /// Bytes of per-query working memory (the `D` and `B` tables of
    /// Table 2's working-space accounting).
    pub fn working_space_bytes(&self) -> usize {
        self.lp_masks.size_bytes() + self.ls_masks.size_bytes()
    }

    /// Evaluates a 2RPQ under the given options: compiles a one-shot
    /// [`PreparedQuery`] and runs [`Self::evaluate_prepared`]. Callers
    /// that re-run the same pattern (a server's plan cache) should
    /// compile once and call `evaluate_prepared` directly.
    pub fn evaluate(
        &mut self,
        query: &RpqQuery,
        opts: &EngineOptions,
    ) -> Result<QueryOutput, QueryError> {
        // Checked again by evaluate_prepared, but compilation itself
        // reverses the expression through `inverse_label`, which needs the
        // completed alphabet.
        if !self.ring.has_inverses() {
            return Err(QueryError::InversesRequired);
        }
        let plan = PreparedQuery::compile(
            &query.expr,
            &|l| self.ring.inverse_label(l),
            opts.bp_split_width,
        )?;
        self.evaluate_prepared(&plan, query.subject, query.object, opts)
    }

    /// Evaluates a precompiled query anchored at the given endpoints.
    ///
    /// The route, traversal direction and (possible) rare-label split
    /// come from the shared cost-based planner
    /// ([`crate::planner::plan`]); the decision actually executed is
    /// recorded in [`QueryOutput::plan`], so callers — `explain`, a
    /// server's metrics — observe exactly what ran. The prepared
    /// query's transition tables are used as-is (the
    /// `opts.bp_split_width` of this call is ignored); everything else
    /// in `opts` — limits, timeout, node budget, fast paths, pruning,
    /// route forcing — applies per call.
    pub fn evaluate_prepared(
        &mut self,
        prepared: &PreparedQuery,
        subject: Term,
        object: Term,
        opts: &EngineOptions,
    ) -> Result<QueryOutput, QueryError> {
        if !self.ring.has_inverses() {
            return Err(QueryError::InversesRequired);
        }
        for t in [subject, object] {
            if let Term::Const(c) = t {
                if c >= self.n_nodes_universe() {
                    return Err(QueryError::NodeOutOfRange(c));
                }
            }
        }
        // Profiling clocks: read only when `opts.profile` is set, so the
        // unprofiled path stays exactly as before. The planner never
        // sees the flag — plans, and therefore answers, are identical
        // either way.
        let prof_t0 = opts.profile.then(Instant::now);
        let plan = planner::plan(
            &RingStatistics::with_parts(self.ring, self.delta, self.shards),
            prepared,
            subject,
            object,
            opts,
        );
        let prof_planned = prof_t0.map(|_| Instant::now());
        let deadline = opts.timeout.map(|t| Instant::now() + t);
        self.active_threads = plan.intra_query_threads;
        self.prof_levels = opts.profile.then(LevelProf::new);

        let mut out = match plan.route {
            EvalRoute::FastPath => {
                if self.layered() {
                    fastpath::evaluate_merged(
                        &self.view(),
                        prepared.shape(),
                        subject,
                        object,
                        opts,
                        deadline,
                        plan.intra_query_threads,
                    )?
                } else {
                    fastpath::evaluate(
                        self.ring,
                        prepared.shape(),
                        subject,
                        object,
                        opts,
                        deadline,
                        plan.intra_query_threads,
                    )?
                }
            }
            // Expressions beyond the bit-parallel word width evaluate
            // through the explicit-state fallback (§3.3's m > w regime).
            EvalRoute::Fallback => {
                let query = RpqQuery::new(subject, prepared.expr().clone(), object);
                crate::fallback::evaluate_view(&self.view(), &query, opts)?
            }
            EvalRoute::Split => {
                let split = plan.split.clone().expect("a split plan carries its split");
                crate::split::evaluate_split_in(self, &split, opts, deadline)?
            }
            EvalRoute::BitParallel if self.layered() => {
                let (bp, bp_rev) = prepared
                    .tables()
                    .expect("the planner only picks bit-parallel when tables exist");
                let n = self.n_nodes_universe() as usize;
                if self.merged_masks.len() < n {
                    self.merged_masks = EpochArray::new(n);
                }
                merged::evaluate_bitparallel(
                    &self.view(),
                    &mut self.merged_masks,
                    bp,
                    bp_rev,
                    plan.direction,
                    subject,
                    object,
                    opts,
                    deadline,
                    plan.intra_query_threads,
                    self.prof_levels.as_mut(),
                )?
            }
            EvalRoute::BitParallel => {
                let (bp, bp_rev) = prepared
                    .tables()
                    .expect("the planner only picks bit-parallel when tables exist");
                let mut out = QueryOutput::default();
                match (subject, object) {
                    (Term::Var, Term::Const(o)) => {
                        self.eval_to_object(bp, o, None, opts, deadline, &mut out, |s, o| (s, o));
                    }
                    (Term::Const(s), Term::Var) => {
                        // (s, E, y) ≡ (y, Ê, s): traverse backwards from s
                        // with the reversed-and-inverted expression (§4.4).
                        self.eval_to_object(bp_rev, s, None, opts, deadline, &mut out, |r, s| {
                            (s, r)
                        });
                    }
                    (Term::Const(s), Term::Const(o)) => {
                        // Existence check from the endpoint the planner
                        // found cheaper (§4.3 anchored range estimates).
                        if plan.direction == Some(Direction::FromObject) {
                            self.eval_to_object(
                                bp,
                                o,
                                Some(s),
                                opts,
                                deadline,
                                &mut out,
                                |s, o| (s, o),
                            );
                        } else {
                            self.eval_to_object(
                                bp_rev,
                                s,
                                Some(o),
                                opts,
                                deadline,
                                &mut out,
                                |o, s| (s, o),
                            );
                        }
                    }
                    (Term::Var, Term::Var) => {
                        out = self.eval_var_var(
                            bp,
                            bp_rev,
                            plan.direction == Some(Direction::FromSubject),
                            opts,
                            deadline,
                        )?;
                    }
                }
                out
            }
        };
        out.plan = Some(plan);
        if let (Some(t0), Some(planned)) = (prof_t0, prof_planned) {
            let mut levels = self
                .prof_levels
                .take()
                .map(LevelProf::into_samples)
                .unwrap_or_default();
            // The split route evaluates through nested sub-queries; its
            // partial profile carries the concatenated sub-levels up.
            if let Some(sub) = out.profile.take() {
                levels.extend(sub.levels);
            }
            let done = Instant::now();
            out.profile = Some(Box::new(QueryProfile {
                plan_us: planned.duration_since(t0).as_micros() as u64,
                exec_us: done.duration_since(planned).as_micros() as u64,
                total_us: done.duration_since(t0).as_micros() as u64,
                levels,
                compactions: out.stats.pair_compactions,
                queue_wait_us: None,
                compile_us: None,
                cache_hit: None,
            }));
        }
        Ok(out)
    }

    /// Evaluates the backward traversal anchored at object `anchor`,
    /// reporting every node `r` where the initial state activates.
    /// `pair_of(r, anchor)` shapes each reported pair; `target` turns the
    /// run into an existence check for `(target, E, anchor)`.
    #[allow(clippy::too_many_arguments)]
    fn eval_to_object(
        &mut self,
        bp: &BitParallel,
        anchor: Id,
        target: Option<Id>,
        opts: &EngineOptions,
        deadline: Option<Instant>,
        out: &mut QueryOutput,
        pair_of: impl Fn(Id, Id) -> (Id, Id),
    ) {
        let limit = opts.limit;
        let budget = opts
            .node_budget
            .map(|nb| nb.saturating_sub(out.stats.product_nodes));
        let mut stats = TraversalStats::default();
        let mut truncated = false;
        let mut done = false;
        let mut trace = Vec::new();
        let stop = self.backward_traverse(
            bp,
            Start::Object(anchor),
            opts,
            deadline,
            budget,
            &mut stats,
            opts.collect_trace.then_some(&mut trace),
            &mut |r| {
                if let Some(t) = target {
                    if r == t {
                        out.pairs.push(pair_of(t, anchor));
                        done = true;
                        return false;
                    }
                    return true;
                }
                out.pairs.push(pair_of(r, anchor));
                if out.pairs.len() >= limit {
                    truncated = true;
                    return false;
                }
                true
            },
        );
        let _ = done;
        out.trace.extend(trace);
        out.truncated |= truncated;
        out.timed_out |= stop == Stop::TimedOut;
        out.budget_exhausted |= stop == Stop::Budget;
        out.stats.add(&stats);
    }

    /// The `(x, E, y)` strategy of §4.4: one full-range backward pass finds
    /// the useful anchors, then one anchored query per anchor. The
    /// direction (`sources_first` vs targets-first) is the planner's §5
    /// smallest-first-expansion choice, passed down from the [`Plan`]
    /// being executed.
    ///
    /// [`Plan`]: crate::planner::Plan
    fn eval_var_var(
        &mut self,
        bp_e: &BitParallel,
        bp_rev: &BitParallel,
        sources_first: bool,
        opts: &EngineOptions,
        deadline: Option<Instant>,
    ) -> Result<QueryOutput, QueryError> {
        let mut out = QueryOutput::default();
        // Sorted-vec dedup instead of a hash set: pushes are a bump
        // write, compaction amortizes, and truncation keeps a
        // deterministic (smallest) subset. See [`PairBuffer`].
        let mut pairs = PairBuffer::new();

        // Zero-length paths: every existing node pairs with itself
        // (already distinct, so the raw length is the distinct count).
        if bp_e.is_nullable() {
            for v in 0..self.ring.n_nodes() {
                if self.node_exists(v) {
                    pairs.push((v, v));
                    if pairs.distinct_reached(opts.limit) {
                        pairs.truncate_distinct(opts.limit);
                        out.truncated = true;
                        break;
                    }
                }
            }
        }

        // Pass 1: collect the useful anchors from the full range.
        let pass_bp = if sources_first { bp_e } else { bp_rev };
        let mut anchors: Vec<Id> = Vec::new();
        let mut stats = TraversalStats::default();
        if !out.truncated {
            let stop = self.backward_traverse(
                pass_bp,
                Start::Full,
                opts,
                deadline,
                opts.node_budget,
                &mut stats,
                opts.collect_trace.then_some(&mut out.trace),
                &mut |r| {
                    anchors.push(r);
                    true
                },
            );
            out.timed_out |= stop == Stop::TimedOut;
            out.budget_exhausted |= stop == Stop::Budget;
        }
        out.stats.add(&stats);

        // Pass 2: one anchored query per useful node. The node budget is
        // cumulative across the whole query: each anchored run gets what
        // the previous passes left over.
        let per_bp = if sources_first { bp_rev } else { bp_e };
        'outer: for &a in &anchors {
            if out.timed_out || out.truncated || out.budget_exhausted {
                break;
            }
            let budget = opts
                .node_budget
                .map(|nb| nb.saturating_sub(out.stats.product_nodes));
            let mut stats = TraversalStats::default();
            let mut hit_limit = false;
            let mut trace = Vec::new();
            let stop = self.backward_traverse(
                per_bp,
                Start::Object(a),
                opts,
                deadline,
                budget,
                &mut stats,
                opts.collect_trace.then_some(&mut trace),
                &mut |r| {
                    // Sources-first: a is a source, r its reachable target.
                    let pair = if sources_first { (a, r) } else { (r, a) };
                    pairs.push(pair);
                    // Amortized probe; the post-loop settle is exact.
                    if pairs.maybe_reached(opts.limit) {
                        pairs.truncate_distinct(opts.limit);
                        hit_limit = true;
                        return false;
                    }
                    true
                },
            );
            out.trace.extend(trace);
            out.stats.add(&stats);
            out.timed_out |= stop == Stop::TimedOut;
            out.budget_exhausted |= stop == Stop::Budget;
            if hit_limit {
                out.truncated = true;
                break 'outer;
            }
        }

        // Exact settle: the amortized limit probe may have lagged.
        if pairs.distinct_reached(opts.limit) {
            pairs.truncate_distinct(opts.limit);
            out.truncated = true;
        }
        pairs.compact();
        out.stats.pair_compactions += pairs.compactions();
        out.pairs = pairs.into_sorted_vec();
        Ok(out)
    }

    fn node_exists(&self, v: Id) -> bool {
        node_exists(self.ring, v)
    }

    /// The backward product-graph traversal (§4, parts one to three),
    /// frontier-batched: each BFS level's part-one (`L_p`) traversals run
    /// as **one** batched wavelet sweep over the whole frontier
    /// ([`WaveletMatrix::guided_traverse_multi`]), sharing node-start
    /// ranks, `B[v]` mask lookups and cache lines across the level's
    /// ranges. Part one only reads the static `B` masks, so batching it
    /// is semantically transparent; items are then processed in exact
    /// FIFO order (a FIFO queue visits whole levels consecutively), so
    /// visit order, traces and the product-graph counters match the
    /// item-at-a-time traversal bit for bit. (`wavelet_nodes` is the
    /// exception: batched part-one consults each `L_p` node once per
    /// frontier chunk instead of once per range, so that counter now
    /// measures the batched workload.)
    ///
    /// When the planner granted `intra_query_threads > 1` and a level's
    /// frontier reaches `parallel_min_frontier`, that level expands via
    /// the speculative two-phase scheme ([`expand_level_speculative`]):
    /// answers, flags, traces and the budget stop point stay bit-for-bit
    /// identical; `wavelet_nodes`/`rank_ops` then measure the
    /// *speculative* workload (frozen-mask pruning admits more nodes,
    /// and budget-aborted levels were already fully expanded) — the same
    /// "counters measure the executed strategy" convention the batching
    /// above established.
    #[allow(clippy::too_many_arguments)]
    /// Calls `report(r)` for every node where the initial NFA state newly
    /// activates; a `false` return aborts the traversal. `budget` caps
    /// the product-graph nodes visited by *this* run. Returns why the
    /// traversal stopped.
    fn backward_traverse(
        &mut self,
        bp: &BitParallel,
        start: Start,
        opts: &EngineOptions,
        deadline: Option<Instant>,
        budget: Option<u64>,
        stats: &mut TraversalStats,
        trace: Option<&mut Vec<(Id, u64)>>,
        report: &mut dyn FnMut(Id) -> bool,
    ) -> Stop {
        let stop =
            self.backward_traverse_impl(bp, start, opts, deadline, budget, stats, trace, report);
        // Close the last open level sample with this run's final
        // counters — the traversal body has many early exits (deadline,
        // budget, report abort) and this wrapper covers them all.
        if let Some(p) = self.prof_levels.as_mut() {
            p.finish(stats.rank_ops, stats.parallel_chunks);
        }
        stop
    }

    #[allow(clippy::too_many_arguments)]
    fn backward_traverse_impl(
        &mut self,
        bp: &BitParallel,
        start: Start,
        opts: &EngineOptions,
        deadline: Option<Instant>,
        budget: Option<u64>,
        stats: &mut TraversalStats,
        mut trace: Option<&mut Vec<(Id, u64)>>,
        report: &mut dyn FnMut(Id) -> bool,
    ) -> Stop {
        let threads = self.active_threads.max(1);
        let min_frontier = opts.parallel_min_frontier.max(2);
        let Self {
            ring,
            lp_masks,
            ls_masks,
            ls_occupancy,
            scratch,
            prof_levels,
            ..
        } = self;
        let ring: &Ring = ring;
        let lp = ring.l_p();
        let ls = ring.l_s();
        let width_p = lp.width();
        let width_s = ls.width();

        lp_masks.reset();
        ls_masks.reset();
        // Seed B[v] for all wavelet-node ancestors of the query's labels
        // (lazy initialization, O(m log |P|), §4.1).
        for &(label, mask) in bp.positive_label_masks() {
            for level in 0..=width_p {
                let prefix = label >> (width_p - level);
                lp_masks.or_with(WaveletMatrix::node_index(level, prefix), mask);
            }
        }
        let neg = bp.negated_positions();

        let TraverseScratch {
            mt,
            frontier,
            next_frontier,
            ranges,
            ds,
            pred_hits,
            subjects,
        } = scratch;
        frontier.clear();
        next_frontier.clear();
        let d0 = bp.accept_mask();
        if d0 == 0 {
            return Stop::Completed;
        }
        match start {
            Start::Object(o) => {
                // Mark F on the start node (§4.2) and report a zero-length
                // match if the initial state is already accepting.
                ls_masks.set(WaveletMatrix::node_index(width_s, o), d0);
                if d0 & INITIAL != 0 && node_exists(ring, o) {
                    stats.reported += 1;
                    if !report(o) {
                        return Stop::Completed;
                    }
                }
                let (b, e) = ring.object_range(o);
                if e > b {
                    frontier.push((b, e, d0));
                }
            }
            Start::Full => {
                let (b, e) = ring.full_range();
                if e > b {
                    frontier.push((b, e, d0));
                }
            }
        }

        while !frontier.is_empty() {
            if let Some(p) = prof_levels.as_mut() {
                p.enter(frontier.len() as u64, stats.rank_ops, stats.parallel_chunks);
            }
            if threads > 1 && frontier.len() >= min_frontier {
                // Two-phase parallel expansion. Phase A (concurrent,
                // read-only): every chunk speculatively runs part one and
                // a *frozen-mask* part two, producing an ordered
                // candidate plan. Phase B (sequential, below): replay the
                // plans in chunk/item/pred/candidate order against the
                // live masks — recomputing `fresh` exactly where the
                // sequential loop would — so pairs, flags, traces and the
                // budget stop point are bit-for-bit identical to the
                // sequential path. (Frozen pruning admits a superset of
                // candidates in the same traversal order; the replay's
                // `fresh == 0` skip is precisely the sequential leaf
                // filter, see `FrozenSubjGuide`.)
                let plans = expand_level_speculative(
                    ring,
                    bp,
                    neg,
                    lp_masks,
                    ls_masks,
                    opts.node_pruning,
                    frontier,
                    deadline,
                    threads,
                );
                stats.parallel_levels += 1;
                for plan in &plans {
                    stats.parallel_chunks += 1;
                    stats.rank_ops += plan.rank_ops;
                    stats.rank_ops_saved += plan.rank_ops_saved;
                    stats.wavelet_nodes += plan.wavelet_nodes;
                    if plan.deadline_hit {
                        // A worker saw the (monotone) deadline pass, so
                        // the sequential run would also time out by now.
                        return Stop::TimedOut;
                    }
                    for item in &plan.items {
                        stats.bfs_steps += 1;
                        if let Some(dl) = deadline {
                            if stats.bfs_steps.is_multiple_of(64) && Instant::now() >= dl {
                                return Stop::TimedOut;
                            }
                        }
                        stats.product_edges += item.n_hits;
                        for &(d_new, ref cands) in &item.preds {
                            for &s in cands {
                                let idx = WaveletMatrix::node_index(width_s, s);
                                let old = ls_masks.get(idx);
                                let fresh = d_new & !old;
                                if fresh == 0 {
                                    continue;
                                }
                                if let Some(nb) = budget {
                                    if stats.product_nodes >= nb {
                                        return Stop::Budget;
                                    }
                                }
                                ls_masks.set(idx, old | d_new);
                                if opts.node_pruning {
                                    propagate_up(ls_masks, ls_occupancy, width_s, s);
                                }
                                stats.product_nodes += 1;
                                if let Some(t) = trace.as_deref_mut() {
                                    t.push((s, fresh));
                                }
                                if fresh & INITIAL != 0 {
                                    stats.reported += 1;
                                    if !report(s) {
                                        return Stop::Completed;
                                    }
                                }
                                let (ob, oe) = ring.object_range(s);
                                if oe > ob {
                                    next_frontier.push((ob, oe, fresh));
                                }
                            }
                        }
                    }
                }
                std::mem::swap(frontier, next_frontier);
                next_frontier.clear();
                continue;
            }
            let mut chunk_start = 0;
            while chunk_start < frontier.len() {
                let chunk =
                    &frontier[chunk_start..(chunk_start + FRONTIER_CHUNK).min(frontier.len())];
                chunk_start += chunk.len();

                // Part one, batched over the chunk: distinct relevant
                // predicates reaching each range, found in one sweep.
                ranges.clear();
                ds.clear();
                for &(b, e, d) in chunk {
                    ranges.push((b, e));
                    ds.push(d);
                }
                if pred_hits.len() < chunk.len() {
                    pred_hits.resize_with(chunk.len(), Vec::new);
                }
                for hits in pred_hits[..chunk.len()].iter_mut() {
                    hits.clear();
                }
                let union_d = ds.iter().fold(0u64, |a, &d| a | d);
                {
                    let mut guide = PredGuideMulti {
                        ds,
                        union_d,
                        masks: lp_masks,
                        neg,
                        width: width_p,
                        out: pred_hits,
                        nodes_entered: &mut stats.wavelet_nodes,
                        node_mask: 0,
                        pending: 0,
                    };
                    mt.run(lp, ranges, &mut guide);
                }
                stats.rank_ops += mt.ranks;
                stats.rank_ops_saved += mt.ranks_saved;
                // The batched sweep emits leaves in unspecified order;
                // ascending-label order restores the exact predicate
                // processing sequence (and traces) of the per-range
                // traversal.
                for hits in pred_hits[..chunk.len()].iter_mut() {
                    hits.sort_unstable_by_key(|&(p, ..)| p);
                }

                // Items in FIFO order, each with its precomputed preds.
                for (i, _) in chunk.iter().enumerate() {
                    stats.bfs_steps += 1;
                    if let Some(dl) = deadline {
                        if stats.bfs_steps.is_multiple_of(64) && Instant::now() >= dl {
                            return Stop::TimedOut;
                        }
                    }

                    for &(p, rb, re, d_and_b) in pred_hits[i].iter() {
                        stats.product_edges += 1;
                        // Eq. 2: the same new state set for every subject
                        // (Fact 1).
                        let d_new = bp.apply_bwd(d_and_b);
                        if d_new == 0 {
                            continue;
                        }
                        let base = ring.pred_range(p).0;
                        let (sb, se) = (base + rb, base + re);

                        // Part two: distinct unvisited subjects in range.
                        subjects.clear();
                        {
                            let mut guide = SubjGuide {
                                d_new,
                                masks: ls_masks,
                                occ: ls_occupancy,
                                width: width_s,
                                node_pruning: opts.node_pruning,
                                out: subjects,
                                nodes_entered: &mut stats.wavelet_nodes,
                                pending_fresh: 0,
                            };
                            ls.guided_traverse(sb, se, &mut guide);
                        }

                        for &(s, fresh) in subjects.iter() {
                            if let Some(nb) = budget {
                                if stats.product_nodes >= nb {
                                    return Stop::Budget;
                                }
                            }
                            stats.product_nodes += 1;
                            if let Some(t) = trace.as_deref_mut() {
                                t.push((s, fresh));
                            }
                            if fresh & INITIAL != 0 {
                                stats.reported += 1;
                                if !report(s) {
                                    return Stop::Completed;
                                }
                            }
                            // Part three: the subject becomes an object
                            // again, on the next BFS level.
                            let (ob, oe) = ring.object_range(s);
                            if oe > ob {
                                next_frontier.push((ob, oe, fresh));
                            }
                        }
                    }
                }
            }
            std::mem::swap(frontier, next_frontier);
            next_frontier.clear();
        }
        Stop::Completed
    }
}

/// Whether `v` occurs in the graph (as an object or a subject).
fn node_exists(ring: &Ring, v: Id) -> bool {
    let (b, e) = ring.object_range(v);
    if e > b {
        return true;
    }
    let (b, e) = ring.subject_range(v);
    e > b
}

/// §4.1, frontier-batched: prune `L_p` subtrees whose labels cannot
/// reach an active state of *any* frontier item (node level), then
/// per item against its own mask (item level). The expensive per-node
/// work — the `B[v]` lookup and the negated-class range mask — is done
/// once per node for the whole frontier.
struct PredGuideMulti<'a> {
    /// Per-item state masks `D_i`.
    ds: &'a [u64],
    /// OR of all `D_i`: the node-level admission mask.
    union_d: u64,
    masks: &'a EpochArray,
    neg: &'a [(u64, Vec<Label>)],
    width: usize,
    /// Per-item output: `(pred, rank_b, rank_e, D_i & B[p])`.
    out: &'a mut Vec<Vec<(Label, usize, usize, u64)>>,
    nodes_entered: &'a mut u64,
    /// `B[v] | neg` of the node admitted most recently.
    node_mask: u64,
    /// `D_i & B[p]` for the item whose `leaf` call comes next (the
    /// [`MultiRangeGuide`] contract: `leaf` immediately follows its
    /// item's `enter_item`); at a leaf this is exactly Eq. 2's input.
    pending: u64,
}

impl MultiRangeGuide for PredGuideMulti<'_> {
    fn enter_node(&mut self, level: usize, prefix: u64) -> bool {
        *self.nodes_entered += 1;
        let mut mask = self.masks.get(WaveletMatrix::node_index(level, prefix));
        if !self.neg.is_empty() {
            mask |= neg_range_mask(self.neg, level, prefix, self.width);
        }
        self.node_mask = mask;
        mask & self.union_d != 0
    }

    fn enter_item(&mut self, item: u32, _level: usize, _prefix: u64) -> bool {
        let active = self.node_mask & self.ds[item as usize];
        if active == 0 {
            return false;
        }
        self.pending = active;
        true
    }

    fn leaf(&mut self, item: u32, sym: u64, rank_b: usize, rank_e: usize) {
        self.out[item as usize].push((sym, rank_b, rank_e, self.pending));
    }
}

/// Mask contributed by negated-class positions to the wavelet node
/// `(level, prefix)` covering labels `[prefix·2^span, (prefix+1)·2^span)`:
/// the position fires unless the whole interval is excluded.
fn neg_range_mask(neg: &[(u64, Vec<Label>)], level: usize, prefix: u64, width: usize) -> u64 {
    let span = width - level;
    let lo = prefix << span;
    let len = 1u64 << span;
    let mut mask = 0;
    for (bit, excluded) in neg {
        let from = excluded.partition_point(|&l| l < lo);
        let to = excluded.partition_point(|&l| l < lo + len);
        if ((to - from) as u64) < len {
            mask |= bit;
        }
    }
    mask
}

/// §4.2: skip subjects (and subtrees) already visited with every active
/// state. Internal nodes hold the **intersection** of the visited sets of
/// the occupied leaves below them — the invariant the paper states for
/// `D[v]` — maintained by upward propagation from each leaf update.
struct SubjGuide<'a> {
    d_new: u64,
    masks: &'a mut EpochArray,
    occ: &'a BitSet,
    width: usize,
    node_pruning: bool,
    out: &'a mut Vec<(Id, u64)>,
    nodes_entered: &'a mut u64,
    pending_fresh: u64,
}

impl RangeGuide for SubjGuide<'_> {
    fn enter(&mut self, level: usize, prefix: u64) -> bool {
        *self.nodes_entered += 1;
        let idx = WaveletMatrix::node_index(level, prefix);
        if level == self.width {
            // Leaf: the per-node visited filter D[s] (always on; soundness
            // and Theorem 4.1 depend on it).
            let old = self.masks.get(idx);
            let fresh = self.d_new & !old;
            if fresh == 0 {
                return false;
            }
            self.masks.set(idx, old | self.d_new);
            self.pending_fresh = fresh;
            true
        } else if self.node_pruning {
            // Prune when every occupied subject below already carries all
            // of d_new. Sound because masks[idx] is an intersection lower
            // bound (default 0 never over-prunes).
            self.d_new & !self.masks.get(idx) != 0
        } else {
            true
        }
    }

    fn leaf(&mut self, sym: u64, _rank_b: usize, _rank_e: usize) {
        self.out.push((sym, self.pending_fresh));
        if self.node_pruning {
            propagate_up(self.masks, self.occ, self.width, sym);
        }
    }
}

/// Re-establishes the intersection invariant of the internal `D[v]`
/// masks on the leaf-to-root path above `sym`, stopping as soon as an
/// ancestor's value is unchanged. Shared by the sequential leaf update
/// ([`SubjGuide::leaf`]) and the parallel merge replay, which must
/// mutate the masks identically.
fn propagate_up(masks: &mut EpochArray, occ: &BitSet, width: usize, sym: u64) {
    let mut prefix = sym;
    for level in (0..width).rev() {
        prefix >>= 1;
        let left = WaveletMatrix::node_index(level + 1, prefix << 1);
        let dl = if occ.get(left) {
            masks.get(left)
        } else {
            u64::MAX
        };
        let dr = if occ.get(left + 1) {
            masks.get(left + 1)
        } else {
            u64::MAX
        };
        let v = WaveletMatrix::node_index(level, prefix);
        let merged = dl & dr;
        if masks.get(v) == merged {
            break;
        }
        masks.set(v, merged);
    }
}

/// One frontier chunk's speculative expansion plan (Phase A output):
/// everything the sequential loop would need, computed against *frozen*
/// visited masks so it can run concurrently.
struct ChunkPlan {
    /// Per frontier item, in order.
    items: Vec<ItemPlan>,
    /// This chunk's part-one rank count.
    rank_ops: u64,
    /// Ranks the batched part-one avoided.
    rank_ops_saved: u64,
    /// Wavelet nodes entered (part one + frozen part two).
    wavelet_nodes: u64,
    /// The worker saw the deadline pass and skipped expansion; the merge
    /// turns this into `Stop::TimedOut` when it reaches the chunk.
    deadline_hit: bool,
}

/// One frontier item's speculative expansion: its part-one hit count
/// (for exact `product_edges` accounting — hits with a dead `d_new` are
/// counted by the sequential loop too) and, per surviving predicate in
/// ascending-label order, the backward state set and the candidate
/// subjects the frozen part two emitted.
struct ItemPlan {
    n_hits: u64,
    preds: Vec<(u64, Vec<Id>)>,
}

/// Phase A: expands every chunk of `frontier` speculatively, fanning
/// chunks across up to `threads − 1` pool helpers plus the calling
/// thread. Chunk geometry depends only on `(frontier.len(), threads)` —
/// never on how many helpers the pool actually granted — and per-item
/// part-one output is independent of chunk grouping (the multi-range
/// guide filters per item), so results are deterministic.
#[allow(clippy::too_many_arguments)]
fn expand_level_speculative(
    ring: &Ring,
    bp: &BitParallel,
    neg: &[(u64, Vec<Label>)],
    lp_masks: &EpochArray,
    ls_masks: &EpochArray,
    node_pruning: bool,
    frontier: &[(usize, usize, u64)],
    deadline: Option<Instant>,
    threads: usize,
) -> Vec<ChunkPlan> {
    // Aim for ~4 chunks per requested thread so dynamic claiming can
    // balance skew, but never exceed the sequential chunk bound (the
    // part-one scratch size) and don't shatter small levels.
    let chunk_size = frontier
        .len()
        .div_ceil(threads * 4)
        .clamp(64, FRONTIER_CHUNK);
    let n_chunks = frontier.len().div_ceil(chunk_size);
    let grant = crate::parallel::acquire_helpers(threads.saturating_sub(1));
    let slots: Vec<OnceLock<ChunkPlan>> = (0..n_chunks).map(|_| OnceLock::new()).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let work = || loop {
            let c = cursor.fetch_add(1, Ordering::Relaxed);
            if c >= n_chunks {
                break;
            }
            let lo = c * chunk_size;
            let hi = (lo + chunk_size).min(frontier.len());
            let plan = expand_chunk_speculative(
                ring,
                bp,
                neg,
                lp_masks,
                ls_masks,
                node_pruning,
                &frontier[lo..hi],
                deadline,
            );
            let _ = slots[c].set(plan);
        };
        for _ in 0..grant.count().min(n_chunks.saturating_sub(1)) {
            scope.spawn(work);
        }
        work();
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("phase A fills every chunk slot"))
        .collect()
}

/// Expands one chunk against frozen masks: part one (identical to the
/// sequential sweep — it only reads the static `B[v]` table) plus a
/// read-only part two per surviving predicate.
#[allow(clippy::too_many_arguments)]
fn expand_chunk_speculative(
    ring: &Ring,
    bp: &BitParallel,
    neg: &[(u64, Vec<Label>)],
    lp_masks: &EpochArray,
    ls_masks: &EpochArray,
    node_pruning: bool,
    chunk: &[(usize, usize, u64)],
    deadline: Option<Instant>,
) -> ChunkPlan {
    let mut plan = ChunkPlan {
        items: Vec::with_capacity(chunk.len()),
        rank_ops: 0,
        rank_ops_saved: 0,
        wavelet_nodes: 0,
        deadline_hit: false,
    };
    if let Some(dl) = deadline {
        if Instant::now() >= dl {
            plan.deadline_hit = true;
            return plan;
        }
    }
    let lp = ring.l_p();
    let ls = ring.l_s();
    let width_p = lp.width();
    let width_s = ls.width();
    let ranges: Vec<(usize, usize)> = chunk.iter().map(|&(b, e, _)| (b, e)).collect();
    let ds: Vec<u64> = chunk.iter().map(|&(_, _, d)| d).collect();
    let union_d = ds.iter().fold(0u64, |a, &d| a | d);
    let mut pred_hits: Vec<Vec<(Label, usize, usize, u64)>> = vec![Vec::new(); chunk.len()];
    let mut mt = MultiTraversal::default();
    {
        let mut guide = PredGuideMulti {
            ds: &ds,
            union_d,
            masks: lp_masks,
            neg,
            width: width_p,
            out: &mut pred_hits,
            nodes_entered: &mut plan.wavelet_nodes,
            node_mask: 0,
            pending: 0,
        };
        mt.run(lp, &ranges, &mut guide);
    }
    plan.rank_ops += mt.ranks;
    plan.rank_ops_saved += mt.ranks_saved;
    for hits in pred_hits.iter_mut() {
        hits.sort_unstable_by_key(|&(p, ..)| p);
    }
    for hits in pred_hits.iter() {
        let mut preds = Vec::new();
        for &(p, rb, re, d_and_b) in hits {
            let d_new = bp.apply_bwd(d_and_b);
            if d_new == 0 {
                continue;
            }
            let base = ring.pred_range(p).0;
            let mut cands = Vec::new();
            {
                let mut guide = FrozenSubjGuide {
                    d_new,
                    masks: ls_masks,
                    width: width_s,
                    node_pruning,
                    out: &mut cands,
                    nodes_entered: &mut plan.wavelet_nodes,
                };
                ls.guided_traverse(base + rb, base + re, &mut guide);
            }
            preds.push((d_new, cands));
        }
        plan.items.push(ItemPlan {
            n_hits: hits.len() as u64,
            preds,
        });
    }
    plan
}

/// The read-only counterpart of [`SubjGuide`] for Phase A: filters
/// subjects against a *frozen* snapshot of the visited masks without
/// mutating them. Because the masks only ever grow, every frozen-mask
/// check is a lower bound on the live one: this guide admits a
/// **superset** of the subjects the sequential traversal would emit, in
/// the same left-to-right order (pruning removes whole subtrees without
/// reordering survivors) — and the merge replay re-applies the exact
/// leaf filter (`fresh == 0` skip) against the live masks, discarding
/// exactly the speculative extras.
struct FrozenSubjGuide<'a> {
    d_new: u64,
    masks: &'a EpochArray,
    width: usize,
    node_pruning: bool,
    out: &'a mut Vec<Id>,
    nodes_entered: &'a mut u64,
}

impl RangeGuide for FrozenSubjGuide<'_> {
    fn enter(&mut self, level: usize, prefix: u64) -> bool {
        *self.nodes_entered += 1;
        if level == self.width || self.node_pruning {
            let idx = WaveletMatrix::node_index(level, prefix);
            self.d_new & !self.masks.get(idx) != 0
        } else {
            true
        }
    }

    fn leaf(&mut self, sym: u64, _rank_b: usize, _rank_e: usize) {
        self.out.push(sym);
    }
}

/// Convenience: evaluate one query with default options.
pub fn evaluate_query(ring: &Ring, query: &RpqQuery) -> Result<QueryOutput, QueryError> {
    RpqEngine::new(ring).evaluate(query, &EngineOptions::default())
}

/// Convenience: evaluate with a timeout.
pub fn evaluate_with_timeout(
    ring: &Ring,
    query: &RpqQuery,
    timeout: Duration,
) -> Result<QueryOutput, QueryError> {
    let opts = EngineOptions {
        timeout: Some(timeout),
        ..EngineOptions::default()
    };
    RpqEngine::new(ring).evaluate(query, &opts)
}
