//! Query types, evaluation options, outputs and statistics.

use automata::Regex;
use ring::Id;
use std::time::Duration;

/// A query endpoint: a fixed node or a variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Term {
    /// A constant node id.
    Const(Id),
    /// A variable (anonymous: RPQs have at most two, one per endpoint).
    Var,
}

impl Term {
    /// The constant, if any.
    pub fn as_const(&self) -> Option<Id> {
        match self {
            Term::Const(c) => Some(*c),
            Term::Var => None,
        }
    }
}

/// A 2RPQ `(s, E, o)` (§3.1): find pairs of nodes connected by a path whose
/// label word matches `E` over the completed alphabet `Σ↔`.
#[derive(Clone, Debug)]
pub struct RpqQuery {
    /// Subject endpoint.
    pub subject: Term,
    /// The path expression.
    pub expr: Regex,
    /// Object endpoint.
    pub object: Term,
}

impl RpqQuery {
    /// Convenience constructor.
    pub fn new(subject: Term, expr: Regex, object: Term) -> Self {
        Self {
            subject,
            expr,
            object,
        }
    }

    /// The paper's pattern taxonomy key (§5, Table 1): `c`/`v` for each
    /// endpoint, e.g. `(Const, p+, Var)` is a "c-to-v" query.
    pub fn is_const_to_var(&self) -> bool {
        matches!(
            (self.subject, self.object),
            (Term::Const(_), Term::Var) | (Term::Var, Term::Const(_))
        )
    }

    /// Whether both endpoints are variables ("v-to-v", 15.3% of the
    /// paper's log).
    pub fn is_var_to_var(&self) -> bool {
        matches!((self.subject, self.object), (Term::Var, Term::Var))
    }
}

/// Evaluation options (defaults follow §5: set semantics, 1 M result
/// limit, 60 s timeout — scaled down by the bench harness).
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Stop after this many result pairs (the paper uses 10^6).
    pub limit: usize,
    /// Give up after this much wall-clock time (the paper uses 60 s).
    pub timeout: Option<Duration>,
    /// Use the §5 fast paths for single-predicate, disjunction and
    /// two-step concatenation patterns.
    pub fast_paths: bool,
    /// Apply the §4.2 pruning masks `D[v]` at *internal* wavelet nodes of
    /// `L_s`, maintained as the **intersection** of the visited sets below
    /// each node (the invariant the paper states). The update rule printed
    /// in the paper (`D[v] ← D | D[v]`) would violate that invariant and
    /// over-prunes — our differential tests demonstrate lost answers on the
    /// paper's own Fig. 6 trace — so we propagate leaf updates upward
    /// instead, treating subject-free subtrees as saturated. The leaf-level
    /// filter `D[s]`, which termination and Theorem 4.1 rely on, is always
    /// on. See DESIGN.md "Deviations".
    pub node_pruning: bool,
    /// Vertical split width `d` of the §3.3 **bit-parallel transition
    /// tables** (each table row is split into `⌈m/d⌉` chunks of `d`
    /// bits, trading table size against lookups per step). This is a
    /// *compilation* parameter of [`crate::PreparedQuery`] — it has
    /// nothing to do with **rare-label splitting**, the §2/§6 evaluation
    /// strategy the planner picks as [`crate::EvalRoute::Split`]. The
    /// field was renamed from `split_width` so the two concepts cannot
    /// be confused.
    pub bp_split_width: usize,
    /// Force the planner's evaluation route, bypassing its cost model
    /// (the `fast_paths` toggle included). Infeasible forcings — a fast
    /// path on a non-§5 shape, bit-parallel beyond the word width, a
    /// split on an anchored or split-free query — fall back to the
    /// natural choice. Differential tests use this to drive every route
    /// over one corpus; `None` (the default) plans normally.
    pub forced_route: Option<crate::plan::EvalRoute>,
    /// Record every product-graph visit `(node, fresh state mask)` into
    /// [`QueryOutput::trace`] — the information Fig. 6 tabulates. Costs
    /// one push per visit; off by default.
    pub collect_trace: bool,
    /// Abort after this many *distinct* product-graph node discoveries
    /// (the quantity `stats.product_nodes` counts). Unlike
    /// `limit`/`timeout` (which return partial answers with a flag), an
    /// exhausted node budget sets [`QueryOutput::budget_exhausted`], the
    /// signal a serving layer turns into a hard `BudgetExceeded` rejection
    /// — the output-sensitive cost cap the related work on RPQ evaluation
    /// budgets motivates. Granularity is per discovery on every route: on
    /// the §5 fast paths each distinct result pair is one discovery, so
    /// there the budget degenerates to a pair cap; scan work *between*
    /// discoveries (wavelet traversal, duplicate re-finds) is not
    /// budgeted on any route — `timeout` is the route-independent bound
    /// on raw work. `None` (the default) is unbounded.
    pub node_budget: Option<u64>,
    /// Maximum threads one query may use for intra-query frontier
    /// expansion (the scoped worker pool of [`crate::parallel`]). `1`
    /// (the default) is exactly the sequential code path; higher values
    /// let a single large query fan BFS-level chunks across cores. The
    /// answer set, flags, trace and truncation are **bit-for-bit
    /// identical** at any thread count — expansion is speculative and a
    /// sequential merge replays it in frontier order. Extra threads are
    /// drawn from a process-wide token budget
    /// ([`crate::parallel`] caps the sum at `available_parallelism`),
    /// so concurrent queries degrade gracefully instead of
    /// oversubscribing.
    pub intra_query_threads: usize,
    /// Smallest BFS frontier (or fast-path batch) worth fanning out:
    /// below this, a level runs sequentially even when
    /// `intra_query_threads > 1`, so small queries pay zero overhead.
    /// The planner also compares the query's estimated first-expansion
    /// cost against this threshold before engaging parallelism at all.
    pub parallel_min_frontier: usize,
    /// Collect an execution profile ("EXPLAIN ANALYZE") into
    /// [`QueryOutput::profile`]: per-phase wall time (planning vs.
    /// execution) and per-BFS-level frontier sizes, rank-op deltas and
    /// fan-out decisions. Strictly observational — the planner never
    /// reads this flag, no evaluation decision depends on it, and the
    /// answer set, flags, trace and truncation point are bit-identical
    /// with it on or off (`crates/core/tests/profile_identity.rs` pins
    /// this across all four forced routes and thread counts). Off (the
    /// default) costs nothing: no clocks are read and nothing is
    /// allocated.
    pub profile: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        Self {
            limit: 1_000_000,
            timeout: None,
            fast_paths: true,
            node_pruning: true,
            bp_split_width: automata::bitparallel::DEFAULT_SPLIT_WIDTH,
            forced_route: None,
            collect_trace: false,
            node_budget: None,
            intra_query_threads: 1,
            parallel_min_frontier: 2048,
            profile: false,
        }
    }
}

/// Traversal statistics: the quantities Theorem 4.1 charges costs to.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraversalStats {
    /// Product-graph node visits `(s, D_fresh)` — each adds at least one
    /// new NFA state to a graph node.
    pub product_nodes: u64,
    /// Product-graph edge batches: (object-range, predicate) expansions.
    pub product_edges: u64,
    /// Wavelet-matrix nodes entered across all guided traversals.
    pub wavelet_nodes: u64,
    /// BFS steps (queue pops).
    pub bfs_steps: u64,
    /// Answers reported before deduplication.
    pub reported: u64,
    /// Wavelet-level rank computations performed by batched traversals.
    pub rank_ops: u64,
    /// Rank computations the frontier batching avoided relative to
    /// per-range traversal (shared node starts, merged directory
    /// probes) — the win the succinct hot-path layer is measured by.
    pub rank_ops_saved: u64,
    /// BFS levels whose expansion was fanned across the intra-query
    /// worker pool (0 on the sequential path).
    pub parallel_levels: u64,
    /// Frontier chunks expanded under intra-query parallelism (the unit
    /// of work the pool schedules; ≥ `parallel_levels` when non-zero).
    pub parallel_chunks: u64,
    /// [`PairBuffer`](crate::pairbuf::PairBuffer) compaction passes that did real
    /// work (sort-merge-dedup of a raw tail). Counted unconditionally —
    /// the counter is one branch-free increment inside an already
    /// *O*(n log n) pass — and deterministic across thread counts, since
    /// the push sequence is bit-identical on every path.
    pub pair_compactions: u64,
}

impl TraversalStats {
    pub(crate) fn add(&mut self, other: &TraversalStats) {
        self.product_nodes += other.product_nodes;
        self.product_edges += other.product_edges;
        self.wavelet_nodes += other.wavelet_nodes;
        self.bfs_steps += other.bfs_steps;
        self.reported += other.reported;
        self.rank_ops += other.rank_ops;
        self.rank_ops_saved += other.rank_ops_saved;
        self.parallel_levels += other.parallel_levels;
        self.parallel_chunks += other.parallel_chunks;
        self.pair_compactions += other.pair_compactions;
    }
}

/// The result of evaluating a query.
#[derive(Clone, Debug, Default)]
pub struct QueryOutput {
    /// Distinct `(subject, object)` pairs (set semantics). For fully
    /// constant queries a single empty-domain match is encoded as the one
    /// pair of the two constants.
    pub pairs: Vec<(Id, Id)>,
    /// The result limit was hit.
    pub truncated: bool,
    /// The timeout was hit.
    pub timed_out: bool,
    /// The [`EngineOptions::node_budget`] was exhausted; the pairs
    /// collected so far are sound but possibly incomplete.
    pub budget_exhausted: bool,
    /// Traversal statistics.
    pub stats: TraversalStats,
    /// The planner decision this output was produced under — the route
    /// actually executed, its direction and split choice. Populated by
    /// [`RpqEngine::evaluate_prepared`](crate::RpqEngine::evaluate_prepared)
    /// (and everything built on it); `None` only for outputs assembled
    /// outside the engine (the oracle, raw fast-path calls).
    pub plan: Option<crate::planner::Plan>,
    /// Product-graph visits `(node, fresh states)` in BFS order, when
    /// [`EngineOptions::collect_trace`] is on.
    pub trace: Vec<(Id, u64)>,
    /// The execution profile, when [`EngineOptions::profile`] is on
    /// (boxed: profiles are cold data and must not widen the common
    /// unprofiled output). `None` whenever profiling is off.
    pub profile: Option<Box<crate::profile::QueryProfile>>,
}

impl QueryOutput {
    /// Sorted copy of the pairs (for stable comparisons in tests).
    pub fn sorted_pairs(&self) -> Vec<(Id, Id)> {
        let mut v = self.pairs.clone();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_classification() {
        let e = Regex::label(0);
        let q = RpqQuery::new(Term::Const(1), e.clone(), Term::Var);
        assert!(q.is_const_to_var());
        assert!(!q.is_var_to_var());
        let q = RpqQuery::new(Term::Var, e.clone(), Term::Var);
        assert!(q.is_var_to_var());
        let q = RpqQuery::new(Term::Const(0), e, Term::Const(1));
        assert!(!q.is_const_to_var());
        assert!(!q.is_var_to_var());
    }

    #[test]
    fn default_options_match_paper() {
        let o = EngineOptions::default();
        assert_eq!(o.limit, 1_000_000);
        assert!(o.fast_paths);
        assert!(o.node_pruning);
    }
}
