//! Sorted-vector duplicate elimination for result pairs.
//!
//! The engine's var-to-var pass and the §5 fast paths used to
//! deduplicate through an `FxHashSet<(Id, Id)>` — one hashed probe and a
//! scattered heap write per reported pair. [`PairBuffer`] replaces it
//! with an append-only vector that is sorted and deduplicated lazily:
//! pushes are a bump write, compactions amortize to *O*(n log n) total,
//! and the result comes out already in the sorted order every consumer
//! (tests, the CLI's byte-stable output, the server's result cache)
//! wants. Limit and budget checks stay *exact*: a distinct-count
//! threshold can only be crossed once the raw length reaches it, so the
//! buffer compacts exactly at those points and truncates to the
//! threshold — deterministically keeping the lexicographically smallest
//! pairs, where a hash set kept an arbitrary subset.

use ring::Id;

/// An append-only `(Id, Id)` set with lazy sort-and-dedup compaction.
#[derive(Clone, Debug, Default)]
pub struct PairBuffer {
    pairs: Vec<(Id, Id)>,
    /// Length of the sorted + deduplicated prefix (everything before it
    /// is distinct and ordered; the tail is raw pushes).
    sorted: usize,
    /// Merge scratch, reused across compactions.
    scratch: Vec<(Id, Id)>,
    /// Raw length before which [`Self::maybe_reached`] skips compacting.
    next_check: usize,
    /// Compaction passes that did real work (the no-op early return when
    /// the buffer is already compact is not counted).
    compactions: u64,
}

impl PairBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a pair (duplicates welcome; they are removed lazily).
    #[inline]
    pub fn push(&mut self, pair: (Id, Id)) {
        self.pairs.push(pair);
    }

    /// Number of raw pushes currently buffered (an upper bound on the
    /// distinct count).
    #[inline]
    pub fn raw_len(&self) -> usize {
        self.pairs.len()
    }

    /// Sorts and deduplicates: afterwards the buffer holds exactly the
    /// distinct pairs, in order. The sorted prefix from the previous
    /// compaction is merged, not re-sorted.
    pub fn compact(&mut self) {
        let n = self.pairs.len();
        if self.sorted == n {
            return;
        }
        self.compactions += 1;
        self.pairs[self.sorted..].sort_unstable();
        if self.sorted == 0 {
            self.pairs.dedup();
        } else {
            self.scratch.clear();
            self.scratch.reserve(n);
            let (head, tail) = self.pairs.split_at(self.sorted);
            let (mut i, mut j) = (0, 0);
            while i < head.len() && j < tail.len() {
                if head[i] <= tail[j] {
                    push_dedup(&mut self.scratch, head[i]);
                    i += 1;
                } else {
                    push_dedup(&mut self.scratch, tail[j]);
                    j += 1;
                }
            }
            for &p in &head[i..] {
                push_dedup(&mut self.scratch, p);
            }
            for &p in &tail[j..] {
                push_dedup(&mut self.scratch, p);
            }
            std::mem::swap(&mut self.pairs, &mut self.scratch);
        }
        self.sorted = self.pairs.len();
    }

    /// Whether at least `n` *distinct* pairs have been pushed. Exact, and
    /// cheap while it is false: the buffer compacts only when the raw
    /// length reaches `n` (a necessary condition), so callers can probe
    /// after every push.
    pub fn distinct_reached(&mut self, n: usize) -> bool {
        if self.pairs.len() < n {
            return false;
        }
        self.compact();
        self.pairs.len() >= n
    }

    /// Amortized variant of [`Self::distinct_reached`]: detection may lag
    /// by a bounded number of pushes. After a compaction that finds `d`
    /// distinct pairs, the next probe waits for
    /// `max(n - d, raw/4, 64)` further pushes — the first term because
    /// the threshold cannot be crossed sooner, the second so duplicate
    /// storms that stall just under `n` cannot force a full merge per
    /// push. Callers that need the exact boundary settle once at the end
    /// with [`Self::distinct_reached`]/[`Self::distinct_len`] and
    /// [`Self::truncate_distinct`] (truncation keeps results exact even
    /// when detection was late).
    pub fn maybe_reached(&mut self, n: usize) -> bool {
        if self.pairs.len() < self.next_check.max(n) {
            return false;
        }
        self.compact();
        let d = self.pairs.len();
        self.next_check = d + (n.saturating_sub(d)).max(d / 4).max(64);
        d >= n
    }

    /// Exact number of distinct pairs (compacts).
    pub fn distinct_len(&mut self) -> usize {
        self.compact();
        self.pairs.len()
    }

    /// Keeps only the `n` smallest distinct pairs (compacts).
    pub fn truncate_distinct(&mut self, n: usize) {
        self.compact();
        self.pairs.truncate(n);
        self.sorted = self.pairs.len();
    }

    /// Whether `pair` was pushed before (compacts, then binary-searches).
    pub fn contains(&mut self, pair: (Id, Id)) -> bool {
        self.compact();
        self.pairs.binary_search(&pair).is_ok()
    }

    /// Number of compaction passes that did real work so far. The push
    /// sequence (and thus this count) is bit-identical across thread
    /// counts, so it is safe to fold into
    /// [`TraversalStats::pair_compactions`](crate::TraversalStats::pair_compactions).
    #[inline]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The distinct pairs, sorted ascending.
    pub fn into_sorted_vec(mut self) -> Vec<(Id, Id)> {
        self.compact();
        self.pairs
    }
}

#[inline]
fn push_dedup(out: &mut Vec<(Id, Id)>, p: (Id, Id)) {
    if out.last() != Some(&p) {
        out.push(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_sorts() {
        let mut b = PairBuffer::new();
        for p in [(3, 1), (1, 2), (3, 1), (0, 0), (1, 2), (9, 9), (0, 0)] {
            b.push(p);
        }
        assert_eq!(b.raw_len(), 7);
        assert_eq!(b.distinct_len(), 4);
        assert_eq!(b.into_sorted_vec(), vec![(0, 0), (1, 2), (3, 1), (9, 9)]);
    }

    #[test]
    fn distinct_reached_is_exact() {
        let mut b = PairBuffer::new();
        // Three distinct pairs, many duplicates interleaved.
        for i in 0..50u64 {
            b.push((i % 3, 0));
            assert!(!b.distinct_reached(4), "after push {i}");
            assert_eq!(b.distinct_reached(3), i >= 2, "after push {i}");
        }
        b.push((7, 7));
        assert!(b.distinct_reached(4));
        assert!(!b.distinct_reached(5));
    }

    #[test]
    fn maybe_reached_lags_but_settles_exactly() {
        let mut b = PairBuffer::new();
        // Three distinct pairs and a duplicate storm: the threshold of 4
        // must never fire, early or late.
        for i in 0..10_000u64 {
            b.push((i % 3, 0));
            assert!(!b.maybe_reached(4), "false positive at push {i}");
        }
        assert!(!b.distinct_reached(4));
        // A fourth distinct pair: the amortized probe may lag, but the
        // exact settle sees it.
        b.push((9, 9));
        for i in 0..200u64 {
            b.push((i % 3, 0));
        }
        assert!(b.distinct_reached(4));
        assert_eq!(b.distinct_len(), 4);
    }

    #[test]
    fn truncate_keeps_smallest() {
        let mut b = PairBuffer::new();
        for p in [(5, 0), (1, 0), (3, 0), (2, 0), (4, 0), (1, 0)] {
            b.push(p);
        }
        b.truncate_distinct(3);
        assert_eq!(b.into_sorted_vec(), vec![(1, 0), (2, 0), (3, 0)]);
    }

    #[test]
    fn contains_after_compaction() {
        let mut b = PairBuffer::new();
        b.push((2, 3));
        b.push((1, 1));
        assert!(b.contains((2, 3)));
        assert!(!b.contains((3, 2)));
        // Pushes after a compaction merge correctly.
        b.push((0, 9));
        b.push((2, 3));
        assert_eq!(b.distinct_len(), 3);
        assert!(b.contains((0, 9)));
    }

    #[test]
    fn incremental_compactions_merge() {
        let mut b = PairBuffer::new();
        let mut expected = Vec::new();
        for i in (0..200u64).rev() {
            b.push((i % 40, i % 7));
            expected.push((i % 40, i % 7));
            if i % 31 == 0 {
                b.compact();
            }
        }
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(b.into_sorted_vec(), expected);
    }

    #[test]
    fn compaction_counter_skips_noops() {
        let mut b = PairBuffer::new();
        assert_eq!(b.compactions(), 0);
        b.compact(); // empty: no-op
        assert_eq!(b.compactions(), 0);
        b.push((1, 1));
        b.compact();
        assert_eq!(b.compactions(), 1);
        b.compact(); // already compact: no-op
        assert_eq!(b.compactions(), 1);
        b.push((0, 0));
        assert_eq!(b.distinct_len(), 2);
        assert_eq!(b.compactions(), 2);
    }

    #[test]
    fn empty_and_zero_threshold() {
        let mut b = PairBuffer::new();
        assert!(b.distinct_reached(0));
        assert!(!b.distinct_reached(1));
        assert_eq!(b.distinct_len(), 0);
        assert!(b.into_sorted_vec().is_empty());
    }
}
