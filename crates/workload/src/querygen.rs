//! Query-log generation following Table 1.
//!
//! Each of the paper's 20 patterns is a template over predicate slots;
//! instantiation draws predicates with a 50/50 mix of frequency-weighted
//! (sample a random edge and keep its label — popular labels, as real
//! logs over-represent them) and uniform (rare labels) choices, and
//! anchors constant endpoints on nodes that actually carry a matching
//! edge, as timeout-inducing log queries do.

use automata::Regex;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use ring::{Graph, Id};
use rpq_core::{RpqQuery, Term};

use crate::patterns::{classify, TABLE1_PATTERNS};

/// A generated log entry.
#[derive(Clone, Debug)]
pub struct GeneratedQuery {
    /// The Table 1 pattern this query instantiates, e.g. `"v /* c"`.
    pub pattern: &'static str,
    /// The query itself (expression over the completed alphabet).
    pub query: RpqQuery,
}

/// Deterministic query-log generator over a base graph.
pub struct QueryGen<'g> {
    graph: &'g Graph,
    n_base: Id,
    /// Triple indices grouped by predicate: `by_pred[p]` lists positions
    /// into `graph.triples()`.
    by_pred: Vec<Vec<u32>>,
    rng: StdRng,
}

impl<'g> QueryGen<'g> {
    /// Creates a generator for `graph` with a deterministic seed.
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        let n_base = graph.n_preds();
        let mut by_pred = vec![Vec::new(); n_base as usize];
        for (i, t) in graph.triples().iter().enumerate() {
            by_pred[t.p as usize].push(i as u32);
        }
        Self {
            graph,
            n_base,
            by_pred,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates the full Table 1 log (1 661 queries in the paper's mix).
    pub fn table1_log(&mut self) -> Vec<GeneratedQuery> {
        self.scaled_log(1.0)
    }

    /// Generates a log with per-pattern counts scaled by `scale`
    /// (at least one query per pattern).
    pub fn scaled_log(&mut self, scale: f64) -> Vec<GeneratedQuery> {
        let mut log = Vec::new();
        for &(pattern, count) in TABLE1_PATTERNS.iter() {
            let n = ((count as f64 * scale).round() as usize).max(1);
            for _ in 0..n {
                log.push(self.instantiate(pattern));
            }
        }
        log
    }

    /// Instantiates one query for a Table 1 pattern string.
    ///
    /// # Panics
    /// Panics on a pattern string outside the Table 1 set.
    pub fn instantiate(&mut self, pattern: &'static str) -> GeneratedQuery {
        let expr = self.template(pattern);
        let subject = if pattern.starts_with('c') {
            Term::Const(self.anchor(&expr, true))
        } else {
            Term::Var
        };
        let object = if pattern.ends_with('c') {
            Term::Const(self.anchor(&expr, false))
        } else {
            Term::Var
        };
        let query = RpqQuery::new(subject, expr, object);
        debug_assert_eq!(classify(&query, self.n_base), pattern);
        GeneratedQuery { pattern, query }
    }

    /// Builds the expression for a pattern, drawing fresh predicates.
    fn template(&mut self, pattern: &'static str) -> Regex {
        let p = |s: &mut Self| Regex::label(s.sample_pred());
        let pinv = |s: &mut Self| Regex::label(s.sample_pred() + s.n_base);
        let star = |e: Regex| Regex::Star(Box::new(e));
        let plus = |e: Regex| Regex::Plus(Box::new(e));
        let opt = |e: Regex| Regex::Opt(Box::new(e));
        match pattern.split_whitespace().nth(1).unwrap() {
            "/*" => Regex::concat(p(self), star(p(self))),
            "*" => star(p(self)),
            "+" => plus(p(self)),
            "/" => Regex::concat(p(self), p(self)),
            "*/*" => Regex::concat(star(p(self)), star(p(self))),
            "|*" => star(Regex::alt(p(self), p(self))),
            "|" => Regex::alt(p(self), p(self)),
            "*/*/*/*/*" => {
                let mut e = star(p(self));
                for _ in 0..4 {
                    e = Regex::concat(e, star(p(self)));
                }
                e
            }
            "^" => pinv(self),
            "/?" => Regex::concat(p(self), opt(p(self))),
            "/+" => Regex::concat(p(self), plus(p(self))),
            "||" => Regex::alt(Regex::alt(p(self), p(self)), p(self)),
            "/^" => Regex::concat(p(self), pinv(self)),
            other => panic!("unknown Table 1 operator skeleton '{other}'"),
        }
    }

    /// 50/50 frequency-weighted / uniform predicate choice.
    fn sample_pred(&mut self) -> Id {
        if self.graph.is_empty() || self.rng.random::<bool>() {
            self.rng.random_range(0..self.n_base)
        } else {
            let i = self.rng.random_range(0..self.graph.len());
            self.graph.triples()[i].p
        }
    }

    /// A constant endpoint that carries at least one edge matching one of
    /// the expression's labels (subject side if `start`, object side
    /// otherwise). Falls back to a random node for label-free graphs.
    fn anchor(&mut self, expr: &Regex, start: bool) -> Id {
        let mut labels = expr.mentioned_labels();
        labels.shuffle(&mut self.rng);
        for l in labels {
            let (base, inverted) = if l < self.n_base {
                (l, false)
            } else {
                (l - self.n_base, true)
            };
            let edges = &self.by_pred[base as usize];
            if edges.is_empty() {
                continue;
            }
            let t = self.graph.triples()[edges[self.rng.random_range(0..edges.len())] as usize];
            // For the object anchor we want a node with an incoming
            // expression edge; inverse labels flip the direction.
            return match (start, inverted) {
                (true, false) => t.s,
                (true, true) => t.o,
                (false, false) => t.o,
                (false, true) => t.s,
            };
        }
        self.rng.random_range(0..self.graph.n_nodes().max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphgen::{GraphGen, GraphGenConfig};
    use crate::patterns::is_c_to_v;

    fn graph() -> Graph {
        GraphGen::new(GraphGenConfig {
            n_nodes: 300,
            n_preds: 12,
            n_edges: 3000,
            ..Default::default()
        })
        .generate()
    }

    #[test]
    fn full_log_matches_table1_counts() {
        let g = graph();
        let mut gen = QueryGen::new(&g, 1);
        let log = gen.table1_log();
        assert_eq!(log.len(), 1661);
        for &(pattern, count) in TABLE1_PATTERNS.iter() {
            let got = log.iter().filter(|q| q.pattern == pattern).count();
            assert_eq!(got, count, "pattern {pattern}");
        }
    }

    #[test]
    fn queries_classify_back_to_their_pattern() {
        let g = graph();
        let mut gen = QueryGen::new(&g, 2);
        for q in gen.scaled_log(0.02) {
            assert_eq!(classify(&q.query, g.n_preds()), q.pattern);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let g = graph();
        let a: Vec<String> = QueryGen::new(&g, 3)
            .scaled_log(0.01)
            .iter()
            .map(|q| format!("{:?}", q.query))
            .collect();
        let b: Vec<String> = QueryGen::new(&g, 3)
            .scaled_log(0.01)
            .iter()
            .map(|q| format!("{:?}", q.query))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn anchors_are_in_range_and_shares_match_paper() {
        let g = graph();
        let mut gen = QueryGen::new(&g, 4);
        let log = gen.table1_log();
        let mut c_to_v = 0usize;
        for q in &log {
            for t in [q.query.subject, q.query.object] {
                if let Term::Const(c) = t {
                    assert!(c < g.n_nodes());
                }
            }
            if is_c_to_v(q.pattern) {
                c_to_v += 1;
            }
        }
        // Table 2: 84.7% of the log is c-to-v (within the top-20 subset
        // the share is slightly higher).
        let share = c_to_v as f64 / log.len() as f64;
        assert!((0.80..=0.92).contains(&share), "c-to-v share {share}");
    }
}
