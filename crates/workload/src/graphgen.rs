//! Synthetic Wikidata-like graph generation.
//!
//! The benchmark graph mimics the statistics the paper reports for
//! Wikidata (§5): a predicate alphabet orders of magnitude smaller than
//! the node set, Zipf-distributed predicate frequencies (a handful of
//! labels cover most edges — like `instance-of` and external-id
//! properties — with a long tail of rare ones), and heavy-tailed node
//! degrees.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ring::{Graph, Id, Triple};

/// Configuration for [`GraphGen`].
#[derive(Clone, Copy, Debug)]
pub struct GraphGenConfig {
    /// Node universe size.
    pub n_nodes: u64,
    /// Predicate alphabet size (base, before inverse completion).
    pub n_preds: u64,
    /// Number of edge samples (the deduplicated graph may be slightly
    /// smaller).
    pub n_edges: usize,
    /// Zipf exponent for predicate frequencies (≈1 for Wikidata-like).
    pub pred_zipf: f64,
    /// Degree-skew exponent: endpoints are drawn as `⌊n·u^γ⌋`; `γ = 1` is
    /// uniform, larger values concentrate edges on low-id hub nodes.
    pub node_skew: f64,
    /// RNG seed (all generation is deterministic).
    pub seed: u64,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        Self {
            n_nodes: 1 << 16,
            n_preds: 128,
            n_edges: 1 << 18,
            pred_zipf: 1.0,
            node_skew: 2.0,
            seed: 42,
        }
    }
}

/// Deterministic synthetic graph generator.
pub struct GraphGen {
    config: GraphGenConfig,
    /// Cumulative Zipf weights over predicates.
    pred_cdf: Vec<f64>,
}

impl GraphGen {
    /// Creates a generator for `config`.
    pub fn new(config: GraphGenConfig) -> Self {
        assert!(config.n_nodes > 0 && config.n_preds > 0);
        let mut weights: Vec<f64> = (1..=config.n_preds)
            .map(|r| 1.0 / (r as f64).powf(config.pred_zipf))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        Self {
            config,
            pred_cdf: weights,
        }
    }

    /// Generates the graph.
    pub fn generate(&self) -> Graph {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut triples = Vec::with_capacity(self.config.n_edges);
        for _ in 0..self.config.n_edges {
            let p = self.sample_pred(&mut rng);
            let s = self.sample_node(&mut rng);
            let o = self.sample_node(&mut rng);
            triples.push(Triple::new(s, p, o));
        }
        Graph::new(triples, self.config.n_nodes, self.config.n_preds)
    }

    /// Zipf-distributed predicate.
    pub fn sample_pred(&self, rng: &mut StdRng) -> Id {
        let u: f64 = rng.random();
        self.pred_cdf.partition_point(|&c| c < u) as Id
    }

    /// Heavy-tail-degree node.
    pub fn sample_node(&self, rng: &mut StdRng) -> Id {
        let u: f64 = rng.random();
        let v = (self.config.n_nodes as f64 * u.powf(self.config.node_skew)) as u64;
        v.min(self.config.n_nodes - 1)
    }

    /// The configuration.
    pub fn config(&self) -> &GraphGenConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let cfg = GraphGenConfig {
            n_nodes: 500,
            n_preds: 16,
            n_edges: 2000,
            ..Default::default()
        };
        let a = GraphGen::new(cfg).generate();
        let b = GraphGen::new(cfg).generate();
        assert_eq!(a.triples(), b.triples());
        let c = GraphGen::new(GraphGenConfig { seed: 7, ..cfg }).generate();
        assert_ne!(a.triples(), c.triples());
    }

    #[test]
    fn predicate_distribution_is_skewed() {
        let cfg = GraphGenConfig {
            n_nodes: 1000,
            n_preds: 64,
            n_edges: 20_000,
            ..Default::default()
        };
        let g = GraphGen::new(cfg).generate();
        let mut counts = vec![0usize; 64];
        for t in g.triples() {
            counts[t.p as usize] += 1;
        }
        // Zipf: predicate 0 must dominate the tail by a wide margin.
        assert!(counts[0] > 10 * counts[50].max(1), "{counts:?}");
        // ... but the tail must not be empty.
        assert!(counts[32..].iter().sum::<usize>() > 0);
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let cfg = GraphGenConfig {
            n_nodes: 1000,
            n_preds: 8,
            n_edges: 30_000,
            ..Default::default()
        };
        let g = GraphGen::new(cfg).generate();
        let mut deg = vec![0usize; 1000];
        for t in g.triples() {
            deg[t.s as usize] += 1;
            deg[t.o as usize] += 1;
        }
        deg.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = deg[..100].iter().sum();
        let total: usize = deg.iter().sum();
        // The top 10% of nodes carry far more than their uniform share
        // (10%), and hubs dwarf the median node.
        assert!(top_decile * 4 > total, "top decile {top_decile} of {total}");
        assert!(
            deg[0] > 8 * deg[500].max(1),
            "max {} median {}",
            deg[0],
            deg[500]
        );
    }

    #[test]
    fn ids_within_universe() {
        let cfg = GraphGenConfig {
            n_nodes: 77,
            n_preds: 5,
            n_edges: 500,
            ..Default::default()
        };
        let g = GraphGen::new(cfg).generate();
        for t in g.triples() {
            assert!(t.s < 77 && t.o < 77 && t.p < 5);
        }
    }
}
