//! The paper's running example: the Santiago metro graph of Fig. 1.

use ring::{Dict, Graph, Id, Triple};

/// Node ids of the metro graph.
pub mod nodes {
    use ring::Id;
    /// Santa Ana.
    pub const SA: Id = 0;
    /// Universidad de Chile.
    pub const UCH: Id = 1;
    /// Los Héroes.
    pub const LH: Id = 2;
    /// Bellas Artes.
    pub const BA: Id = 3;
    /// Baquedano.
    pub const BAQ: Id = 4;
}

/// Predicate ids of the metro graph (base alphabet; inverses are `+4`).
pub mod preds {
    use ring::Id;
    /// Metro line 1.
    pub const L1: Id = 0;
    /// Metro line 2.
    pub const L2: Id = 1;
    /// Metro line 5.
    pub const L5: Id = 2;
    /// Bus connection.
    pub const BUS: Id = 3;
}

/// The base metro graph: bidirectional metro lines (as explicit edge
/// pairs) and three one-way bus hops.
pub fn metro() -> Graph {
    use nodes::*;
    use preds::*;
    let t = |s, p, o| Triple::new(s, p, o);
    Graph::from_triples(vec![
        // l1: Baquedano <-> U. de Chile <-> Los Héroes
        t(BAQ, L1, UCH),
        t(UCH, L1, BAQ),
        t(UCH, L1, LH),
        t(LH, L1, UCH),
        // l2: Los Héroes <-> Santa Ana
        t(LH, L2, SA),
        t(SA, L2, LH),
        // l5: Santa Ana <-> Bellas Artes <-> Baquedano
        t(SA, L5, BA),
        t(BA, L5, SA),
        t(BA, L5, BAQ),
        t(BAQ, L5, BA),
        // bus: Santa Ana -> U. de Chile -> Bellas Artes -> Santa Ana
        t(SA, BUS, UCH),
        t(UCH, BUS, BA),
        t(BA, BUS, SA),
    ])
}

/// Dictionaries naming the metro graph's nodes and predicates.
pub fn metro_dicts() -> (Dict, Dict) {
    let mut nodes = Dict::new();
    for n in [
        "SantaAna",
        "UdeChile",
        "LosHeroes",
        "BellasArtes",
        "Baquedano",
    ] {
        nodes.intern(n);
    }
    let mut preds = Dict::new();
    for p in ["l1", "l2", "l5", "bus"] {
        preds.intern(p);
    }
    (nodes, preds)
}

/// Node name lookup (for example output).
pub fn node_name(id: Id) -> &'static str {
    [
        "SantaAna",
        "UdeChile",
        "LosHeroes",
        "BellasArtes",
        "Baquedano",
    ][id as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_shape() {
        let g = metro();
        assert_eq!(g.len(), 13);
        assert_eq!(g.n_nodes(), 5);
        assert_eq!(g.n_preds(), 4);
        // Completion doubles everything (Fig. 3 pre-completes the metro
        // lines; our base graph stores them explicitly, so the completed
        // graph has 26 edges).
        assert_eq!(g.completed().len(), 26);
    }

    #[test]
    fn dict_names_align() {
        let (nodes, preds) = metro_dicts();
        assert_eq!(nodes.get("Baquedano"), Some(nodes::BAQ));
        assert_eq!(preds.get("l5"), Some(preds::L5));
        assert_eq!(node_name(nodes::BA), "BellasArtes");
    }
}
