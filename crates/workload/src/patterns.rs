//! The Table 1 pattern taxonomy: the 20 most popular RPQ patterns in the
//! Wikidata query log, and the classifier mapping a query to its pattern
//! string ("mapping nodes to constant/variable types and erasing their
//! predicates, keeping only RPQ operators", §5).

use automata::ast::{Lit, Regex};
use ring::Id;
use rpq_core::{RpqQuery, Term};

/// The 20 most popular RPQ patterns and their counts, verbatim from
/// Table 1 of the paper (1 661 queries; the full log has 1 952, the rest
/// spread over rarer patterns).
pub const TABLE1_PATTERNS: [(&str, usize); 20] = [
    ("v /* c", 537),
    ("v * c", 433),
    ("v + c", 109),
    ("c * v", 99),
    ("c /* v", 95),
    ("v / c", 54),
    ("v */* c", 44),
    ("v / v", 41),
    ("v |* c", 36),
    ("v | v", 31),
    ("v */*/*/*/* c", 28),
    ("v ^ v", 26),
    ("v /* v", 25),
    ("v * v", 25),
    ("v /? c", 22),
    ("v + v", 17),
    ("v /+ c", 12),
    ("v || v", 10),
    ("v | c", 10),
    ("v /^ v", 7),
];

/// Renders the operator skeleton of an expression: predicates are erased
/// (inverse literals leave a `^`), operators are kept.
pub fn skeleton(expr: &Regex, n_base_preds: Id) -> String {
    match expr {
        Regex::Epsilon => "ε".to_string(),
        Regex::Literal(Lit::Label(l)) => {
            if *l >= n_base_preds {
                "^".to_string()
            } else {
                String::new()
            }
        }
        Regex::Literal(Lit::Class(ls)) => {
            let parts: Vec<String> = ls
                .iter()
                .map(|&l| {
                    if l >= n_base_preds {
                        "^".to_string()
                    } else {
                        String::new()
                    }
                })
                .collect();
            parts.join("|")
        }
        Regex::Literal(Lit::NegClass(_)) => "!".to_string(),
        Regex::Concat(a, b) => format!(
            "{}/{}",
            skeleton(a, n_base_preds),
            skeleton(b, n_base_preds)
        ),
        Regex::Alt(a, b) => format!(
            "{}|{}",
            skeleton(a, n_base_preds),
            skeleton(b, n_base_preds)
        ),
        Regex::Star(a) => format!("{}*", skeleton(a, n_base_preds)),
        Regex::Plus(a) => format!("{}+", skeleton(a, n_base_preds)),
        Regex::Opt(a) => format!("{}?", skeleton(a, n_base_preds)),
    }
}

/// Classifies a query into its Table 1 pattern string, e.g. `"v /* c"`.
pub fn classify(query: &RpqQuery, n_base_preds: Id) -> String {
    let t = |term: Term| match term {
        Term::Const(_) => "c",
        Term::Var => "v",
    };
    format!(
        "{} {} {}",
        t(query.subject),
        skeleton(&query.expr, n_base_preds),
        t(query.object)
    )
}

/// Whether a pattern string is "c-to-v" (exactly one constant endpoint) —
/// the 84.7%-of-the-log class of Table 2.
pub fn is_c_to_v(pattern: &str) -> bool {
    let first_const = pattern.starts_with('c');
    let last_const = pattern.ends_with('c');
    first_const != last_const
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_totals() {
        let total: usize = TABLE1_PATTERNS.iter().map(|&(_, n)| n).sum();
        assert_eq!(total, 1661);
        assert_eq!(TABLE1_PATTERNS[0], ("v /* c", 537));
        assert_eq!(TABLE1_PATTERNS.len(), 20);
    }

    #[test]
    fn skeletons_match_paper_notation() {
        let n = 10;
        // a/b* → "/*"
        let e = Regex::concat(Regex::label(0), Regex::Star(Box::new(Regex::label(1))));
        assert_eq!(skeleton(&e, n), "/*");
        // a* → "*"
        assert_eq!(skeleton(&Regex::Star(Box::new(Regex::label(0))), n), "*");
        // (a|b)* → "|*"
        let e = Regex::Star(Box::new(Regex::alt(Regex::label(0), Regex::label(1))));
        assert_eq!(skeleton(&e, n), "|*");
        // a|b|c → "||"
        let e = Regex::alt(
            Regex::alt(Regex::label(0), Regex::label(1)),
            Regex::label(2),
        );
        assert_eq!(skeleton(&e, n), "||");
        // ^a → "^"
        assert_eq!(skeleton(&Regex::label(12), n), "^");
        // a/^b → "/^"
        let e = Regex::concat(Regex::label(0), Regex::label(11));
        assert_eq!(skeleton(&e, n), "/^");
        // a*/b*/c*/d*/e* → "*/*/*/*/*"
        let star = |l| Regex::Star(Box::new(Regex::label(l)));
        let e = Regex::concat(
            Regex::concat(
                Regex::concat(Regex::concat(star(0), star(1)), star(2)),
                star(3),
            ),
            star(4),
        );
        assert_eq!(skeleton(&e, n), "*/*/*/*/*");
    }

    #[test]
    fn classify_includes_endpoint_types() {
        let e = Regex::concat(Regex::label(0), Regex::Star(Box::new(Regex::label(1))));
        let q = RpqQuery::new(Term::Var, e.clone(), Term::Const(3));
        assert_eq!(classify(&q, 10), "v /* c");
        let q = RpqQuery::new(Term::Const(3), e, Term::Var);
        assert_eq!(classify(&q, 10), "c /* v");
    }

    #[test]
    fn c_to_v_detection() {
        assert!(is_c_to_v("v /* c"));
        assert!(is_c_to_v("c * v"));
        assert!(!is_c_to_v("v / v"));
        assert!(!is_c_to_v("c * c"));
    }
}
