#![warn(missing_docs)]

//! Workloads for the evaluation: synthetic Wikidata-like graphs and query
//! logs following the paper's Table 1 pattern mix.
//!
//! The paper benchmarks on a 958 M-edge Wikidata dump and 1 952 real
//! timeout-inducing RPQs from the Wikidata query logs \[34\]; neither is
//! available offline, so this crate generates faithful stand-ins (see
//! DESIGN.md §3 "Substitutions"):
//!
//! * [`graphgen::GraphGen`] draws predicates from a Zipf distribution and
//!   endpoints from a heavy-tailed node distribution, matching the
//!   qualitative Wikidata shape (a few huge predicates, many rare ones;
//!   skewed degrees).
//! * [`querygen::QueryGen`] instantiates the exact 20-pattern mix of
//!   Table 1 with the paper's per-pattern counts, mixing
//!   frequency-weighted and uniform predicate choices so both popular and
//!   rare labels occur.
//! * [`patterns`] is the pattern taxonomy itself: the Table 1 rows and the
//!   classifier that maps a query back to its pattern string
//!   ("mapping nodes to constant/variable types and erasing their
//!   predicates", §5).
//! * [`metro`] is the paper's Fig. 1 metro graph, used by the examples and
//!   the worked-example tests.

pub mod graphgen;
pub mod logfile;
pub mod metro;
pub mod patterns;
pub mod querygen;
pub mod updates;

pub use graphgen::{GraphGen, GraphGenConfig};
pub use patterns::{classify, TABLE1_PATTERNS};
pub use querygen::{GeneratedQuery, QueryGen};
pub use updates::{StreamOp, UpdateGen, UpdateGenConfig};
