//! Update-stream generation: seeded, reproducible interleavings of
//! inserts, deletes, commits and compactions against a base graph — the
//! workload the live-update layer and its differential test battery
//! consume.
//!
//! The stream is biased toward *meaningful* operations: deletes mostly
//! hit live edges (tracked against an internal mirror), inserts re-add
//! recently deleted edges, create fresh edges among existing nodes, or
//! (configurably) introduce brand-new nodes; commits arrive in batches
//! of a few operations, and compactions are rare. Apply an op stream to
//! any oracle with [`apply_op`].

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use ring::{Graph, Id, Triple};
use std::collections::BTreeSet;

/// One generated update-stream event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamOp {
    /// Insert a triple (may already be live — a no-op then).
    Insert(Triple),
    /// Delete a triple (may be absent — a no-op then).
    Delete(Triple),
    /// Atomically publish everything since the previous commit.
    Commit,
    /// Rebuild the index from base ⊎ delta.
    Compact,
}

/// Configuration for [`UpdateGen`].
#[derive(Clone, Copy, Debug)]
pub struct UpdateGenConfig {
    /// Probability an edit is a delete (vs an insert).
    pub delete_ratio: f64,
    /// Probability a delete targets a live edge (vs a random, likely
    /// absent triple — exercising the no-op path).
    pub delete_live_bias: f64,
    /// Probability an insert re-adds a previously deleted edge.
    pub reinsert_bias: f64,
    /// Probability an insert endpoint is a brand-new node (grows the
    /// universe through the delta).
    pub new_node_ratio: f64,
    /// Probability an insert uses a brand-new predicate (forces an
    /// alphabet-extending rebuild at commit). Keep 0 to stay on the
    /// delta path.
    pub new_pred_ratio: f64,
    /// A commit is emitted after every `commit_every` edits on average.
    pub commit_every: usize,
    /// Probability a commit is followed by an explicit compaction.
    pub compact_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UpdateGenConfig {
    fn default() -> Self {
        Self {
            delete_ratio: 0.4,
            delete_live_bias: 0.8,
            reinsert_bias: 0.2,
            new_node_ratio: 0.1,
            new_pred_ratio: 0.0,
            commit_every: 6,
            compact_ratio: 0.15,
            seed: 42,
        }
    }
}

/// Deterministic update-stream generator over a base graph.
pub struct UpdateGen {
    cfg: UpdateGenConfig,
    rng: StdRng,
    /// Mirror of the live triple set (as if every op so far committed).
    live: Vec<Triple>,
    /// Edges deleted at some point (re-insert candidates).
    graveyard: Vec<Triple>,
    next_node: Id,
    next_pred: Id,
    n_nodes: Id,
    n_preds: Id,
    edits_since_commit: usize,
}

impl UpdateGen {
    /// A generator whose first ops mutate `base`.
    pub fn new(base: &Graph, cfg: UpdateGenConfig) -> Self {
        Self {
            rng: StdRng::seed_from_u64(cfg.seed ^ 0x75D0_57A7E),
            live: base.triples().to_vec(),
            graveyard: Vec::new(),
            next_node: base.n_nodes(),
            next_pred: base.n_preds(),
            n_nodes: base.n_nodes().max(1),
            n_preds: base.n_preds().max(1),
            edits_since_commit: 0,
            cfg,
        }
    }

    fn random_node(&mut self) -> Id {
        if self.rng.random_bool(self.cfg.new_node_ratio) {
            self.next_node += 1;
            self.next_node - 1
        } else {
            self.rng.random_range(0..self.n_nodes)
        }
    }

    fn random_pred(&mut self) -> Id {
        if self.cfg.new_pred_ratio > 0.0 && self.rng.random_bool(self.cfg.new_pred_ratio) {
            self.next_pred += 1;
            self.next_pred - 1
        } else {
            self.rng.random_range(0..self.n_preds)
        }
    }

    /// The next event of the stream (never ends; callers take as many as
    /// they want).
    pub fn next_op(&mut self) -> StreamOp {
        if self.edits_since_commit > 0
            && self
                .rng
                .random_bool(1.0 / self.cfg.commit_every.max(1) as f64)
        {
            self.edits_since_commit = 0;
            return if self.rng.random_bool(self.cfg.compact_ratio) {
                StreamOp::Compact
            } else {
                StreamOp::Commit
            };
        }
        self.edits_since_commit += 1;
        let delete = !self.live.is_empty() && self.rng.random_bool(self.cfg.delete_ratio);
        if delete {
            let t = if self.rng.random_bool(self.cfg.delete_live_bias) {
                let i = self.rng.random_range(0..self.live.len());
                self.live.swap_remove(i)
            } else {
                Triple::new(
                    self.rng.random_range(0..self.n_nodes),
                    self.rng.random_range(0..self.n_preds),
                    self.rng.random_range(0..self.n_nodes),
                )
            };
            self.live.retain(|&x| x != t);
            self.graveyard.push(t);
            return StreamOp::Delete(t);
        }
        let t = if !self.graveyard.is_empty() && self.rng.random_bool(self.cfg.reinsert_bias) {
            let i = self.rng.random_range(0..self.graveyard.len());
            self.graveyard.swap_remove(i)
        } else {
            let s = self.random_node();
            let p = self.random_pred();
            let o = self.random_node();
            Triple::new(s, p, o)
        };
        if !self.live.contains(&t) {
            self.live.push(t);
        }
        StreamOp::Insert(t)
    }

    /// Generates `n` events.
    pub fn take_ops(&mut self, n: usize) -> Vec<StreamOp> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

/// Applies one event to a committed/pending mirror pair — the oracle
/// bookkeeping differential tests use: `pending` tracks every edit,
/// `committed` jumps to `pending` on commit/compact. Returns `true` when
/// the event published a new version (commit or compact).
pub fn apply_op(
    op: StreamOp,
    pending: &mut BTreeSet<Triple>,
    committed: &mut BTreeSet<Triple>,
) -> bool {
    match op {
        StreamOp::Insert(t) => {
            pending.insert(t);
            false
        }
        StreamOp::Delete(t) => {
            pending.remove(&t);
            false
        }
        StreamOp::Commit | StreamOp::Compact => {
            *committed = pending.clone();
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> Graph {
        Graph::from_triples(vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 1, 0),
        ])
    }

    #[test]
    fn streams_are_deterministic() {
        let cfg = UpdateGenConfig::default();
        let a = UpdateGen::new(&base(), cfg).take_ops(100);
        let b = UpdateGen::new(&base(), cfg).take_ops(100);
        assert_eq!(a, b);
        let c = UpdateGen::new(&base(), UpdateGenConfig { seed: 7, ..cfg }).take_ops(100);
        assert_ne!(a, c);
    }

    #[test]
    fn streams_mix_all_event_kinds() {
        let mut g = UpdateGen::new(&base(), UpdateGenConfig::default());
        let ops = g.take_ops(400);
        let count = |f: fn(&StreamOp) -> bool| ops.iter().filter(|o| f(o)).count();
        assert!(count(|o| matches!(o, StreamOp::Insert(_))) > 50);
        assert!(count(|o| matches!(o, StreamOp::Delete(_))) > 30);
        assert!(count(|o| matches!(o, StreamOp::Commit)) > 10);
        assert!(count(|o| matches!(o, StreamOp::Compact)) > 0);
    }

    #[test]
    fn mirror_bookkeeping_tracks_commits() {
        let mut pending: BTreeSet<Triple> = base().triples().iter().copied().collect();
        let mut committed = pending.clone();
        let t = Triple::new(0, 0, 2);
        assert!(!apply_op(StreamOp::Insert(t), &mut pending, &mut committed));
        assert!(!committed.contains(&t));
        assert!(apply_op(StreamOp::Commit, &mut pending, &mut committed));
        assert!(committed.contains(&t));
    }
}
