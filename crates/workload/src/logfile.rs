//! Query-log text format: one query per line, so generated benchmark
//! workloads can be exported, inspected, and replayed — the paper
//! published its 1 952-query log the same way.
//!
//! Line format (tab-separated):
//!
//! ```text
//! <pattern with '_' for spaces> \t <subject> \t <expression> \t <object>
//! ```
//!
//! Endpoints are node ids or `?`; expressions use the numeric-id parser
//! syntax over the completed alphabet.

use automata::parser::{parse, NumericResolver};
use ring::Id;
use rpq_core::{RpqQuery, Term};

use crate::patterns::TABLE1_PATTERNS;
use crate::querygen::GeneratedQuery;

/// Serializes a log.
pub fn write_log(log: &[GeneratedQuery]) -> String {
    let mut out = String::new();
    for gq in log {
        let term = |t: Term| match t {
            Term::Const(c) => c.to_string(),
            Term::Var => "?".to_string(),
        };
        out.push_str(&gq.pattern.replace(' ', "_"));
        out.push('\t');
        out.push_str(&term(gq.query.subject));
        out.push('\t');
        out.push_str(&format!("{}", gq.query.expr));
        out.push('\t');
        out.push_str(&term(gq.query.object));
        out.push('\n');
    }
    out
}

/// Parses a log written by [`write_log`]. `n_base_preds` sizes the
/// completed alphabet for expression parsing.
pub fn read_log(text: &str, n_base_preds: Id) -> Result<Vec<GeneratedQuery>, String> {
    let resolver = NumericResolver {
        n_base: n_base_preds,
    };
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(pat), Some(s), Some(e), Some(o), None) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return Err(format!("line {}: expected 4 tab-separated fields", i + 1));
        };
        let pattern = TABLE1_PATTERNS
            .iter()
            .map(|&(p, _)| p)
            .find(|p| p.replace(' ', "_") == pat)
            .ok_or_else(|| format!("line {}: unknown pattern '{pat}'", i + 1))?;
        let term = |t: &str| -> Result<Term, String> {
            if t == "?" {
                Ok(Term::Var)
            } else {
                t.parse::<Id>()
                    .map(Term::Const)
                    .map_err(|_| format!("line {}: bad endpoint '{t}'", i + 1))
            }
        };
        let expr = parse(e, &resolver).map_err(|err| format!("line {}: {err}", i + 1))?;
        out.push(GeneratedQuery {
            pattern,
            query: RpqQuery::new(term(s)?, expr, term(o)?),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphgen::{GraphGen, GraphGenConfig};
    use crate::querygen::QueryGen;

    #[test]
    fn roundtrip_preserves_queries() {
        let g = GraphGen::new(GraphGenConfig {
            n_nodes: 120,
            n_preds: 9,
            n_edges: 900,
            ..Default::default()
        })
        .generate();
        let mut gen = QueryGen::new(&g, 11);
        let log = gen.scaled_log(0.01);
        let text = write_log(&log);
        let back = read_log(&text, g.n_preds()).unwrap();
        assert_eq!(back.len(), log.len());
        for (a, b) in log.iter().zip(&back) {
            assert_eq!(a.pattern, b.pattern);
            assert_eq!(a.query.subject, b.query.subject);
            assert_eq!(a.query.object, b.query.object);
            // The expressions may differ in parenthesisation but must be
            // structurally identical after a print/parse cycle.
            assert_eq!(
                format!("{}", a.query.expr),
                format!("{}", b.query.expr),
                "pattern {}",
                a.pattern
            );
        }
    }

    #[test]
    fn malformed_logs_rejected() {
        assert!(read_log("v_*_c\t?\t0*", 4).is_err()); // missing field
        assert!(read_log("nope\t?\t0*\t3", 4).is_err()); // unknown pattern
        assert!(read_log("v_*_c\tx\t0*\t3", 4).is_err()); // bad endpoint
        assert!(read_log("v_*_c\t?\t0*(\t3", 4).is_err()); // bad expression
        assert!(read_log("# comment only\n\n", 4).unwrap().is_empty());
    }
}
