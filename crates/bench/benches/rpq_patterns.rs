//! End-to-end RPQ evaluation per Table 1 pattern on the ring engine —
//! the per-pattern microbench behind Fig. 8's ring boxes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ring::ring::RingOptions;
use ring::Ring;
use rpq_core::{EngineOptions, RpqEngine};
use std::time::Duration;
use workload::{GraphGen, GraphGenConfig, QueryGen};

fn bench_patterns(c: &mut Criterion) {
    let graph = GraphGen::new(GraphGenConfig {
        n_nodes: 1 << 13,
        n_preds: 32,
        n_edges: 1 << 16,
        ..Default::default()
    })
    .generate();
    let ring = Ring::build(&graph, RingOptions::default());
    let mut engine = RpqEngine::new(&ring);
    let opts = EngineOptions {
        limit: 100_000,
        ..EngineOptions::default()
    };

    let mut gen = QueryGen::new(&graph, 7);
    for &(pattern, _) in workload::TABLE1_PATTERNS.iter() {
        let gq = gen.instantiate(pattern);
        let id = format!("rpq_{}", pattern.replace(' ', "_"));
        c.bench_function(&id, |b| {
            b.iter(|| black_box(engine.evaluate(&gq.query, &opts).unwrap().pairs.len()))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_patterns
}
criterion_main!(benches);
