//! Ablations of the design choices DESIGN.md calls out:
//!
//! * **A1** — §4.1's B-masked wavelet traversal vs probing every query
//!   label with a plain backward-search step (what a ring without the
//!   per-node masks would do).
//! * **A2** — wavelet matrix vs pointer wavelet tree for the range-distinct
//!   workload the traversal runs on.

use automata::parser::{parse, NumericResolver};
use automata::{BitParallel, Glushkov};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ring::ring::RingOptions;
use ring::Ring;
use rpq_core::{EngineOptions, RpqEngine, RpqQuery, Term};
use std::time::Duration;
use succinct::{WaveletMatrix, WaveletTree};
use workload::{GraphGen, GraphGenConfig};

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

/// A1: discovering the relevant predicates of an object range.
fn bench_masked_vs_probing(c: &mut Criterion) {
    let n_preds = 256u64;
    let graph = GraphGen::new(GraphGenConfig {
        n_nodes: 1 << 14,
        n_preds,
        n_edges: 1 << 18,
        ..Default::default()
    })
    .generate();
    let ring = Ring::build(&graph, RingOptions::default());
    let r = NumericResolver { n_base: n_preds };
    // A query mentioning 4 of the 512 completed labels.
    let expr = parse("3/(7|19)*/41", &r).unwrap();
    let g = Glushkov::new(&expr).unwrap();
    let bp = BitParallel::new(&g);
    let d = bp.accept_mask();
    let labels: Vec<u64> = expr.mentioned_labels();

    let mut q = 13u64;
    c.bench_function("a1_masked_traversal", |b| {
        b.iter(|| {
            let o = lcg(&mut q) % ring.n_nodes();
            let (lo, hi) = ring.object_range(o);
            let mut hits = 0usize;
            // The unmasked distinct traversal with a post-filter stands in
            // for the engine's masked guide (same wavelet path costs).
            ring.l_p().range_distinct(lo, hi, &mut |p, _, _| {
                if bp.label_mask(p) & d != 0 {
                    hits += 1;
                }
            });
            black_box(hits)
        })
    });
    c.bench_function("a1_per_label_probing", |b| {
        b.iter(|| {
            let o = lcg(&mut q) % ring.n_nodes();
            let range = ring.object_range(o);
            let mut hits = 0usize;
            for &l in &labels {
                if bp.label_mask(l) & d != 0 {
                    let (b2, e2) = ring.backward_step_by_pred(range, l);
                    if e2 > b2 {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    // The gap grows with query label count: probe all 512 labels, as a
    // label-oblivious engine would.
    c.bench_function("a1_probe_all_labels", |b| {
        b.iter(|| {
            let o = lcg(&mut q) % ring.n_nodes();
            let range = ring.object_range(o);
            let mut hits = 0usize;
            for l in 0..2 * n_preds {
                let (b2, e2) = ring.backward_step_by_pred(range, l);
                if e2 > b2 {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

/// A2: wavelet matrix vs pointer wavelet tree on range-distinct.
fn bench_wm_vs_wt(c: &mut Criterion) {
    let n = 1 << 17;
    let sigma = 1 << 14;
    let mut s = 77u64;
    let syms: Vec<u64> = (0..n).map(|_| lcg(&mut s) % sigma).collect();
    let wm = WaveletMatrix::new(&syms, sigma);
    let wt = WaveletTree::new(&syms, sigma);

    let mut q = 5u64;
    c.bench_function("a2_wm_range_distinct", |b| {
        b.iter(|| {
            let start = (lcg(&mut q) as usize) % (n - 256);
            let mut k = 0usize;
            wm.range_distinct(start, start + 256, &mut |_, _, _| k += 1);
            black_box(k)
        })
    });
    c.bench_function("a2_wt_range_distinct", |b| {
        b.iter(|| {
            let start = (lcg(&mut q) as usize) % (n - 256);
            let mut k = 0usize;
            wt.range_distinct(start, start + 256, &mut |_, _, _| k += 1);
            black_box(k)
        })
    });
}

/// Node-pruning ablation: the intersection-maintained D[v] masks on vs off
/// for a saturating closure query.
fn bench_node_pruning(c: &mut Criterion) {
    let graph = GraphGen::new(GraphGenConfig {
        n_nodes: 1 << 12,
        n_preds: 16,
        n_edges: 1 << 15,
        ..Default::default()
    })
    .generate();
    let ring = Ring::build(&graph, RingOptions::default());
    let mut engine = RpqEngine::new(&ring);
    let r = NumericResolver { n_base: 16 };
    let expr = parse("(0|1|2)+", &r).unwrap();
    let query = RpqQuery::new(Term::Var, expr, Term::Var);

    for pruning in [false, true] {
        let opts = EngineOptions {
            node_pruning: pruning,
            fast_paths: false,
            limit: 1_000_000,
            ..EngineOptions::default()
        };
        c.bench_function(&format!("node_pruning_{pruning}"), |b| {
            b.iter(|| black_box(engine.evaluate(&query, &opts).unwrap().pairs.len()))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    targets = bench_masked_vs_probing, bench_wm_vs_wt, bench_node_pruning
}
criterion_main!(benches);
