//! Micro-benchmarks of the succinct substrate: bit-vector rank/select and
//! wavelet access/rank — the inner loops every ring operation reduces to.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use succinct::{BitVec, RankSelect, WaveletMatrix, WaveletTree};

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

fn bench_rank_select(c: &mut Criterion) {
    let n = 1 << 22;
    let mut s = 7u64;
    let bv = BitVec::from_bits((0..n).map(|_| lcg(&mut s).is_multiple_of(3)));
    let rs = RankSelect::new(bv);
    let ones = rs.count_ones();

    let mut q = 1u64;
    c.bench_function("rank1/4M", |b| {
        b.iter(|| {
            let i = (lcg(&mut q) as usize) % (n + 1);
            black_box(rs.rank1(i))
        })
    });
    c.bench_function("select1/4M", |b| {
        b.iter(|| {
            let k = (lcg(&mut q) as usize) % ones;
            black_box(rs.select1(k))
        })
    });
    c.bench_function("select0/4M", |b| {
        b.iter(|| {
            let k = (lcg(&mut q) as usize) % rs.count_zeros();
            black_box(rs.select0(k))
        })
    });
}

fn bench_wavelet(c: &mut Criterion) {
    let n = 1 << 18;
    let sigma = 1 << 12;
    let mut s = 99u64;
    let syms: Vec<u64> = (0..n).map(|_| lcg(&mut s) % sigma).collect();
    let wm = WaveletMatrix::new(&syms, sigma);
    let wt = WaveletTree::new(&syms, sigma);

    let mut q = 3u64;
    c.bench_function("wm_access", |b| {
        b.iter(|| black_box(wm.access((lcg(&mut q) as usize) % n)))
    });
    c.bench_function("wm_rank", |b| {
        b.iter(|| {
            let sym = lcg(&mut q) % sigma;
            let i = (lcg(&mut q) as usize) % (n + 1);
            black_box(wm.rank(sym, i))
        })
    });
    c.bench_function("wt_rank", |b| {
        b.iter(|| {
            let sym = lcg(&mut q) % sigma;
            let i = (lcg(&mut q) as usize) % (n + 1);
            black_box(wt.rank(sym, i))
        })
    });
    c.bench_function("wm_range_distinct_1k", |b| {
        b.iter(|| {
            let start = (lcg(&mut q) as usize) % (n - 1024);
            let mut count = 0usize;
            wm.range_distinct(start, start + 1024, &mut |_, _, _| count += 1);
            black_box(count)
        })
    });
}

criterion_group!(benches, bench_rank_select, bench_wavelet);
criterion_main!(benches);
