//! Micro-benchmarks of the ring primitives: backward-search steps,
//! LF-steps, triple decoding, and the leapfrog seek.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ring::ring::RingOptions;
use ring::Ring;
use workload::{GraphGen, GraphGenConfig};

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

fn bench_ring(c: &mut Criterion) {
    let graph = GraphGen::new(GraphGenConfig {
        n_nodes: 1 << 15,
        n_preds: 64,
        n_edges: 1 << 18,
        ..Default::default()
    })
    .generate();
    let ring = Ring::build(&graph, RingOptions::default());
    let n = ring.n_triples();
    let n_nodes = ring.n_nodes();
    let n_preds = ring.n_preds();

    let mut q = 11u64;
    c.bench_function("ring_lf_p", |b| {
        b.iter(|| black_box(ring.lf_p((lcg(&mut q) as usize) % n)))
    });
    c.bench_function("ring_triple_decode", |b| {
        b.iter(|| black_box(ring.triple_at_lp((lcg(&mut q) as usize) % n)))
    });
    c.bench_function("ring_backward_step_pred", |b| {
        b.iter(|| {
            let o = lcg(&mut q) % n_nodes;
            let p = lcg(&mut q) % n_preds;
            black_box(ring.backward_step_by_pred(ring.object_range(o), p))
        })
    });
    c.bench_function("ring_object_range_distinct", |b| {
        b.iter(|| {
            let o = lcg(&mut q) % n_nodes;
            let (lo, hi) = ring.object_range(o);
            let mut preds = 0usize;
            ring.l_p().range_distinct(lo, hi, &mut |_, _, _| preds += 1);
            black_box(preds)
        })
    });
    c.bench_function("ring_leapfrog_seek", |b| {
        b.iter(|| {
            let p = lcg(&mut q) % n_preds;
            let (lo, hi) = ring.pred_range(p);
            let x = lcg(&mut q) % n_nodes;
            black_box(ring.l_s().range_next_value(lo, hi, x))
        })
    });
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
