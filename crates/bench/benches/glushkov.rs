//! A3 — bit-parallel table construction and stepping across the vertical
//! split widths `d` of §3.3 (space `O((m/d)·2^d)` vs time `O(m/d)`).

use automata::parser::{parse, NumericResolver};
use automata::{BitParallel, Glushkov};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

fn bench_glushkov(c: &mut Criterion) {
    let r = NumericResolver { n_base: 64 };
    // A 16-position expression (the paper's D cells are 16-bit).
    let expr = parse("(1|2)/3*/4+/(5/6)?/7/8*/9/10/(11|12)*/13?/14/15/16", &r).unwrap();
    let g = Glushkov::new(&expr).unwrap();
    assert_eq!(g.positions(), 16);

    for d in [4usize, 8, 16] {
        let bp = BitParallel::with_split_width(&g, d);
        let mut q = 5u64;
        c.bench_function(&format!("glushkov_step_bwd_d{d}"), |b| {
            b.iter(|| {
                let mask = lcg(&mut q) & ((1 << 17) - 1);
                let label = lcg(&mut q) % 16;
                black_box(bp.step_bwd(mask, label))
            })
        });
        c.bench_function(&format!("glushkov_step_fwd_d{d}"), |b| {
            b.iter(|| {
                let mask = lcg(&mut q) & ((1 << 17) - 1);
                let label = lcg(&mut q) % 16;
                black_box(bp.step_fwd(mask, label))
            })
        });
        c.bench_function(&format!("glushkov_tables_build_d{d}"), |b| {
            b.iter(|| black_box(BitParallel::with_split_width(&g, d).size_bytes()))
        });
    }

    c.bench_function("glushkov_construction", |b| {
        b.iter(|| black_box(Glushkov::new(&expr).unwrap().positions()))
    });
}

criterion_group!(benches, bench_glushkov);
criterion_main!(benches);
