//! E3 — Fig. 8: per-pattern query-time distributions (boxplots) for the
//! four systems over the 20 Table 1 patterns.
//!
//! Prints one five-number summary (min, q1, median, q3, max — the box and
//! whiskers of the figure) per pattern per engine.

use baselines::AdjacencyIndex;
use rpq_bench::{build_ring, five_number, run_log, BenchConfig, EngineSet};
use std::sync::Arc;
use workload::patterns::TABLE1_PATTERNS;

fn main() {
    let cfg = BenchConfig::from_env();
    eprintln!("config: {cfg:?}");
    let graph = cfg.graph();
    let ring = build_ring(&graph);
    let adj = Arc::new(AdjacencyIndex::from_graph(&graph));
    let log = cfg.log(&graph);
    let mut engines = EngineSet::new(&ring, &adj);
    let names: Vec<&'static str> = engines.engines.iter().map(|(e, _)| e.name()).collect();
    let measurements = run_log(&mut engines, &log, &cfg.engine_options());

    println!("Fig. 8 — query-time distribution per pattern (seconds)");
    println!(
        "{:<16} {:<16} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "pattern", "engine", "min", "q1", "median", "q3", "max"
    );
    let mut wins: Vec<(&str, &str)> = Vec::new();
    for &(pattern, _) in TABLE1_PATTERNS.iter() {
        let mut medians: Vec<(&str, f64)> = Vec::new();
        for &name in &names {
            let xs: Vec<f64> = measurements
                .iter()
                .filter(|m| m.pattern == pattern && m.engine == name)
                .map(|m| m.seconds)
                .collect();
            if xs.is_empty() {
                continue;
            }
            let (mn, q1, md, q3, mx) = five_number(&xs);
            println!("{pattern:<16} {name:<16} {mn:>9.4} {q1:>9.4} {md:>9.4} {q3:>9.4} {mx:>9.4}");
            medians.push((name, md));
        }
        if let Some(&(winner, _)) = medians.iter().min_by(|a, b| a.1.partial_cmp(&b.1).unwrap()) {
            wins.push((pattern, winner));
        }
        println!();
    }

    println!("median winner per pattern:");
    let mut ring_wins = 0;
    for (pattern, winner) in &wins {
        println!("  {pattern:<16} {winner}");
        if *winner == "ring" {
            ring_wins += 1;
        }
    }
    println!(
        "ring wins {ring_wins}/{} patterns (paper: best in 9/20, all containing * or +)",
        wins.len()
    );
}
