//! E10: intra-query parallel frontier expansion, written to
//! `BENCH_parallel.json`.
//!
//! Runs a closure-heavy query mix over a wide layered graph at
//! `intra_query_threads` ∈ {1, 2, 4} and reports median wall time per
//! run, speedup vs sequential, and the engine's parallel fan-out
//! counters. Every parallel answer stream is asserted **bit-identical**
//! to the sequential one before any number is reported — the benchmark
//! doubles as a determinism check at scale.
//!
//! On a single-core host the worker pool grants zero helpers, so the
//! speedup is ~1.0 by construction; the speedup *gate* therefore only
//! arms when `RPQ_BENCH_MIN_SPEEDUP` is set **and** the host has ≥ 4
//! hardware threads (CI's multi-core runners set it to 1.5).
//!
//! Modes follow the other benches: `--quick` / `RPQ_BENCH_QUICK=1`
//! shrinks the graph and rep count for the CI perf smoke; `--check
//! <baseline.json>` exits non-zero if a `*_us` median regresses more
//! than [`CHECK_FACTOR`]× against the committed baseline; the output
//! path honours `RPQ_BENCH_OUT`.

use automata::Regex;
use ring::ring::RingOptions;
use ring::{Graph, Ring, Triple};
use rpq_bench::median;
use rpq_core::{EngineOptions, RpqEngine, RpqQuery, Term};
use std::time::Instant;

/// Allowed regression factor for `--check`.
const CHECK_FACTOR: f64 = 3.0;

/// A layered graph with wide BFS levels: `layers` ranks of `width`
/// nodes, each node wired to `fanout` nodes of the next rank (label 0)
/// plus sparse label-1 shortcuts — closure frontiers here span a whole
/// rank, many chunks wide.
fn wide_graph(width: u64, layers: u64, fanout: u64) -> Graph {
    let node = |layer: u64, i: u64| layer * width + i;
    let mut triples = Vec::new();
    for layer in 0..layers - 1 {
        for i in 0..width {
            for k in 0..fanout {
                triples.push(Triple::new(
                    node(layer, i),
                    0,
                    node(layer + 1, (i + k * 13 + 1) % width),
                ));
            }
            if i % 7 == 0 {
                triples.push(Triple::new(node(layer, i), 1, node(layer + 1, i)));
            }
        }
    }
    Graph::from_triples(triples)
}

/// The measured mix: a var-var Kleene closure (the generic traversal),
/// a single-label scan (the §5 fast path), and an alternation closure.
fn queries() -> Vec<RpqQuery> {
    let star = |l: u64| Regex::Star(Box::new(Regex::label(l)));
    vec![
        RpqQuery::new(Term::Var, star(0), Term::Var),
        RpqQuery::new(Term::Var, Regex::label(0), Term::Var),
        RpqQuery::new(
            Term::Var,
            Regex::Plus(Box::new(Regex::alt(Regex::label(0), Regex::label(1)))),
            Term::Var,
        ),
    ]
}

struct Run {
    threads: usize,
    wall_us: f64,
    parallel_levels: u64,
    parallel_chunks: u64,
}

/// Extracts `"key":<number>` from a flat JSON text.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let at = text.find(&tag)? + tag.len();
    let rest = &text[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("RPQ_BENCH_QUICK").is_ok_and(|v| v == "1");
    let check_baseline = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (width, layers, fanout, reps) = if quick {
        (128u64, 6u64, 3u64, 5usize)
    } else {
        (512, 10, 4, 9)
    };
    let host_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "parallel bench: {width}x{layers} layered graph, fanout {fanout}, \
         {host_threads} host threads, pool capacity {}{}",
        rpq_core::parallel::pool_capacity(),
        if quick { " (quick)" } else { "" }
    );

    let graph = wide_graph(width, layers, fanout);
    let ring = Ring::build(&graph, RingOptions::default());
    let mut engine = RpqEngine::new(&ring);
    let qs = queries();

    // Sequential reference streams, captured once.
    let reference: Vec<Vec<(u64, u64)>> = qs
        .iter()
        .map(|q| {
            engine
                .evaluate(q, &EngineOptions::default())
                .expect("sequential reference run")
                .pairs
        })
        .collect();

    let mut runs: Vec<Run> = Vec::new();
    for threads in [1usize, 2, 4] {
        // One rank of the layered graph is a whole BFS level; lower the
        // engagement threshold below the rank width so every level fans
        // out (the default 2048 is tuned for much larger graphs).
        let opts = EngineOptions {
            intra_query_threads: threads,
            parallel_min_frontier: 64,
            ..EngineOptions::default()
        };
        let mut samples = Vec::with_capacity(reps);
        let (mut levels, mut chunks) = (0u64, 0u64);
        for rep in 0..reps {
            let t = Instant::now();
            let mut rep_levels = 0u64;
            let mut rep_chunks = 0u64;
            for (q, expected) in qs.iter().zip(&reference) {
                let out = engine.evaluate(q, &opts).expect("bench query");
                assert_eq!(
                    &out.pairs, expected,
                    "{threads}-thread answer stream diverged on {q:?}"
                );
                rep_levels += out.stats.parallel_levels;
                rep_chunks += out.stats.parallel_chunks;
            }
            samples.push(t.elapsed().as_nanos() as f64 / 1000.0);
            if rep == 0 {
                levels = rep_levels;
                chunks = rep_chunks;
            }
        }
        let run = Run {
            threads,
            wall_us: median(&samples),
            parallel_levels: levels,
            parallel_chunks: chunks,
        };
        eprintln!(
            "  {} thread(s): {:>10.1} us median ({} parallel levels, {} chunks)",
            run.threads, run.wall_us, run.parallel_levels, run.parallel_chunks
        );
        runs.push(run);
    }

    let t1 = runs[0].wall_us.max(1e-9);
    let mut body: Vec<String> = vec![
        format!("\"quick\":{quick}"),
        format!("\"host_threads\":{host_threads}"),
        format!("\"pool_capacity\":{}", rpq_core::parallel::pool_capacity()),
        format!("\"width\":{width}"),
        format!("\"layers\":{layers}"),
    ];
    for r in &runs {
        body.push(format!("\"t{}_us\":{:.2}", r.threads, r.wall_us));
        body.push(format!(
            "\"speedup_t{}\":{:.3}",
            r.threads,
            t1 / r.wall_us.max(1e-9)
        ));
        body.push(format!(
            "\"parallel_levels_t{}\":{}",
            r.threads, r.parallel_levels
        ));
        body.push(format!(
            "\"parallel_chunks_t{}\":{}",
            r.threads, r.parallel_chunks
        ));
    }
    let json = format!("{{{}}}", body.join(","));
    let out = std::env::var("RPQ_BENCH_OUT").unwrap_or_else(|_| "BENCH_parallel.json".to_string());
    std::fs::write(&out, json.clone() + "\n").expect("writing the bench artifact");
    eprintln!("parallel bench -> {out}");
    println!("{json}");

    // The multi-core speedup gate (opt-in: CI runners with real cores).
    if let Ok(min) = std::env::var("RPQ_BENCH_MIN_SPEEDUP") {
        let min: f64 = min.parse().expect("RPQ_BENCH_MIN_SPEEDUP parses as f64");
        let speedup_t4 = t1 / runs[2].wall_us.max(1e-9);
        if host_threads >= 4 && speedup_t4 < min {
            eprintln!(
                "PERF GATE FAILED: 4-thread speedup {speedup_t4:.3} < {min} \
                 on a {host_threads}-thread host"
            );
            std::process::exit(1);
        }
        eprintln!("parallel bench: speedup gate ok ({speedup_t4:.3} at 4 threads)");
    }

    if let Some(path) = check_baseline {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let mut failed = false;
        for r in &runs {
            let key = format!("t{}_us", r.threads);
            match json_number(&baseline, &key) {
                Some(base) if r.wall_us > base * CHECK_FACTOR => {
                    eprintln!(
                        "PERF REGRESSION: {key} = {:.2} vs baseline {base:.2} (>{CHECK_FACTOR}x)",
                        r.wall_us
                    );
                    failed = true;
                }
                Some(_) => {}
                None => eprintln!("note: baseline has no entry for {key}, skipping"),
            }
        }
        if failed {
            eprintln!("parallel bench: perf smoke FAILED against {path}");
            std::process::exit(1);
        }
        eprintln!("parallel bench: perf smoke ok against {path}");
    }
}
