//! E11: parallel bulk ingest and zero-copy cold start, written to
//! `BENCH_ingest.json`.
//!
//! Generates a synthetic N-Triples dump (deterministic LCG, Zipf-ish
//! predicate skew), streams it through the chunk-parallel ingest path
//! into a ring, persists it in both the stream (`RRPQDB02`) and mapped
//! (`RRPQM01`) formats, then measures **cold opens in child processes**
//! — re-executing this binary per mode — so allocator reuse in a warm
//! parent cannot flatter the resident-memory numbers. Every child
//! reports a probe-query checksum and the triple count; the parent
//! asserts all resident modes agree bit-for-bit before any number is
//! written.
//!
//! Modes follow the other benches: `--quick` / `RPQ_BENCH_QUICK=1`
//! shrinks the dump for the CI perf smoke (the full run defaults to
//! 10M triples; `RPQ_INGEST_TRIPLES` overrides either), `--check
//! <baseline.json>` exits non-zero when a timing key regresses more
//! than [`CHECK_FACTOR`]x, and the output path honours `RPQ_BENCH_OUT`.
//! `RPQ_BENCH_MIN_OPEN_SPEEDUP` arms the cold-open gate: mmap open must
//! beat the stream-format heap deserialize by at least that factor.

use ring::mapped::OpenMode;
use ring_rpq::{ingest, RpqDatabase};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Allowed regression factor for `--check`.
const CHECK_FACTOR: f64 = 3.0;

/// Resident set size of this process, in KiB, from `/proc/self/status`
/// (0 where procfs is unavailable).
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmRSS:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}

/// Writes `n` pseudo-random triples as N-Triples lines: `nodes = n/10`
/// subjects/objects, 32 predicates with trailing-zero skew (predicate 0
/// carries half the dump, like a Wikidata top property).
fn generate_dump(path: &Path, n: u64) -> std::io::Result<()> {
    let n_nodes = (n / 10).max(16);
    let mut w = std::io::BufWriter::with_capacity(1 << 20, std::fs::File::create(path)?);
    let mut state = 0x9E3779B97F4A7C15u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 11
    };
    for _ in 0..n {
        let s = next() % n_nodes;
        let o = next() % n_nodes;
        let r = next();
        let p = if r % 2 == 0 { 0 } else { 1 + (r >> 1) % 31 };
        writeln!(w, "<http://g/n{s}> <http://g/p{p}> <http://g/n{o}> .")?;
    }
    w.flush()
}

/// What one cold-open child reports back on stdout.
struct ChildReport {
    open_us: f64,
    rss_kb: u64,
    n_triples: u64,
    probe_rows: u64,
    probe_checksum: u64,
}

/// Child mode: open `path` with `mode`, run the probe query, report.
fn run_child(path: &str, mode: &str) {
    let mode = match mode {
        "stream" | "heap" => OpenMode::Heap,
        "auto" => OpenMode::Auto,
        "mmap" => OpenMode::Mmap,
        other => panic!("unknown open mode {other}"),
    };
    let t = Instant::now();
    let db = RpqDatabase::open_with(Path::new(path), mode).expect("cold open");
    let open_us = t.elapsed().as_nanos() as f64 / 1000.0;
    // Touch the index: one anchored single-label probe plus a one-step
    // closure, exercising rank/select over the mapped columns.
    let out = db
        .query_with(
            "<http://g/n0>",
            "<http://g/p0>",
            "?o",
            &rpq_core::EngineOptions::default(),
        )
        .expect("probe query");
    let mut checksum = 0u64;
    for &(s, o) in &out.pairs {
        checksum = checksum
            .wrapping_mul(0x100000001B3)
            .wrapping_add(s.wrapping_mul(1_000_003).wrapping_add(o));
    }
    println!(
        "{{\"open_us\":{:.1},\"rss_kb\":{},\"n_triples\":{},\"probe_rows\":{},\"probe_checksum\":{},\"resident\":\"{}\",\"mapped_bytes\":{}}}",
        open_us,
        rss_kb(),
        db.ring().n_triples(),
        out.pairs.len(),
        checksum,
        db.open_info().resident.as_str(),
        db.open_info().mapped_bytes,
    );
}

/// Extracts `"key":<number>` from a flat JSON text.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let at = text.find(&tag)? + tag.len();
    let rest = &text[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn spawn_child(index: &Path, mode: &str) -> ChildReport {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .arg("--open-child")
        .arg(index)
        .arg(mode)
        .output()
        .expect("spawning cold-open child");
    assert!(
        out.status.success(),
        "cold-open child ({mode}) failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).expect("child output is UTF-8");
    let field = |k: &str| {
        json_number(&text, k).unwrap_or_else(|| panic!("child ({mode}) omitted {k}: {text}"))
    };
    ChildReport {
        open_us: field("open_us"),
        rss_kb: field("rss_kb") as u64,
        n_triples: field("n_triples") as u64,
        probe_rows: field("probe_rows") as u64,
        probe_checksum: field("probe_checksum") as u64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--open-child") {
        run_child(&args[1], &args[2]);
        return;
    }
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("RPQ_BENCH_QUICK").is_ok_and(|v| v == "1");
    let check_baseline = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let n_triples: u64 = std::env::var("RPQ_INGEST_TRIPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 1_000_000 } else { 10_000_000 });
    let dir = std::env::temp_dir().join(format!("rpq_ingest_bench_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    let dump: PathBuf = dir.join("dump.nt");
    let stream_path = dir.join("index.db");
    let mapped_path = dir.join("index.rpqm");

    eprintln!(
        "ingest bench: {n_triples} triples, pool capacity {}{}",
        rpq_core::parallel::pool_capacity(),
        if quick { " (quick)" } else { "" }
    );

    let t = Instant::now();
    generate_dump(&dump, n_triples).expect("writing the dump");
    let gen_ms = t.elapsed().as_secs_f64() * 1000.0;
    let dump_bytes = std::fs::metadata(&dump).expect("dump metadata").len();
    eprintln!("  generated {dump_bytes} bytes in {gen_ms:.0} ms");

    let t = Instant::now();
    let (graph, nodes, preds) = ingest::load_ntriples_file(&dump).expect("streaming parse");
    let parse_ms = t.elapsed().as_secs_f64() * 1000.0;
    let parsed_triples = graph.len() as u64;
    eprintln!(
        "  parsed {} distinct triples ({} nodes, {} preds) in {parse_ms:.0} ms",
        graph.len(),
        nodes.len(),
        preds.len()
    );

    let t = Instant::now();
    let db = RpqDatabase::from_parts(graph, nodes, preds);
    let build_ms = t.elapsed().as_secs_f64() * 1000.0;
    let rss_after_build_kb = rss_kb();
    eprintln!(
        "  built ring ({} indexed triples) in {build_ms:.0} ms, rss {rss_after_build_kb} KiB",
        db.ring().n_triples()
    );

    let t = Instant::now();
    db.save(&stream_path).expect("stream save");
    let save_stream_ms = t.elapsed().as_secs_f64() * 1000.0;
    let stream_bytes = std::fs::metadata(&stream_path)
        .expect("stream metadata")
        .len();

    let t = Instant::now();
    let mapped_bytes = db.save_mapped(&mapped_path).expect("mapped save");
    let save_mapped_ms = t.elapsed().as_secs_f64() * 1000.0;
    let indexed_triples = db.ring().n_triples() as u64;
    drop(db);
    eprintln!(
        "  saved stream {stream_bytes} B in {save_stream_ms:.0} ms, \
         mapped {mapped_bytes} B in {save_mapped_ms:.0} ms"
    );

    // Cold opens, one fresh process per mode.
    let stream = spawn_child(&stream_path, "stream");
    let heap = spawn_child(&mapped_path, "heap");
    let mmap_supported = cfg!(all(unix, target_pointer_width = "64"));
    let mmap = if mmap_supported {
        spawn_child(&mapped_path, "mmap")
    } else {
        spawn_child(&mapped_path, "auto")
    };
    for (label, r) in [("heap", &heap), ("mmap", &mmap)] {
        assert_eq!(
            r.n_triples, stream.n_triples,
            "{label}: triple count diverged"
        );
        assert_eq!(
            r.probe_rows, stream.probe_rows,
            "{label}: probe rows diverged"
        );
        assert_eq!(
            r.probe_checksum, stream.probe_checksum,
            "{label}: probe answers diverged from the stream-format load"
        );
    }
    let open_speedup = stream.open_us / mmap.open_us.max(1e-9);
    eprintln!(
        "  cold open: stream {:.0} us (rss {} KiB) | mapped-heap {:.0} us (rss {} KiB) \
         | mmap {:.1} us (rss {} KiB) -> {open_speedup:.1}x",
        stream.open_us, stream.rss_kb, heap.open_us, heap.rss_kb, mmap.open_us, mmap.rss_kb
    );

    // WAL replay: a tiny snapshot plus a committed-but-uncheckpointed
    // log, timed through the durable open (crash-recovery cold start).
    let wal_replay_ops: u64 = std::env::var("RPQ_WAL_REPLAY_OPS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 10_000 } else { 100_000 });
    let wal_db = dir.join("wal.db");
    ring_rpq::UpdatableDatabase::from_text("seed p0 seed\n")
        .expect("seed graph")
        .save(&wal_db)
        .expect("seed save");
    let udb = ring_rpq::UpdatableDatabase::open_durable(&wal_db).expect("durable open");
    let mut state = 0x0DD0_15EAu64;
    for i in 0..wal_replay_ops {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = state >> 11;
        udb.insert(
            &format!("s{}", r % (wal_replay_ops / 4).max(16)),
            &format!("p{}", r % 32),
            &format!("o{}", (r >> 32) % (wal_replay_ops / 4).max(16)),
        );
        if (i + 1) % 10_000 == 0 {
            udb.commit();
        }
    }
    udb.commit();
    let wal_epoch = udb.epoch();
    let wal_live = udb.store().snapshot().live_triples().len();
    drop(udb); // crash: the updates exist only in the WAL
    let t = Instant::now();
    let revived = ring_rpq::UpdatableDatabase::open_durable(&wal_db).expect("replay open");
    let wal_replay_us = t.elapsed().as_nanos() as f64 / 1000.0;
    assert_eq!(revived.epoch(), wal_epoch, "replay lost commits");
    assert_eq!(
        revived.store().snapshot().live_triples().len(),
        wal_live,
        "replay diverged from the pre-crash state"
    );
    drop(revived);
    eprintln!(
        "  wal replay: {wal_replay_ops} op(s) in {:.0} us ({:.2}x the stream cold open)",
        wal_replay_us,
        wal_replay_us / stream.open_us.max(1e-9)
    );

    let json = format!(
        "{{\"quick\":{quick},\"triples_requested\":{n_triples},\"triples_parsed\":{parsed_triples},\
\"triples_indexed\":{indexed_triples},\"dump_bytes\":{dump_bytes},\"gen_ms\":{gen_ms:.1},\
\"parse_ms\":{parse_ms:.1},\"build_ms\":{build_ms:.1},\"construct_ms\":{:.1},\
\"rss_after_build_kb\":{rss_after_build_kb},\"save_stream_ms\":{save_stream_ms:.1},\
\"save_mapped_ms\":{save_mapped_ms:.1},\"stream_bytes\":{stream_bytes},\
\"mapped_bytes\":{mapped_bytes},\"cold_open_stream_us\":{:.1},\"cold_open_heap_us\":{:.1},\
\"cold_open_mmap_us\":{:.1},\"rss_open_stream_kb\":{},\"rss_open_heap_kb\":{},\
\"rss_open_mmap_kb\":{},\"open_speedup\":{open_speedup:.1},\"mmap_supported\":{mmap_supported},\
\"wal_replay_us\":{wal_replay_us:.1},\"wal_replay_ops\":{wal_replay_ops},\
\"probe_rows\":{}}}",
        parse_ms + build_ms,
        stream.open_us,
        heap.open_us,
        mmap.open_us,
        stream.rss_kb,
        heap.rss_kb,
        mmap.rss_kb,
        stream.probe_rows,
    );
    let out = std::env::var("RPQ_BENCH_OUT").unwrap_or_else(|_| "BENCH_ingest.json".to_string());
    std::fs::write(&out, json.clone() + "\n").expect("writing the bench artifact");
    eprintln!("ingest bench -> {out}");
    println!("{json}");
    std::fs::remove_dir_all(&dir).ok();

    // The zero-copy gate (opt-in, like the parallel speedup gate): the
    // mmap cold open must beat the stream deserialize by this factor.
    if let Ok(min) = std::env::var("RPQ_BENCH_MIN_OPEN_SPEEDUP") {
        let min: f64 = min
            .parse()
            .expect("RPQ_BENCH_MIN_OPEN_SPEEDUP parses as f64");
        if mmap_supported && open_speedup < min {
            eprintln!("PERF GATE FAILED: cold-open speedup {open_speedup:.1} < {min}");
            std::process::exit(1);
        }
        eprintln!("ingest bench: cold-open gate ok ({open_speedup:.1}x >= {min})");
    }

    if let Some(path) = check_baseline {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let mut failed = false;
        for (key, value) in [
            ("parse_ms", parse_ms),
            ("build_ms", build_ms),
            ("cold_open_stream_us", stream.open_us),
            ("cold_open_heap_us", heap.open_us),
            ("cold_open_mmap_us", mmap.open_us),
            ("wal_replay_us", wal_replay_us),
        ] {
            match json_number(&baseline, key) {
                Some(base) if value > base * CHECK_FACTOR => {
                    eprintln!(
                        "PERF REGRESSION: {key} = {value:.1} vs baseline {base:.1} (>{CHECK_FACTOR}x)"
                    );
                    failed = true;
                }
                Some(_) => {}
                None => eprintln!("note: baseline has no entry for {key}, skipping"),
            }
        }
        if failed {
            eprintln!("ingest bench: perf smoke FAILED against {path}");
            std::process::exit(1);
        }
        eprintln!("ingest bench: perf smoke ok against {path}");
    }
}
