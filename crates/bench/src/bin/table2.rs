//! E2 — Table 2: index space (bytes per edge) and query-time statistics
//! for the four systems, plus E6's working-space accounting.
//!
//! The paper's absolute numbers come from a 958 M-edge Wikidata dump on a
//! Xeon; this regenerates the table's *shape* (who is smallest, who is
//! fastest, where v-to-v flips the ranking) on the synthetic workload.
//! Scale with `RPQ_BENCH_EDGES` / `RPQ_BENCH_NODES` /
//! `RPQ_BENCH_TIMEOUT_MS` / `RPQ_BENCH_LOG_SCALE`.

use baselines::{AdjacencyIndex, RingEngine};
use rpq_bench::{build_ring, mean, median, run_log, BenchConfig, EngineSet, Measurement};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let cfg = BenchConfig::from_env();
    eprintln!("config: {cfg:?}");

    let t0 = Instant::now();
    let graph = cfg.graph();
    eprintln!(
        "graph: {} edges, {} nodes, {} preds ({:.1}s)",
        graph.len(),
        graph.n_nodes(),
        graph.n_preds(),
        t0.elapsed().as_secs_f64()
    );

    let t0 = Instant::now();
    let ring = build_ring(&graph);
    let ring_build = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let adj = Arc::new(AdjacencyIndex::from_graph(&graph));
    let adj_build = t0.elapsed().as_secs_f64();
    eprintln!("index build: ring {ring_build:.1}s, adjacency {adj_build:.1}s");

    let log = cfg.log(&graph);
    eprintln!("log: {} queries", log.len());

    let mut engines = EngineSet::new(&ring, &adj);
    let sizes: Vec<(&'static str, usize)> = engines
        .engines
        .iter()
        .map(|(e, b)| (e.name(), *b))
        .collect();
    let measurements = run_log(&mut engines, &log, &cfg.engine_options());

    let names: Vec<&'static str> = sizes.iter().map(|&(n, _)| n).collect();
    let n_edges = graph.len() as f64;

    println!("\nTable 2 — index space and query time statistics");
    println!("(paper reference, Wikidata: Ring 16.41 B/edge, Jena 95.83, Virtuoso 60.07, Blazegraph 90.79;");
    println!(" Ring avg 3.73 s / med 0.15 s / 43 timeouts over 1952 queries at 60 s timeout)\n");

    print!("{:<22}", "");
    for n in &names {
        print!("{n:>16}");
    }
    println!();

    print!("{:<22}", "Space (bytes/edge)");
    for &(_, b) in &sizes {
        print!("{:>16.2}", b as f64 / n_edges);
    }
    println!();

    let stats = |f: &dyn Fn(&Measurement) -> bool| -> Vec<(f64, f64, usize)> {
        names
            .iter()
            .map(|&n| {
                let xs: Vec<f64> = measurements
                    .iter()
                    .filter(|m| m.engine == n && f(m))
                    .map(|m| m.seconds)
                    .collect();
                let timeouts = measurements
                    .iter()
                    .filter(|m| m.engine == n && f(m) && m.timed_out)
                    .count();
                (mean(&xs), median(&xs), timeouts)
            })
            .collect()
    };

    let all = stats(&|_| true);
    print!("{:<22}", "Average (s)");
    for &(a, _, _) in &all {
        print!("{a:>16.4}");
    }
    println!();
    print!("{:<22}", "Median (s)");
    for &(_, m, _) in &all {
        print!("{m:>16.4}");
    }
    println!();
    print!("{:<22}", "Timeouts");
    for &(_, _, t) in &all {
        print!("{t:>16}");
    }
    println!();

    let ctv = stats(&|m: &Measurement| m.c_to_v);
    print!("{:<22}", "Average c-to-v (s)");
    for &(a, _, _) in &ctv {
        print!("{a:>16.4}");
    }
    println!();
    print!("{:<22}", "Median c-to-v (s)");
    for &(_, m, _) in &ctv {
        print!("{m:>16.4}");
    }
    println!();

    let vtv = stats(&|m: &Measurement| !m.c_to_v);
    print!("{:<22}", "Average v-to-v (s)");
    for &(a, _, _) in &vtv {
        print!("{a:>16.4}");
    }
    println!();
    print!("{:<22}", "Median v-to-v (s)");
    for &(_, m, _) in &vtv {
        print!("{m:>16.4}");
    }
    println!();

    // E6: working-space accounting (paper: D = 3.09 B/triple, B ≈ 9e-5).
    let ring_engine = RingEngine::new(&ring);
    let ws = ring_engine.inner().working_space_bytes() as f64;
    println!(
        "\nWorking space (ring): {:.2} bytes/triple (paper: 3.09 for D + ~0 for B)",
        ws / n_edges
    );
    println!(
        "Ring RPQ-only (no L_o): {:.2} bytes/edge",
        ring.size_bytes_rpq_only() as f64 / n_edges
    );

    // Shape assertions the paper's conclusions rest on.
    let ring_space = sizes[0].1 as f64;
    for &(n, b) in &sizes[1..] {
        println!("space ratio {}/ring = {:.2}x", n, b as f64 / ring_space);
    }
}
