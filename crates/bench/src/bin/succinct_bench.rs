//! E9: succinct hot-path microbench, written to `BENCH_succinct.json`.
//!
//! Medians (ns/op) for the primitives every RPQ traversal step bottoms
//! out in: `rank1`, `rank1_pair`, `select1`/`select0` (against an
//! in-bench reimplementation of the pre-interleaving **binary-search
//! select** so the speedup is measured, not asserted), wavelet
//! `guided_traverse` per-range vs the frontier-batched
//! `guided_traverse_multi` at several frontier widths, and the batched
//! backward-step rank. Distributions: dense/sparse/clustered synthetic
//! bits plus a metro-ring-derived pattern (the MSB sequence of the
//! bundled fixture's `L_s`, tiled), so the numbers track real ring data
//! and not just uniform noise.
//!
//! Modes: `--quick` (or `RPQ_BENCH_QUICK=1`) shrinks inputs/reps for the
//! CI perf smoke; `--check <baseline.json>` exits non-zero if any
//! `*_ns` median regresses more than [`CHECK_FACTOR`]× against the
//! committed baseline — a guard against accidental O(n) fallbacks, not
//! against machine noise. Output path honours `RPQ_BENCH_OUT`.

use ring::ring::RingOptions;
use ring::Ring;
use rpq_bench::median;
use std::time::Instant;
use succinct::rank_select::select_in_word;
use succinct::wavelet_matrix::{MultiRangeGuide, MultiTraversal, RangeGuide};
use succinct::{BitVec, RankSelect, WaveletMatrix};

/// Allowed regression factor for `--check`.
const CHECK_FACTOR: f64 = 3.0;

fn lcg(seed: &mut u64) -> u64 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *seed >> 33
}

/// The pre-PR select: binary search over a (separate) superblock rank
/// directory, then a sub-block scan — kept here as the measured baseline
/// for the sampled+broadword replacement.
struct BinSearchSelect {
    words: Vec<u64>,
    abs: Vec<u64>,
}

impl BinSearchSelect {
    fn new(rs: &RankSelect) -> Self {
        let words: Vec<u64> = (0..rs.n_bit_words()).map(|w| rs.bit_word(w)).collect();
        let mut abs = Vec::with_capacity(words.len().div_ceil(8) + 1);
        let mut acc = 0u64;
        for chunk in words.chunks(8) {
            abs.push(acc);
            acc += chunk.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        }
        abs.push(acc);
        Self { words, abs }
    }

    fn select1(&self, k: usize) -> usize {
        let k64 = k as u64;
        let sup = self.abs.partition_point(|&r| r <= k64) - 1;
        let mut remaining = k - self.abs[sup] as usize;
        let mut word = sup * 8;
        loop {
            let ones = self.words[word].count_ones() as usize;
            if remaining < ones {
                break;
            }
            remaining -= ones;
            word += 1;
        }
        word * 64 + select_in_word(self.words[word], remaining as u32) as usize
    }

    fn select0(&self, k: usize) -> usize {
        let k64 = k as u64;
        let sup = {
            let (mut lo, mut hi) = (0usize, self.abs.len() - 1);
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                if (mid * 512) as u64 - self.abs[mid] <= k64 {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            lo
        };
        let mut remaining = k - (sup * 512 - self.abs[sup] as usize);
        let mut word = sup * 8;
        loop {
            let zeros = self.words[word].count_zeros() as usize;
            if remaining < zeros {
                break;
            }
            remaining -= zeros;
            word += 1;
        }
        word * 64 + select_in_word(!self.words[word], remaining as u32) as usize
    }
}

/// Median ns/op of `op` over `reps` timed batches of `per_batch` calls.
fn time_ns(reps: usize, per_batch: usize, mut op: impl FnMut(usize) -> usize) -> f64 {
    let mut sink = 0usize;
    let mut samples = Vec::with_capacity(reps);
    for r in 0..reps {
        let t = Instant::now();
        for i in 0..per_batch {
            sink = sink.wrapping_add(op(r * per_batch + i));
        }
        samples.push(t.elapsed().as_nanos() as f64 / per_batch as f64);
    }
    std::hint::black_box(sink);
    median(&samples)
}

struct CountLeaves(usize);
impl RangeGuide for CountLeaves {
    fn enter(&mut self, _: usize, _: u64) -> bool {
        true
    }
    fn leaf(&mut self, _: u64, _: usize, _: usize) {
        self.0 += 1;
    }
}

struct CountLeavesMulti(usize);
impl MultiRangeGuide for CountLeavesMulti {
    fn enter_node(&mut self, _: usize, _: u64) -> bool {
        true
    }
    fn enter_item(&mut self, _: u32, _: usize, _: u64) -> bool {
        true
    }
    fn leaf(&mut self, _: u32, _: u64, _: usize, _: usize) {
        self.0 += 1;
    }
}

/// The MSB bit pattern of the metro fixture's `L_s`, tiled to `n` bits
/// (falls back to a two-period synthetic pattern without the fixture).
fn metro_bits(n: usize) -> BitVec {
    let pattern: Vec<bool> = match std::fs::read_to_string("data/metro.nt") {
        Ok(text) => {
            let (graph, _, _) = ring::ntriples::parse_ntriples(&text).expect("fixture parses");
            let r = Ring::build(&graph, RingOptions::default());
            let ls = r.l_s();
            let top = 1u64 << (ls.width() - 1);
            (0..ls.len()).map(|i| ls.access(i) & top != 0).collect()
        }
        Err(_) => {
            eprintln!("succinct bench: data/metro.nt not found, tiling a synthetic pattern");
            (0..64).map(|i| i % 5 == 0 || i % 7 == 3).collect()
        }
    };
    BitVec::from_bits((0..n).map(|i| pattern[i % pattern.len()]))
}

fn bench_bits(name: &str, bv: BitVec, reps: usize, per_batch: usize, out: &mut Vec<(String, f64)>) {
    let n = bv.len();
    let rs = RankSelect::new(bv);
    let bin = BinSearchSelect::new(&rs);
    let ones = rs.count_ones().max(1);
    let zeros = rs.count_zeros().max(1);

    let mut s = 0x9E37u64;
    out.push((
        format!("rank1_{name}_ns"),
        time_ns(reps, per_batch, |_| {
            rs.rank1(lcg(&mut s) as usize % (n + 1))
        }),
    ));
    let mut s = 0x9E38u64;
    out.push((
        format!("rank1_pair_{name}_ns"),
        time_ns(reps, per_batch, |_| {
            let b = lcg(&mut s) as usize % (n + 1);
            let e = (b + lcg(&mut s) as usize % 256).min(n);
            let (rb, re) = rs.rank1_pair(b, e);
            rb + re
        }),
    ));
    let mut s = 0x51u64;
    let select1_ns = time_ns(reps, per_batch, |_| {
        rs.select1(lcg(&mut s) as usize % ones).unwrap_or(0)
    });
    let mut s = 0x51u64;
    let select1_bin_ns = time_ns(reps, per_batch, |_| {
        bin.select1(lcg(&mut s) as usize % ones)
    });
    let mut s = 0x52u64;
    let select0_ns = time_ns(reps, per_batch, |_| {
        rs.select0(lcg(&mut s) as usize % zeros).unwrap_or(0)
    });
    let mut s = 0x52u64;
    let select0_bin_ns = time_ns(reps, per_batch, |_| {
        bin.select0(lcg(&mut s) as usize % zeros)
    });
    out.push((format!("select1_{name}_ns"), select1_ns));
    out.push((format!("select1_binsearch_{name}_ns"), select1_bin_ns));
    out.push((
        format!("select1_{name}_speedup"),
        select1_bin_ns / select1_ns.max(1e-9),
    ));
    out.push((format!("select0_{name}_ns"), select0_ns));
    out.push((format!("select0_binsearch_{name}_ns"), select0_bin_ns));
    out.push((
        format!("select0_{name}_speedup"),
        select0_bin_ns / select0_ns.max(1e-9),
    ));
}

fn bench_traversal(
    wm: &WaveletMatrix,
    frontier: usize,
    range_len: usize,
    reps: usize,
    out: &mut Vec<(String, f64)>,
) {
    let n = wm.len();
    let mut s = 0xF0u64 + frontier as u64;
    let mut ranges: Vec<(usize, usize)> = (0..frontier)
        .map(|_| {
            let b = lcg(&mut s) as usize % (n - range_len);
            (b, b + range_len)
        })
        .collect();
    ranges.sort_unstable();

    let mut samples = Vec::with_capacity(reps);
    let mut leaves = 0usize;
    for _ in 0..reps {
        let t = Instant::now();
        let mut g = CountLeaves(0);
        for &(b, e) in &ranges {
            wm.guided_traverse(b, e, &mut g);
        }
        samples.push(t.elapsed().as_nanos() as f64 / 1000.0);
        leaves = g.0;
    }
    let per_range_us = median(&samples);

    let mut mt = MultiTraversal::new();
    let mut samples = Vec::with_capacity(reps);
    let mut leaves_multi = 0usize;
    for _ in 0..reps {
        let t = Instant::now();
        let mut g = CountLeavesMulti(0);
        mt.run(wm, &ranges, &mut g);
        samples.push(t.elapsed().as_nanos() as f64 / 1000.0);
        leaves_multi = g.0;
    }
    let batched_us = median(&samples);
    assert_eq!(leaves, leaves_multi, "batched traversal dropped leaves");

    out.push((format!("traverse_per_range_f{frontier}_us"), per_range_us));
    out.push((format!("traverse_batched_f{frontier}_us"), batched_us));
    out.push((
        format!("traverse_batched_f{frontier}_speedup"),
        per_range_us / batched_us.max(1e-9),
    ));
    out.push((
        format!("traverse_f{frontier}_ranks_saved_ratio"),
        mt.ranks_saved as f64 / (mt.ranks + mt.ranks_saved).max(1) as f64,
    ));
}

/// Extracts `"key":<number>` from a flat JSON text.
fn json_number(text: &str, key: &str) -> Option<f64> {
    let tag = format!("\"{key}\":");
    let at = text.find(&tag)? + tag.len();
    let rest = &text[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick")
        || std::env::var("RPQ_BENCH_QUICK").is_ok_and(|v| v == "1");
    let check_baseline = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let (n_bits, n_syms, reps, per_batch) = if quick {
        (1usize << 18, 1usize << 14, 9, 2000)
    } else {
        (1usize << 22, 1usize << 18, 15, 20000)
    };
    let sigma = 1u64 << 12;
    eprintln!(
        "succinct bench: {} bits, {} symbols{}",
        n_bits,
        n_syms,
        if quick { " (quick)" } else { "" }
    );

    let mut results: Vec<(String, f64)> = Vec::new();

    // Bit distributions: dense uniform (1/3), sparse (1/64), clustered
    // runs, metro-ring-derived.
    let mut s = 7u64;
    bench_bits(
        "dense",
        BitVec::from_bits((0..n_bits).map(|_| lcg(&mut s).is_multiple_of(3))),
        reps,
        per_batch,
        &mut results,
    );
    let mut s = 11u64;
    bench_bits(
        "sparse",
        BitVec::from_bits((0..n_bits).map(|_| lcg(&mut s).is_multiple_of(64))),
        reps,
        per_batch,
        &mut results,
    );
    let mut s = 13u64;
    let mut run = false;
    bench_bits(
        "clustered",
        BitVec::from_bits((0..n_bits).map(|_| {
            if lcg(&mut s).is_multiple_of(97) {
                run = !run;
            }
            run
        })),
        reps,
        per_batch,
        &mut results,
    );
    bench_bits("metro", metro_bits(n_bits), reps, per_batch, &mut results);

    // Wavelet traversal: per-range vs frontier-batched, zipf-ish symbols.
    let mut s = 99u64;
    let syms: Vec<u64> = (0..n_syms)
        .map(|_| {
            let r = lcg(&mut s) % sigma;
            r * r / sigma // skew towards small symbols, like real label ids
        })
        .collect();
    let wm = WaveletMatrix::new(&syms, sigma);
    for frontier in [4usize, 64, 256] {
        bench_traversal(&wm, frontier, 48, reps, &mut results);
    }

    // Batched backward-step rank vs per-position wavelet rank.
    let mut s = 0xABu64;
    let positions: Vec<usize> = (0..256)
        .map(|_| lcg(&mut s) as usize % (n_syms + 1))
        .collect();
    let sym = syms[0];
    let t_reps = reps.max(10);
    let mut samples = Vec::new();
    for _ in 0..t_reps {
        let t = Instant::now();
        let acc: usize = positions.iter().map(|&p| wm.rank(sym, p)).sum();
        std::hint::black_box(acc);
        samples.push(t.elapsed().as_nanos() as f64 / positions.len() as f64);
    }
    results.push(("rank_per_position_ns".to_string(), median(&samples)));
    let mut samples = Vec::new();
    for _ in 0..t_reps {
        let mut batch = positions.clone();
        let t = Instant::now();
        wm.rank_batch(sym, &mut batch);
        std::hint::black_box(&batch);
        samples.push(t.elapsed().as_nanos() as f64 / positions.len() as f64);
    }
    results.push(("rank_batch_ns".to_string(), median(&samples)));

    let body: Vec<String> = results
        .iter()
        .map(|(k, v)| format!("\"{k}\":{v:.2}"))
        .collect();
    let json = format!(
        "{{\"quick\":{quick},\"bits\":{n_bits},\"symbols\":{n_syms},{}}}",
        body.join(",")
    );
    let out = std::env::var("RPQ_BENCH_OUT").unwrap_or_else(|_| "BENCH_succinct.json".to_string());
    std::fs::write(&out, json.clone() + "\n").expect("writing the bench artifact");
    for (k, v) in &results {
        eprintln!("  {k:<40} {v:>12.2}");
    }
    eprintln!("succinct bench -> {out}");
    println!("{json}");

    if let Some(path) = check_baseline {
        let baseline = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let mut failed = false;
        for (k, v) in &results {
            // Only absolute primitive timings guard regressions; speedups
            // and ratios are machine-dependent derived values.
            if !k.ends_with("_ns") && !k.ends_with("_us") {
                continue;
            }
            match json_number(&baseline, k) {
                Some(base) if *v > base * CHECK_FACTOR => {
                    eprintln!(
                        "PERF REGRESSION: {k} = {v:.2} vs baseline {base:.2} (>{CHECK_FACTOR}x)"
                    );
                    failed = true;
                }
                Some(_) => {}
                None => eprintln!("note: baseline has no entry for {k}, skipping"),
            }
        }
        if failed {
            eprintln!("succinct bench: perf smoke FAILED against {path}");
            std::process::exit(1);
        }
        eprintln!("succinct bench: perf smoke ok against {path}");
    }
}
