//! E4 — Index construction: build time and space for the ring vs the
//! adjacency index over a sweep of graph sizes (§5 reports 2.3 h and
//! 64.75 GB RAM for the 958 M-edge Wikidata; here we report the scaling
//! shape at laptop sizes).

use baselines::AdjacencyIndex;
use rpq_bench::{build_ring, BenchConfig};
use std::time::Instant;
use workload::{GraphGen, GraphGenConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    println!("Index construction sweep (seed {})", cfg.seed);
    println!(
        "{:>12} {:>12} {:>12} {:>14} {:>12} {:>14}",
        "edges", "ring (s)", "ring B/edge", "ring-RPQ B/e", "adj (s)", "adj B/edge"
    );
    for shift in [
        cfg.n_edges / 8,
        cfg.n_edges / 4,
        cfg.n_edges / 2,
        cfg.n_edges,
    ] {
        let graph = GraphGen::new(GraphGenConfig {
            n_nodes: cfg.n_nodes,
            n_preds: cfg.n_preds,
            n_edges: shift,
            seed: cfg.seed,
            ..Default::default()
        })
        .generate();
        let n = graph.len() as f64;

        let t = Instant::now();
        let ring = build_ring(&graph);
        let ring_secs = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let adj = AdjacencyIndex::from_graph(&graph);
        let adj_secs = t.elapsed().as_secs_f64();

        println!(
            "{:>12} {:>12.2} {:>12.2} {:>14.2} {:>12.2} {:>14.2}",
            graph.len(),
            ring_secs,
            ring.size_bytes() as f64 / n,
            ring.size_bytes_rpq_only() as f64 / n,
            adj_secs,
            adj.size_bytes() as f64 / n
        );
    }
}
