//! E7: server throughput and latency under the Table 1 workload at
//! 1 / 4 / 16 workers and 1 / 4 shards, written to `BENCH_server.json`.
//!
//! Measures the `rpq-server` worker pool end to end (admission →
//! plan cache → engine), with the *result cache disabled* so the
//! numbers reflect engine scaling, not repeat-hit shortcuts (the plan
//! cache stays on: sharing compiled automata across workers is part of
//! the design under test). The shards axis serves the same graph
//! through a predicate-partitioned `ShardedIndex` scatter-gathered per
//! query — answers are bit-identical to the unsharded rows, so the
//! delta is pure gather overhead. The workload, graph and limits follow
//! the shared `BenchConfig` (`RPQ_BENCH_*` env overrides); the shard
//! counts honour `RPQ_BENCH_SHARDS` (comma-separated, default `1,4`)
//! and the output path `RPQ_BENCH_OUT` (default `BENCH_server.json`).

use ring::ring::RingOptions;
use ring::sharded::ShardedIndex;
use rpq_bench::{build_ring, BenchConfig};
use rpq_core::RpqQuery;
use rpq_server::{IndexSource, QueryBudget, QuerySource, RpqServer, ServerConfig};
use std::sync::Arc;
use std::time::Instant;

struct Run {
    workers: usize,
    shards: usize,
    wall_s: f64,
    qps: f64,
    completed: usize,
    failed: usize,
    timed_out: usize,
    pairs: usize,
    p50_us: u64,
    p99_us: u64,
}

fn shard_counts() -> Vec<usize> {
    let spec = std::env::var("RPQ_BENCH_SHARDS").unwrap_or_else(|_| "1,4".into());
    let counts: Vec<usize> = spec
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .ok()
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| panic!("RPQ_BENCH_SHARDS: bad shard count '{s}'"))
        })
        .collect();
    assert!(!counts.is_empty(), "RPQ_BENCH_SHARDS is empty");
    counts
}

fn main() {
    let cfg = BenchConfig::from_env();
    let graph = cfg.graph();
    eprintln!(
        "server bench: building ring over {} edges / {} nodes ...",
        graph.len(),
        graph.n_nodes()
    );
    let queries: Vec<RpqQuery> = cfg.log(&graph).into_iter().map(|gq| gq.query).collect();
    eprintln!(
        "server bench: {} queries from the Table 1 mix",
        queries.len()
    );
    let budget = QueryBudget {
        max_results: cfg.limit,
        timeout: Some(cfg.timeout),
        node_budget: None,
    };

    let worker_counts = [1usize, 4, 16];
    let mut runs: Vec<Run> = Vec::new();
    for n_shards in shard_counts() {
        let source: Arc<dyn QuerySource> = if n_shards == 1 {
            Arc::new(IndexSource::id_only(build_ring(&graph)))
        } else {
            eprintln!("server bench: partitioning into {n_shards} shards ...");
            let idx = ShardedIndex::build(&graph, n_shards, RingOptions::default());
            Arc::new(IndexSource::sharded_id_only(idx.into_shards()))
        };
        for &workers in &worker_counts {
            let server = RpqServer::start(
                Arc::clone(&source),
                ServerConfig {
                    workers,
                    max_pending: queries.len() + 1,
                    result_cache_bytes: 0,
                    ..ServerConfig::default()
                },
            )
            .expect("valid bench server config");
            let t0 = Instant::now();
            let tickets: Vec<_> = queries
                .iter()
                .map(|q| {
                    server
                        .submit_parsed(q.clone(), budget)
                        .expect("queue sized for the whole log")
                })
                .collect();
            let (mut completed, mut failed, mut timed_out, mut pairs) =
                (0usize, 0usize, 0usize, 0usize);
            for ticket in &tickets {
                match server.wait(ticket) {
                    Ok(answer) => {
                        completed += 1;
                        timed_out += answer.timed_out as usize;
                        pairs += answer.pairs.len();
                    }
                    Err(_) => failed += 1,
                }
            }
            let wall_s = t0.elapsed().as_secs_f64();
            let m = server.metrics();
            let run = Run {
                workers,
                shards: n_shards,
                wall_s,
                qps: queries.len() as f64 / wall_s.max(1e-9),
                completed,
                failed,
                timed_out,
                pairs,
                p50_us: m.latency_all.quantile_us(0.50),
                p99_us: m.latency_all.quantile_us(0.99),
            };
            eprintln!(
                "  {:>2} workers / {:>2} shards: {:.3}s wall, {:.0} q/s, p50 {} us, p99 {} us \
                 ({} timed out, {} failed)",
                run.workers,
                run.shards,
                run.wall_s,
                run.qps,
                run.p50_us,
                run.p99_us,
                run.timed_out,
                run.failed
            );
            runs.push(run);
            server.shutdown();
        }
    }

    // Baseline for speedups: 1 worker on the unsharded (or first) config.
    let base_qps = runs[0].qps;
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"experiment\": \"server_throughput\",\n  \"host_threads\": {},\n",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str(&format!(
        "  \"config\": {{\"nodes\": {}, \"preds\": {}, \"edges\": {}, \"seed\": {}, \
         \"log_scale\": {}, \"timeout_ms\": {}, \"limit\": {}, \"queries\": {}}},\n",
        cfg.n_nodes,
        cfg.n_preds,
        cfg.n_edges,
        cfg.seed,
        cfg.log_scale,
        cfg.timeout.as_millis(),
        cfg.limit,
        queries.len()
    ));
    json.push_str("  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {}, \"shards\": {}, \"wall_s\": {:.6}, \"qps\": {:.2}, \
             \"speedup_vs_1\": {:.3}, \"completed\": {}, \"failed\": {}, \"timed_out\": {}, \
             \"pairs\": {}, \"p50_us\": {}, \"p99_us\": {}}}{}\n",
            r.workers,
            r.shards,
            r.wall_s,
            r.qps,
            r.qps / base_qps.max(1e-9),
            r.completed,
            r.failed,
            r.timed_out,
            r.pairs,
            r.p50_us,
            r.p99_us,
            if i + 1 < runs.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    let out = std::env::var("RPQ_BENCH_OUT").unwrap_or_else(|_| "BENCH_server.json".into());
    std::fs::write(&out, &json).expect("writing the bench report");
    println!("{json}");
    eprintln!("wrote {out}");
}
