//! E8: planner-chosen vs. forced-route latencies on the bundled metro
//! fixture, written to `BENCH_planner.json`.
//!
//! For each query of a route-diverse corpus, the bench times the
//! planner's natural choice and then every forced [`EvalRoute`]
//! (fastpath / bitparallel / split / fallback; infeasible forcings fall
//! back naturally and are reported as such), asserting along the way
//! that all routes return the same answer count. The artifact answers
//! the question every cost-model change must face: *does the planner
//! pick the route that actually wins?*
//!
//! Inputs: `data/metro.nt` by default (`RPQ_BENCH_FIXTURE` overrides; a
//! missing fixture falls back to a small synthetic graph so the bench
//! runs anywhere). Output path honours `RPQ_BENCH_OUT`
//! (default `BENCH_planner.json`).

use automata::Regex;
use ring::ring::RingOptions;
use ring::{Graph, Ring};
use rpq_bench::median;
use rpq_core::{EngineOptions, EvalRoute, RpqEngine, RpqQuery, Term};
use std::time::Instant;

/// Timed repetitions per (query, route) cell.
const REPS: usize = 30;

struct Case {
    name: &'static str,
    query: RpqQuery,
}

fn star(l: u64) -> Regex {
    Regex::Star(Box::new(Regex::label(l)))
}

/// Loads the metro fixture, or synthesizes a stand-in with the same
/// label diversity when the file is absent.
fn load_graph() -> (String, Graph) {
    let path = std::env::var("RPQ_BENCH_FIXTURE").unwrap_or_else(|_| "data/metro.nt".to_string());
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let (graph, _nodes, _preds) =
                ring::ntriples::parse_ntriples(&text).expect("fixture parses");
            (path, graph)
        }
        Err(_) => {
            eprintln!("planner bench: {path} not found, using a synthetic stand-in");
            let mut triples = vec![ring::Triple::new(6, 1, 9)];
            for i in 0..14 {
                triples.push(ring::Triple::new(i, 0, (i + 1) % 16));
                triples.push(ring::Triple::new((i + 2) % 16, 2, (i + 5) % 16));
            }
            ("synthetic".to_string(), Graph::from_triples(triples))
        }
    }
}

/// A corpus covering every route and endpoint shape the metro graph
/// supports. Labels are picked by cardinality rank so the corpus stays
/// meaningful on any fixture: `rare` is the rarest predicate, `common`
/// the most frequent.
fn corpus(graph: &Graph, ring: &Ring) -> Vec<Case> {
    let mut by_card: Vec<(u64, usize)> = (0..graph.n_preds())
        .map(|p| (p, ring.pred_cardinality(p)))
        .collect();
    by_card.sort_by_key(|&(p, c)| (c, p));
    let rare = by_card.first().map_or(0, |&(p, _)| p);
    let common = by_card.last().map_or(0, |&(p, _)| p);
    let mid = by_card.get(by_card.len() / 2).map_or(0, |&(p, _)| p);
    let anchor = graph
        .triples()
        .iter()
        .find(|t| t.p == rare)
        .map_or(0, |t| t.s);

    let mut long_prefix = Regex::Opt(Box::new(Regex::label(common)));
    for _ in 1..70 {
        long_prefix = Regex::concat(long_prefix, Regex::Opt(Box::new(Regex::label(common))));
    }
    vec![
        Case {
            name: "single_label_vv",
            query: RpqQuery::new(Term::Var, Regex::label(common), Term::Var),
        },
        Case {
            name: "disjunction_vv",
            query: RpqQuery::new(
                Term::Var,
                Regex::alt(Regex::label(common), Regex::label(mid)),
                Term::Var,
            ),
        },
        Case {
            name: "concat2_vv",
            query: RpqQuery::new(
                Term::Var,
                Regex::concat(Regex::label(common), Regex::label(mid)),
                Term::Var,
            ),
        },
        Case {
            name: "closure_cv",
            query: RpqQuery::new(Term::Const(anchor), star(common), Term::Var),
        },
        Case {
            name: "rare_split_vv",
            query: RpqQuery::new(
                Term::Var,
                Regex::concat(Regex::concat(star(common), Regex::label(rare)), star(mid)),
                Term::Var,
            ),
        },
        Case {
            name: "oversized_fallback_vv",
            query: RpqQuery::new(
                Term::Var,
                Regex::concat(long_prefix, Regex::label(rare)),
                Term::Var,
            ),
        },
    ]
}

/// One timed (query, route) cell: median latency plus what the executed
/// plan promised and what evaluation actually did.
struct Cell {
    median_us: f64,
    route: EvalRoute,
    pairs: usize,
    estimated_cost: u64,
    actual_nodes: u64,
    actual_rank_ops: u64,
    /// `(actual_nodes+1)*1000/(estimated_cost+1)` — 1000 is a perfect
    /// estimate, see [`rpq_core::planner::Plan::misprediction_x1000`].
    misprediction_x1000: u64,
}

/// Median evaluation latency in microseconds under `opts`, plus the
/// route the planner actually executed and the answer count.
fn time_route(engine: &mut RpqEngine<'_>, query: &RpqQuery, opts: &EngineOptions) -> Cell {
    let mut times = Vec::with_capacity(REPS);
    let mut cell = None;
    for _ in 0..REPS {
        let t = Instant::now();
        let out = engine
            .evaluate(query, opts)
            .expect("bench queries evaluate");
        times.push(t.elapsed().as_secs_f64() * 1e6);
        let plan = out.plan.as_ref().expect("engine outputs carry plans");
        cell = Some(Cell {
            median_us: 0.0,
            route: plan.route,
            pairs: out.pairs.len(),
            estimated_cost: plan.estimated_cost,
            actual_nodes: out.stats.product_nodes,
            actual_rank_ops: out.stats.rank_ops,
            misprediction_x1000: plan.misprediction_x1000(out.stats.product_nodes),
        });
    }
    let mut cell = cell.expect("REPS > 0");
    cell.median_us = median(&times);
    cell
}

fn main() {
    let (fixture, graph) = load_graph();
    let ring = Ring::build(&graph, RingOptions::default());
    eprintln!(
        "planner bench: {fixture} — {} edges, {} nodes, {} predicates",
        graph.len(),
        graph.n_nodes(),
        graph.n_preds()
    );
    let mut engine = RpqEngine::new(&ring);
    let mut rows = Vec::new();
    let mut planner_total = 0.0f64;
    let mut oracle_total = 0.0f64;
    for case in corpus(&graph, &ring) {
        let natural = EngineOptions::default();
        let nat = time_route(&mut engine, &case.query, &natural);
        let mut forced_cells = Vec::new();
        let mut best_us = nat.median_us;
        for forced in EvalRoute::ALL {
            let opts = EngineOptions {
                forced_route: Some(forced),
                ..EngineOptions::default()
            };
            let cell = time_route(&mut engine, &case.query, &opts);
            assert_eq!(
                cell.pairs, nat.pairs,
                "{}: route {forced:?} changed the answer count",
                case.name
            );
            if cell.route == forced {
                best_us = best_us.min(cell.median_us);
            }
            forced_cells.push(format!(
                "{{\"forced\":\"{}\",\"executed\":\"{}\",\"median_us\":{:.1},\
                 \"estimated_cost\":{},\"actual_nodes\":{},\"actual_rank_ops\":{},\
                 \"misprediction_x1000\":{}}}",
                forced.name(),
                cell.route.name(),
                cell.median_us,
                cell.estimated_cost,
                cell.actual_nodes,
                cell.actual_rank_ops,
                cell.misprediction_x1000,
            ));
        }
        planner_total += nat.median_us;
        oracle_total += best_us;
        eprintln!(
            "  {:<24} planner={:<12} {:>9.1} us (best feasible {:>9.1} us, {} pairs, \
             est {} vs {} nodes, mispredict x{:.3})",
            case.name,
            nat.route.name(),
            nat.median_us,
            best_us,
            nat.pairs,
            nat.estimated_cost,
            nat.actual_nodes,
            nat.misprediction_x1000 as f64 / 1000.0,
        );
        rows.push(format!(
            "{{\"query\":\"{}\",\"planner_route\":\"{}\",\"planner_us\":{:.1},\
             \"best_feasible_us\":{best_us:.1},\"pairs\":{},\
             \"estimated_cost\":{},\"actual_nodes\":{},\"actual_rank_ops\":{},\
             \"misprediction_x1000\":{},\"forced\":[{}]}}",
            case.name,
            nat.route.name(),
            nat.median_us,
            nat.pairs,
            nat.estimated_cost,
            nat.actual_nodes,
            nat.actual_rank_ops,
            nat.misprediction_x1000,
            forced_cells.join(",")
        ));
    }
    // How close the planner is to always picking the winning route
    // (1.0 = optimal; the artifact tracks this across PRs).
    let efficiency = if planner_total > 0.0 {
        oracle_total / planner_total
    } else {
        1.0
    };
    let json = format!(
        "{{\"fixture\":{fixture:?},\"edges\":{},\"reps\":{REPS},\
         \"planner_total_us\":{planner_total:.1},\"best_feasible_total_us\":{oracle_total:.1},\
         \"route_choice_efficiency\":{efficiency:.4},\"queries\":[{}]}}",
        graph.len(),
        rows.join(",")
    );
    let out = std::env::var("RPQ_BENCH_OUT").unwrap_or_else(|_| "BENCH_planner.json".to_string());
    std::fs::write(&out, json.clone() + "\n").expect("writing the bench artifact");
    eprintln!("planner bench: route-choice efficiency {efficiency:.3} -> {out}");
    println!("{json}");
}
