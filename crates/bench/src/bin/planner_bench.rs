//! E8: planner-chosen vs. forced-route latencies on the bundled metro
//! fixture, written to `BENCH_planner.json`.
//!
//! For each query of a route-diverse corpus, the bench times the
//! planner's natural choice and then every forced [`EvalRoute`]
//! (fastpath / bitparallel / split / fallback; infeasible forcings fall
//! back naturally and are reported as such), asserting along the way
//! that all routes return the same answer count. The artifact answers
//! the question every cost-model change must face: *does the planner
//! pick the route that actually wins?*
//!
//! Inputs: `data/metro.nt` by default (`RPQ_BENCH_FIXTURE` overrides; a
//! missing fixture falls back to a small synthetic graph so the bench
//! runs anywhere). Output path honours `RPQ_BENCH_OUT`
//! (default `BENCH_planner.json`).

use automata::Regex;
use ring::ring::RingOptions;
use ring::{Graph, Ring};
use rpq_bench::median;
use rpq_core::{EngineOptions, EvalRoute, RpqEngine, RpqQuery, Term};
use std::time::Instant;

/// Timed repetitions per (query, route) cell.
const REPS: usize = 30;

struct Case {
    name: &'static str,
    query: RpqQuery,
}

fn star(l: u64) -> Regex {
    Regex::Star(Box::new(Regex::label(l)))
}

/// Loads the metro fixture, or synthesizes a stand-in with the same
/// label diversity when the file is absent.
fn load_graph() -> (String, Graph) {
    let path = std::env::var("RPQ_BENCH_FIXTURE").unwrap_or_else(|_| "data/metro.nt".to_string());
    match std::fs::read_to_string(&path) {
        Ok(text) => {
            let (graph, _nodes, _preds) =
                ring::ntriples::parse_ntriples(&text).expect("fixture parses");
            (path, graph)
        }
        Err(_) => {
            eprintln!("planner bench: {path} not found, using a synthetic stand-in");
            let mut triples = vec![ring::Triple::new(6, 1, 9)];
            for i in 0..14 {
                triples.push(ring::Triple::new(i, 0, (i + 1) % 16));
                triples.push(ring::Triple::new((i + 2) % 16, 2, (i + 5) % 16));
            }
            ("synthetic".to_string(), Graph::from_triples(triples))
        }
    }
}

/// A corpus covering every route and endpoint shape the metro graph
/// supports. Labels are picked by cardinality rank so the corpus stays
/// meaningful on any fixture: `rare` is the rarest predicate, `common`
/// the most frequent.
fn corpus(graph: &Graph, ring: &Ring) -> Vec<Case> {
    let mut by_card: Vec<(u64, usize)> = (0..graph.n_preds())
        .map(|p| (p, ring.pred_cardinality(p)))
        .collect();
    by_card.sort_by_key(|&(p, c)| (c, p));
    let rare = by_card.first().map_or(0, |&(p, _)| p);
    let common = by_card.last().map_or(0, |&(p, _)| p);
    let mid = by_card.get(by_card.len() / 2).map_or(0, |&(p, _)| p);
    let anchor = graph
        .triples()
        .iter()
        .find(|t| t.p == rare)
        .map_or(0, |t| t.s);

    let mut long_prefix = Regex::Opt(Box::new(Regex::label(common)));
    for _ in 1..70 {
        long_prefix = Regex::concat(long_prefix, Regex::Opt(Box::new(Regex::label(common))));
    }
    vec![
        Case {
            name: "single_label_vv",
            query: RpqQuery::new(Term::Var, Regex::label(common), Term::Var),
        },
        Case {
            name: "disjunction_vv",
            query: RpqQuery::new(
                Term::Var,
                Regex::alt(Regex::label(common), Regex::label(mid)),
                Term::Var,
            ),
        },
        Case {
            name: "concat2_vv",
            query: RpqQuery::new(
                Term::Var,
                Regex::concat(Regex::label(common), Regex::label(mid)),
                Term::Var,
            ),
        },
        Case {
            name: "closure_cv",
            query: RpqQuery::new(Term::Const(anchor), star(common), Term::Var),
        },
        Case {
            name: "rare_split_vv",
            query: RpqQuery::new(
                Term::Var,
                Regex::concat(Regex::concat(star(common), Regex::label(rare)), star(mid)),
                Term::Var,
            ),
        },
        Case {
            name: "oversized_fallback_vv",
            query: RpqQuery::new(
                Term::Var,
                Regex::concat(long_prefix, Regex::label(rare)),
                Term::Var,
            ),
        },
    ]
}

/// Median evaluation latency in microseconds under `opts`, plus the
/// route the planner actually executed and the answer count.
fn time_route(
    engine: &mut RpqEngine<'_>,
    query: &RpqQuery,
    opts: &EngineOptions,
) -> (f64, EvalRoute, usize) {
    let mut times = Vec::with_capacity(REPS);
    let mut route = EvalRoute::BitParallel;
    let mut pairs = 0usize;
    for _ in 0..REPS {
        let t = Instant::now();
        let out = engine
            .evaluate(query, opts)
            .expect("bench queries evaluate");
        times.push(t.elapsed().as_secs_f64() * 1e6);
        route = out.plan.as_ref().expect("engine outputs carry plans").route;
        pairs = out.pairs.len();
    }
    (median(&times), route, pairs)
}

fn main() {
    let (fixture, graph) = load_graph();
    let ring = Ring::build(&graph, RingOptions::default());
    eprintln!(
        "planner bench: {fixture} — {} edges, {} nodes, {} predicates",
        graph.len(),
        graph.n_nodes(),
        graph.n_preds()
    );
    let mut engine = RpqEngine::new(&ring);
    let mut rows = Vec::new();
    let mut planner_total = 0.0f64;
    let mut oracle_total = 0.0f64;
    for case in corpus(&graph, &ring) {
        let natural = EngineOptions::default();
        let (nat_us, nat_route, nat_pairs) = time_route(&mut engine, &case.query, &natural);
        let mut forced_cells = Vec::new();
        let mut best_us = nat_us;
        for forced in EvalRoute::ALL {
            let opts = EngineOptions {
                forced_route: Some(forced),
                ..EngineOptions::default()
            };
            let (us, executed, pairs) = time_route(&mut engine, &case.query, &opts);
            assert_eq!(
                pairs, nat_pairs,
                "{}: route {forced:?} changed the answer count",
                case.name
            );
            if executed == forced {
                best_us = best_us.min(us);
            }
            forced_cells.push(format!(
                "{{\"forced\":\"{}\",\"executed\":\"{}\",\"median_us\":{us:.1}}}",
                forced.name(),
                executed.name()
            ));
        }
        planner_total += nat_us;
        oracle_total += best_us;
        eprintln!(
            "  {:<24} planner={:<12} {:>9.1} us (best feasible {:>9.1} us, {} pairs)",
            case.name,
            nat_route.name(),
            nat_us,
            best_us,
            nat_pairs
        );
        rows.push(format!(
            "{{\"query\":\"{}\",\"planner_route\":\"{}\",\"planner_us\":{nat_us:.1},\
             \"best_feasible_us\":{best_us:.1},\"pairs\":{nat_pairs},\"forced\":[{}]}}",
            case.name,
            nat_route.name(),
            forced_cells.join(",")
        ));
    }
    // How close the planner is to always picking the winning route
    // (1.0 = optimal; the artifact tracks this across PRs).
    let efficiency = if planner_total > 0.0 {
        oracle_total / planner_total
    } else {
        1.0
    };
    let json = format!(
        "{{\"fixture\":{fixture:?},\"edges\":{},\"reps\":{REPS},\
         \"planner_total_us\":{planner_total:.1},\"best_feasible_total_us\":{oracle_total:.1},\
         \"route_choice_efficiency\":{efficiency:.4},\"queries\":[{}]}}",
        graph.len(),
        rows.join(",")
    );
    let out = std::env::var("RPQ_BENCH_OUT").unwrap_or_else(|_| "BENCH_planner.json".to_string());
    std::fs::write(&out, json.clone() + "\n").expect("writing the bench artifact");
    eprintln!("planner bench: route-choice efficiency {efficiency:.3} -> {out}");
    println!("{json}");
}
