//! E5 — Theorem 4.1, measured: the ring engine's cost is
//! `O(2^m + m log|P| + |G'_E| log|G|)`. We run the log with
//! instrumentation on, then regress wall-clock time against the theorem's
//! cost term `(product nodes + product edges) · log|G|` and report the
//! fit, plus the wavelet-node count (the constant the log factor hides).

use rpq_bench::{build_ring, BenchConfig};
use rpq_core::{EngineOptions, RpqEngine};
use std::time::Instant;

fn main() {
    let cfg = BenchConfig::from_env();
    eprintln!("config: {cfg:?}");
    let graph = cfg.graph();
    let ring = build_ring(&graph);
    let log = cfg.log(&graph);
    let mut engine = RpqEngine::new(&ring);
    // Fast paths off: the theorem is about the general traversal.
    let opts = EngineOptions {
        fast_paths: false,
        limit: cfg.limit,
        timeout: Some(cfg.timeout),
        ..EngineOptions::default()
    };

    let log2_g = (ring.n_triples().max(2) as f64).log2();
    let mut rows: Vec<(f64, f64, f64)> = Vec::new(); // (cost term, wavelet nodes, seconds)
    for gq in &log {
        let start = Instant::now();
        let Ok(out) = engine.evaluate(&gq.query, &opts) else {
            continue;
        };
        let secs = start.elapsed().as_secs_f64();
        if out.timed_out {
            continue;
        }
        let work = (out.stats.product_nodes + out.stats.product_edges) as f64;
        rows.push((work * log2_g, out.stats.wavelet_nodes as f64, secs));
    }

    println!(
        "Theorem 4.1 validation over {} completed queries",
        rows.len()
    );
    println!("cost term x = (product_nodes + product_edges) * log2(|G|)\n");

    // Bucket by decade of the cost term: time per unit cost must stay flat
    // if the bound is tight (up to constants).
    println!(
        "{:>14} {:>8} {:>14} {:>16} {:>18}",
        "cost bucket", "queries", "avg time (s)", "ns per unit", "wavelet/unit"
    );
    let mut bucket_lo = 1.0;
    while bucket_lo < 1e12 {
        let bucket_hi = bucket_lo * 100.0;
        let in_bucket: Vec<&(f64, f64, f64)> = rows
            .iter()
            .filter(|r| r.0 >= bucket_lo && r.0 < bucket_hi)
            .collect();
        if !in_bucket.is_empty() {
            let avg_t: f64 = in_bucket.iter().map(|r| r.2).sum::<f64>() / in_bucket.len() as f64;
            let per_unit: f64 = in_bucket
                .iter()
                .map(|r| r.2 / r.0.max(1.0) * 1e9)
                .sum::<f64>()
                / in_bucket.len() as f64;
            let wave_per_unit: f64 = in_bucket
                .iter()
                .map(|r| r.1 / r.0.max(1.0) * log2_g)
                .sum::<f64>()
                / in_bucket.len() as f64;
            println!(
                "{:>7.0e}-{:<6.0e} {:>8} {:>14.6} {:>16.2} {:>18.3}",
                bucket_lo,
                bucket_hi,
                in_bucket.len(),
                avg_t,
                per_unit,
                wave_per_unit
            );
        }
        bucket_lo = bucket_hi;
    }

    // Least-squares slope through the origin and correlation.
    let sx2: f64 = rows.iter().map(|r| r.0 * r.0).sum();
    let sxy: f64 = rows.iter().map(|r| r.0 * r.2).sum();
    let slope = sxy / sx2.max(1.0);
    let mean_x = rows.iter().map(|r| r.0).sum::<f64>() / rows.len().max(1) as f64;
    let mean_y = rows.iter().map(|r| r.2).sum::<f64>() / rows.len().max(1) as f64;
    let cov: f64 = rows.iter().map(|r| (r.0 - mean_x) * (r.2 - mean_y)).sum();
    let vx: f64 = rows.iter().map(|r| (r.0 - mean_x).powi(2)).sum();
    let vy: f64 = rows.iter().map(|r| (r.2 - mean_y).powi(2)).sum();
    let r = cov / (vx.sqrt() * vy.sqrt()).max(f64::MIN_POSITIVE);
    println!(
        "\nzero-intercept slope: {:.3} ns per cost unit",
        slope * 1e9
    );
    println!("Pearson r(time, cost term) = {r:.3} (the bound predicts a strong linear fit)");
}
