//! E1 — Table 1: the 20 most popular RPQ patterns in the query log.
//!
//! Generates the benchmark log and prints the per-pattern counts next to
//! the paper's, verifying that the workload reproduces the published mix
//! and that every generated query classifies back to its pattern.

use rpq_bench::BenchConfig;
use workload::patterns::{classify, TABLE1_PATTERNS};

fn main() {
    let cfg = BenchConfig::from_env();
    let graph = cfg.graph();
    let log = BenchConfig {
        log_scale: 1.0,
        ..cfg
    }
    .log(&graph);

    let mut counts: Vec<(&str, usize)> = TABLE1_PATTERNS.iter().map(|&(p, _)| (p, 0)).collect();
    let mut misclassified = 0usize;
    for gq in &log {
        if classify(&gq.query, graph.n_preds()) != gq.pattern {
            misclassified += 1;
        }
        if let Some(e) = counts.iter_mut().find(|(p, _)| *p == gq.pattern) {
            e.1 += 1;
        }
    }

    println!("Table 1 — the 20 most popular RPQ patterns (paper vs generated log)");
    println!("{:<16} {:>8} {:>10}", "pattern", "paper", "generated");
    for (i, &(pattern, paper_count)) in TABLE1_PATTERNS.iter().enumerate() {
        println!("{:<16} {:>8} {:>10}", pattern, paper_count, counts[i].1);
    }
    println!(
        "total {} queries; {} misclassified (must be 0)",
        log.len(),
        misclassified
    );
    assert_eq!(misclassified, 0);
    assert_eq!(log.len(), 1661);
}
