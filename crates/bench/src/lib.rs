//! Shared harness for regenerating the paper's tables and figures.
//!
//! Every binary in `src/bin/` corresponds to one experiment of DESIGN.md's
//! index (E1–E6); this library holds the common pieces: the benchmark
//! configuration (env-var overridable), engine construction, log
//! execution, and the summary statistics the paper reports.

use baselines::{
    AdjacencyIndex, BitParallelAdjEngine, NfaBfsEngine, PathEngine, RingEngine, SemiNaiveEngine,
};
use ring::ring::RingOptions;
use ring::{Graph, Ring};
use rpq_core::EngineOptions;
use std::sync::Arc;
use std::time::{Duration, Instant};
use workload::{GeneratedQuery, GraphGen, GraphGenConfig, QueryGen};

/// Benchmark configuration. Every field can be overridden with an
/// `RPQ_BENCH_*` environment variable (e.g. `RPQ_BENCH_EDGES=4000000`).
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Node universe of the synthetic graph.
    pub n_nodes: u64,
    /// Base predicate alphabet.
    pub n_preds: u64,
    /// Edge samples.
    pub n_edges: usize,
    /// Graph and log seed.
    pub seed: u64,
    /// Fraction of the Table 1 per-pattern counts to instantiate.
    pub log_scale: f64,
    /// Per-query timeout (the paper uses 60 s at Wikidata scale).
    pub timeout: Duration,
    /// Result limit (the paper uses 10^6).
    pub limit: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            n_nodes: 1 << 17,
            n_preds: 128,
            n_edges: 1 << 20,
            seed: 42,
            log_scale: 0.1,
            timeout: Duration::from_secs(2),
            limit: 100_000,
        }
    }
}

impl BenchConfig {
    /// Reads overrides from the environment.
    pub fn from_env() -> Self {
        let mut c = Self::default();
        let get = |k: &str| std::env::var(k).ok();
        if let Some(v) = get("RPQ_BENCH_NODES").and_then(|v| v.parse().ok()) {
            c.n_nodes = v;
        }
        if let Some(v) = get("RPQ_BENCH_PREDS").and_then(|v| v.parse().ok()) {
            c.n_preds = v;
        }
        if let Some(v) = get("RPQ_BENCH_EDGES").and_then(|v| v.parse().ok()) {
            c.n_edges = v;
        }
        if let Some(v) = get("RPQ_BENCH_SEED").and_then(|v| v.parse().ok()) {
            c.seed = v;
        }
        if let Some(v) = get("RPQ_BENCH_LOG_SCALE").and_then(|v| v.parse().ok()) {
            c.log_scale = v;
        }
        if let Some(v) = get("RPQ_BENCH_TIMEOUT_MS").and_then(|v| v.parse::<u64>().ok()) {
            c.timeout = Duration::from_millis(v);
        }
        if let Some(v) = get("RPQ_BENCH_LIMIT").and_then(|v| v.parse().ok()) {
            c.limit = v;
        }
        c
    }

    /// The synthetic graph for this configuration.
    pub fn graph(&self) -> Graph {
        GraphGen::new(GraphGenConfig {
            n_nodes: self.n_nodes,
            n_preds: self.n_preds,
            n_edges: self.n_edges,
            seed: self.seed,
            ..Default::default()
        })
        .generate()
    }

    /// The Table 1 query log for `graph`.
    pub fn log(&self, graph: &Graph) -> Vec<GeneratedQuery> {
        QueryGen::new(graph, self.seed ^ 0x5eed).scaled_log(self.log_scale)
    }

    /// Engine options used for every measured query.
    pub fn engine_options(&self) -> EngineOptions {
        EngineOptions {
            limit: self.limit,
            timeout: Some(self.timeout),
            ..EngineOptions::default()
        }
    }
}

/// One measured query execution.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Engine name.
    pub engine: &'static str,
    /// Table 1 pattern.
    pub pattern: &'static str,
    /// Wall-clock seconds.
    pub seconds: f64,
    /// Result pairs returned.
    pub n_results: usize,
    /// Whether the timeout was hit.
    pub timed_out: bool,
    /// Whether the query has exactly one constant endpoint.
    pub c_to_v: bool,
}

/// The four systems of Table 2, in paper order: the ring first, then the
/// stand-ins for Jena / Virtuoso / Blazegraph.
pub struct EngineSet<'r> {
    /// `(engine, index bytes)` pairs.
    pub engines: Vec<(Box<dyn PathEngine + 'r>, usize)>,
}

impl<'r> EngineSet<'r> {
    /// Builds all four engines over prebuilt indexes.
    pub fn new(ring: &'r Ring, adj: &Arc<AdjacencyIndex>) -> Self {
        let engines: Vec<(Box<dyn PathEngine + 'r>, usize)> = vec![
            {
                let e = RingEngine::new(ring);
                let b = e.index_bytes();
                (Box::new(e) as Box<dyn PathEngine>, b)
            },
            {
                let e = NfaBfsEngine::new(Arc::clone(adj));
                let b = e.index_bytes();
                (Box::new(e) as Box<dyn PathEngine>, b)
            },
            {
                let e = SemiNaiveEngine::new(Arc::clone(adj));
                let b = e.index_bytes();
                (Box::new(e) as Box<dyn PathEngine>, b)
            },
            {
                let e = BitParallelAdjEngine::new(Arc::clone(adj));
                let b = e.index_bytes();
                (Box::new(e) as Box<dyn PathEngine>, b)
            },
        ];
        Self { engines }
    }
}

/// Builds the ring index (with inverses, succinct node boundaries).
pub fn build_ring(graph: &Graph) -> Ring {
    Ring::build(graph, RingOptions::default())
}

/// Runs the whole log through every engine, measuring wall-clock time.
pub fn run_log(
    engines: &mut EngineSet,
    log: &[GeneratedQuery],
    opts: &EngineOptions,
) -> Vec<Measurement> {
    let mut out = Vec::new();
    for (engine, _) in engines.engines.iter_mut() {
        for gq in log {
            let start = Instant::now();
            let result = engine.run(&gq.query, opts);
            let seconds = start.elapsed().as_secs_f64();
            let (n_results, timed_out) = match result {
                Ok(r) => (r.pairs.len(), r.timed_out),
                Err(_) => (0, false),
            };
            out.push(Measurement {
                engine: engine.name(),
                pattern: gq.pattern,
                seconds,
                n_results,
                timed_out,
                c_to_v: workload::patterns::is_c_to_v(gq.pattern),
            });
        }
    }
    out
}

/// Mean of a sample (0 for empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Quantile by linear interpolation on the sorted sample.
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

/// Median convenience.
pub fn median(xs: &[f64]) -> f64 {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    quantile(&s, 0.5)
}

/// Five-number summary `(min, q1, median, q3, max)` — one Fig. 8 box.
pub fn five_number(xs: &[f64]) -> (f64, f64, f64, f64, f64) {
    let mut s = xs.to_vec();
    s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (
        quantile(&s, 0.0),
        quantile(&s, 0.25),
        quantile(&s, 0.5),
        quantile(&s, 0.75),
        quantile(&s, 1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_helpers() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(mean(&xs), 2.5);
        assert_eq!(median(&xs), 2.5);
        let (mn, q1, md, q3, mx) = five_number(&xs);
        assert_eq!((mn, mx), (1.0, 4.0));
        assert!(q1 <= md && md <= q3);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(median(&[1.0]), 1.0);
    }

    #[test]
    fn tiny_end_to_end() {
        let cfg = BenchConfig {
            n_nodes: 200,
            n_preds: 8,
            n_edges: 1500,
            log_scale: 0.005,
            timeout: Duration::from_millis(500),
            limit: 10_000,
            seed: 1,
        };
        let graph = cfg.graph();
        let ring = build_ring(&graph);
        let adj = Arc::new(AdjacencyIndex::from_graph(&graph));
        let mut engines = EngineSet::new(&ring, &adj);
        let log = cfg.log(&graph);
        assert!(log.len() >= 20); // at least one query per pattern
        let ms = run_log(&mut engines, &log, &cfg.engine_options());
        assert_eq!(ms.len(), 4 * log.len());
        // All four engines agree on result counts per query.
        for (i, gq) in log.iter().enumerate() {
            let counts: Vec<usize> = (0..4).map(|e| ms[e * log.len() + i].n_results).collect();
            assert!(
                counts.windows(2).all(|w| w[0] == w[1]),
                "engines disagree on {:?}: {counts:?}",
                gq.pattern
            );
        }
    }
}
