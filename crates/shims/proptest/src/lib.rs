//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of proptest it actually uses: the [`proptest!`] macro,
//! [`Strategy`] with `prop_map`/`prop_recursive`, range/tuple/`Just`
//! strategies, [`prop::collection`]'s `vec` and `btree_set`, string
//! strategies from regex literals, weighted [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its *seed*; re-running is
//!   fully deterministic, so the failure reproduces exactly.
//! * **Seed persistence** is kept: failures append `cc <seed>` lines to
//!   `proptest-regressions/<file>.txt`, and those seeds are replayed
//!   first on every subsequent run (same convention as upstream).
//! * Case counts honour `ProptestConfig::with_cases`, overridable with
//!   the `PROPTEST_CASES` environment variable.

pub mod runner;
pub mod strategy;
pub mod string;

pub use strategy::{any, BoxedStrategy, Just, Strategy};

/// Per-test configuration accepted by `#![proptest_config(..)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run (after replaying persisted seeds).
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Failure raised by a test case body (via the `prop_assert*` macros).
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The generated input was rejected (not counted as failure).
    Reject(String),
}

impl TestCaseError {
    /// A property violation with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// An input rejection with the given message.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Namespace mirror of proptest's `prop::` module tree.
pub mod prop {
    pub use crate::collection;
}

/// Collection strategies (`prop::collection::{vec, btree_set}`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy};

    /// Strategy for `Vec<T>` with a length drawn from `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            sizes: sizes.into(),
        }
    }

    /// Strategy producing `Vec<S::Value>`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        sizes: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut crate::runner::TestRng) -> Self::Value {
            let n = self.sizes.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<T>` with a target size drawn from `sizes`.
    ///
    /// Small element domains may not admit the target size; after a
    /// bounded number of attempts the set is returned as-is (matching
    /// upstream's behaviour of treating the size as a goal, not a law).
    pub fn btree_set<S>(element: S, sizes: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            sizes: sizes.into(),
        }
    }

    /// Strategy producing `BTreeSet<S::Value>`.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        sizes: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;

        fn generate(&self, rng: &mut crate::runner::TestRng) -> Self::Value {
            let target = self.sizes.pick(rng);
            let mut set = std::collections::BTreeSet::new();
            let mut attempts = 0usize;
            while set.len() < target && attempts < 10 * (target + 1) {
                set.insert(self.element.generate(rng));
                attempts += 1;
            }
            set
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a `proptest!` body, printing both sides.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

/// Picks among strategies, optionally weighted (`w => strat`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(arg in strategy, ..)
/// { body }` runs the body over generated inputs. Attributes are passed
/// through verbatim (including `#[test]` itself, which the caller
/// writes, so `#[ignore]`, `#[cfg(..)]` etc. keep working).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::runner::run(
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    stringify!($name),
                    &config,
                    |__rng| {
                        $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                        let __case = move || -> ::core::result::Result<(), $crate::TestCaseError> {
                            $body
                            #[allow(unreachable_code)]
                            ::core::result::Result::Ok(())
                        };
                        __case()
                    },
                );
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($rest)*
        }
    };
}

/// Everything a proptest file needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, TestCaseError};
}
