//! The case runner: deterministic seeds, regression-seed replay, and
//! failure persistence.
//!
//! Every case is driven by a single `u64` seed. The seed sequence for a
//! test is a pure function of its file and name (override the base with
//! `PROPTEST_SEED`), so runs are reproducible across machines. Failures
//! append a `cc <seed>` line to `proptest-regressions/<file>.txt` under
//! the crate root — the same convention as upstream proptest — and those
//! seeds are replayed before fresh cases on every run.

use crate::{ProptestConfig, TestCaseError};
use std::io::Write as _;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// The RNG handed to strategies.
pub type TestRng = rand::rngs::StdRng;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string());
    Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

fn load_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let mut seeds = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("cc ") {
            if let Ok(seed) = rest.split_whitespace().next().unwrap_or("").parse::<u64>() {
                seeds.push(seed);
            }
        }
    }
    seeds
}

fn persist_failure(path: &Path, test_name: &str, seed: u64, message: &str) {
    if std::env::var_os("PROPTEST_NO_PERSIST").is_some() {
        return;
    }
    if load_seeds(path).contains(&seed) {
        return;
    }
    let _ = std::fs::create_dir_all(path.parent().expect("regression path has a parent"));
    let fresh = !path.exists();
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    if fresh {
        let _ = writeln!(
            f,
            "# Seeds for failure cases found by the vendored proptest runner.\n\
             # Each `cc <seed>` line is replayed before fresh cases on every run.\n\
             # This file is intended to be checked in."
        );
    }
    let first_line = message.lines().next().unwrap_or("");
    let _ = writeln!(f, "# {test_name}: {first_line}");
    let _ = writeln!(f, "cc {seed}");
}

/// Runs `case` over persisted regression seeds, then `config.cases`
/// fresh deterministic seeds. Panics (like `assert!`) on the first
/// failing case, after persisting its seed.
pub fn run<F>(
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
    config: &ProptestConfig,
    mut case: F,
) where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let reg_path = regression_path(manifest_dir, source_file);
    let base = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s.parse::<u64>().unwrap_or_else(|_| fnv1a(s.as_bytes())),
        Err(_) => mix(fnv1a(source_file.as_bytes()), fnv1a(test_name.as_bytes())),
    };
    let cases = match std::env::var("PROPTEST_CASES") {
        Ok(s) => s.parse::<u32>().ok().unwrap_or(config.cases),
        Err(_) => config.cases,
    };

    let replay = load_seeds(&reg_path);
    let fresh = (0..cases).map(|i| mix(base, i as u64));

    for (kind, seed) in replay
        .into_iter()
        .map(|s| ("regression", s))
        .chain(fresh.map(|s| ("fresh", s)))
    {
        let mut rng = <TestRng as rand::SeedableRng>::seed_from_u64(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(TestCaseError::Reject(_))) => {}
            Ok(Err(TestCaseError::Fail(msg))) => {
                persist_failure(&reg_path, test_name, seed, &msg);
                panic!(
                    "proptest case failed: {test_name} ({kind} seed {seed})\n{msg}\n\
                     re-run deterministically with PROPTEST_SEED; seed persisted to {}",
                    reg_path.display()
                );
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "<non-string panic>".to_string());
                persist_failure(&reg_path, test_name, seed, &format!("panic: {msg}"));
                eprintln!(
                    "proptest case panicked: {test_name} ({kind} seed {seed}); \
                     seed persisted to {}",
                    reg_path.display()
                );
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic() {
        let a = mix(fnv1a(b"file.rs"), fnv1a(b"test_a"));
        let b = mix(fnv1a(b"file.rs"), fnv1a(b"test_a"));
        assert_eq!(a, b);
        assert_ne!(a, mix(fnv1a(b"file.rs"), fnv1a(b"test_b")));
    }

    #[test]
    fn regression_file_roundtrip() {
        let dir = std::env::temp_dir().join("proptest_shim_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("case.txt");
        persist_failure(&path, "t", 42, "boom\nsecond line");
        persist_failure(&path, "t", 43, "boom");
        persist_failure(&path, "t", 42, "duplicate is not re-added");
        assert_eq!(load_seeds(&path), vec![42, 43]);
    }

    #[test]
    fn failing_case_persists_its_seed_and_replays_first() {
        let dir = std::env::temp_dir().join("proptest_shim_e2e");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let manifest = dir.to_str().unwrap();

        // First run: the property fails on every case; run() must panic
        // and persist the failing seed.
        let failed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(
                manifest,
                "e2e.rs",
                "always_fails",
                &ProptestConfig::with_cases(5),
                |_rng| Err(TestCaseError::fail("intentional")),
            );
        }));
        assert!(failed.is_err(), "failing property must panic the test");
        let reg = regression_path(manifest, "e2e.rs");
        let seeds = load_seeds(&reg);
        assert_eq!(
            seeds.len(),
            1,
            "exactly the first failing seed is persisted"
        );

        // Second run: the persisted seed must be replayed before any
        // fresh case (we observe the replayed seed's RNG stream).
        let mut first_draw = None;
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run(
                manifest,
                "e2e.rs",
                "always_fails",
                &ProptestConfig::with_cases(5),
                |rng| {
                    if first_draw.is_none() {
                        first_draw = Some(rand::RngExt::random::<u64>(rng));
                    }
                    Err(TestCaseError::fail("intentional"))
                },
            );
        }));
        let mut expected_rng = <TestRng as rand::SeedableRng>::seed_from_u64(seeds[0]);
        assert_eq!(
            first_draw,
            Some(rand::RngExt::random::<u64>(&mut expected_rng))
        );
    }

    #[test]
    fn runner_passes_and_counts() {
        let mut n = 0u32;
        run(
            env!("CARGO_MANIFEST_DIR"),
            "runner_selftest_pass.rs",
            "counts",
            &ProptestConfig::with_cases(17),
            |_rng| {
                n += 1;
                Ok(())
            },
        );
        // No regression file exists for this synthetic source file, so
        // exactly the fresh cases run (unless PROPTEST_CASES overrides).
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(n, 17);
        }
    }
}
