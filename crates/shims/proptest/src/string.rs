//! Generation of strings matching a (small) regex pattern, backing the
//! `"[a-z]{1,8}" `-style strategies in proptest files.
//!
//! Supported syntax — the subset the workspace's patterns use, plus a
//! little slack: literals, `\x` escapes, `\PC` (any printable char),
//! `.`, `[...]` classes with ranges, `(...)` groups, alternation `|`,
//! and the postfix operators `*`, `+`, `?`, `{m}`, `{m,n}`.
//! Unbounded repetitions are capped at 8.

use crate::runner::TestRng;
use rand::RngExt;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// `\PC`: any printable character (mostly ASCII, some multibyte).
    Printable,
    /// `.`: any printable char except newline.
    Dot,
    Class(Vec<(char, char)>),
    Group(Box<Node>),
    Concat(Vec<Node>),
    Alt(Vec<Node>),
    Repeat(Box<Node>, u32, u32),
}

/// Generates one string matching `pattern`; panics on syntax this subset
/// does not support (a test-authoring error, not a runtime condition).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pos = 0usize;
    let node = parse_alt(&chars, &mut pos);
    assert!(
        pos == chars.len(),
        "unsupported regex pattern {pattern:?} (stopped at char {pos})"
    );
    let mut out = String::new();
    emit(&node, rng, &mut out);
    out
}

fn parse_alt(chars: &[char], pos: &mut usize) -> Node {
    let mut arms = vec![parse_concat(chars, pos)];
    while *pos < chars.len() && chars[*pos] == '|' {
        *pos += 1;
        arms.push(parse_concat(chars, pos));
    }
    if arms.len() == 1 {
        arms.pop().unwrap()
    } else {
        Node::Alt(arms)
    }
}

fn parse_concat(chars: &[char], pos: &mut usize) -> Node {
    let mut parts = Vec::new();
    while *pos < chars.len() && chars[*pos] != '|' && chars[*pos] != ')' {
        parts.push(parse_repeat(chars, pos));
    }
    if parts.len() == 1 {
        parts.pop().unwrap()
    } else {
        Node::Concat(parts)
    }
}

fn parse_repeat(chars: &[char], pos: &mut usize) -> Node {
    let atom = parse_atom(chars, pos);
    if *pos >= chars.len() {
        return atom;
    }
    match chars[*pos] {
        '*' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
        }
        '+' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
        }
        '?' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 1)
        }
        '{' => {
            *pos += 1;
            let lo = parse_number(chars, pos);
            let hi = if chars[*pos] == ',' {
                *pos += 1;
                parse_number(chars, pos)
            } else {
                lo
            };
            assert!(chars[*pos] == '}', "malformed {{m,n}} repetition");
            *pos += 1;
            Node::Repeat(Box::new(atom), lo, hi)
        }
        _ => atom,
    }
}

fn parse_number(chars: &[char], pos: &mut usize) -> u32 {
    let start = *pos;
    while *pos < chars.len() && chars[*pos].is_ascii_digit() {
        *pos += 1;
    }
    chars[start..*pos]
        .iter()
        .collect::<String>()
        .parse()
        .expect("number in {m,n}")
}

fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
    match chars[*pos] {
        '(' => {
            *pos += 1;
            let inner = parse_alt(chars, pos);
            assert!(*pos < chars.len() && chars[*pos] == ')', "unclosed group");
            *pos += 1;
            Node::Group(Box::new(inner))
        }
        '[' => {
            *pos += 1;
            let mut ranges = Vec::new();
            while chars[*pos] != ']' {
                let mut c = chars[*pos];
                if c == '\\' {
                    *pos += 1;
                    c = chars[*pos];
                }
                *pos += 1;
                if chars[*pos] == '-' && chars[*pos + 1] != ']' {
                    *pos += 1;
                    let mut hi = chars[*pos];
                    if hi == '\\' {
                        *pos += 1;
                        hi = chars[*pos];
                    }
                    *pos += 1;
                    ranges.push((c, hi));
                } else {
                    ranges.push((c, c));
                }
            }
            *pos += 1;
            Node::Class(ranges)
        }
        '\\' => {
            *pos += 1;
            let c = chars[*pos];
            *pos += 1;
            match c {
                'P' | 'p' => {
                    // Unicode category escape; the workspace only uses
                    // \PC ("not a control char") — treat every category
                    // spelling as "printable".
                    if *pos < chars.len() && chars[*pos] == '{' {
                        while chars[*pos] != '}' {
                            *pos += 1;
                        }
                        *pos += 1;
                    } else {
                        *pos += 1; // single-letter category, e.g. \PC
                    }
                    Node::Printable
                }
                'n' => Node::Literal('\n'),
                't' => Node::Literal('\t'),
                'r' => Node::Literal('\r'),
                other => Node::Literal(other),
            }
        }
        '.' => {
            *pos += 1;
            Node::Dot
        }
        c => {
            *pos += 1;
            Node::Literal(c)
        }
    }
}

/// A spread of printable characters: dense ASCII plus a few multibyte
/// code points so byte-offset bugs surface.
const EXOTIC: &[char] = &['é', 'λ', '中', '🦀', 'ß', '±', '€'];

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Printable => {
            if rng.random_range(0..8u64) == 0 {
                out.push(EXOTIC[rng.random_range(0..EXOTIC.len())]);
            } else {
                out.push((0x20 + rng.random_range(0..0x5f_u64) as u8) as char);
            }
        }
        Node::Dot => {
            let c = (0x20 + rng.random_range(0..0x5f_u64) as u8) as char;
            out.push(c);
        }
        Node::Class(ranges) => {
            let total: u64 = ranges
                .iter()
                .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                .sum();
            let mut pick = rng.random_range(0..total);
            for (lo, hi) in ranges {
                let span = (*hi as u64) - (*lo as u64) + 1;
                if pick < span {
                    out.push(char::from_u32(*lo as u32 + pick as u32).expect("class range"));
                    return;
                }
                pick -= span;
            }
        }
        Node::Group(inner) => emit(inner, rng, out),
        Node::Concat(parts) => {
            for p in parts {
                emit(p, rng, out);
            }
        }
        Node::Alt(arms) => {
            let i = rng.random_range(0..arms.len());
            emit(&arms[i], rng, out);
        }
        Node::Repeat(inner, lo, hi) => {
            let n = if lo == hi {
                *lo
            } else {
                rng.random_range(*lo..hi + 1)
            };
            for _ in 0..n {
                emit(inner, rng, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn gen100(pattern: &str) -> Vec<String> {
        let mut rng = StdRng::seed_from_u64(99);
        (0..100)
            .map(|_| generate_matching(pattern, &mut rng))
            .collect()
    }

    #[test]
    fn class_repetition() {
        for s in gen100("[a-z]{1,8}") {
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn printable_soup() {
        for s in gen100("\\PC{0,40}") {
            assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn operator_class_includes_specials() {
        let all: String = gen100("[0-9/|*+?(){}!^<>, ]{0,30}").concat();
        assert!(all.contains('|') || all.contains('*') || all.contains('('));
    }

    #[test]
    fn grouped_alternation() {
        for s in gen100("[0-9]{1,2}(/[0-9]{1,2}|\\|[0-9]{1,2}|\\*|\\+|\\?){0,6}") {
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_ascii_digit(), "{s:?}");
        }
    }
}
