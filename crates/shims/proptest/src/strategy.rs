//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is just a cloneable generator: `generate(rng) -> Value`.
//! There is no shrink tree — reproduction is by seed (see
//! [`crate::runner`]).

use crate::runner::TestRng;
use rand::RngExt;
use std::rc::Rc;

/// A generator of random values of one type.
pub trait Strategy: Clone {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> T + Clone,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` is the leaf case and `f`
    /// wraps an inner strategy into a deeper one. `depth` bounds the
    /// recursion; the other two parameters (upstream's desired size and
    /// expected branch factor) are accepted for signature compatibility.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            // Mix the leaf back in so every depth keeps a path to the
            // base case (and generated sizes stay bounded).
            let deeper = f(current).boxed();
            current = union(vec![(1, self.clone().boxed()), (2, deeper)]).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheap to clone; needed by
    /// [`crate::prop_oneof!`] and recursion).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy {
            gen: Rc::new(move |rng| s.generate(rng)),
        }
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<T> {
    gen: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            gen: Rc::clone(&self.gen),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always generates a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among same-valued strategies.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

/// Builds a [`Union`] from `(weight, strategy)` arms.
pub fn union<T>(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    let total = arms.iter().map(|(w, _)| *w as u64).sum();
    assert!(total > 0, "prop_oneof! weights must not all be zero");
    Union { arms, total }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.random_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum covered above")
    }
}

/// Marker for types with a canonical `any::<T>()` strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for u8 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random::<u64>() as u8
    }
}

impl Arbitrary for u16 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random::<u64>() as u16
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random::<u64>() as u32
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random::<u64>() as usize
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

/// The canonical strategy for `T` (`any::<bool>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(std::marker::PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---- Ranges as strategies ------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + rng.random_range(0..span) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    if lo == 0 && hi == <$t>::MAX {
                        return rng.random::<u64>() as $t;
                    }
                    lo + rng.random_range(0..(hi - lo + 1) as u64) as $t
                }
            }
        )+
    };
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64 + rng.random_range(0..span) as i64) as $t
                }
            }
        )+
    };
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.random::<f64>() * (self.end - self.start)
    }
}

// ---- Tuples of strategies ------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---- String strategies from regex literals -------------------------------

impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

// ---- Collection size specification ---------------------------------------

/// Inclusive-lower, exclusive-upper size bound for collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    pub(crate) fn pick(&self, rng: &mut TestRng) -> usize {
        if self.lo + 1 >= self.hi {
            return self.lo;
        }
        rng.random_range(self.lo..self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}
