//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the slice of criterion's API that the `rpq_bench` benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`], [`black_box`], and
//! the [`criterion_group!`]/[`criterion_main!`] macros (both the simple
//! and the `name = …; config = …; targets = …` forms).
//!
//! Measurement is honest but simple: each benchmark warms up for
//! `warm_up_time`, then collects `sample_size` samples (each sample runs
//! the closure enough times to fill `measurement_time / sample_size`) and
//! reports min / median / mean per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver: holds the sampling configuration.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up duration before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for the sampling phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark and prints its per-iteration timings.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: repeatedly run the routine until the budget is spent.
        let warm_until = Instant::now() + self.warm_up_time;
        let mut iters_per_pass = 1u64;
        while Instant::now() < warm_until {
            let mut b = Bencher {
                iters: iters_per_pass,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            // Grow the batch until one pass takes ≥ ~1 ms, so that timer
            // overhead is amortized for fast routines.
            if b.elapsed < Duration::from_millis(1) && iters_per_pass < (1 << 20) {
                iters_per_pass *= 2;
            }
        }

        let per_sample = self.measurement_time / self.sample_size as u32;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let sample_until = Instant::now() + per_sample;
            let mut iters = 0u64;
            let mut spent = Duration::ZERO;
            while Instant::now() < sample_until {
                let mut b = Bencher {
                    iters: iters_per_pass,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                iters += b.iters;
                spent += b.elapsed;
            }
            if iters > 0 {
                samples.push(spent.as_nanos() as f64 / iters as f64);
            }
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let (min, median, mean) = if samples.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            (
                samples[0],
                samples[samples.len() / 2],
                samples.iter().sum::<f64>() / samples.len() as f64,
            )
        };
        println!(
            "{id:<48} min {:>12} median {:>12} mean {:>12}  ({} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            samples.len()
        );
        self
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Timing handle passed to the benchmarked closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it a driver-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Declares a benchmark group: a named function running its targets.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main()` for a bench binary: runs each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut ran = false;
        c.bench_function("smoke", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        assert!(ran);
    }
}
