//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors
//! the tiny slice of the `rand` API it actually uses: a seedable RNG
//! ([`rngs::StdRng`]), uniform sampling ([`RngExt`]), and Fisher–Yates
//! shuffling ([`seq::SliceRandom`]). The generator is xoshiro256**
//! seeded through splitmix64 — statistically solid for workload
//! generation, deterministic per seed, and dependency-free.

/// Core RNG interface: a stream of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniformly random 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// RNGs that can be constructed from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (splitmix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an [`RngCore`].
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform sampler over a half-open range.
pub trait UniformSampled: Sized {
    /// Draws uniformly from `[lo, hi)`. Panics if the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling to kill modulo bias.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

impl UniformSampled for u64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in random_range");
        lo + uniform_u64(rng, hi - lo)
    }
}

impl UniformSampled for usize {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in random_range");
        lo + uniform_u64(rng, (hi - lo) as u64) as usize
    }
}

impl UniformSampled for u32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in random_range");
        lo + uniform_u64(rng, (hi - lo) as u64) as u32
    }
}

impl UniformSampled for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in random_range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait RngExt: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from the half-open `range`.
    fn random_range<T: UniformSampled>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** (Blackman/Vigna).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, RngExt};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.random()).collect()
        };
        let b: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(7);
            (0..8).map(|_| r.random()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(8);
            (0..8).map(|_| r.random()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = r.random_range(0..5);
            assert!(y < 5);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }
}
