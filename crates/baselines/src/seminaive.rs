//! The Virtuoso-style baseline: set-at-a-time semi-naive fix-point over
//! the automaton-annotated reachability relation — the
//! "transitive closure operator implemented over its relational database
//! engine" family of §5, and the recursive-SQL translations of §2
//! (Dey et al., Yakovets et al.).
//!
//! The relation is `R(x, q, v)`: "from start node `x`, reading some path
//! to `v`, the NFA can be in state `q`". Each round joins the delta with
//! the edge relation, then unions into the total; answers are the
//! accepting-state projections.

use automata::ast::Lit;
use automata::Nfa;
use ring::Id;
use rpq_core::{EngineOptions, QueryError, QueryOutput, RpqQuery, Term};
use std::sync::Arc;
use std::time::Instant;
use succinct::util::FxHashSet;

use crate::nfa_bfs::reversed_for;
use crate::{AdjacencyIndex, PathEngine};

/// Semi-naive fix-point evaluation over [`AdjacencyIndex`].
pub struct SemiNaiveEngine {
    idx: Arc<AdjacencyIndex>,
}

impl SemiNaiveEngine {
    /// Creates the engine over a shared adjacency index.
    pub fn new(idx: Arc<AdjacencyIndex>) -> Self {
        Self { idx }
    }

    /// Runs the fix-point from the given seed tuples, reporting accepting
    /// projections `(x, v)`.
    fn fixpoint(
        &self,
        nfa: &Nfa,
        seeds: Vec<(Id, usize, Id)>,
        deadline: Option<Instant>,
        limit: usize,
        target: Option<Id>,
        out: &mut QueryOutput,
    ) {
        let idx = &self.idx;
        let mut total: FxHashSet<(Id, u32, Id)> = FxHashSet::default();
        let mut answers: FxHashSet<(Id, Id)> = FxHashSet::default();
        let mut delta: Vec<(Id, usize, Id)> = Vec::new();
        for (x, q, v) in seeds {
            if total.insert((x, q as u32, v)) {
                delta.push((x, q, v));
            }
        }

        while !delta.is_empty() {
            out.stats.bfs_steps += 1; // one semi-naive round
            if let Some(dl) = deadline {
                if Instant::now() >= dl {
                    out.timed_out = true;
                    break;
                }
            }
            // Project accepting tuples of this delta into the answers.
            for &(x, q, v) in &delta {
                if nfa.accepting[q] && target.is_none_or(|t| t == v) {
                    answers.insert((x, v));
                    if answers.len() >= limit {
                        out.truncated = target.is_none();
                        delta.clear();
                        break;
                    }
                }
            }
            if delta.is_empty() || (target.is_some() && !answers.is_empty()) {
                break;
            }
            // Join Δ ⋈ E ⋈ δ.
            let mut next: Vec<(Id, usize, Id)> = Vec::new();
            for &(x, q, v) in &delta {
                for (lit, q2) in &nfa.transitions[q] {
                    match lit {
                        Lit::Label(p) => {
                            for &w in idx.out_by(v, *p) {
                                let t = (x, *q2 as u32, w as Id);
                                if total.insert(t) {
                                    out.stats.product_nodes += 1;
                                    next.push((x, *q2, w as Id));
                                }
                            }
                        }
                        _ => {
                            let (preds, objs) = idx.out_edges(v);
                            for (i, &p) in preds.iter().enumerate() {
                                if lit.matches(p as u64) {
                                    let t = (x, *q2 as u32, objs[i] as Id);
                                    if total.insert(t) {
                                        out.stats.product_nodes += 1;
                                        next.push((x, *q2, objs[i] as Id));
                                    }
                                }
                            }
                        }
                    }
                }
            }
            delta = next;
        }
        out.pairs.extend(answers);
        out.stats.reported = out.pairs.len() as u64;
    }

    fn eval(&mut self, query: &RpqQuery, opts: &EngineOptions) -> Result<QueryOutput, QueryError> {
        for t in [query.subject, query.object] {
            if let Term::Const(c) = t {
                if c >= self.idx.n_nodes() {
                    return Err(QueryError::NodeOutOfRange(c));
                }
            }
        }
        let deadline = opts.timeout.map(|t| Instant::now() + t);
        let mut out = QueryOutput::default();
        match (query.subject, query.object) {
            (Term::Const(s), Term::Var) => {
                let nfa = Nfa::from_regex(&query.expr);
                let seeds = if self.idx.node_exists(s) {
                    vec![(s, nfa.initial, s)]
                } else {
                    vec![]
                };
                self.fixpoint(&nfa, seeds, deadline, opts.limit, None, &mut out);
            }
            (Term::Var, Term::Const(o)) => {
                let nfa = Nfa::from_regex(&reversed_for(&self.idx, &query.expr));
                let seeds = if self.idx.node_exists(o) {
                    vec![(o, nfa.initial, o)]
                } else {
                    vec![]
                };
                self.fixpoint(&nfa, seeds, deadline, opts.limit, None, &mut out);
                // Tuples are (o, x): flip into (x, o).
                for p in &mut out.pairs {
                    *p = (p.1, p.0);
                }
            }
            (Term::Const(s), Term::Const(o)) => {
                let nfa = Nfa::from_regex(&query.expr);
                let seeds = if self.idx.node_exists(s) {
                    vec![(s, nfa.initial, s)]
                } else {
                    vec![]
                };
                self.fixpoint(&nfa, seeds, deadline, opts.limit, Some(o), &mut out);
            }
            (Term::Var, Term::Var) => {
                let nfa = Nfa::from_regex(&query.expr);
                let seeds = (0..self.idx.n_nodes())
                    .filter(|&v| self.idx.node_exists(v))
                    .map(|v| (v, nfa.initial, v))
                    .collect();
                self.fixpoint(&nfa, seeds, deadline, opts.limit, None, &mut out);
            }
        }
        Ok(out)
    }
}

impl PathEngine for SemiNaiveEngine {
    fn name(&self) -> &'static str {
        "semi-naive"
    }

    fn index_bytes(&self) -> usize {
        self.idx.size_bytes()
    }

    fn run(&mut self, query: &RpqQuery, opts: &EngineOptions) -> Result<QueryOutput, QueryError> {
        self.eval(query, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::Regex;
    use ring::{Graph, Triple};

    fn engine() -> SemiNaiveEngine {
        SemiNaiveEngine::new(Arc::new(AdjacencyIndex::from_graph(&Graph::from_triples(
            vec![
                Triple::new(0, 0, 1),
                Triple::new(1, 0, 2),
                Triple::new(2, 0, 0),
                Triple::new(2, 1, 3),
            ],
        ))))
    }

    #[test]
    fn cycle_closure() {
        let mut e = engine();
        let q = RpqQuery::new(
            Term::Const(0),
            Regex::Plus(Box::new(Regex::label(0))),
            Term::Var,
        );
        let out = e.run(&q, &EngineOptions::default()).unwrap();
        assert_eq!(out.sorted_pairs(), vec![(0, 0), (0, 1), (0, 2)]);
    }

    #[test]
    fn var_var_exact() {
        let mut e = engine();
        let q = RpqQuery::new(
            Term::Var,
            Regex::concat(Regex::Star(Box::new(Regex::label(0))), Regex::label(1)),
            Term::Var,
        );
        let out = e.run(&q, &EngineOptions::default()).unwrap();
        // a*/b: any of 0,1,2 reaches 2 via a*, then b to 3.
        assert_eq!(out.sorted_pairs(), vec![(0, 3), (1, 3), (2, 3)]);
    }

    #[test]
    fn const_const_early_exit() {
        let mut e = engine();
        let q = RpqQuery::new(
            Term::Const(0),
            Regex::Star(Box::new(Regex::label(0))),
            Term::Const(2),
        );
        let out = e.run(&q, &EngineOptions::default()).unwrap();
        assert_eq!(out.sorted_pairs(), vec![(0, 2)]);
    }
}
