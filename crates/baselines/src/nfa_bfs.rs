//! The Jena-style baseline: navigational node-at-a-time BFS over the
//! product of the graph and a Thompson NFA — the "ALP" (Arbitrary Length
//! Paths) procedure of the SPARQL 1.1 specification (§5 of the paper:
//! "Jena and Blazegraph implement a navigational BFS-style function called
//! ALP").

use automata::ast::Lit;
use automata::{Nfa, Regex};
use ring::Id;
use rpq_core::{EngineOptions, QueryError, QueryOutput, RpqQuery, Term};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use crate::{AdjacencyIndex, PathEngine};

/// Product-graph BFS over [`AdjacencyIndex`] with an ε-free Thompson NFA.
pub struct NfaBfsEngine {
    idx: Arc<AdjacencyIndex>,
    /// Visited stamps for `(node, state)` pairs; sized lazily to
    /// `n_nodes · n_states` and reset by epoch.
    stamps: Vec<u32>,
    /// Reported-node stamps (a node may be reached in several accepting
    /// states; set semantics reports it once per run).
    reported: Vec<u32>,
    epoch: u32,
    states: usize,
}

impl NfaBfsEngine {
    /// Creates the engine over a shared adjacency index.
    pub fn new(idx: Arc<AdjacencyIndex>) -> Self {
        Self {
            reported: vec![0; idx.n_nodes() as usize],
            idx,
            stamps: Vec::new(),
            epoch: 0,
            states: 0,
        }
    }

    fn prepare(&mut self, n_states: usize) {
        let needed = self.idx.n_nodes() as usize * n_states;
        if n_states != self.states || self.stamps.len() < needed {
            self.stamps = vec![0; needed];
            self.reported.fill(0);
            self.epoch = 0;
            self.states = n_states;
        }
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.reported.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// BFS from `(start, initial)`; reports nodes reached in an accepting
    /// state through `report` (return `false` to abort).
    fn bfs(
        &mut self,
        nfa: &Nfa,
        start: Id,
        deadline: Option<Instant>,
        out: &mut QueryOutput,
        report: &mut impl FnMut(Id, &mut QueryOutput) -> bool,
    ) -> bool {
        let idx = Arc::clone(&self.idx);
        if !idx.node_exists(start) {
            return false;
        }
        let n_states = nfa.n_states;
        let mut queue: VecDeque<(Id, usize)> = VecDeque::new();
        let key = |v: Id, q: usize| v as usize * n_states + q;
        self.stamps[key(start, nfa.initial)] = self.epoch;
        queue.push_back((start, nfa.initial));
        let mut pops: u64 = 0;
        while let Some((v, q)) = queue.pop_front() {
            pops += 1;
            out.stats.bfs_steps += 1;
            if let Some(dl) = deadline {
                if pops.is_multiple_of(512) && Instant::now() >= dl {
                    out.timed_out = true;
                    return true;
                }
            }
            if nfa.accepting[q] && self.reported[v as usize] != self.epoch {
                self.reported[v as usize] = self.epoch;
                if !report(v, out) {
                    return true;
                }
            }
            for (lit, q2) in &nfa.transitions[q] {
                match lit {
                    Lit::Label(p) => {
                        for &w in idx.out_by(v, *p) {
                            let w = w as Id;
                            let k = key(w, *q2);
                            if self.stamps[k] != self.epoch {
                                self.stamps[k] = self.epoch;
                                out.stats.product_nodes += 1;
                                queue.push_back((w, *q2));
                            }
                        }
                    }
                    _ => {
                        let (preds, objs) = idx.out_edges(v);
                        for (i, &p) in preds.iter().enumerate() {
                            if lit.matches(p as u64) {
                                let w = objs[i] as Id;
                                let k = key(w, *q2);
                                if self.stamps[k] != self.epoch {
                                    self.stamps[k] = self.epoch;
                                    out.stats.product_nodes += 1;
                                    queue.push_back((w, *q2));
                                }
                            }
                        }
                    }
                }
            }
        }
        false
    }

    fn eval(&mut self, query: &RpqQuery, opts: &EngineOptions) -> Result<QueryOutput, QueryError> {
        for t in [query.subject, query.object] {
            if let Term::Const(c) = t {
                if c >= self.idx.n_nodes() {
                    return Err(QueryError::NodeOutOfRange(c));
                }
            }
        }
        let deadline = opts.timeout.map(|t| Instant::now() + t);
        let limit = opts.limit;
        let mut out = QueryOutput::default();
        let inv = {
            let idx = Arc::clone(&self.idx);
            move |l: u64| idx.inverse_label(l)
        };
        match (query.subject, query.object) {
            (Term::Const(s), Term::Var) => {
                let nfa = Nfa::from_regex(&query.expr);
                self.prepare(nfa.n_states);
                self.bfs(&nfa, s, deadline, &mut out, &mut |r, out| {
                    out.pairs.push((s, r));
                    out.pairs.len() < limit || {
                        out.truncated = true;
                        false
                    }
                });
            }
            (Term::Var, Term::Const(o)) => {
                let rev = query.expr.reversed(&inv);
                let nfa = Nfa::from_regex(&rev);
                self.prepare(nfa.n_states);
                self.bfs(&nfa, o, deadline, &mut out, &mut |r, out| {
                    out.pairs.push((r, o));
                    out.pairs.len() < limit || {
                        out.truncated = true;
                        false
                    }
                });
            }
            (Term::Const(s), Term::Const(o)) => {
                let nfa = Nfa::from_regex(&query.expr);
                self.prepare(nfa.n_states);
                self.bfs(&nfa, s, deadline, &mut out, &mut |r, out| {
                    if r == o {
                        out.pairs.push((s, o));
                        return false;
                    }
                    true
                });
            }
            (Term::Var, Term::Var) => {
                // The ALP procedure: one BFS per candidate start node.
                let nfa = Nfa::from_regex(&query.expr);
                self.prepare(nfa.n_states);
                for s in 0..self.idx.n_nodes() {
                    if !self.idx.node_exists(s) {
                        continue;
                    }
                    self.prepare(nfa.n_states);
                    let aborted = self.bfs(&nfa, s, deadline, &mut out, &mut |r, out| {
                        out.pairs.push((s, r));
                        out.pairs.len() < limit || {
                            out.truncated = true;
                            false
                        }
                    });
                    if aborted && (out.timed_out || out.truncated) {
                        break;
                    }
                }
            }
        }
        out.stats.reported = out.pairs.len() as u64;
        Ok(out)
    }
}

impl PathEngine for NfaBfsEngine {
    fn name(&self) -> &'static str {
        "nfa-bfs"
    }

    fn index_bytes(&self) -> usize {
        self.idx.size_bytes()
    }

    fn run(&mut self, query: &RpqQuery, opts: &EngineOptions) -> Result<QueryOutput, QueryError> {
        self.eval(query, opts)
    }
}

/// Reversal helper shared by the engines (kept private to the crate).
pub(crate) fn reversed_for(idx: &AdjacencyIndex, expr: &Regex) -> Regex {
    expr.reversed(&|l| idx.inverse_label(l))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring::{Graph, Triple};

    fn idx() -> Arc<AdjacencyIndex> {
        Arc::new(AdjacencyIndex::from_graph(&Graph::from_triples(vec![
            Triple::new(0, 0, 1),
            Triple::new(1, 0, 2),
            Triple::new(2, 1, 3),
        ])))
    }

    #[test]
    fn forward_star_concat() {
        let mut e = NfaBfsEngine::new(idx());
        let expr = Regex::concat(Regex::Star(Box::new(Regex::label(0))), Regex::label(1));
        let q = RpqQuery::new(Term::Const(0), expr, Term::Var);
        let out = e.run(&q, &EngineOptions::default()).unwrap();
        assert_eq!(out.sorted_pairs(), vec![(0, 3)]);
    }

    #[test]
    fn backward_const_object() {
        let mut e = NfaBfsEngine::new(idx());
        let expr = Regex::Plus(Box::new(Regex::label(0)));
        let q = RpqQuery::new(Term::Var, expr, Term::Const(2));
        let out = e.run(&q, &EngineOptions::default()).unwrap();
        assert_eq!(out.sorted_pairs(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn var_var_with_limit() {
        let mut e = NfaBfsEngine::new(idx());
        let expr = Regex::Star(Box::new(Regex::label(0)));
        let q = RpqQuery::new(Term::Var, expr.clone(), Term::Var);
        let opts = EngineOptions {
            limit: 2,
            ..Default::default()
        };
        let out = e.run(&q, &opts).unwrap();
        assert!(out.truncated);
        assert_eq!(out.pairs.len(), 2);
    }
}
