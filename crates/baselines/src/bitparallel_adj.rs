//! The Blazegraph-stand-in: the same bit-parallel Glushkov frontier
//! simulation the ring engine uses, but running **forward** over the fat
//! adjacency index. Comparing it with the ring isolates the paper's
//! headline trade-off: equal algorithmic machinery, ~3–5× more space, no
//! wavelet-tree range batching.

use automata::{BitParallel, Glushkov};
use ring::Id;
use rpq_core::{EngineOptions, QueryError, QueryOutput, RpqQuery, Term};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;
use succinct::util::EpochArray;

use crate::nfa_bfs::reversed_for;
use crate::{AdjacencyIndex, PathEngine};

/// Forward bit-parallel product-graph traversal over [`AdjacencyIndex`].
pub struct BitParallelAdjEngine {
    idx: Arc<AdjacencyIndex>,
    /// Per-node visited state masks, epoch-reset per traversal.
    visited: EpochArray,
    /// Per-node reported flags (a node may hit several accepting states;
    /// set semantics reports it once per run).
    reported: EpochArray,
}

impl BitParallelAdjEngine {
    /// Creates the engine over a shared adjacency index.
    pub fn new(idx: Arc<AdjacencyIndex>) -> Self {
        Self {
            visited: EpochArray::new(idx.n_nodes() as usize),
            reported: EpochArray::new(idx.n_nodes() as usize),
            idx,
        }
    }

    /// Forward run from `start` with `D = initial`; reports nodes whose
    /// fresh states hit accepting.
    fn forward(
        &mut self,
        bp: &BitParallel,
        start: Id,
        deadline: Option<Instant>,
        out: &mut QueryOutput,
        report: &mut impl FnMut(Id, &mut QueryOutput) -> bool,
    ) -> bool {
        let idx = Arc::clone(&self.idx);
        if !idx.node_exists(start) {
            return false;
        }
        self.visited.reset();
        self.reported.reset();
        let accept = bp.accept_mask();
        let d0 = bp.initial_mask();
        self.visited.set(start as usize, d0);
        if d0 & accept != 0 {
            self.reported.set(start as usize, 1);
            if !report(start, out) {
                return true;
            }
        }
        let mut queue: VecDeque<(Id, u64)> = VecDeque::new();
        queue.push_back((start, d0));
        let mut pops: u64 = 0;
        while let Some((v, d)) = queue.pop_front() {
            pops += 1;
            out.stats.bfs_steps += 1;
            if let Some(dl) = deadline {
                if pops.is_multiple_of(512) && Instant::now() >= dl {
                    out.timed_out = true;
                    return true;
                }
            }
            // States reachable in one step from d, by any label (Eq. 1
            // applies the `B[p]` intersection per label run below).
            let t = bp.apply_fwd(d);
            if t == 0 {
                continue;
            }
            let (preds, objs) = idx.out_edges(v);
            let mut i = 0;
            while i < preds.len() {
                let p = preds[i];
                let mut j = i;
                while j < preds.len() && preds[j] == p {
                    j += 1;
                }
                let dn = t & bp.label_mask(p as u64);
                if dn != 0 {
                    out.stats.product_edges += 1;
                    for &w in &objs[i..j] {
                        let w = w as Id;
                        let old = self.visited.get(w as usize);
                        let fresh = dn & !old;
                        if fresh != 0 {
                            self.visited.set(w as usize, old | dn);
                            out.stats.product_nodes += 1;
                            if fresh & accept != 0 && self.reported.get(w as usize) == 0 {
                                self.reported.set(w as usize, 1);
                                if !report(w, out) {
                                    return true;
                                }
                            }
                            queue.push_back((w, fresh));
                        }
                    }
                }
                i = j;
            }
        }
        false
    }

    fn eval(&mut self, query: &RpqQuery, opts: &EngineOptions) -> Result<QueryOutput, QueryError> {
        for t in [query.subject, query.object] {
            if let Term::Const(c) = t {
                if c >= self.idx.n_nodes() {
                    return Err(QueryError::NodeOutOfRange(c));
                }
            }
        }
        let deadline = opts.timeout.map(|t| Instant::now() + t);
        let limit = opts.limit;
        let mut out = QueryOutput::default();
        let compile = |e: &automata::Regex, d: usize| -> Result<BitParallel, QueryError> {
            let g = Glushkov::new(e).map_err(QueryError::Automaton)?;
            Ok(BitParallel::with_split_width(&g, d))
        };
        match (query.subject, query.object) {
            (Term::Const(s), Term::Var) => {
                let bp = compile(&query.expr, opts.bp_split_width)?;
                self.forward(&bp, s, deadline, &mut out, &mut |r, out| {
                    out.pairs.push((s, r));
                    out.pairs.len() < limit || {
                        out.truncated = true;
                        false
                    }
                });
            }
            (Term::Var, Term::Const(o)) => {
                let bp = compile(&reversed_for(&self.idx, &query.expr), opts.bp_split_width)?;
                self.forward(&bp, o, deadline, &mut out, &mut |r, out| {
                    out.pairs.push((r, o));
                    out.pairs.len() < limit || {
                        out.truncated = true;
                        false
                    }
                });
            }
            (Term::Const(s), Term::Const(o)) => {
                let bp = compile(&query.expr, opts.bp_split_width)?;
                self.forward(&bp, s, deadline, &mut out, &mut |r, out| {
                    if r == o {
                        out.pairs.push((s, o));
                        return false;
                    }
                    true
                });
            }
            (Term::Var, Term::Var) => {
                let bp = compile(&query.expr, opts.bp_split_width)?;
                for s in 0..self.idx.n_nodes() {
                    if !self.idx.node_exists(s) {
                        continue;
                    }
                    let aborted = self.forward(&bp, s, deadline, &mut out, &mut |r, out| {
                        out.pairs.push((s, r));
                        out.pairs.len() < limit || {
                            out.truncated = true;
                            false
                        }
                    });
                    if aborted && (out.timed_out || out.truncated) {
                        break;
                    }
                }
            }
        }
        out.stats.reported = out.pairs.len() as u64;
        Ok(out)
    }
}

impl PathEngine for BitParallelAdjEngine {
    fn name(&self) -> &'static str {
        "bitparallel-adj"
    }

    fn index_bytes(&self) -> usize {
        self.idx.size_bytes()
    }

    fn run(&mut self, query: &RpqQuery, opts: &EngineOptions) -> Result<QueryOutput, QueryError> {
        self.eval(query, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::Regex;
    use ring::{Graph, Triple};

    fn engine() -> BitParallelAdjEngine {
        BitParallelAdjEngine::new(Arc::new(AdjacencyIndex::from_graph(&Graph::from_triples(
            vec![
                Triple::new(0, 0, 1),
                Triple::new(1, 0, 2),
                Triple::new(2, 1, 3),
                Triple::new(3, 0, 0),
            ],
        ))))
    }

    #[test]
    fn forward_concat() {
        let mut e = engine();
        let q = RpqQuery::new(
            Term::Const(0),
            Regex::concat(Regex::Star(Box::new(Regex::label(0))), Regex::label(1)),
            Term::Var,
        );
        let out = e.run(&q, &EngineOptions::default()).unwrap();
        assert_eq!(out.sorted_pairs(), vec![(0, 3)]);
    }

    #[test]
    fn inverse_and_const_object() {
        let mut e = engine();
        // ^a from variable to constant 0: x with 0 -a-> x... i.e. pairs
        // (x, 0) with x -^a-> 0, meaning 0 -a-> x: x = 1.
        let q = RpqQuery::new(Term::Var, Regex::label(2), Term::Const(0));
        let out = e.run(&q, &EngineOptions::default()).unwrap();
        assert_eq!(out.sorted_pairs(), vec![(1, 0)]);
    }

    #[test]
    fn nullable_reports_start() {
        let mut e = engine();
        let q = RpqQuery::new(
            Term::Const(2),
            Regex::Star(Box::new(Regex::label(0))),
            Term::Var,
        );
        let out = e.run(&q, &EngineOptions::default()).unwrap();
        assert!(out.sorted_pairs().contains(&(2, 2)));
    }
}
