#![warn(missing_docs)]

//! Baseline RPQ engines over a classical adjacency-list index.
//!
//! The paper compares the ring against Jena, Virtuoso and Blazegraph
//! (§5). Those systems are not available offline, so this crate implements
//! one engine per *algorithmic family* they represent (the substitution
//! table in DESIGN.md §3):
//!
//! * [`NfaBfsEngine`] — navigational node-at-a-time product-graph BFS with
//!   a Thompson NFA: the SPARQL "Arbitrary Length Paths" procedure that
//!   Jena (and Blazegraph's ALP service) implement.
//! * [`SemiNaiveEngine`] — set-at-a-time semi-naive fix-point over the
//!   automaton-annotated reachability relation: the transitive-closure-
//!   over-a-relational-engine strategy of Virtuoso.
//! * [`BitParallelAdjEngine`] — the same bit-parallel Glushkov frontier
//!   simulation as the ring engine, but over the fat adjacency index: the
//!   "fast but big" competitor isolating exactly the paper's space/time
//!   trade-off (Blazegraph's role in Table 2).
//!
//! All engines implement [`PathEngine`], share [`AdjacencyIndex`] (a
//! two-order uncompressed index over the completed graph `G↔`), and agree
//! result-for-result with `rpq_core`'s ring engine — that equivalence is
//! property-tested.

pub mod adjacency;
pub mod bitparallel_adj;
pub mod nfa_bfs;
pub mod ring_adapter;
pub mod seminaive;

pub use adjacency::AdjacencyIndex;
pub use bitparallel_adj::BitParallelAdjEngine;
pub use nfa_bfs::NfaBfsEngine;
pub use ring_adapter::RingEngine;
pub use seminaive::SemiNaiveEngine;

use rpq_core::{EngineOptions, QueryError, QueryOutput, RpqQuery};

/// A uniform interface over all engines, for the benchmark harness
/// regenerating Table 2 and Fig. 8.
pub trait PathEngine {
    /// Display name used in the result tables.
    fn name(&self) -> &'static str;
    /// Bytes of the index this engine queries.
    fn index_bytes(&self) -> usize;
    /// Evaluates one 2RPQ.
    fn run(&mut self, query: &RpqQuery, opts: &EngineOptions) -> Result<QueryOutput, QueryError>;
}
