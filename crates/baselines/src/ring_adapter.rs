//! [`PathEngine`] adapter for the ring engine, so the benchmark harness
//! treats all four systems uniformly.

use ring::Ring;
use rpq_core::{EngineOptions, QueryError, QueryOutput, RpqEngine, RpqQuery};

use crate::PathEngine;

/// The paper's system, behind the common engine interface.
pub struct RingEngine<'r> {
    engine: RpqEngine<'r>,
}

impl<'r> RingEngine<'r> {
    /// Wraps an engine over `ring`.
    pub fn new(ring: &'r Ring) -> Self {
        Self {
            engine: RpqEngine::new(ring),
        }
    }

    /// The inner engine (for working-space accounting).
    pub fn inner(&self) -> &RpqEngine<'r> {
        &self.engine
    }
}

impl PathEngine for RingEngine<'_> {
    fn name(&self) -> &'static str {
        "ring"
    }

    fn index_bytes(&self) -> usize {
        self.engine.ring().size_bytes()
    }

    fn run(&mut self, query: &RpqQuery, opts: &EngineOptions) -> Result<QueryOutput, QueryError> {
        self.engine.evaluate(query, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use automata::Regex;
    use ring::ring::RingOptions;
    use ring::{Graph, Triple};
    use rpq_core::Term;

    #[test]
    fn adapter_roundtrip() {
        let g = Graph::from_triples(vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2)]);
        let ring = Ring::build(&g, RingOptions::default());
        let mut e = RingEngine::new(&ring);
        assert_eq!(e.name(), "ring");
        assert!(e.index_bytes() > 0);
        let q = RpqQuery::new(
            Term::Const(0),
            Regex::Plus(Box::new(Regex::label(0))),
            Term::Var,
        );
        let out = e.run(&q, &EngineOptions::default()).unwrap();
        assert_eq!(out.sorted_pairs(), vec![(0, 1), (0, 2)]);
    }
}
