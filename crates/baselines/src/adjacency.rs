//! The classical uncompressed index the baselines query: the completed
//! graph in two sorted orders — `(s, p, o)` for navigation and
//! `(p, s, o)` for per-predicate relations — as flat arrays with offset
//! directories (the B+-tree-free essence of what Jena/Virtuoso/Blazegraph
//! keep per triple order).

use ring::{Graph, Id};

/// A two-order adjacency index over the completed graph `G↔`.
#[derive(Clone, Debug)]
pub struct AdjacencyIndex {
    n_nodes: u64,
    /// Completed predicate alphabet (2·base).
    n_preds: u64,
    n_preds_base: u64,
    n_edges: usize,
    /// Order `(s, p, o)`: `s_off[v]..s_off[v+1]` indexes `sp_pred`/`sp_obj`.
    s_off: Vec<u64>,
    sp_pred: Vec<u32>,
    sp_obj: Vec<u32>,
    /// Order `(p, s, o)`: `p_off[p]..p_off[p+1]` indexes `ps_subj`/`ps_obj`.
    p_off: Vec<u64>,
    ps_subj: Vec<u32>,
    ps_obj: Vec<u32>,
}

impl AdjacencyIndex {
    /// Builds the index from the **base** graph (completion with inverse
    /// labels happens internally, matching `Ring::build`).
    ///
    /// # Panics
    /// Panics if the graph has more than `u32::MAX` nodes or predicates.
    pub fn from_graph(base: &Graph) -> Self {
        let g = base.completed();
        assert!(g.n_nodes() <= u32::MAX as u64 && g.n_preds() <= u32::MAX as u64);
        let n_nodes = g.n_nodes();
        let n_preds = g.n_preds();
        let m = g.len();

        // Graph keeps (s, p, o) order.
        let mut s_off = vec![0u64; n_nodes as usize + 1];
        let mut sp_pred = Vec::with_capacity(m);
        let mut sp_obj = Vec::with_capacity(m);
        for t in g.triples() {
            s_off[t.s as usize + 1] += 1;
            sp_pred.push(t.p as u32);
            sp_obj.push(t.o as u32);
        }
        for i in 0..n_nodes as usize {
            s_off[i + 1] += s_off[i];
        }

        let mut pso: Vec<_> = g.triples().to_vec();
        pso.sort_unstable_by_key(|t| t.pos_key());
        // pos_key sorts by (p, o, s); we want (p, s, o) for sorted-subject
        // relations.
        pso.sort_unstable_by_key(|t| (t.p, t.s, t.o));
        let mut p_off = vec![0u64; n_preds as usize + 1];
        let mut ps_subj = Vec::with_capacity(m);
        let mut ps_obj = Vec::with_capacity(m);
        for t in &pso {
            p_off[t.p as usize + 1] += 1;
            ps_subj.push(t.s as u32);
            ps_obj.push(t.o as u32);
        }
        for i in 0..n_preds as usize {
            p_off[i + 1] += p_off[i];
        }

        Self {
            n_nodes,
            n_preds,
            n_preds_base: base.n_preds(),
            n_edges: m,
            s_off,
            sp_pred,
            sp_obj,
            p_off,
            ps_subj,
            ps_obj,
        }
    }

    /// Node universe size.
    pub fn n_nodes(&self) -> u64 {
        self.n_nodes
    }

    /// Completed predicate alphabet size.
    pub fn n_preds(&self) -> u64 {
        self.n_preds
    }

    /// Base predicate count.
    pub fn n_preds_base(&self) -> u64 {
        self.n_preds_base
    }

    /// Completed edge count.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// The inversion involution over the completed alphabet.
    #[inline]
    pub fn inverse_label(&self, p: Id) -> Id {
        if p < self.n_preds_base {
            p + self.n_preds_base
        } else {
            p - self.n_preds_base
        }
    }

    /// Out-edges of `v` as parallel `(pred, obj)` slices, sorted by
    /// `(pred, obj)`.
    #[inline]
    pub fn out_edges(&self, v: Id) -> (&[u32], &[u32]) {
        let (b, e) = (
            self.s_off[v as usize] as usize,
            self.s_off[v as usize + 1] as usize,
        );
        (&self.sp_pred[b..e], &self.sp_obj[b..e])
    }

    /// Objects reachable from `v` by label `p` (sorted slice).
    pub fn out_by(&self, v: Id, p: Id) -> &[u32] {
        let (b, e) = (
            self.s_off[v as usize] as usize,
            self.s_off[v as usize + 1] as usize,
        );
        let preds = &self.sp_pred[b..e];
        let lo = preds.partition_point(|&x| (x as u64) < p);
        let hi = preds.partition_point(|&x| x as u64 <= p);
        &self.sp_obj[b + lo..b + hi]
    }

    /// All edges labeled `p`, as parallel `(subject, object)` slices
    /// sorted by `(s, o)`.
    pub fn pred_edges(&self, p: Id) -> (&[u32], &[u32]) {
        let (b, e) = (
            self.p_off[p as usize] as usize,
            self.p_off[p as usize + 1] as usize,
        );
        (&self.ps_subj[b..e], &self.ps_obj[b..e])
    }

    /// Number of edges labeled `p`.
    #[inline]
    pub fn pred_count(&self, p: Id) -> usize {
        (self.p_off[p as usize + 1] - self.p_off[p as usize]) as usize
    }

    /// Whether `v` has any incident edge (in the completed graph every
    /// connected node has an out-edge).
    #[inline]
    pub fn node_exists(&self, v: Id) -> bool {
        v < self.n_nodes && self.s_off[v as usize + 1] > self.s_off[v as usize]
    }

    /// Heap bytes of the index.
    pub fn size_bytes(&self) -> usize {
        self.s_off.capacity() * 8
            + self.p_off.capacity() * 8
            + (self.sp_pred.capacity()
                + self.sp_obj.capacity()
                + self.ps_subj.capacity()
                + self.ps_obj.capacity())
                * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ring::Triple;

    fn g() -> Graph {
        Graph::from_triples(vec![
            Triple::new(0, 0, 1),
            Triple::new(0, 1, 2),
            Triple::new(1, 0, 2),
            Triple::new(2, 1, 0),
        ])
    }

    #[test]
    fn out_edges_include_inverses() {
        let idx = AdjacencyIndex::from_graph(&g());
        assert_eq!(idx.n_edges(), 8);
        assert_eq!(idx.n_preds(), 4);
        // Forward: 0 -0-> 1, 0 -1-> 2; inverse of (2,1,0): 0 -^1-> 2.
        let (preds, objs) = idx.out_edges(0);
        let edges: Vec<(u32, u32)> = preds.iter().copied().zip(objs.iter().copied()).collect();
        assert_eq!(edges, vec![(0, 1), (1, 2), (3, 2)]);
    }

    #[test]
    fn out_by_selects_label_block() {
        let idx = AdjacencyIndex::from_graph(&g());
        assert_eq!(idx.out_by(0, 0), &[1]);
        assert_eq!(idx.out_by(0, 1), &[2]);
        assert_eq!(idx.out_by(0, 3), &[2]);
        assert!(idx.out_by(0, 2).is_empty());
    }

    #[test]
    fn pred_edges_are_complete() {
        let idx = AdjacencyIndex::from_graph(&g());
        let (s, o) = idx.pred_edges(0);
        assert_eq!(s, &[0, 1]);
        assert_eq!(o, &[1, 2]);
        assert_eq!(idx.pred_count(2), 2); // inverses of label 0
        let (s, o) = idx.pred_edges(2);
        assert_eq!(s, &[1, 2]);
        assert_eq!(o, &[0, 1]);
    }

    #[test]
    fn inverse_label_involution() {
        let idx = AdjacencyIndex::from_graph(&g());
        assert_eq!(idx.inverse_label(0), 2);
        assert_eq!(idx.inverse_label(2), 0);
        assert_eq!(idx.inverse_label(idx.inverse_label(1)), 1);
    }

    #[test]
    fn node_existence() {
        let idx = AdjacencyIndex::from_graph(&g());
        for v in 0..3 {
            assert!(idx.node_exists(v));
        }
        assert!(!idx.node_exists(99));
    }
}
