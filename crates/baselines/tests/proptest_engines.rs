//! All four engines — ring, NFA-BFS (Jena-like), semi-naive
//! (Virtuoso-like), bit-parallel-adjacency (Blazegraph-like) — must return
//! identical result sets on arbitrary graphs and 2RPQs. This is the
//! cross-system equivalence backing Table 2's "same answers, different
//! cost" comparison.

use automata::ast::{Lit, Regex};
use baselines::{
    AdjacencyIndex, BitParallelAdjEngine, NfaBfsEngine, PathEngine, RingEngine, SemiNaiveEngine,
};
use proptest::prelude::*;
use ring::ring::RingOptions;
use ring::{Graph, Ring, Triple};
use rpq_core::{EngineOptions, RpqQuery, Term};
use std::sync::Arc;

const N_NODES: u64 = 8;
const N_PREDS: u64 = 3;

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0..N_NODES, 0..N_PREDS, 0..N_NODES), 1..50).prop_map(|raw| {
        Graph::new(
            raw.into_iter()
                .map(|(s, p, o)| Triple::new(s, p, o))
                .collect(),
            N_NODES,
            N_PREDS,
        )
    })
}

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        4 => (0u64..2 * N_PREDS).prop_map(Regex::label),
        1 => prop::collection::btree_set(0u64..2 * N_PREDS, 1..3)
            .prop_map(|s| Regex::Literal(Lit::Class(s.into_iter().collect()))),
        1 => prop::collection::btree_set(0u64..2 * N_PREDS, 1..2)
            .prop_map(|s| Regex::Literal(Lit::NegClass(s.into_iter().collect()))),
    ];
    leaf.prop_recursive(3, 10, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::concat(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Regex::alt(a, b)),
            inner.clone().prop_map(|a| Regex::Star(Box::new(a))),
            inner.clone().prop_map(|a| Regex::Plus(Box::new(a))),
            inner.prop_map(|a| Regex::Opt(Box::new(a))),
        ]
    })
}

fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        2 => Just(Term::Var),
        1 => (0..N_NODES).prop_map(Term::Const),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn four_engines_agree(
        g in arb_graph(),
        e in arb_regex(),
        s in arb_term(),
        o in arb_term(),
    ) {
        let query = RpqQuery::new(s, e, o);
        let opts = EngineOptions::default();

        let ring = Ring::build(&g, RingOptions::default());
        let idx = Arc::new(AdjacencyIndex::from_graph(&g));

        let mut ring_engine = RingEngine::new(&ring);
        let reference = ring_engine.run(&query, &opts).unwrap().sorted_pairs();

        let mut others: Vec<Box<dyn PathEngine>> = vec![
            Box::new(NfaBfsEngine::new(Arc::clone(&idx))),
            Box::new(SemiNaiveEngine::new(Arc::clone(&idx))),
            Box::new(BitParallelAdjEngine::new(Arc::clone(&idx))),
        ];
        for engine in &mut others {
            let out = engine.run(&query, &opts).unwrap();
            prop_assert!(!out.truncated && !out.timed_out);
            prop_assert_eq!(
                out.sorted_pairs(),
                reference.clone(),
                "{} disagrees with ring on {:?}",
                engine.name(),
                query
            );
        }
    }

    #[test]
    fn const_const_existence_agrees(
        g in arb_graph(),
        e in arb_regex(),
        s in 0..N_NODES,
        o in 0..N_NODES,
    ) {
        let query = RpqQuery::new(Term::Const(s), e, Term::Const(o));
        let opts = EngineOptions::default();
        let ring = Ring::build(&g, RingOptions::default());
        let idx = Arc::new(AdjacencyIndex::from_graph(&g));
        let expected = RingEngine::new(&ring).run(&query, &opts).unwrap().pairs.len();
        for engine in [
            &mut NfaBfsEngine::new(Arc::clone(&idx)) as &mut dyn PathEngine,
            &mut SemiNaiveEngine::new(Arc::clone(&idx)),
            &mut BitParallelAdjEngine::new(Arc::clone(&idx)),
        ] {
            prop_assert_eq!(
                engine.run(&query, &opts).unwrap().pairs.len(),
                expected,
                "{} existence mismatch", engine.name()
            );
        }
    }
}
