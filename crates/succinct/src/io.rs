//! Binary persistence for the succinct structures.
//!
//! A small hand-rolled codec (little-endian framing, per-structure magic
//! tags, a format version) so indexes can be built once and memory-mapped
//! -free loaded later — the ring's 2.3 h Wikidata construction (§5) is
//! exactly the kind of cost one wants to pay once.
//!
//! Every structure implements [`Persist`]; round-trips are property-tested
//! and corrupted inputs fail with typed I/O errors rather than panics.

use std::io::{self, Read, Write};

use crate::{BitVec, IntVec, RankSelect, WaveletMatrix, WaveletTree};

/// Format version written after each magic tag.
pub const FORMAT_VERSION: u32 = 1;

/// Serializable structure.
pub trait Persist: Sized {
    /// Magic tag identifying the structure kind.
    const MAGIC: [u8; 4];

    /// Writes the payload (after the magic/version header).
    fn write_payload(&self, w: &mut impl Write) -> io::Result<()>;

    /// Reads the payload (after the magic/version header).
    fn read_payload(r: &mut impl Read) -> io::Result<Self>;

    /// Writes magic, version and payload.
    fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(&Self::MAGIC)?;
        write_u32(w, FORMAT_VERSION)?;
        self.write_payload(w)
    }

    /// Reads and validates magic and version, then the payload.
    fn read_from(r: &mut impl Read) -> io::Result<Self> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if magic != Self::MAGIC {
            return Err(bad_data(format!(
                "bad magic: expected {:?}, found {:?}",
                Self::MAGIC,
                magic
            )));
        }
        let version = read_u32(r)?;
        if version != FORMAT_VERSION {
            return Err(bad_data(format!(
                "unsupported format version {version} (expected {FORMAT_VERSION})"
            )));
        }
        Self::read_payload(r)
    }
}

/// `InvalidData` error helper.
pub fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Writes a `u32` little-endian.
pub fn write_u32(w: &mut impl Write, x: u32) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

/// Reads a `u32` little-endian.
pub fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

/// Writes a `u64` little-endian.
pub fn write_u64(w: &mut impl Write, x: u64) -> io::Result<()> {
    w.write_all(&x.to_le_bytes())
}

/// Reads a `u64` little-endian.
pub fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

/// Reads a `u64` and checks it fits `usize` and a sanity bound.
pub fn read_len(r: &mut impl Read, max: u64) -> io::Result<usize> {
    let n = read_u64(r)?;
    if n > max {
        return Err(bad_data(format!("length {n} exceeds sanity bound {max}")));
    }
    usize::try_from(n).map_err(|_| bad_data("length does not fit in usize"))
}

/// Writes a `u64` slice with a length prefix.
pub fn write_u64s(w: &mut impl Write, xs: &[u64]) -> io::Result<()> {
    write_u64(w, xs.len() as u64)?;
    for &x in xs {
        write_u64(w, x)?;
    }
    Ok(())
}

/// Reads a length-prefixed `u64` vector.
pub fn read_u64s(r: &mut impl Read, max_len: u64) -> io::Result<Vec<u64>> {
    let n = read_len(r, max_len)?;
    // Cap the pre-allocation: a corrupt length prefix must fail at EOF
    // while reading, not abort inside the allocator.
    let mut v = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        v.push(read_u64(r)?);
    }
    Ok(v)
}

/// Sanity cap for vector lengths (2^40 elements).
const MAX_LEN: u64 = 1 << 40;

impl Persist for BitVec {
    const MAGIC: [u8; 4] = *b"RBv1";

    fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_u64(w, self.len() as u64)?;
        write_u64s(w, self.words())
    }

    fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let len = read_len(r, MAX_LEN)?;
        let words = read_u64s(r, MAX_LEN)?;
        if words.len() != len.div_ceil(64) {
            return Err(bad_data("bit vector word count mismatch"));
        }
        // Padding bits beyond len must be zero.
        if len % 64 != 0 {
            if let Some(&last) = words.last() {
                if last >> (len % 64) != 0 {
                    return Err(bad_data("nonzero padding bits"));
                }
            }
        }
        let mut bv = BitVec::zeros(len);
        for i in 0..len {
            if (words[i / 64] >> (i % 64)) & 1 == 1 {
                bv.set(i, true);
            }
        }
        Ok(bv)
    }
}

impl Persist for RankSelect {
    const MAGIC: [u8; 4] = *b"RRs1";

    fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        // Only the logical bit words are serialized — never the
        // interleaved rank directory or the select samples, which are
        // rebuilt on load. The on-disk bytes are therefore a pure
        // function of the bits and stay stable across directory-layout
        // changes (the interleaved/sampled layout reads and writes the
        // exact bytes the original split-directory layout did).
        write_u64(w, self.len() as u64)?;
        write_u64(w, self.n_bit_words() as u64)?;
        for i in 0..self.n_bit_words() {
            write_u64(w, self.bit_word(i))?;
        }
        Ok(())
    }

    fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let len = read_len(r, MAX_LEN)?;
        let words = read_u64s(r, MAX_LEN)?;
        if words.len() < len.div_ceil(64) {
            return Err(bad_data("rank/select word count mismatch"));
        }
        let mut bv = BitVec::zeros(len);
        for i in 0..len {
            if (words[i / 64] >> (i % 64)) & 1 == 1 {
                bv.set(i, true);
            }
        }
        Ok(RankSelect::new(bv))
    }
}

impl Persist for IntVec {
    const MAGIC: [u8; 4] = *b"RIv1";

    fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_u64(w, self.width() as u64)?;
        write_u64(w, self.len() as u64)?;
        for x in self.iter() {
            write_u64(w, x)?;
        }
        Ok(())
    }

    fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let width = read_len(r, 64)?;
        if width == 0 {
            return Err(bad_data("int vector width 0"));
        }
        let n = read_len(r, MAX_LEN)?;
        let mut v = IntVec::new(width);
        for _ in 0..n {
            let x = read_u64(r)?;
            if width < 64 && x >= (1u64 << width) {
                return Err(bad_data("int vector value exceeds width"));
            }
            v.push(x);
        }
        Ok(v)
    }
}

impl Persist for WaveletMatrix {
    const MAGIC: [u8; 4] = *b"RWm1";

    fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_u64(w, self.sigma())?;
        write_u64(w, self.len() as u64)?;
        // Re-serialize via the symbols: simple, and construction is the
        // authoritative layout (loading rebuilds rank directories anyway).
        for i in 0..self.len() {
            write_u64(w, self.access(i))?;
        }
        Ok(())
    }

    fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let sigma = read_u64(r)?;
        if sigma == 0 {
            return Err(bad_data("wavelet matrix with empty alphabet"));
        }
        let n = read_len(r, MAX_LEN)?;
        let mut syms = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let s = read_u64(r)?;
            if s >= sigma {
                return Err(bad_data("wavelet matrix symbol out of alphabet"));
            }
            syms.push(s);
        }
        Ok(WaveletMatrix::new(&syms, sigma))
    }
}

impl Persist for WaveletTree {
    const MAGIC: [u8; 4] = *b"RWt1";

    fn write_payload(&self, w: &mut impl Write) -> io::Result<()> {
        write_u64(w, self.sigma())?;
        write_u64(w, self.len() as u64)?;
        for i in 0..self.len() {
            write_u64(w, self.access(i))?;
        }
        Ok(())
    }

    fn read_payload(r: &mut impl Read) -> io::Result<Self> {
        let sigma = read_u64(r)?;
        if sigma == 0 {
            return Err(bad_data("wavelet tree with empty alphabet"));
        }
        let n = read_len(r, MAX_LEN)?;
        let mut syms = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            let s = read_u64(r)?;
            if s >= sigma {
                return Err(bad_data("wavelet tree symbol out of alphabet"));
            }
            syms.push(s);
        }
        Ok(WaveletTree::new(&syms, sigma))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist>(x: &T) -> T {
        let mut buf = Vec::new();
        x.write_to(&mut buf).unwrap();
        T::read_from(&mut buf.as_slice()).unwrap()
    }

    #[test]
    fn bitvec_roundtrip() {
        let bv = BitVec::from_bits((0..300).map(|i| i % 7 == 0));
        let back = roundtrip(&bv);
        assert_eq!(bv, back);
        let empty = roundtrip(&BitVec::new());
        assert!(empty.is_empty());
    }

    #[test]
    fn rank_select_roundtrip() {
        let rs = RankSelect::new(BitVec::from_bits((0..1000).map(|i| i % 3 == 1)));
        let back = roundtrip(&rs);
        assert_eq!(rs.len(), back.len());
        for i in (0..=1000).step_by(37) {
            assert_eq!(rs.rank1(i), back.rank1(i));
        }
    }

    /// The serialized bytes are the *bits*, not the directory: a
    /// `RankSelect` must serialize byte-for-byte like the `BitVec` it was
    /// built from (modulo the magic tag), so structures written before
    /// the interleaved/sampled directory layout load unchanged and
    /// vice versa — loading always rebuilds the directories.
    #[test]
    fn rank_select_bytes_match_bitvec_payload() {
        let bv = BitVec::from_bits((0..900).map(|i| i % 7 == 2 || i % 13 == 0));
        let rs = RankSelect::new(bv.clone());
        let mut rs_bytes = Vec::new();
        rs.write_to(&mut rs_bytes).unwrap();
        let mut bv_bytes = Vec::new();
        bv.write_to(&mut bv_bytes).unwrap();
        assert_eq!(&rs_bytes[4..], &bv_bytes[4..], "payloads diverge");
        // And a custom select sampling rate never leaks into the bytes.
        let resampled = RankSelect::with_select_sample(bv, 64);
        let mut resampled_bytes = Vec::new();
        resampled.write_to(&mut resampled_bytes).unwrap();
        assert_eq!(rs_bytes, resampled_bytes);
    }

    /// Serialization is idempotent across a load: write → read → write
    /// yields identical bytes (directories are derived state only).
    #[test]
    fn rank_select_write_read_write_is_stable() {
        let rs = RankSelect::new(BitVec::from_bits((0..3000).map(|i| i % 5 != 3)));
        let mut first = Vec::new();
        rs.write_to(&mut first).unwrap();
        let back = RankSelect::read_from(&mut first.as_slice()).unwrap();
        let mut second = Vec::new();
        back.write_to(&mut second).unwrap();
        assert_eq!(first, second);
    }

    /// A future format bump must fail in an old binary with an error that
    /// names both versions, not a decode panic.
    #[test]
    fn future_format_version_is_a_clear_error() {
        let rs = RankSelect::new(BitVec::from_bits((0..100).map(|i| i % 2 == 0)));
        let mut buf = Vec::new();
        rs.write_to(&mut buf).unwrap();
        buf[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        let err = RankSelect::read_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("{}", FORMAT_VERSION + 1))
                && msg.contains(&format!("expected {FORMAT_VERSION}")),
            "unhelpful version error: {msg}"
        );
    }

    #[test]
    fn int_vec_roundtrip() {
        let v = IntVec::from_slice(&[0, 5, 1023, 7, 512]);
        let back = roundtrip(&v);
        assert_eq!(
            v.iter().collect::<Vec<_>>(),
            back.iter().collect::<Vec<_>>()
        );
        assert_eq!(v.width(), back.width());
    }

    #[test]
    fn wavelet_roundtrips() {
        let syms: Vec<u64> = (0..200).map(|i| (i * 17) % 50).collect();
        let wm = WaveletMatrix::new(&syms, 50);
        let back = roundtrip(&wm);
        for i in 0..200 {
            assert_eq!(wm.access(i), back.access(i));
        }
        let wt = WaveletTree::new(&syms, 50);
        let back = roundtrip(&wt);
        for i in 0..200 {
            assert_eq!(wt.access(i), back.access(i));
        }
    }

    #[test]
    fn corrupted_inputs_fail_cleanly() {
        let bv = BitVec::from_bits((0..64).map(|i| i % 2 == 0));
        let mut buf = Vec::new();
        bv.write_to(&mut buf).unwrap();

        // Wrong magic.
        let mut bad = buf.clone();
        bad[0] ^= 0xFF;
        assert!(BitVec::read_from(&mut bad.as_slice()).is_err());

        // Wrong version.
        let mut bad = buf.clone();
        bad[4] ^= 0xFF;
        assert!(BitVec::read_from(&mut bad.as_slice()).is_err());

        // Truncated payload.
        let bad = &buf[..buf.len() - 3];
        assert!(BitVec::read_from(&mut &bad[..]).is_err());

        // Absurd length.
        let mut bad = buf.clone();
        bad[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(BitVec::read_from(&mut bad.as_slice()).is_err());

        // Wavelet matrix with symbol out of alphabet.
        let wm = WaveletMatrix::new(&[1, 2, 3], 4);
        let mut buf = Vec::new();
        wm.write_to(&mut buf).unwrap();
        let n = buf.len();
        buf[n - 8..].copy_from_slice(&9u64.to_le_bytes());
        assert!(WaveletMatrix::read_from(&mut buf.as_slice()).is_err());
    }
}
