//! The classical pointer-based wavelet tree (Grossi, Gupta, Vitter \[23\]).
//!
//! A balanced binary tree over the alphabet `[0, σ)`; each internal node
//! stores one bit per element of the subsequence it represents (§3.5 of the
//! paper). This implementation favours clarity: it is the reference the
//! [`crate::WaveletMatrix`] is cross-validated against, and the subject of
//! the wavelet-tree-vs-wavelet-matrix ablation (DESIGN.md A2).

use crate::{BitVec, RankSelect, SpaceUsage};

/// A wavelet tree over a sequence of symbols in `[0, sigma)`.
#[derive(Clone, Debug)]
pub struct WaveletTree {
    root: Option<Box<Node>>,
    len: usize,
    sigma: u64,
}

#[derive(Clone, Debug)]
struct Node {
    /// `bits[i] == true` iff the i-th element of this node's subsequence
    /// belongs to the upper half of the node's symbol range.
    bits: RankSelect,
    left: Option<Box<Node>>,
    right: Option<Box<Node>>,
}

impl WaveletTree {
    /// Builds a wavelet tree for `symbols`, all of which must be `< sigma`.
    ///
    /// # Panics
    /// Panics if `sigma == 0` or any symbol is out of range.
    pub fn new(symbols: &[u64], sigma: u64) -> Self {
        assert!(sigma > 0, "alphabet must be non-empty");
        for &s in symbols {
            assert!(s < sigma, "symbol {s} out of alphabet range [0, {sigma})");
        }
        let root = build(symbols, 0, sigma);
        Self {
            root,
            len: symbols.len(),
            sigma,
        }
    }

    /// Sequence length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Alphabet size.
    #[inline]
    pub fn sigma(&self) -> u64 {
        self.sigma
    }

    /// The symbol at position `i`, in *O*(log σ).
    pub fn access(&self, i: usize) -> u64 {
        assert!(
            i < self.len,
            "position {i} out of bounds (len {})",
            self.len
        );
        let (mut lo, mut hi) = (0u64, self.sigma);
        let mut node = self.root.as_deref();
        let mut i = i;
        while hi - lo > 1 {
            let n = node.expect("non-empty range must have a node");
            let mid = lo + (hi - lo) / 2;
            if n.bits.get(i) {
                i = n.bits.rank1(i);
                lo = mid;
                node = n.right.as_deref();
            } else {
                i = n.bits.rank0(i);
                hi = mid;
                node = n.left.as_deref();
            }
        }
        lo
    }

    /// Number of occurrences of `sym` in `[0, i)`, in *O*(log σ).
    pub fn rank(&self, sym: u64, i: usize) -> usize {
        assert!(i <= self.len);
        assert!(sym < self.sigma);
        let (mut lo, mut hi) = (0u64, self.sigma);
        let mut node = self.root.as_deref();
        let mut i = i;
        while hi - lo > 1 {
            let Some(n) = node else { return 0 };
            let mid = lo + (hi - lo) / 2;
            if sym >= mid {
                i = n.bits.rank1(i);
                lo = mid;
                node = n.right.as_deref();
            } else {
                i = n.bits.rank0(i);
                hi = mid;
                node = n.left.as_deref();
            }
        }
        i
    }

    /// Position of the `k`-th occurrence of `sym` (0-based), or `None`.
    pub fn select(&self, sym: u64, k: usize) -> Option<usize> {
        assert!(sym < self.sigma);
        select_rec(self.root.as_deref(), 0, self.sigma, sym, k)
    }

    /// Calls `f(sym, rank_b, rank_e)` once per distinct symbol in
    /// `[b, e)`, in increasing symbol order, where `rank_b = rank(sym, b)`
    /// and `rank_e = rank(sym, e)`. Runs in *O*(log σ) per reported symbol
    /// (the warm-up algorithm at the end of §3.5).
    pub fn range_distinct<F: FnMut(u64, usize, usize)>(&self, b: usize, e: usize, f: &mut F) {
        assert!(b <= e && e <= self.len);
        distinct_rec(self.root.as_deref(), 0, self.sigma, b, e, f);
    }

    /// Number of distinct symbols in `[b, e)`.
    pub fn count_distinct(&self, b: usize, e: usize) -> usize {
        let mut n = 0;
        self.range_distinct(b, e, &mut |_, _, _| n += 1);
        n
    }

    /// Symbols occurring in **both** ranges, with their rank offsets in each:
    /// `(sym, (rank_b1, rank_e1), (rank_b2, rank_e2))`. This is the wavelet
    /// tree intersection of \[21\] used by the paper's `v /v` fast path (§5).
    pub fn range_intersect(
        &self,
        r1: (usize, usize),
        r2: (usize, usize),
    ) -> Vec<crate::wavelet_matrix::IntersectionHit> {
        assert!(r1.0 <= r1.1 && r1.1 <= self.len);
        assert!(r2.0 <= r2.1 && r2.1 <= self.len);
        let mut out = Vec::new();
        intersect_rec(self.root.as_deref(), 0, self.sigma, r1, r2, &mut out);
        out
    }

    /// The smallest symbol `>= x` occurring in `[b, e)`, with its rank
    /// offsets, or `None`. The primitive behind leapfrog seeks.
    pub fn range_next_value(&self, b: usize, e: usize, x: u64) -> Option<(u64, usize, usize)> {
        assert!(b <= e && e <= self.len);
        next_value_rec(self.root.as_deref(), 0, self.sigma, b, e, x)
    }

    /// Number of occurrences of symbols in `[lo, hi)` within positions
    /// `[b, e)` (cf. [`crate::WaveletMatrix::range_count_within`]).
    pub fn range_count_within(&self, b: usize, e: usize, lo: u64, hi: u64) -> usize {
        assert!(b <= e && e <= self.len);
        count_within_rec(
            self.root.as_deref(),
            0,
            self.sigma,
            b,
            e,
            lo,
            hi.min(self.sigma),
        )
    }

    /// The `k`-th smallest symbol (0-based, with multiplicity) in `[b, e)`.
    ///
    /// # Panics
    /// Panics if `k >= e - b`.
    pub fn range_quantile(&self, b: usize, e: usize, k: usize) -> u64 {
        assert!(b <= e && e <= self.len);
        assert!(
            k < e - b,
            "quantile index {k} out of range of size {}",
            e - b
        );
        let (mut lo, mut hi) = (0u64, self.sigma);
        let mut node = self.root.as_deref();
        let (mut b, mut e, mut k) = (b, e, k);
        while hi - lo > 1 {
            let n = node.expect("non-empty range requires a node");
            let mid = lo + (hi - lo) / 2;
            let (b0, e0) = (n.bits.rank0(b), n.bits.rank0(e));
            let zeros_here = e0 - b0;
            if k < zeros_here {
                hi = mid;
                b = b0;
                e = e0;
                node = n.left.as_deref();
            } else {
                k -= zeros_here;
                b -= b0;
                e -= e0;
                lo = mid;
                node = n.right.as_deref();
            }
        }
        lo
    }
}

fn count_within_rec(
    node: Option<&Node>,
    node_lo: u64,
    node_hi: u64,
    b: usize,
    e: usize,
    lo: u64,
    hi: u64,
) -> usize {
    if b >= e || node_hi <= lo || node_lo >= hi {
        return 0;
    }
    if lo <= node_lo && node_hi <= hi {
        return e - b;
    }
    let n = node.expect("partially covered non-empty range requires a node");
    let mid = node_lo + (node_hi - node_lo) / 2;
    let (b0, e0) = (n.bits.rank0(b), n.bits.rank0(e));
    count_within_rec(n.left.as_deref(), node_lo, mid, b0, e0, lo, hi)
        + count_within_rec(n.right.as_deref(), mid, node_hi, b - b0, e - e0, lo, hi)
}

fn build(symbols: &[u64], lo: u64, hi: u64) -> Option<Box<Node>> {
    if symbols.is_empty() || hi - lo <= 1 {
        return None;
    }
    let mid = lo + (hi - lo) / 2;
    let bits = BitVec::from_bits(symbols.iter().map(|&s| s >= mid));
    let left_syms: Vec<u64> = symbols.iter().copied().filter(|&s| s < mid).collect();
    let right_syms: Vec<u64> = symbols.iter().copied().filter(|&s| s >= mid).collect();
    Some(Box::new(Node {
        bits: RankSelect::new(bits),
        left: build(&left_syms, lo, mid),
        right: build(&right_syms, mid, hi),
    }))
}

fn select_rec(node: Option<&Node>, lo: u64, hi: u64, sym: u64, k: usize) -> Option<usize> {
    if hi - lo <= 1 {
        // Conceptual leaf: position within the leaf is k itself; validity is
        // checked by the parent's select.
        return Some(k);
    }
    let n = node?;
    let mid = lo + (hi - lo) / 2;
    if sym < mid {
        let k2 = select_rec(n.left.as_deref(), lo, mid, sym, k)?;
        n.bits.select0(k2)
    } else {
        let k2 = select_rec(n.right.as_deref(), mid, hi, sym, k)?;
        n.bits.select1(k2)
    }
}

fn distinct_rec<F: FnMut(u64, usize, usize)>(
    node: Option<&Node>,
    lo: u64,
    hi: u64,
    b: usize,
    e: usize,
    f: &mut F,
) {
    if b >= e {
        return;
    }
    if hi - lo <= 1 {
        f(lo, b, e);
        return;
    }
    let n = node.expect("non-empty interval requires a node");
    let (b0, e0) = (n.bits.rank0(b), n.bits.rank0(e));
    let mid = lo + (hi - lo) / 2;
    distinct_rec(n.left.as_deref(), lo, mid, b0, e0, f);
    distinct_rec(n.right.as_deref(), mid, hi, b - b0, e - e0, f);
}

type Intersection = (u64, (usize, usize), (usize, usize));

fn intersect_rec(
    node: Option<&Node>,
    lo: u64,
    hi: u64,
    r1: (usize, usize),
    r2: (usize, usize),
    out: &mut Vec<Intersection>,
) {
    if r1.0 >= r1.1 || r2.0 >= r2.1 {
        return;
    }
    if hi - lo <= 1 {
        out.push((lo, r1, r2));
        return;
    }
    let n = node.expect("non-empty interval requires a node");
    let mid = lo + (hi - lo) / 2;
    let l1 = (n.bits.rank0(r1.0), n.bits.rank0(r1.1));
    let l2 = (n.bits.rank0(r2.0), n.bits.rank0(r2.1));
    intersect_rec(n.left.as_deref(), lo, mid, l1, l2, out);
    let h1 = (r1.0 - l1.0, r1.1 - l1.1);
    let h2 = (r2.0 - l2.0, r2.1 - l2.1);
    intersect_rec(n.right.as_deref(), mid, hi, h1, h2, out);
}

fn next_value_rec(
    node: Option<&Node>,
    lo: u64,
    hi: u64,
    b: usize,
    e: usize,
    x: u64,
) -> Option<(u64, usize, usize)> {
    if b >= e || hi <= x {
        return None;
    }
    if hi - lo <= 1 {
        return Some((lo, b, e));
    }
    let n = node?;
    let mid = lo + (hi - lo) / 2;
    let (b0, e0) = (n.bits.rank0(b), n.bits.rank0(e));
    if x < mid {
        if let Some(hit) = next_value_rec(n.left.as_deref(), lo, mid, b0, e0, x) {
            return Some(hit);
        }
    }
    next_value_rec(n.right.as_deref(), mid, hi, b - b0, e - e0, x)
}

impl SpaceUsage for WaveletTree {
    fn size_bytes(&self) -> usize {
        fn rec(node: Option<&Node>) -> usize {
            match node {
                None => 0,
                Some(n) => {
                    std::mem::size_of::<Node>()
                        + n.bits.size_bytes()
                        + rec(n.left.as_deref())
                        + rec(n.right.as_deref())
                }
            }
        }
        rec(self.root.as_deref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize, sigma: u64) -> Vec<u64> {
        (0..n)
            .map(|i| ((i as u64).wrapping_mul(2654435761) ^ (i as u64) << 3) % sigma)
            .collect()
    }

    #[test]
    fn access_matches_input() {
        let syms = sample(600, 37);
        let wt = WaveletTree::new(&syms, 37);
        for (i, &s) in syms.iter().enumerate() {
            assert_eq!(wt.access(i), s, "position {i}");
        }
    }

    #[test]
    fn rank_matches_naive() {
        let syms = sample(400, 13);
        let wt = WaveletTree::new(&syms, 13);
        for sym in 0..13 {
            for i in (0..=400).step_by(17) {
                let naive = syms[..i].iter().filter(|&&s| s == sym).count();
                assert_eq!(wt.rank(sym, i), naive, "rank({sym}, {i})");
            }
        }
    }

    #[test]
    fn select_inverts_rank() {
        let syms = sample(500, 9);
        let wt = WaveletTree::new(&syms, 9);
        for sym in 0..9 {
            let occ: Vec<usize> = (0..500).filter(|&i| syms[i] == sym).collect();
            for (k, &pos) in occ.iter().enumerate() {
                assert_eq!(wt.select(sym, k), Some(pos), "select({sym}, {k})");
            }
            assert_eq!(wt.select(sym, occ.len()), None);
        }
    }

    #[test]
    fn range_distinct_matches_naive() {
        let syms = sample(300, 21);
        let wt = WaveletTree::new(&syms, 21);
        for (b, e) in [(0, 300), (10, 11), (50, 150), (299, 300), (100, 100)] {
            let mut got = Vec::new();
            wt.range_distinct(b, e, &mut |sym, rb, re| got.push((sym, rb, re)));
            let mut expected: Vec<(u64, usize, usize)> = (0..21)
                .filter_map(|sym| {
                    let rb = syms[..b].iter().filter(|&&s| s == sym).count();
                    let re = syms[..e].iter().filter(|&&s| s == sym).count();
                    (re > rb).then_some((sym, rb, re))
                })
                .collect();
            expected.sort();
            assert_eq!(got, expected, "range [{b}, {e})");
        }
    }

    #[test]
    fn intersect_matches_naive() {
        let syms = sample(256, 11);
        let wt = WaveletTree::new(&syms, 11);
        let (r1, r2) = ((5usize, 100usize), (80usize, 200usize));
        let got = wt.range_intersect(r1, r2);
        let mut expected = Vec::new();
        for sym in 0..11u64 {
            let c = |b: usize, e: usize| syms[b..e].iter().filter(|&&s| s == sym).count();
            if c(r1.0, r1.1) > 0 && c(r2.0, r2.1) > 0 {
                expected.push(sym);
            }
        }
        assert_eq!(got.iter().map(|t| t.0).collect::<Vec<_>>(), expected);
        for (sym, (rb1, re1), (rb2, re2)) in got {
            assert_eq!(rb1, wt.rank(sym, r1.0));
            assert_eq!(re1, wt.rank(sym, r1.1));
            assert_eq!(rb2, wt.rank(sym, r2.0));
            assert_eq!(re2, wt.rank(sym, r2.1));
        }
    }

    #[test]
    fn next_value_matches_naive() {
        let syms = sample(222, 19);
        let wt = WaveletTree::new(&syms, 19);
        for x in 0..20 {
            for (b, e) in [(0usize, 222usize), (30, 60), (100, 101)] {
                let expected = syms[b..e].iter().copied().filter(|&s| s >= x).min();
                let got = wt.range_next_value(b, e, x).map(|t| t.0);
                assert_eq!(got, expected, "next_value x={x} range [{b},{e})");
            }
        }
    }

    #[test]
    fn count_within_and_quantile_match_naive() {
        let syms = sample(240, 17);
        let wt = WaveletTree::new(&syms, 17);
        for (b, e) in [(0usize, 240usize), (40, 130), (200, 203)] {
            for (lo, hi) in [(0u64, 17u64), (3, 9), (16, 17), (8, 8)] {
                let naive = syms[b..e].iter().filter(|&&s| s >= lo && s < hi).count();
                assert_eq!(wt.range_count_within(b, e, lo, hi), naive);
            }
            let mut sorted: Vec<u64> = syms[b..e].to_vec();
            sorted.sort_unstable();
            for (k, &expected) in sorted.iter().enumerate() {
                assert_eq!(wt.range_quantile(b, e, k), expected, "k={k} [{b},{e})");
            }
        }
    }

    #[test]
    fn single_symbol_alphabet() {
        let syms = vec![0u64; 50];
        let wt = WaveletTree::new(&syms, 1);
        assert_eq!(wt.access(10), 0);
        assert_eq!(wt.rank(0, 50), 50);
        assert_eq!(wt.select(0, 49), Some(49));
        assert_eq!(wt.count_distinct(0, 50), 1);
    }

    #[test]
    fn empty_sequence() {
        let wt = WaveletTree::new(&[], 8);
        assert!(wt.is_empty());
        assert_eq!(wt.rank(3, 0), 0);
        assert_eq!(wt.select(3, 0), None);
        assert_eq!(wt.count_distinct(0, 0), 0);
    }
}
