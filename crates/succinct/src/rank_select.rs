//! Immutable bit vector with constant-time `rank` and fast `select`.
//!
//! Layout (interleaved, sdsl `rank_support_v`-style): per 512-bit
//! superblock, one `u64` absolute cumulative count plus one `u64` packing
//! seven 9-bit sub-block counters (cumulative popcounts of the first
//! 1..=7 words). `rank` is then two directory reads and a single masked
//! popcount — true *O*(1), as in the structures of Clark \[10\] and Munro
//! \[39\] the paper cites. Space overhead: 2 words per 8 words of bits
//! (25 %). `select` binary-searches the directory and finishes with an
//! in-word binary select.

use crate::{BitVec, SpaceUsage};

const WORDS_PER_SUPER: usize = 8; // 512-bit superblocks

/// An immutable bit vector supporting `rank` and `select`.
#[derive(Clone, Debug)]
pub struct RankSelect {
    words: Vec<u64>,
    len: usize,
    /// `abs[i]` = ones strictly before superblock `i`; final entry = total.
    abs: Vec<u64>,
    /// `subs[i]` packs, in 9-bit fields, the cumulative popcounts of the
    /// first 1..=7 words of superblock `i`.
    subs: Vec<u64>,
}

impl RankSelect {
    /// Builds the rank/select directory for `bits`.
    pub fn new(bits: BitVec) -> Self {
        let (words, len) = bits.into_raw();
        let n_super = words.len().div_ceil(WORDS_PER_SUPER);
        let mut abs = Vec::with_capacity(n_super + 1);
        let mut subs = Vec::with_capacity(n_super);
        let mut acc = 0u64;
        for chunk in words.chunks(WORDS_PER_SUPER) {
            abs.push(acc);
            let mut packed = 0u64;
            let mut within = 0u64;
            for (j, &w) in chunk.iter().enumerate() {
                within += w.count_ones() as u64;
                if j < 7 {
                    packed |= within << (9 * j);
                }
            }
            subs.push(packed);
            acc += within;
        }
        abs.push(acc);
        Self {
            words,
            len,
            abs,
            subs,
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        *self.abs.last().unwrap() as usize
    }

    /// Total number of clear bits.
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len - self.count_ones()
    }

    /// Returns the bit at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of ones in `[0, i)`. `i` may equal `len`. *O*(1): two
    /// directory loads and one masked popcount.
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len, "rank index {i} > len {}", self.len);
        if i == self.len {
            return self.count_ones();
        }
        let word = i / 64;
        let sup = word / WORDS_PER_SUPER;
        let j = word % WORDS_PER_SUPER;
        let mut r = self.abs[sup] as usize;
        if j > 0 {
            r += ((self.subs[sup] >> (9 * (j - 1))) & 0x1FF) as usize;
        }
        let rem = i % 64;
        if rem != 0 {
            r += (self.words[word] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        r
    }

    /// Number of zeros in `[0, i)`.
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Position of the `k`-th one (0-based): the returned position `p`
    /// satisfies `rank1(p) == k` and `get(p) == true`. Returns `None` if
    /// fewer than `k + 1` ones exist.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.count_ones() {
            return None;
        }
        let k64 = k as u64;
        // Superblock containing the (k+1)-th one.
        let sup = self.abs.partition_point(|&r| r <= k64) - 1;
        let mut remaining = k - self.abs[sup] as usize;
        // Sub-block via the packed counters.
        let packed = self.subs[sup];
        let mut j = 0;
        while j < 7 {
            let c = ((packed >> (9 * j)) & 0x1FF) as usize;
            if remaining < c {
                break;
            }
            j += 1;
        }
        if j > 0 {
            remaining -= ((packed >> (9 * (j - 1))) & 0x1FF) as usize;
        }
        let word = sup * WORDS_PER_SUPER + j;
        Some(word * 64 + select_in_word(self.words[word], remaining as u32) as usize)
    }

    /// Position of the `k`-th zero (0-based). Returns `None` if fewer than
    /// `k + 1` zeros exist.
    pub fn select0(&self, k: usize) -> Option<usize> {
        if k >= self.count_zeros() {
            return None;
        }
        let k64 = k as u64;
        let sup = self.zeros_directory_partition(k64);
        let mut remaining = k - (sup * WORDS_PER_SUPER * 64 - self.abs[sup] as usize);
        // Sub-block: zeros before word j of the superblock = 64*j - ones.
        let packed = self.subs[sup];
        let mut j = 0;
        while j < 7 {
            let ones = ((packed >> (9 * j)) & 0x1FF) as usize;
            let word_index = sup * WORDS_PER_SUPER + j + 1;
            if word_index > self.words.len() {
                break;
            }
            let zeros = 64 * (j + 1) - ones;
            if remaining < zeros {
                break;
            }
            j += 1;
        }
        if j > 0 {
            let ones = ((packed >> (9 * (j - 1))) & 0x1FF) as usize;
            remaining -= 64 * j - ones;
        }
        let word = sup * WORDS_PER_SUPER + j;
        let pos = word * 64 + select_in_word(!self.words[word], remaining as u32) as usize;
        debug_assert!(pos < self.len);
        Some(pos)
    }

    fn zeros_directory_partition(&self, k: u64) -> usize {
        // Largest superblock index whose preceding zero count is <= k.
        let mut lo = 0usize;
        let mut hi = self.abs.len() - 1;
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            let zeros_before = (mid * WORDS_PER_SUPER * 64) as u64 - self.abs[mid];
            if zeros_before <= k {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }

    /// The backing words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl SpaceUsage for RankSelect {
    fn size_bytes(&self) -> usize {
        self.words.capacity() * 8 + self.abs.capacity() * 8 + self.subs.capacity() * 8
    }
}

/// Position (0..64) of the `k`-th set bit of `w` (0-based). `w` must have
/// more than `k` set bits.
#[inline]
pub fn select_in_word(w: u64, k: u32) -> u32 {
    debug_assert!(w.count_ones() > k);
    let mut w = w;
    let mut k = k;
    let mut pos = 0u32;
    let mut width = 32u32;
    while width > 0 {
        let low = w & ((1u64 << width) - 1);
        let c = low.count_ones();
        if k >= c {
            k -= c;
            w >>= width;
            pos += width;
        } else {
            w = low;
        }
        width /= 2;
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank1(bits: &[bool], i: usize) -> usize {
        bits[..i].iter().filter(|&&b| b).count()
    }

    fn make(pattern: impl Fn(usize) -> bool, n: usize) -> (Vec<bool>, RankSelect) {
        let bits: Vec<bool> = (0..n).map(pattern).collect();
        let rs = RankSelect::new(BitVec::from_bits(bits.iter().copied()));
        (bits, rs)
    }

    #[test]
    fn rank_matches_naive() {
        let (bits, rs) = make(|i| i % 3 == 0 || i % 11 == 5, 3000);
        for i in 0..=3000 {
            assert_eq!(rs.rank1(i), naive_rank1(&bits, i), "rank1({i})");
            assert_eq!(rs.rank0(i), i - naive_rank1(&bits, i), "rank0({i})");
        }
        assert_eq!(rs.rank1(3000), rs.count_ones());
    }

    #[test]
    fn rank_dense_and_sparse() {
        let (bits, rs) = make(|_| true, 1333);
        for i in (0..=1333).step_by(11) {
            assert_eq!(rs.rank1(i), naive_rank1(&bits, i));
        }
        let (bits, rs) = make(|i| i == 512 || i == 1024, 1500);
        for i in (0..=1500).step_by(7) {
            assert_eq!(rs.rank1(i), naive_rank1(&bits, i));
        }
    }

    #[test]
    fn select1_inverts_rank1() {
        let (bits, rs) = make(|i| i % 5 == 1, 2500);
        let ones: Vec<usize> = (0..2500).filter(|&i| bits[i]).collect();
        for (k, &pos) in ones.iter().enumerate() {
            assert_eq!(rs.select1(k), Some(pos), "select1({k})");
            assert_eq!(rs.rank1(pos), k);
        }
        assert_eq!(rs.select1(ones.len()), None);
    }

    #[test]
    fn select0_inverts_rank0() {
        let (bits, rs) = make(|i| i % 4 != 2, 2048);
        let zeros: Vec<usize> = (0..2048).filter(|&i| !bits[i]).collect();
        for (k, &pos) in zeros.iter().enumerate() {
            assert_eq!(rs.select0(k), Some(pos), "select0({k})");
        }
        assert_eq!(rs.select0(zeros.len()), None);
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let (_, ones) = make(|_| true, 700);
        assert_eq!(ones.count_ones(), 700);
        assert_eq!(ones.select1(699), Some(699));
        assert_eq!(ones.select0(0), None);

        let (_, zeros) = make(|_| false, 700);
        assert_eq!(zeros.count_ones(), 0);
        assert_eq!(zeros.select0(699), Some(699));
        assert_eq!(zeros.select1(0), None);
    }

    #[test]
    fn empty_vector() {
        let rs = RankSelect::new(BitVec::new());
        assert_eq!(rs.len(), 0);
        assert_eq!(rs.rank1(0), 0);
        assert_eq!(rs.select1(0), None);
        assert_eq!(rs.select0(0), None);
    }

    #[test]
    fn select_in_word_all_positions() {
        let w = 0b1011_0100_1000_0001u64;
        let positions: Vec<u32> = (0..64).filter(|&i| (w >> i) & 1 == 1).collect();
        for (k, &p) in positions.iter().enumerate() {
            assert_eq!(select_in_word(w, k as u32), p);
        }
        assert_eq!(select_in_word(u64::MAX, 63), 63);
        assert_eq!(select_in_word(1 << 63, 0), 63);
    }

    #[test]
    fn superblock_boundaries() {
        // Ones exactly at superblock boundaries (multiples of 512).
        let (bits, rs) = make(|i| i % 512 == 0, 512 * 5 + 3);
        for i in 0..=(512 * 5 + 3) {
            assert_eq!(rs.rank1(i), naive_rank1(&bits, i), "rank1({i})");
        }
        for k in 0..rs.count_ones() {
            assert_eq!(rs.select1(k), Some(k * 512));
        }
    }

    #[test]
    fn partial_final_superblock() {
        // Length not a multiple of 512 with ones in the tail words.
        let (bits, rs) = make(|i| i % 2 == 0, 512 + 200);
        for i in 0..=(512 + 200) {
            assert_eq!(rs.rank1(i), naive_rank1(&bits, i), "rank1({i})");
        }
        let ones: Vec<usize> = (0..712).filter(|&i| bits[i]).collect();
        for (k, &pos) in ones.iter().enumerate() {
            assert_eq!(rs.select1(k), Some(pos));
        }
    }
}
