//! Immutable bit vector with constant-time `rank` and sampled-select.
//!
//! Layout (fully interleaved): the bits and their rank directory live in
//! **one** array. Each 512-bit superblock occupies ten consecutive words
//! — one `u64` absolute cumulative count, one `u64` packing seven 9-bit
//! sub-block counters (cumulative popcounts of the first 1..=7 words),
//! then the eight payload words. A `rank` therefore touches a single
//! superblock record (two cache lines at worst, one when the queried
//! word sits early in the block) instead of three separate arrays —
//! true *O*(1), as in the structures of Clark \[10\] and Munro \[39\]
//! the paper cites. Space overhead: 2 words per 8 words of bits (25 %).
//!
//! `select1`/`select0` use a **sampled directory**: the superblock of
//! every `sample_rate`-th one (zero) is recorded, so a query is one
//! sample lookup, a short superblock hunt bounded by the sample window
//! (linear when the window is small, binary otherwise), a sub-block
//! scan over the packed counters, and a branch-free broadword in-word
//! select. [`RankSelect::rank1_pair`] answers both ends of a range from
//! one directory probe when they share a superblock — the common case
//! in wavelet-matrix traversals over small ranges.

use crate::storage::Slab;
use crate::{BitVec, SpaceUsage};

const WORDS_PER_SUPER: usize = 8; // 512-bit superblocks
/// Words per interleaved superblock record: absolute count, packed
/// sub-block counters, then the payload words.
const SUPER_STRIDE: usize = WORDS_PER_SUPER + 2;
const BITS_PER_SUPER: usize = WORDS_PER_SUPER * 64;

/// Bounds for the **adaptive** select sampling rate [`RankSelect::new`]
/// picks: the rate is chosen per bit kind so that the expected hunt
/// window is ~2 superblocks (≈ 2 directory probes per select) while the
/// sample directory stays a fraction of a percent of the bits.
/// [`RankSelect::with_select_sample`] overrides it.
pub const MIN_SELECT_SAMPLE: usize = 16;
/// Upper bound of the adaptive sampling rate.
pub const MAX_SELECT_SAMPLE: usize = 1 << 16;
/// Target hunt-window width, in superblocks.
const TARGET_WINDOW: usize = 1;

/// Window length up to which the superblock hunt scans linearly; longer
/// windows binary-search (sparse or highly skewed vectors).
const LINEAR_HUNT: usize = 8;

/// An immutable bit vector supporting `rank` and `select`.
#[derive(Clone, Debug)]
pub struct RankSelect {
    /// Interleaved superblock records: `[abs, subs, w0..w7]` per block.
    /// `abs` = ones strictly before the block; `subs` packs, in 9-bit
    /// fields, the cumulative popcounts of the block's first 1..=7 words.
    /// A [`Slab`] so a mapped index file can back it in place.
    data: Slab<u64>,
    len: usize,
    n_ones: usize,
    /// `select1_samples[m]` = superblock holding the `m·rate1`-th one.
    select1_samples: Slab<u32>,
    /// `select0_samples[m]` = superblock holding the `m·rate0`-th zero.
    select0_samples: Slab<u32>,
    rate1: usize,
    rate0: usize,
}

impl RankSelect {
    /// Builds the rank/select directories for `bits`, picking the select
    /// sampling rate adaptively per bit kind: every
    /// `TARGET_WINDOW · 512 · density`-th position is sampled (clamped to
    /// `[MIN_SELECT_SAMPLE, MAX_SELECT_SAMPLE]`), so the superblock hunt
    /// is ~2 probes at any density.
    pub fn new(bits: BitVec) -> Self {
        Self::build(bits, None)
    }

    /// Builds with an explicit select sampling rate (`>= 1`) for both bit
    /// kinds: the superblock of every `sample_rate`-th one/zero is
    /// indexed. This is the space/time knob of the select directory;
    /// [`Self::new`] picks it adaptively.
    pub fn with_select_sample(bits: BitVec, sample_rate: usize) -> Self {
        assert!(sample_rate >= 1, "select sample rate must be positive");
        Self::build(bits, Some(sample_rate))
    }

    fn build(bits: BitVec, sample_rate: Option<usize>) -> Self {
        let (words, len) = bits.into_raw();
        let n_super = words.len().div_ceil(WORDS_PER_SUPER);
        let mut data = Vec::with_capacity(n_super * SUPER_STRIDE);
        let mut acc = 0u64;
        for chunk in words.chunks(WORDS_PER_SUPER) {
            data.push(acc);
            let mut packed = 0u64;
            let mut within = 0u64;
            for (j, &w) in chunk.iter().enumerate() {
                within += w.count_ones() as u64;
                if j < 7 {
                    packed |= within << (9 * j);
                }
            }
            // Saturate the trailing fields of a partial final block so the
            // branch-free sub-block comparisons see a nondecreasing
            // cumulative sequence, not zeros.
            for j in chunk.len()..7 {
                packed |= within << (9 * j);
            }
            data.push(packed);
            data.extend_from_slice(chunk);
            // Zero-pad the final block so every record has eight words.
            data.resize(data.len() + (WORDS_PER_SUPER - chunk.len()), 0);
            acc += within;
        }
        let n_ones = acc as usize;
        let adaptive = |count: usize| {
            (TARGET_WINDOW * BITS_PER_SUPER * count / len.max(1))
                .clamp(MIN_SELECT_SAMPLE, MAX_SELECT_SAMPLE)
        };
        let rate1 = sample_rate.unwrap_or_else(|| adaptive(n_ones));
        let rate0 = sample_rate.unwrap_or_else(|| adaptive(len - n_ones));
        let mut rs = Self {
            data: data.into(),
            len,
            n_ones,
            select1_samples: Slab::new(),
            select0_samples: Slab::new(),
            rate1,
            rate0,
        };
        let (s1, s0) = rs.compute_select_samples();
        rs.select1_samples = s1.into();
        rs.select0_samples = s0.into();
        rs
    }

    fn compute_select_samples(&self) -> (Vec<u32>, Vec<u32>) {
        let n_super = self.n_super();
        let mut sel1 = Vec::new();
        let mut sel0 = Vec::new();
        let mut next1 = 0usize;
        let mut next0 = 0usize;
        let n_zeros = self.count_zeros();
        for s in 0..n_super {
            let ones_before = self.abs(s);
            let ones_after = if s + 1 < n_super {
                self.abs(s + 1)
            } else {
                self.n_ones
            };
            while next1 < self.n_ones && next1 < ones_after {
                debug_assert!(next1 >= ones_before);
                sel1.push(s as u32);
                next1 += self.rate1;
            }
            // Zeros are counted over the logical length only; the final
            // (partial) superblock holds all remaining zeros.
            let zeros_before = s * BITS_PER_SUPER - ones_before;
            let zeros_after = if s + 1 < n_super {
                (s + 1) * BITS_PER_SUPER - ones_after
            } else {
                n_zeros
            };
            let zeros_after = zeros_after.min(n_zeros);
            while next0 < n_zeros && next0 < zeros_after {
                debug_assert!(next0 >= zeros_before);
                sel0.push(s as u32);
                next0 += self.rate0;
            }
        }
        (sel1, sel0)
    }

    /// Internal views of the directory arrays, for the mapped on-disk
    /// format writer ([`crate::mapped`]).
    pub(crate) fn raw_parts(&self) -> (&Slab<u64>, &Slab<u32>, &Slab<u32>) {
        (&self.data, &self.select1_samples, &self.select0_samples)
    }

    /// Reassembles a vector from stored parts — the mapped-format load
    /// path, where the slabs may point straight into a mapped file.
    ///
    /// Performs the structural validation that keeps queries in bounds
    /// (sizes, rates, sample counts/monotonicity); in debug builds it
    /// additionally re-derives the whole directory from the payload
    /// words ([`Self::verify_deep`]), which an always-on check can't
    /// afford because it would fault in every page of a mapped index.
    pub(crate) fn from_raw_parts(
        data: Slab<u64>,
        len: usize,
        n_ones: usize,
        select1_samples: Slab<u32>,
        select0_samples: Slab<u32>,
        rate1: usize,
        rate0: usize,
    ) -> Result<Self, &'static str> {
        let n_super = len.div_ceil(64).div_ceil(WORDS_PER_SUPER);
        if data.len() != n_super * SUPER_STRIDE {
            return Err("rank/select data length does not match bit length");
        }
        if n_ones > len {
            return Err("rank/select one-count exceeds bit length");
        }
        if rate1 == 0 || rate0 == 0 {
            return Err("rank/select sample rate must be positive");
        }
        let expect = |count: usize, rate: usize| count.div_ceil(rate);
        if select1_samples.len() != expect(n_ones, rate1)
            || select0_samples.len() != expect(len - n_ones, rate0)
        {
            return Err("rank/select sample directory has wrong length");
        }
        for samples in [&select1_samples, &select0_samples] {
            let mut prev = 0u32;
            for &s in samples.iter() {
                if (s as usize) >= n_super || s < prev {
                    return Err("rank/select sample directory is not monotone in range");
                }
                prev = s;
            }
        }
        let rs = Self {
            data,
            len,
            n_ones,
            select1_samples,
            select0_samples,
            rate1,
            rate0,
        };
        #[cfg(debug_assertions)]
        rs.verify_deep()?;
        Ok(rs)
    }

    /// Recomputes the full rank directory and both select directories
    /// from the payload words and compares them with the stored ones.
    /// O(data) — debug builds and tests only.
    #[allow(dead_code)]
    pub(crate) fn verify_deep(&self) -> Result<(), &'static str> {
        let mut acc = 0u64;
        for s in 0..self.n_super() {
            let base = s * SUPER_STRIDE;
            if self.data[base] != acc {
                return Err("rank directory absolute count mismatch");
            }
            let mut packed = 0u64;
            let mut within = 0u64;
            for j in 0..WORDS_PER_SUPER {
                within += self.data[base + 2 + j].count_ones() as u64;
                if j < 7 {
                    packed |= within << (9 * j);
                }
            }
            if self.data[base + 1] != packed {
                return Err("rank directory sub-block counters mismatch");
            }
            acc += within;
        }
        if acc as usize != self.n_ones {
            return Err("rank directory total does not match one-count");
        }
        // Bits past the logical length must be zero (the build path's
        // zero padding); rank/select never read them but a nonzero tail
        // means the file was not produced by this writer.
        if !self.len.is_multiple_of(64) && self.n_bit_words() > 0 {
            let last = self.bit_word(self.n_bit_words() - 1);
            if last >> (self.len % 64) != 0 {
                return Err("bits past the logical length are not zero");
            }
        }
        for w in self.n_bit_words()..self.n_super() * WORDS_PER_SUPER {
            if self.bit_word(w) != 0 {
                return Err("superblock padding words are not zero");
            }
        }
        let (sel1, sel0) = self.compute_select_samples();
        if self.select1_samples[..] != sel1[..] || self.select0_samples[..] != sel0[..] {
            return Err("select sample directory mismatch");
        }
        Ok(())
    }

    #[inline]
    fn n_super(&self) -> usize {
        self.data.len() / SUPER_STRIDE
    }

    /// Absolute one-count before superblock `s`.
    #[inline]
    fn abs(&self, s: usize) -> usize {
        self.data[s * SUPER_STRIDE] as usize
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of set bits.
    #[inline]
    pub fn count_ones(&self) -> usize {
        self.n_ones
    }

    /// Total number of clear bits.
    #[inline]
    pub fn count_zeros(&self) -> usize {
        self.len - self.n_ones
    }

    /// The select sampling rates `(ones, zeros)` this vector was built
    /// with (equal when set explicitly, density-adapted otherwise).
    #[inline]
    pub fn select_sample_rates(&self) -> (usize, usize) {
        (self.rate1, self.rate0)
    }

    /// Returns the bit at `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.bit_word(i / 64) >> (i % 64)) & 1 == 1
    }

    /// The `w`-th payload word (64 bits of the vector), `w < n_bit_words`.
    #[inline]
    pub fn bit_word(&self, w: usize) -> u64 {
        self.data[(w / WORDS_PER_SUPER) * SUPER_STRIDE + 2 + (w % WORDS_PER_SUPER)]
    }

    /// Number of payload words (`⌈len/64⌉`).
    #[inline]
    pub fn n_bit_words(&self) -> usize {
        self.len.div_ceil(64)
    }

    /// Number of ones in `[0, i)`. `i` may equal `len`. *O*(1): one
    /// superblock record read and one masked popcount.
    #[inline]
    pub fn rank1(&self, i: usize) -> usize {
        debug_assert!(i <= self.len, "rank index {i} > len {}", self.len);
        if i == self.len {
            return self.n_ones;
        }
        let word = i / 64;
        let base = (word / WORDS_PER_SUPER) * SUPER_STRIDE;
        let j = word % WORDS_PER_SUPER;
        let mut r = self.data[base] as usize;
        if j > 0 {
            r += ((self.data[base + 1] >> (9 * (j - 1))) & 0x1FF) as usize;
        }
        let rem = i % 64;
        if rem != 0 {
            r += (self.data[base + 2 + j] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        r
    }

    /// Number of zeros in `[0, i)`.
    #[inline]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// `(rank1(b), rank1(e))` for `b <= e`, from a single directory probe
    /// when both positions fall in the same superblock — the common case
    /// for the short ranges a wavelet-matrix traversal produces.
    #[inline]
    pub fn rank1_pair(&self, b: usize, e: usize) -> (usize, usize) {
        debug_assert!(b <= e && e <= self.len);
        if e == self.len || b / BITS_PER_SUPER != e / BITS_PER_SUPER {
            return (self.rank1(b), self.rank1(e));
        }
        let base = (b / BITS_PER_SUPER) * SUPER_STRIDE;
        let abs = self.data[base] as usize;
        let subs = self.data[base + 1];
        let one = |i: usize| {
            let j = (i / 64) % WORDS_PER_SUPER;
            let mut r = abs;
            if j > 0 {
                r += ((subs >> (9 * (j - 1))) & 0x1FF) as usize;
            }
            let rem = i % 64;
            if rem != 0 {
                r += (self.data[base + 2 + j] & ((1u64 << rem) - 1)).count_ones() as usize;
            }
            r
        };
        (one(b), one(e))
    }

    /// `(rank0(b), rank0(e))`, sharing the directory probe like
    /// [`Self::rank1_pair`].
    #[inline]
    pub fn rank0_pair(&self, b: usize, e: usize) -> (usize, usize) {
        let (rb, re) = self.rank1_pair(b, e);
        (b - rb, e - re)
    }

    /// Whether `b` and `e` share a superblock (their rank pair costs one
    /// directory probe).
    #[inline]
    pub fn same_superblock(b: usize, e: usize) -> bool {
        b / BITS_PER_SUPER == e / BITS_PER_SUPER
    }

    /// Position of the `k`-th one (0-based): the returned position `p`
    /// satisfies `rank1(p) == k` and `get(p) == true`. Returns `None` if
    /// fewer than `k + 1` ones exist. Sample lookup + bounded superblock
    /// hunt + broadword in-word select.
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.n_ones {
            return None;
        }
        let m = k / self.rate1;
        let lo = self.select1_samples[m] as usize;
        let hi = self
            .select1_samples
            .get(m + 1)
            .map_or(self.n_super() - 1, |&s| s as usize);
        // Largest superblock with abs <= k within [lo, hi].
        let sup = self.hunt(lo, hi, |s| self.abs(s) <= k);
        let mut remaining = k - self.abs(sup);
        let base = sup * SUPER_STRIDE;
        let packed = self.data[base + 1];
        // Branch-free sub-block: count the 9-bit cumulative fields <= r.
        let j = uleq_step_9(packed, (remaining as u64) * ONES_STEP_9).count_ones() as usize;
        if j > 0 {
            remaining -= ((packed >> (9 * (j - 1))) & 0x1FF) as usize;
        }
        let word = sup * WORDS_PER_SUPER + j;
        Some(word * 64 + select_in_word(self.data[base + 2 + j], remaining as u32) as usize)
    }

    /// Position of the `k`-th zero (0-based). Returns `None` if fewer than
    /// `k + 1` zeros exist.
    pub fn select0(&self, k: usize) -> Option<usize> {
        if k >= self.count_zeros() {
            return None;
        }
        let m = k / self.rate0;
        let lo = self.select0_samples[m] as usize;
        let hi = self
            .select0_samples
            .get(m + 1)
            .map_or(self.n_super() - 1, |&s| s as usize);
        let zeros_before = |s: usize| s * BITS_PER_SUPER - self.abs(s);
        let sup = self.hunt(lo, hi, |s| zeros_before(s) <= k);
        let mut remaining = k - zeros_before(sup);
        let base = sup * SUPER_STRIDE;
        // Cumulative zero counts per sub-block: field-wise 64·(j+1) minus
        // the packed one counts (no borrows cross fields: ones <= 64·(j+1)).
        let zpacked = ZEROS_CUM_STEP_9 - self.data[base + 1];
        let j = uleq_step_9(zpacked, (remaining as u64) * ONES_STEP_9).count_ones() as usize;
        if j > 0 {
            remaining -= ((zpacked >> (9 * (j - 1))) & 0x1FF) as usize;
        }
        let word = sup * WORDS_PER_SUPER + j;
        let pos = word * 64 + select_in_word(!self.data[base + 2 + j], remaining as u32) as usize;
        debug_assert!(pos < self.len);
        Some(pos)
    }

    /// Largest `s` in `[lo, hi]` with `below(s)` true (`below` is
    /// monotone and true at `lo`): linear scan for short windows, binary
    /// search otherwise.
    #[inline]
    fn hunt(&self, lo: usize, hi: usize, below: impl Fn(usize) -> bool) -> usize {
        debug_assert!(below(lo));
        if hi - lo <= LINEAR_HUNT {
            let mut s = lo;
            while s < hi && below(s + 1) {
                s += 1;
            }
            return s;
        }
        let (mut lo, mut hi) = (lo, hi);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if below(mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }
}

impl SpaceUsage for RankSelect {
    fn size_bytes(&self) -> usize {
        // Mapped slabs report zero: their bytes belong to the page
        // cache, not this process's heap.
        self.data.heap_bytes()
            + self.select1_samples.heap_bytes()
            + self.select0_samples.heap_bytes()
    }
}

const ONES_STEP_8: u64 = 0x0101_0101_0101_0101;
const MSBS_STEP_8: u64 = 0x8080_8080_8080_8080;

/// 1 in the low bit of each of the seven 9-bit sub-block fields.
const ONES_STEP_9: u64 = 1 | (1 << 9) | (1 << 18) | (1 << 27) | (1 << 36) | (1 << 45) | (1 << 54);
/// Top bit (bit 8) of each 9-bit field.
const MSBS_STEP_9: u64 = 0x100 * ONES_STEP_9;
/// Field `j` holds `64 * (j + 1)`: the bit capacity of the first `j + 1`
/// words of a superblock, packed like the sub-block counters.
const ZEROS_CUM_STEP_9: u64 = {
    let mut v = 0u64;
    let mut j = 0;
    while j < 7 {
        v |= (64 * (j as u64 + 1)) << (9 * j);
        j += 1;
    }
    v
};

/// Per-field `x <= y` over the seven 9-bit lanes: returns the fields'
/// top bits set where the comparison holds (Vigna's `ULEQ_STEP_9`).
#[inline]
fn uleq_step_9(x: u64, y: u64) -> u64 {
    ((((y | MSBS_STEP_9) - (x & !MSBS_STEP_9)) | (x ^ y)) ^ (x & !y)) & MSBS_STEP_9
}

/// `SELECT_IN_BYTE[r * 256 + b]` = position of the `r`-th set bit of
/// byte `b` (entries with fewer than `r + 1` set bits are unused).
static SELECT_IN_BYTE: [u8; 2048] = build_select_in_byte();

const fn build_select_in_byte() -> [u8; 2048] {
    let mut t = [0u8; 2048];
    let mut b = 0usize;
    while b < 256 {
        let mut rank = 0usize;
        let mut i = 0usize;
        while i < 8 {
            if (b >> i) & 1 == 1 {
                t[rank * 256 + b] = i as u8;
                rank += 1;
            }
            i += 1;
        }
        b += 1;
    }
    t
}

/// Position (0..64) of the `k`-th set bit of `w` (0-based). `w` must have
/// more than `k` set bits. Branch-free broadword byte ranking (Vigna's
/// select-in-word) finished with a 2 KiB select-in-byte table.
#[inline]
pub fn select_in_word(w: u64, k: u32) -> u32 {
    debug_assert!(w.count_ones() > k);
    // Sideways addition: byte i of `byte_sums` = popcount of bytes 0..=i.
    let mut s = w - ((w >> 1) & 0x5555_5555_5555_5555);
    s = (s & 0x3333_3333_3333_3333) + ((s >> 2) & 0x3333_3333_3333_3333);
    s = (s + (s >> 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    let byte_sums = s.wrapping_mul(ONES_STEP_8);
    // Byte containing the k-th one: count bytes whose cumulative sum <= k.
    let k_step_8 = (k as u64) * ONES_STEP_8;
    let geq = ((k_step_8 | MSBS_STEP_8) - byte_sums) & MSBS_STEP_8;
    let place = ((geq >> 7).wrapping_mul(ONES_STEP_8) >> 53) & !0x7;
    let byte_rank = (k as u64) - (((byte_sums << 8) >> place) & 0xFF);
    let byte = (w >> place) & 0xFF;
    place as u32 + SELECT_IN_BYTE[(byte_rank as usize) * 256 + byte as usize] as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank1(bits: &[bool], i: usize) -> usize {
        bits[..i].iter().filter(|&&b| b).count()
    }

    fn make(pattern: impl Fn(usize) -> bool, n: usize) -> (Vec<bool>, RankSelect) {
        let bits: Vec<bool> = (0..n).map(pattern).collect();
        let rs = RankSelect::new(BitVec::from_bits(bits.iter().copied()));
        (bits, rs)
    }

    #[test]
    fn rank_matches_naive() {
        let (bits, rs) = make(|i| i % 3 == 0 || i % 11 == 5, 3000);
        for i in 0..=3000 {
            assert_eq!(rs.rank1(i), naive_rank1(&bits, i), "rank1({i})");
            assert_eq!(rs.rank0(i), i - naive_rank1(&bits, i), "rank0({i})");
        }
        assert_eq!(rs.rank1(3000), rs.count_ones());
    }

    #[test]
    fn rank_dense_and_sparse() {
        let (bits, rs) = make(|_| true, 1333);
        for i in (0..=1333).step_by(11) {
            assert_eq!(rs.rank1(i), naive_rank1(&bits, i));
        }
        let (bits, rs) = make(|i| i == 512 || i == 1024, 1500);
        for i in (0..=1500).step_by(7) {
            assert_eq!(rs.rank1(i), naive_rank1(&bits, i));
        }
    }

    #[test]
    fn rank1_pair_matches_two_ranks() {
        let (_, rs) = make(|i| i % 7 == 0 || i % 13 == 3, 4000);
        for b in (0..=4000).step_by(17) {
            for e in [b, b + 1, b + 63, b + 300, b + 700, 4000] {
                let e = e.min(4000);
                if e < b {
                    continue;
                }
                assert_eq!(
                    rs.rank1_pair(b, e),
                    (rs.rank1(b), rs.rank1(e)),
                    "rank1_pair({b}, {e})"
                );
                assert_eq!(rs.rank0_pair(b, e), (rs.rank0(b), rs.rank0(e)));
            }
        }
    }

    #[test]
    fn select1_inverts_rank1() {
        let (bits, rs) = make(|i| i % 5 == 1, 2500);
        let ones: Vec<usize> = (0..2500).filter(|&i| bits[i]).collect();
        for (k, &pos) in ones.iter().enumerate() {
            assert_eq!(rs.select1(k), Some(pos), "select1({k})");
            assert_eq!(rs.rank1(pos), k);
        }
        assert_eq!(rs.select1(ones.len()), None);
    }

    #[test]
    fn select0_inverts_rank0() {
        let (bits, rs) = make(|i| i % 4 != 2, 2048);
        let zeros: Vec<usize> = (0..2048).filter(|&i| !bits[i]).collect();
        for (k, &pos) in zeros.iter().enumerate() {
            assert_eq!(rs.select0(k), Some(pos), "select0({k})");
        }
        assert_eq!(rs.select0(zeros.len()), None);
    }

    #[test]
    fn select_with_small_sample_rates() {
        // Tiny rates exercise sample-window boundaries exactly.
        let bits: Vec<bool> = (0..6000).map(|i| i % 37 == 0 || i % 5 == 2).collect();
        for rate in [1, 2, 7, 64, 512] {
            let rs = RankSelect::with_select_sample(BitVec::from_bits(bits.iter().copied()), rate);
            assert_eq!(rs.select_sample_rates(), (rate, rate));
            let ones: Vec<usize> = (0..6000).filter(|&i| bits[i]).collect();
            for (k, &pos) in ones.iter().enumerate() {
                assert_eq!(rs.select1(k), Some(pos), "rate {rate} select1({k})");
            }
            let zeros: Vec<usize> = (0..6000).filter(|&i| !bits[i]).collect();
            for (k, &pos) in zeros.iter().enumerate().step_by(11) {
                assert_eq!(rs.select0(k), Some(pos), "rate {rate} select0({k})");
            }
        }
    }

    #[test]
    fn select_on_long_sparse_vector_hunts_binary() {
        // Ones far apart force sample windows wider than LINEAR_HUNT.
        let n = 200_000;
        let (bits, rs) = make(|i| i % 9973 == 17, n);
        let ones: Vec<usize> = (0..n).filter(|&i| bits[i]).collect();
        for (k, &pos) in ones.iter().enumerate() {
            assert_eq!(rs.select1(k), Some(pos), "select1({k})");
        }
    }

    #[test]
    fn all_ones_and_all_zeros() {
        let (_, ones) = make(|_| true, 700);
        assert_eq!(ones.count_ones(), 700);
        assert_eq!(ones.select1(699), Some(699));
        assert_eq!(ones.select0(0), None);

        let (_, zeros) = make(|_| false, 700);
        assert_eq!(zeros.count_ones(), 0);
        assert_eq!(zeros.select0(699), Some(699));
        assert_eq!(zeros.select1(0), None);
    }

    #[test]
    fn empty_vector() {
        let rs = RankSelect::new(BitVec::new());
        assert_eq!(rs.len(), 0);
        assert_eq!(rs.rank1(0), 0);
        assert_eq!(rs.select1(0), None);
        assert_eq!(rs.select0(0), None);
        assert_eq!(rs.n_bit_words(), 0);
    }

    #[test]
    fn bit_words_roundtrip() {
        let bits: Vec<bool> = (0..777).map(|i| i % 3 == 1).collect();
        let bv = BitVec::from_bits(bits.iter().copied());
        let expected: Vec<u64> = bv.words().to_vec();
        let rs = RankSelect::new(bv);
        assert_eq!(rs.n_bit_words(), expected.len());
        let got: Vec<u64> = (0..rs.n_bit_words()).map(|w| rs.bit_word(w)).collect();
        assert_eq!(got, expected);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(rs.get(i), b, "bit {i}");
        }
    }

    #[test]
    fn select_in_word_all_positions() {
        let w = 0b1011_0100_1000_0001u64;
        let positions: Vec<u32> = (0..64).filter(|&i| (w >> i) & 1 == 1).collect();
        for (k, &p) in positions.iter().enumerate() {
            assert_eq!(select_in_word(w, k as u32), p);
        }
        assert_eq!(select_in_word(u64::MAX, 63), 63);
        assert_eq!(select_in_word(1 << 63, 0), 63);
    }

    #[test]
    fn select_in_word_exhaustive_small() {
        // Every 16-bit pattern, every valid k, against a naive scan.
        for w16 in 0u64..(1 << 16) {
            let w = w16 | (w16 << 40);
            let mut k = 0;
            for i in 0..64 {
                if (w >> i) & 1 == 1 {
                    assert_eq!(select_in_word(w, k), i, "w={w:#x} k={k}");
                    k += 1;
                }
            }
        }
    }

    #[test]
    fn superblock_boundaries() {
        // Ones exactly at superblock boundaries (multiples of 512).
        let (bits, rs) = make(|i| i % 512 == 0, 512 * 5 + 3);
        for i in 0..=(512 * 5 + 3) {
            assert_eq!(rs.rank1(i), naive_rank1(&bits, i), "rank1({i})");
        }
        for k in 0..rs.count_ones() {
            assert_eq!(rs.select1(k), Some(k * 512));
        }
    }

    #[test]
    fn partial_final_superblock() {
        // Length not a multiple of 512 with ones in the tail words.
        let (bits, rs) = make(|i| i % 2 == 0, 512 + 200);
        for i in 0..=(512 + 200) {
            assert_eq!(rs.rank1(i), naive_rank1(&bits, i), "rank1({i})");
        }
        let ones: Vec<usize> = (0..712).filter(|&i| bits[i]).collect();
        for (k, &pos) in ones.iter().enumerate() {
            assert_eq!(rs.select1(k), Some(pos));
        }
    }
}
