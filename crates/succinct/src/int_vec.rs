//! Fixed-width packed integer vectors.
//!
//! An [`IntVec`] stores `n` integers of `width` bits each in `⌈n·width/64⌉`
//! words. This is the "packed form" the paper uses as the space yardstick
//! (8.625 bytes per Wikidata triple, §5).

use crate::storage::Slab;
use crate::SpaceUsage;

/// A packed vector of `width`-bit unsigned integers.
#[derive(Clone, Debug, Default)]
pub struct IntVec {
    /// Packed words; a [`Slab`] so a mapped index file can back them.
    data: Slab<u64>,
    width: usize,
    len: usize,
}

impl IntVec {
    /// Creates an empty vector whose elements occupy `width` bits each.
    ///
    /// # Panics
    /// Panics unless `1 <= width <= 64`.
    pub fn new(width: usize) -> Self {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        Self {
            data: Slab::new(),
            width,
            len: 0,
        }
    }

    /// Creates a zero-filled vector of `len` elements.
    pub fn zeros(width: usize, len: usize) -> Self {
        assert!((1..=64).contains(&width), "width must be in 1..=64");
        Self {
            data: vec![0; (len * width).div_ceil(64)].into(),
            width,
            len,
        }
    }

    /// Packs `values` using the smallest width that fits the maximum value
    /// (at least 1 bit).
    pub fn from_slice(values: &[u64]) -> Self {
        let max = values.iter().copied().max().unwrap_or(0);
        let width = bits_for(max);
        let mut v = Self::new(width);
        v.data.reserve((values.len() * width).div_ceil(64));
        for &x in values {
            v.push(x);
        }
        v
    }

    /// Number of bits needed per element.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a value.
    ///
    /// # Panics
    /// Panics if `value` does not fit in `width` bits.
    pub fn push(&mut self, value: u64) {
        assert!(
            self.width == 64 || value < (1u64 << self.width),
            "value {value} does not fit in {} bits",
            self.width
        );
        let bit = self.len * self.width;
        let word = bit / 64;
        let off = bit % 64;
        if word == self.data.len() {
            self.data.push(0);
        }
        self.data.as_mut_slice()[word] |= value << off;
        if off + self.width > 64 {
            self.data.push(value >> (64 - off));
        }
        self.len += 1;
    }

    /// Returns the element at `i`.
    ///
    /// # Panics
    /// Panics if `i >= len` (debug builds; release reads are bounds-checked
    /// by the underlying slice).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        let bit = i * self.width;
        let word = bit / 64;
        let off = bit % 64;
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        if off + self.width <= 64 {
            (self.data[word] >> off) & mask
        } else {
            ((self.data[word] >> off) | (self.data[word + 1] << (64 - off))) & mask
        }
    }

    /// Overwrites the element at `i`.
    pub fn set(&mut self, i: usize, value: u64) {
        debug_assert!(i < self.len);
        assert!(
            self.width == 64 || value < (1u64 << self.width),
            "value {value} does not fit in {} bits",
            self.width
        );
        let bit = i * self.width;
        let word = bit / 64;
        let off = bit % 64;
        let mask = if self.width == 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        };
        let data = self.data.as_mut_slice();
        data[word] &= !(mask << off);
        data[word] |= value << off;
        if off + self.width > 64 {
            let hi_bits = self.width - (64 - off);
            let hi_mask = (1u64 << hi_bits) - 1;
            data[word + 1] &= !hi_mask;
            data[word + 1] |= value >> (64 - off);
        }
    }

    /// The packed words, for the mapped-format writer ([`crate::mapped`]).
    pub(crate) fn words(&self) -> &Slab<u64> {
        &self.data
    }

    /// Reassembles a vector from stored parts — the mapped-format load
    /// path. Validates the word count against `width`/`len` so every
    /// `get` stays in bounds (a straddling read touches `word + 1`,
    /// which exists exactly when the count below is right).
    pub(crate) fn from_raw_parts(
        data: Slab<u64>,
        width: usize,
        len: usize,
    ) -> Result<Self, &'static str> {
        if !(1..=64).contains(&width) {
            return Err("packed vector width must be in 1..=64");
        }
        let Some(bits) = len.checked_mul(width) else {
            return Err("packed vector bit length overflows");
        };
        if data.len() != bits.div_ceil(64) {
            return Err("packed vector word count does not match width and length");
        }
        Ok(Self { data, width, len })
    }

    /// Iterates over all elements.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl SpaceUsage for IntVec {
    fn size_bytes(&self) -> usize {
        self.data.heap_bytes()
    }
}

/// Number of bits needed to represent `max` (at least 1).
#[inline]
pub fn bits_for(max: u64) -> usize {
    (64 - max.leading_zeros() as usize).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_boundaries() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
        assert_eq!(bits_for(u64::MAX), 64);
    }

    #[test]
    fn roundtrip_odd_width() {
        // Width 13 exercises word-boundary straddling.
        let values: Vec<u64> = (0..500).map(|i| (i * 2654435761u64) % 8192).collect();
        let mut v = IntVec::new(13);
        for &x in &values {
            v.push(x);
        }
        assert_eq!(v.len(), 500);
        for (i, &x) in values.iter().enumerate() {
            assert_eq!(v.get(i), x, "element {i}");
        }
    }

    #[test]
    fn roundtrip_width_64() {
        let values = [0u64, u64::MAX, 1 << 63, 42];
        let mut v = IntVec::new(64);
        for &x in &values {
            v.push(x);
        }
        for (i, &x) in values.iter().enumerate() {
            assert_eq!(v.get(i), x);
        }
    }

    #[test]
    fn from_slice_picks_minimal_width() {
        let v = IntVec::from_slice(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(v.width(), 3);
        assert_eq!(v.iter().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4, 5, 6, 7]);
        let v = IntVec::from_slice(&[]);
        assert_eq!(v.len(), 0);
        assert!(v.is_empty());
    }

    #[test]
    fn set_across_boundary() {
        let mut v = IntVec::zeros(33, 10);
        for i in 0..10 {
            v.set(i, (i as u64) << 25 | 0x1FF_FFFF);
        }
        for i in 0..10 {
            assert_eq!(v.get(i), (i as u64) << 25 | 0x1FF_FFFF);
        }
        v.set(3, 0);
        assert_eq!(v.get(3), 0);
        assert_eq!(v.get(2), 2u64 << 25 | 0x1FF_FFFF);
        assert_eq!(v.get(4), 4u64 << 25 | 0x1FF_FFFF);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_overflow_panics() {
        let mut v = IntVec::new(4);
        v.push(16);
    }
}
