//! The wavelet matrix (Claude, Navarro, Ordóñez \[11\]): a wavelet tree
//! layout for large alphabets, used by the paper's implementation for the
//! ring sequences `L_s` and `L_p` (§5).
//!
//! One bit vector per bit level (most-significant bit first); at each level
//! all zero-bit elements are stably moved before all one-bit elements. A
//! conceptual tree node at `(level, prefix)` — `prefix` being the `level`
//! high bits of the symbols below it — occupies a contiguous interval of the
//! level's array, so the node-local rank arithmetic of a pointer wavelet
//! tree carries over with an extra "node start" offset.
//!
//! The [`RangeGuide`] trait exposes the traversal hook that the RPQ engine
//! uses to implement the B-masked predicate discovery of §4.1 and the
//! D-masked subject discovery of §4.2: `enter` is consulted before
//! descending into a node (where the engine tests `D & B[v] != 0` or prunes
//! already-visited subtrees), and `leaf` receives each surviving symbol with
//! the rank offsets that complete a backward-search step (Eqs. 4–5).

use crate::int_vec::bits_for;
use crate::{BitVec, RankSelect, SpaceUsage};

/// Visitor guiding a pruned wavelet-matrix range traversal.
pub trait RangeGuide {
    /// Whether to enter the node at `(level, prefix)`. The root is
    /// `(0, 0)`; the children of `(l, v)` are `(l+1, 2v)` and `(l+1, 2v+1)`.
    /// Nodes whose interval restricted to the query range is empty are
    /// skipped without consulting the guide.
    fn enter(&mut self, level: usize, prefix: u64) -> bool;

    /// Called once per surviving symbol `sym` in the range, with
    /// `rank_b = rank(sym, b)` and `rank_e = rank(sym, e)`.
    fn leaf(&mut self, sym: u64, rank_b: usize, rank_e: usize);
}

/// Per-symbol intersection record: `(sym, (rank_b1, rank_e1), (rank_b2, rank_e2))`.
pub type IntersectionHit = (u64, (usize, usize), (usize, usize));

/// Visitor guiding a **frontier-batched** traversal over many ranges at
/// once ([`WaveletMatrix::guided_traverse_multi`]).
///
/// The traversal pushes all ranges through the levels together, so the
/// per-node work (the node-start rank, and whatever per-node state the
/// guide consults in [`enter_node`](Self::enter_node)) is paid once per
/// node instead of once per `(range, node)` pair. Semantically the
/// batched traversal is equivalent to running [`WaveletMatrix::guided_traverse`]
/// independently for every range with a guide whose `enter` is
/// `enter_node(..) && enter_item(item, ..)` — `enter_node` must therefore
/// be a *range-independent* predicate of the node.
///
/// Call-order contract: `enter_node` is called once per admitted node,
/// followed by `enter_item` for that node's live ranges; at leaf depth,
/// each admitted item's [`leaf`](Self::leaf) call immediately follows
/// its `enter_item`, so a guide may carry per-item context from one to
/// the other in a single field. The order in which *different* leaves
/// arrive is unspecified (subtrees whose batch narrows to one range are
/// finished eagerly) — guides needing sorted symbols sort their output.
pub trait MultiRangeGuide {
    /// Whether any range may enter the node at `(level, prefix)`.
    /// Returning `false` prunes the node for *every* range.
    fn enter_node(&mut self, level: usize, prefix: u64) -> bool;

    /// Whether range `item` (its index in the input slice) enters an
    /// admitted node.
    fn enter_item(&mut self, item: u32, level: usize, prefix: u64) -> bool;

    /// Called per surviving `(item, sym)` with the item's rank offsets
    /// (leaf arrival order unspecified; see the trait docs).
    fn leaf(&mut self, item: u32, sym: u64, rank_b: usize, rank_e: usize);
}

/// Reusable scratch for [`WaveletMatrix::guided_traverse_multi`]: callers
/// on a hot path (a BFS expanding frontier after frontier) keep one
/// `MultiTraversal` and reuse its buffers across calls.
#[derive(Clone, Debug, Default)]
pub struct MultiTraversal {
    /// `(prefix, start, item_lo, item_hi)` per live node of the level.
    nodes: Vec<(u64, usize, usize, usize)>,
    next_nodes: Vec<(u64, usize, usize, usize)>,
    /// `(item, b, e)` runs, indexed by the node records.
    items: Vec<(u32, usize, usize)>,
    next_items: Vec<(u32, usize, usize)>,
    /// Per-node scratch: the right-child `(item, b1, e1)` bounds, held
    /// back until the left child has been fully admitted.
    right: Vec<(u32, usize, usize)>,
    /// Rank computations performed by the last run.
    pub ranks: u64,
    /// Rank computations a per-range traversal would have needed on top
    /// of [`ranks`](Self::ranks): shared node-start ranks and directory
    /// probes merged by [`RankSelect::rank1_pair`].
    pub ranks_saved: u64,
}

impl MultiTraversal {
    /// Fresh scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs the batched traversal of `ranges` over `wm` (see
    /// [`WaveletMatrix::guided_traverse_multi`]).
    pub fn run<G: MultiRangeGuide>(
        &mut self,
        wm: &WaveletMatrix,
        ranges: &[(usize, usize)],
        guide: &mut G,
    ) {
        self.ranks = 0;
        self.ranks_saved = 0;
        self.nodes.clear();
        self.items.clear();
        for (i, &(b, e)) in ranges.iter().enumerate() {
            assert!(b <= e && e <= wm.len, "range {i} out of bounds");
        }
        if ranges.iter().all(|&(b, e)| b == e) || !guide.enter_node(0, 0) {
            return;
        }
        for (i, &(b, e)) in ranges.iter().enumerate() {
            if b < e && guide.enter_item(i as u32, 0, 0) {
                self.items.push((i as u32, b, e));
            }
        }
        if self.items.is_empty() {
            return;
        }
        self.nodes.push((0, 0, 0, self.items.len()));

        for level in 0..wm.width {
            let lvl = &wm.levels[level];
            let z = wm.zeros[level];
            let at_leaves = level + 1 == wm.width;
            self.next_nodes.clear();
            self.next_items.clear();
            for n in 0..self.nodes.len() {
                let (prefix, start, lo, hi) = self.nodes[n];
                let s0 = lvl.rank0(start);
                // One start rank amortized over the node's whole batch; a
                // per-range traversal recomputes it for every range.
                self.ranks += 1;
                self.ranks_saved += (hi - lo) as u64 - 1;

                // One pass over the node's items: admit left-child items
                // immediately (enter_node lazily on the first live one),
                // hold right-child bounds back so the left child is fully
                // handled first — mirroring `traverse_rec`'s
                // enter-then-descend order per range.
                let left = prefix << 1;
                let mut left_entered = None;
                let left_lo = self.next_items.len();
                self.right.clear();
                for i in lo..hi {
                    let (id, b, e) = self.items[i];
                    let (b0, e0) = if RankSelect::same_superblock(b, e) {
                        self.ranks += 1;
                        self.ranks_saved += 1;
                        lvl.rank0_pair(b, e)
                    } else {
                        self.ranks += 2;
                        (lvl.rank0(b), lvl.rank0(e))
                    };
                    if e0 > b0 {
                        let entered =
                            *left_entered.get_or_insert_with(|| guide.enter_node(level + 1, left));
                        if entered && guide.enter_item(id, level + 1, left) {
                            if at_leaves {
                                guide.leaf(id, left, b0 - s0, e0 - s0);
                            } else {
                                self.next_items.push((id, b0, e0));
                            }
                        }
                    }
                    let (b1, e1) = (z + (b - b0), z + (e - e0));
                    if e1 > b1 {
                        self.right.push((id, b1, e1));
                    }
                }
                self.seal_child(wm, level, left, s0, left_lo, at_leaves, guide);

                let right = left | 1;
                let right_start = z + (start - s0);
                let right_lo = self.next_items.len();
                if !self.right.is_empty() && guide.enter_node(level + 1, right) {
                    for i in 0..self.right.len() {
                        let (id, b1, e1) = self.right[i];
                        if guide.enter_item(id, level + 1, right) {
                            if at_leaves {
                                guide.leaf(id, right, b1 - right_start, e1 - right_start);
                            } else {
                                self.next_items.push((id, b1, e1));
                            }
                        }
                    }
                }
                self.seal_child(wm, level, right, right_start, right_lo, at_leaves, guide);
            }
            std::mem::swap(&mut self.nodes, &mut self.next_nodes);
            std::mem::swap(&mut self.items, &mut self.next_items);
            if self.nodes.is_empty() {
                return;
            }
        }
    }

    /// Closes out a child node's item run: empty runs vanish, singleton
    /// runs finish eagerly through the allocation-free recursive descent
    /// (level buffering gains nothing for one range), larger runs become
    /// a node of the next level.
    #[allow(clippy::too_many_arguments)]
    fn seal_child<G: MultiRangeGuide>(
        &mut self,
        wm: &WaveletMatrix,
        level: usize,
        child: u64,
        child_start: usize,
        item_lo: usize,
        at_leaves: bool,
        guide: &mut G,
    ) {
        if at_leaves {
            return; // leaves were emitted inline
        }
        match self.next_items.len() - item_lo {
            0 => {}
            1 => {
                let (id, cb, ce) = self.next_items.pop().expect("just pushed");
                wm.descend_single(
                    id,
                    level + 1,
                    child,
                    child_start,
                    cb,
                    ce,
                    guide,
                    &mut self.ranks,
                    &mut self.ranks_saved,
                );
            }
            _ => self
                .next_nodes
                .push((child, child_start, item_lo, self.next_items.len())),
        }
    }
}

/// A wavelet matrix over a sequence of symbols in `[0, sigma)`.
///
/// ```
/// use succinct::WaveletMatrix;
///
/// let wm = WaveletMatrix::new(&[3, 1, 4, 1, 5, 1, 2], 8);
/// assert_eq!(wm.access(2), 4);
/// assert_eq!(wm.rank(1, 6), 3);           // three 1s before position 6
/// assert_eq!(wm.select(1, 1), Some(3));   // second 1 sits at position 3
/// let mut distinct = Vec::new();
/// wm.range_distinct(0, 4, &mut |sym, _, _| distinct.push(sym));
/// assert_eq!(distinct, vec![1, 3, 4]);
/// assert_eq!(wm.range_quantile(0, 7, 3), 2); // 4th smallest overall
/// ```
#[derive(Clone, Debug)]
pub struct WaveletMatrix {
    levels: Vec<RankSelect>,
    zeros: Vec<usize>,
    len: usize,
    width: usize,
    sigma: u64,
}

impl WaveletMatrix {
    /// Builds a wavelet matrix for `symbols`, all of which must be `< sigma`.
    ///
    /// # Panics
    /// Panics if `sigma == 0` or any symbol is out of range.
    pub fn new(symbols: &[u64], sigma: u64) -> Self {
        assert!(sigma > 0, "alphabet must be non-empty");
        for &s in symbols {
            assert!(s < sigma, "symbol {s} out of alphabet range [0, {sigma})");
        }
        let width = bits_for(sigma.saturating_sub(1)).max(1);
        let mut levels = Vec::with_capacity(width);
        let mut zeros = Vec::with_capacity(width);
        let mut cur: Vec<u64> = symbols.to_vec();
        let mut next: Vec<u64> = Vec::with_capacity(cur.len());
        for l in 0..width {
            let shift = width - 1 - l;
            let bits = BitVec::from_bits(cur.iter().map(|&s| (s >> shift) & 1 == 1));
            next.clear();
            next.extend(cur.iter().copied().filter(|&s| (s >> shift) & 1 == 0));
            let z = next.len();
            next.extend(cur.iter().copied().filter(|&s| (s >> shift) & 1 == 1));
            zeros.push(z);
            levels.push(RankSelect::new(bits));
            std::mem::swap(&mut cur, &mut next);
        }
        Self {
            levels,
            zeros,
            len: symbols.len(),
            width,
            sigma,
        }
    }

    /// The per-level bit vectors, for the mapped on-disk format writer
    /// ([`crate::mapped`]).
    pub(crate) fn raw_levels(&self) -> &[RankSelect] {
        &self.levels
    }

    /// Reassembles a matrix from stored levels — the mapped-format load
    /// path. The `zeros` array is recomputed from the levels (it is the
    /// per-level zero count by construction), so it is never serialized
    /// and can't disagree with the bits.
    pub(crate) fn from_raw_parts(
        levels: Vec<RankSelect>,
        len: usize,
        sigma: u64,
    ) -> Result<Self, &'static str> {
        if sigma == 0 {
            return Err("wavelet matrix alphabet must be non-empty");
        }
        let width = bits_for(sigma.saturating_sub(1)).max(1);
        if levels.len() != width {
            return Err("wavelet matrix level count does not match alphabet width");
        }
        if levels.iter().any(|l| l.len() != len) {
            return Err("wavelet matrix level length does not match sequence length");
        }
        let zeros = levels.iter().map(|l| l.count_zeros()).collect();
        Ok(Self {
            levels,
            zeros,
            len,
            width,
            sigma,
        })
    }

    /// Sequence length.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Alphabet size.
    #[inline]
    pub fn sigma(&self) -> u64 {
        self.sigma
    }

    /// Number of bit levels (`⌈log₂ σ⌉`, at least 1).
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The symbol at position `i`, in *O*(log σ).
    pub fn access(&self, i: usize) -> u64 {
        assert!(
            i < self.len,
            "position {i} out of bounds (len {})",
            self.len
        );
        let mut sym = 0u64;
        let mut i = i;
        for l in 0..self.width {
            let lvl = &self.levels[l];
            if lvl.get(i) {
                sym = (sym << 1) | 1;
                i = self.zeros[l] + lvl.rank1(i);
            } else {
                sym <<= 1;
                i = lvl.rank0(i);
            }
        }
        sym
    }

    /// Number of occurrences of `sym` in `[0, i)`, in *O*(log σ).
    pub fn rank(&self, sym: u64, i: usize) -> usize {
        assert!(i <= self.len);
        assert!(sym < self.sigma);
        let (mut b, mut start) = (i, 0usize);
        for l in 0..self.width {
            let lvl = &self.levels[l];
            if (sym >> (self.width - 1 - l)) & 1 == 1 {
                b = self.zeros[l] + lvl.rank1(b);
                start = self.zeros[l] + lvl.rank1(start);
            } else {
                b = lvl.rank0(b);
                start = lvl.rank0(start);
            }
        }
        b - start
    }

    /// Position of the `k`-th occurrence of `sym` (0-based), or `None`.
    pub fn select(&self, sym: u64, k: usize) -> Option<usize> {
        assert!(sym < self.sigma);
        if k >= self.rank(sym, self.len) {
            return None;
        }
        // Descend to find the leaf-level start of sym's block.
        let mut start = 0usize;
        for l in 0..self.width {
            let lvl = &self.levels[l];
            if (sym >> (self.width - 1 - l)) & 1 == 1 {
                start = self.zeros[l] + lvl.rank1(start);
            } else {
                start = lvl.rank0(start);
            }
        }
        // Ascend, inverting each level's stable partition.
        let mut pos = start + k;
        for l in (0..self.width).rev() {
            let lvl = &self.levels[l];
            pos = if (sym >> (self.width - 1 - l)) & 1 == 1 {
                lvl.select1(pos - self.zeros[l])?
            } else {
                lvl.select0(pos)?
            };
        }
        Some(pos)
    }

    /// Runs a guided traversal of the range `[b, e)` (see [`RangeGuide`]).
    ///
    /// Only nodes with a non-empty restriction of the range are visited, and
    /// only if the guide admits them, so the cost is *O*(log σ) per admitted
    /// leaf — the property Theorem 4.1 charges traversal costs with.
    pub fn guided_traverse<G: RangeGuide>(&self, b: usize, e: usize, guide: &mut G) {
        assert!(b <= e && e <= self.len);
        if b == e || !guide.enter(0, 0) {
            return;
        }
        self.traverse_rec(0, 0, 0, b, e, guide);
    }

    fn traverse_rec<G: RangeGuide>(
        &self,
        level: usize,
        prefix: u64,
        start: usize,
        b: usize,
        e: usize,
        guide: &mut G,
    ) {
        if level == self.width {
            guide.leaf(prefix, b - start, e - start);
            return;
        }
        let lvl = &self.levels[level];
        let (s0, b0, e0) = (lvl.rank0(start), lvl.rank0(b), lvl.rank0(e));
        if e0 > b0 && guide.enter(level + 1, prefix << 1) {
            self.traverse_rec(level + 1, prefix << 1, s0, b0, e0, guide);
        }
        let z = self.zeros[level];
        let (s1, b1, e1) = (z + (start - s0), z + (b - b0), z + (e - e0));
        if e1 > b1 && guide.enter(level + 1, (prefix << 1) | 1) {
            self.traverse_rec(level + 1, (prefix << 1) | 1, s1, b1, e1, guide);
        }
    }

    /// [`MultiTraversal`]'s tail descent for a subtree holding a single
    /// live range: plain recursion, no level buffers. The node itself is
    /// already admitted; only its children consult the guide.
    #[allow(clippy::too_many_arguments)]
    fn descend_single<G: MultiRangeGuide>(
        &self,
        item: u32,
        level: usize,
        prefix: u64,
        start: usize,
        b: usize,
        e: usize,
        guide: &mut G,
        ranks: &mut u64,
        ranks_saved: &mut u64,
    ) {
        if level == self.width {
            guide.leaf(item, prefix, b - start, e - start);
            return;
        }
        let lvl = &self.levels[level];
        let s0 = lvl.rank0(start);
        *ranks += 1;
        let (b0, e0) = if RankSelect::same_superblock(b, e) {
            *ranks += 1;
            *ranks_saved += 1;
            lvl.rank0_pair(b, e)
        } else {
            *ranks += 2;
            (lvl.rank0(b), lvl.rank0(e))
        };
        if e0 > b0
            && guide.enter_node(level + 1, prefix << 1)
            && guide.enter_item(item, level + 1, prefix << 1)
        {
            self.descend_single(
                item,
                level + 1,
                prefix << 1,
                s0,
                b0,
                e0,
                guide,
                ranks,
                ranks_saved,
            );
        }
        let z = self.zeros[level];
        let (s1, b1, e1) = (z + (start - s0), z + (b - b0), z + (e - e0));
        let child = (prefix << 1) | 1;
        if e1 > b1 && guide.enter_node(level + 1, child) && guide.enter_item(item, level + 1, child)
        {
            self.descend_single(
                item,
                level + 1,
                child,
                s1,
                b1,
                e1,
                guide,
                ranks,
                ranks_saved,
            );
        }
    }

    /// Frontier-batched guided traversal: pushes every range of `ranges`
    /// through the levels together (see [`MultiRangeGuide`]), so per-node
    /// work — the node-start rank, the guide's node admission — is shared
    /// across the whole frontier and the boundary ranks of adjacent
    /// ranges land on the same cache lines. Equivalent to a
    /// [`Self::guided_traverse`] per range; a BFS over a frontier of 64+
    /// ranges runs severalfold fewer rank computations this way.
    ///
    /// Allocates scratch per call; hot paths should hold a
    /// [`MultiTraversal`] and call [`MultiTraversal::run`] instead.
    pub fn guided_traverse_multi<G: MultiRangeGuide>(
        &self,
        ranges: &[(usize, usize)],
        guide: &mut G,
    ) {
        MultiTraversal::new().run(self, ranges, guide)
    }

    /// Batched [`Self::rank`]: replaces each `positions[i]` with
    /// `rank(sym, positions[i])`. The per-symbol node-start chain is
    /// computed once for the whole batch instead of once per position,
    /// halving the level ranks for large batches — the backward-step
    /// primitive batched frontier expansion is built on.
    pub fn rank_batch(&self, sym: u64, positions: &mut [usize]) {
        assert!(sym < self.sigma);
        for (i, &p) in positions.iter().enumerate() {
            assert!(p <= self.len, "position {i} out of bounds");
        }
        let mut start = 0usize;
        for l in 0..self.width {
            let lvl = &self.levels[l];
            if (sym >> (self.width - 1 - l)) & 1 == 1 {
                let z = self.zeros[l];
                for p in positions.iter_mut() {
                    *p = z + lvl.rank1(*p);
                }
                start = z + lvl.rank1(start);
            } else {
                for p in positions.iter_mut() {
                    *p = lvl.rank0(*p);
                }
                start = lvl.rank0(start);
            }
        }
        for p in positions.iter_mut() {
            *p -= start;
        }
    }

    /// Calls `f(sym, rank_b, rank_e)` for every distinct symbol in `[b, e)`,
    /// in increasing symbol order.
    pub fn range_distinct<F: FnMut(u64, usize, usize)>(&self, b: usize, e: usize, f: &mut F) {
        struct All<'a, F>(&'a mut F);
        impl<F: FnMut(u64, usize, usize)> RangeGuide for All<'_, F> {
            fn enter(&mut self, _: usize, _: u64) -> bool {
                true
            }
            fn leaf(&mut self, sym: u64, rb: usize, re: usize) {
                (self.0)(sym, rb, re)
            }
        }
        self.guided_traverse(b, e, &mut All(f));
    }

    /// Number of distinct symbols in `[b, e)`.
    pub fn count_distinct(&self, b: usize, e: usize) -> usize {
        let mut n = 0;
        self.range_distinct(b, e, &mut |_, _, _| n += 1);
        n
    }

    /// Symbols occurring in **both** ranges, with rank offsets in each
    /// (cf. [`crate::WaveletTree::range_intersect`]).
    pub fn range_intersect(&self, r1: (usize, usize), r2: (usize, usize)) -> Vec<IntersectionHit> {
        assert!(r1.0 <= r1.1 && r1.1 <= self.len);
        assert!(r2.0 <= r2.1 && r2.1 <= self.len);
        let mut out = Vec::new();
        if r1.0 < r1.1 && r2.0 < r2.1 {
            self.intersect_rec(0, 0, (0, r1.0, r1.1), (0, r2.0, r2.1), &mut out);
        }
        out
    }

    #[allow(clippy::type_complexity)]
    fn intersect_rec(
        &self,
        level: usize,
        prefix: u64,
        t1: (usize, usize, usize),
        t2: (usize, usize, usize),
        out: &mut Vec<IntersectionHit>,
    ) {
        if level == self.width {
            out.push((
                prefix,
                (t1.1 - t1.0, t1.2 - t1.0),
                (t2.1 - t2.0, t2.2 - t2.0),
            ));
            return;
        }
        let lvl = &self.levels[level];
        let z = self.zeros[level];
        let map0 = |t: (usize, usize, usize)| (lvl.rank0(t.0), lvl.rank0(t.1), lvl.rank0(t.2));
        let l1 = map0(t1);
        let l2 = map0(t2);
        if l1.2 > l1.1 && l2.2 > l2.1 {
            self.intersect_rec(level + 1, prefix << 1, l1, l2, out);
        }
        let map1 = |t: (usize, usize, usize), l: (usize, usize, usize)| {
            (z + (t.0 - l.0), z + (t.1 - l.1), z + (t.2 - l.2))
        };
        let h1 = map1(t1, l1);
        let h2 = map1(t2, l2);
        if h1.2 > h1.1 && h2.2 > h2.1 {
            self.intersect_rec(level + 1, (prefix << 1) | 1, h1, h2, out);
        }
    }

    /// The smallest symbol `>= x` in `[b, e)`, with rank offsets, or `None`.
    pub fn range_next_value(&self, b: usize, e: usize, x: u64) -> Option<(u64, usize, usize)> {
        assert!(b <= e && e <= self.len);
        if b == e {
            return None;
        }
        self.next_value_rec(0, 0, 0, b, e, x)
    }

    fn next_value_rec(
        &self,
        level: usize,
        prefix: u64,
        start: usize,
        b: usize,
        e: usize,
        x: u64,
    ) -> Option<(u64, usize, usize)> {
        // Symbol interval covered by this node: [lo, hi).
        let span = self.width - level;
        let lo = if span >= 64 { 0 } else { prefix << span };
        if span < 64 && lo.checked_add(1 << span).is_some_and(|hi| hi <= x) {
            return None;
        }
        if level == self.width {
            return Some((prefix, b - start, e - start));
        }
        let lvl = &self.levels[level];
        let (s0, b0, e0) = (lvl.rank0(start), lvl.rank0(b), lvl.rank0(e));
        if e0 > b0 {
            if let Some(hit) = self.next_value_rec(level + 1, prefix << 1, s0, b0, e0, x) {
                return Some(hit);
            }
        }
        let z = self.zeros[level];
        let (s1, b1, e1) = (z + (start - s0), z + (b - b0), z + (e - e0));
        if e1 > b1 {
            return self.next_value_rec(level + 1, (prefix << 1) | 1, s1, b1, e1, x);
        }
        None
    }

    /// Number of occurrences of symbols in `[lo, hi)` within positions
    /// `[b, e)` — a two-dimensional count in *O*(log σ), one of the
    /// "powerful operations providing on-the-fly selectivity statistics"
    /// §6 proposes for query planning.
    pub fn range_count_within(&self, b: usize, e: usize, lo: u64, hi: u64) -> usize {
        assert!(b <= e && e <= self.len);
        if b == e || lo >= hi {
            return 0;
        }
        self.count_within_rec(0, 0, b, e, lo, hi.min(1u64 << self.width.min(63)))
    }

    fn count_within_rec(
        &self,
        level: usize,
        prefix: u64,
        b: usize,
        e: usize,
        lo: u64,
        hi: u64,
    ) -> usize {
        if b == e {
            return 0;
        }
        let span = self.width - level;
        let node_lo = if span >= 64 { 0 } else { prefix << span };
        let node_hi = if span >= 63 {
            u64::MAX
        } else {
            node_lo + (1u64 << span)
        };
        if node_hi <= lo || node_lo >= hi {
            return 0;
        }
        if lo <= node_lo && node_hi <= hi {
            return e - b;
        }
        let lvl = &self.levels[level];
        let (b0, e0) = (lvl.rank0(b), lvl.rank0(e));
        let z = self.zeros[level];
        self.count_within_rec(level + 1, prefix << 1, b0, e0, lo, hi)
            + self.count_within_rec(
                level + 1,
                (prefix << 1) | 1,
                z + (b - b0),
                z + (e - e0),
                lo,
                hi,
            )
    }

    /// The `k`-th smallest symbol (0-based, counting multiplicity) in
    /// `[b, e)`, in *O*(log σ) — the classic wavelet-tree quantile
    /// \[21\].
    ///
    /// # Panics
    /// Panics if `k >= e - b` or the range is invalid.
    pub fn range_quantile(&self, b: usize, e: usize, k: usize) -> u64 {
        assert!(b <= e && e <= self.len);
        assert!(
            k < e - b,
            "quantile index {k} out of range of size {}",
            e - b
        );
        let (mut b, mut e, mut k) = (b, e, k);
        let mut sym = 0u64;
        for l in 0..self.width {
            let lvl = &self.levels[l];
            let (b0, e0) = (lvl.rank0(b), lvl.rank0(e));
            let zeros_here = e0 - b0;
            if k < zeros_here {
                sym <<= 1;
                b = b0;
                e = e0;
            } else {
                k -= zeros_here;
                sym = (sym << 1) | 1;
                let z = self.zeros[l];
                b = z + (b - b0);
                e = z + (e - e0);
            }
        }
        sym
    }

    /// Total number of conceptual tree nodes (`2^(width+1) - 1`), for sizing
    /// per-node mask tables in heap order.
    pub fn node_table_len(&self) -> usize {
        (1usize << (self.width + 1)) - 1
    }

    /// Heap index of the node `(level, prefix)`:
    /// `2^level - 1 + prefix`, compatible with [`Self::node_table_len`].
    #[inline]
    pub fn node_index(level: usize, prefix: u64) -> usize {
        (1usize << level) - 1 + prefix as usize
    }
}

impl SpaceUsage for WaveletMatrix {
    fn size_bytes(&self) -> usize {
        self.levels.iter().map(|l| l.size_bytes()).sum::<usize>()
            + self.zeros.capacity() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WaveletTree;

    fn sample(n: usize, sigma: u64) -> Vec<u64> {
        (0..n)
            .map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 17) % sigma)
            .collect()
    }

    #[test]
    fn access_matches_input() {
        let syms = sample(700, 100);
        let wm = WaveletMatrix::new(&syms, 100);
        for (i, &s) in syms.iter().enumerate() {
            assert_eq!(wm.access(i), s, "position {i}");
        }
    }

    #[test]
    fn rank_matches_wavelet_tree() {
        let syms = sample(500, 43);
        let wm = WaveletMatrix::new(&syms, 43);
        let wt = WaveletTree::new(&syms, 43);
        for sym in 0..43 {
            for i in (0..=500).step_by(13) {
                assert_eq!(wm.rank(sym, i), wt.rank(sym, i), "rank({sym}, {i})");
            }
        }
    }

    #[test]
    fn select_inverts_rank() {
        let syms = sample(400, 17);
        let wm = WaveletMatrix::new(&syms, 17);
        for sym in 0..17 {
            let occ: Vec<usize> = (0..400).filter(|&i| syms[i] == sym).collect();
            for (k, &pos) in occ.iter().enumerate() {
                assert_eq!(wm.select(sym, k), Some(pos), "select({sym}, {k})");
            }
            assert_eq!(wm.select(sym, occ.len()), None);
        }
    }

    #[test]
    fn range_distinct_matches_wavelet_tree() {
        let syms = sample(350, 29);
        let wm = WaveletMatrix::new(&syms, 29);
        let wt = WaveletTree::new(&syms, 29);
        for (b, e) in [(0, 350), (17, 18), (40, 200), (349, 350), (60, 60)] {
            let mut got = Vec::new();
            wm.range_distinct(b, e, &mut |s, rb, re| got.push((s, rb, re)));
            let mut expected = Vec::new();
            wt.range_distinct(b, e, &mut |s, rb, re| expected.push((s, rb, re)));
            assert_eq!(got, expected, "range [{b}, {e})");
        }
    }

    #[test]
    fn guided_traversal_prunes_subtrees() {
        // Admit only symbols < 8 by pruning any node whose prefix, once
        // extended with zeros, already exceeds 7.
        let syms = sample(300, 32);
        let wm = WaveletMatrix::new(&syms, 32);
        struct Below8 {
            width: usize,
            seen: Vec<u64>,
            entered: usize,
        }
        impl RangeGuide for Below8 {
            fn enter(&mut self, level: usize, prefix: u64) -> bool {
                self.entered += 1;
                let span = self.width - level;
                (prefix << span) < 8
            }
            fn leaf(&mut self, sym: u64, _: usize, _: usize) {
                self.seen.push(sym);
            }
        }
        let mut guide = Below8 {
            width: wm.width(),
            seen: Vec::new(),
            entered: 0,
        };
        wm.guided_traverse(0, 300, &mut guide);
        let mut expected: Vec<u64> = syms.iter().copied().filter(|&s| s < 8).collect();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(guide.seen, expected);
        // Pruning must keep us away from the full 2*sigma node count.
        assert!(guide.entered < 2 * 32);
    }

    #[test]
    fn intersect_matches_wavelet_tree() {
        let syms = sample(280, 23);
        let wm = WaveletMatrix::new(&syms, 23);
        let wt = WaveletTree::new(&syms, 23);
        for (r1, r2) in [
            ((0, 140), (70, 280)),
            ((5, 10), (200, 230)),
            ((0, 0), (0, 280)),
        ] {
            assert_eq!(
                wm.range_intersect(r1, r2),
                wt.range_intersect(r1, r2),
                "ranges {r1:?} {r2:?}"
            );
        }
    }

    #[test]
    fn next_value_matches_wavelet_tree() {
        let syms = sample(260, 31);
        let wm = WaveletMatrix::new(&syms, 31);
        let wt = WaveletTree::new(&syms, 31);
        for x in 0..32 {
            for (b, e) in [(0usize, 260usize), (25, 80), (100, 103)] {
                assert_eq!(
                    wm.range_next_value(b, e, x),
                    wt.range_next_value(b, e, x),
                    "x={x} range [{b},{e})"
                );
            }
        }
    }

    #[test]
    fn sigma_one_and_empty() {
        let wm = WaveletMatrix::new(&[0, 0, 0], 1);
        assert_eq!(wm.access(2), 0);
        assert_eq!(wm.rank(0, 3), 3);
        assert_eq!(wm.select(0, 2), Some(2));

        let wm = WaveletMatrix::new(&[], 5);
        assert!(wm.is_empty());
        assert_eq!(wm.rank(4, 0), 0);
        assert_eq!(wm.count_distinct(0, 0), 0);
    }

    #[test]
    fn node_index_heap_order() {
        assert_eq!(WaveletMatrix::node_index(0, 0), 0);
        assert_eq!(WaveletMatrix::node_index(1, 0), 1);
        assert_eq!(WaveletMatrix::node_index(1, 1), 2);
        assert_eq!(WaveletMatrix::node_index(2, 3), 6);
        let wm = WaveletMatrix::new(&[0, 1, 2, 3], 4);
        assert_eq!(wm.node_table_len(), 7);
    }

    #[test]
    fn range_count_within_matches_naive() {
        let syms = sample(300, 40);
        let wm = WaveletMatrix::new(&syms, 40);
        for (b, e) in [(0usize, 300usize), (25, 120), (100, 101), (50, 50)] {
            for (lo, hi) in [(0u64, 40u64), (5, 12), (39, 40), (10, 10), (0, 1)] {
                let naive = syms[b..e].iter().filter(|&&s| s >= lo && s < hi).count();
                assert_eq!(
                    wm.range_count_within(b, e, lo, hi),
                    naive,
                    "range [{b},{e}) values [{lo},{hi})"
                );
            }
        }
    }

    #[test]
    fn range_quantile_matches_sorted() {
        let syms = sample(200, 25);
        let wm = WaveletMatrix::new(&syms, 25);
        for (b, e) in [(0usize, 200usize), (30, 90), (150, 153)] {
            let mut sorted: Vec<u64> = syms[b..e].to_vec();
            sorted.sort_unstable();
            for (k, &expected) in sorted.iter().enumerate() {
                assert_eq!(wm.range_quantile(b, e, k), expected, "k={k} in [{b},{e})");
            }
        }
    }

    /// An all-admitting multi guide recording `(item, sym, rb, re)`.
    struct CollectMulti(Vec<(u32, u64, usize, usize)>);
    impl MultiRangeGuide for CollectMulti {
        fn enter_node(&mut self, _: usize, _: u64) -> bool {
            true
        }
        fn enter_item(&mut self, _: u32, _: usize, _: u64) -> bool {
            true
        }
        fn leaf(&mut self, item: u32, sym: u64, rb: usize, re: usize) {
            self.0.push((item, sym, rb, re));
        }
    }

    #[test]
    fn multi_traversal_matches_per_range_union() {
        let syms = sample(500, 41);
        let wm = WaveletMatrix::new(&syms, 41);
        let ranges = [
            (0usize, 120usize),
            (40, 41),
            (100, 400),
            (250, 250),
            (499, 500),
        ];
        let mut guide = CollectMulti(Vec::new());
        wm.guided_traverse_multi(&ranges, &mut guide);
        let mut got = guide.0;
        got.sort_unstable();
        let mut expected = Vec::new();
        for (i, &(b, e)) in ranges.iter().enumerate() {
            wm.range_distinct(b, e, &mut |s, rb, re| {
                expected.push((i as u32, s, rb, re));
            });
        }
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn multi_traversal_respects_item_pruning() {
        // Item 0 may only see symbols < 8; item 1 sees everything.
        let syms = sample(300, 32);
        let wm = WaveletMatrix::new(&syms, 32);
        struct PerItem {
            width: usize,
            out: Vec<(u32, u64)>,
        }
        impl MultiRangeGuide for PerItem {
            fn enter_node(&mut self, _: usize, _: u64) -> bool {
                true
            }
            fn enter_item(&mut self, item: u32, level: usize, prefix: u64) -> bool {
                item != 0 || (prefix << (self.width - level)) < 8
            }
            fn leaf(&mut self, item: u32, sym: u64, _: usize, _: usize) {
                self.out.push((item, sym));
            }
        }
        let mut guide = PerItem {
            width: wm.width(),
            out: Vec::new(),
        };
        wm.guided_traverse_multi(&[(0, 300), (0, 300)], &mut guide);
        let below8: Vec<u64> = guide
            .out
            .iter()
            .filter(|&&(i, _)| i == 0)
            .map(|&(_, s)| s)
            .collect();
        assert!(below8.iter().all(|&s| s < 8));
        let mut all: Vec<u64> = guide
            .out
            .iter()
            .filter(|&&(i, _)| i == 1)
            .map(|&(_, s)| s)
            .collect();
        all.sort_unstable();
        let mut expected: Vec<u64> = syms.clone();
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(all, expected);
    }

    #[test]
    fn multi_traversal_counts_saved_ranks() {
        let syms = sample(2000, 64);
        let wm = WaveletMatrix::new(&syms, 64);
        let ranges: Vec<(usize, usize)> = (0..64).map(|i| (i * 30, i * 30 + 25)).collect();
        let mut mt = MultiTraversal::new();
        let mut guide = CollectMulti(Vec::new());
        mt.run(&wm, &ranges, &mut guide);
        assert!(mt.ranks > 0);
        assert!(
            mt.ranks_saved > mt.ranks / 2,
            "batching 64 ranges should save many ranks: did {} saved {}",
            mt.ranks,
            mt.ranks_saved
        );
        // Scratch reuse: a second run over the same input agrees.
        let mut guide2 = CollectMulti(Vec::new());
        mt.run(&wm, &ranges, &mut guide2);
        assert_eq!(guide.0, guide2.0);
    }

    #[test]
    fn multi_traversal_empty_and_degenerate() {
        let wm = WaveletMatrix::new(&[1u64, 2, 3], 4);
        let mut guide = CollectMulti(Vec::new());
        wm.guided_traverse_multi(&[], &mut guide);
        wm.guided_traverse_multi(&[(0, 0), (3, 3)], &mut guide);
        assert!(guide.0.is_empty());
    }

    #[test]
    fn rank_batch_matches_rank() {
        let syms = sample(600, 37);
        let wm = WaveletMatrix::new(&syms, 37);
        for sym in [0u64, 5, 17, 36] {
            let mut positions: Vec<usize> = (0..=600).step_by(13).collect();
            let expected: Vec<usize> = positions.iter().map(|&i| wm.rank(sym, i)).collect();
            wm.rank_batch(sym, &mut positions);
            assert_eq!(positions, expected, "sym {sym}");
        }
        // Empty batch is a no-op.
        wm.rank_batch(3, &mut []);
    }

    #[test]
    fn rank_of_absent_symbol_is_zero() {
        let syms = vec![1u64, 3, 5, 7];
        let wm = WaveletMatrix::new(&syms, 8);
        for sym in [0u64, 2, 4, 6] {
            assert_eq!(wm.rank(sym, 4), 0);
            assert_eq!(wm.select(sym, 0), None);
        }
    }
}
