//! CRC32C (Castagnoli) — the checksum the on-disk formats carry.
//!
//! Hand-rolled (no external dependency): an 8×256-entry slicing-by-8
//! table, processing eight bytes per step on the hot path. CRC32C is the
//! polynomial every modern storage stack uses (ext4, Btrfs, iSCSI,
//! LevelDB/RocksDB WALs) because it detects all burst errors up to 32
//! bits and has hardware support on most CPUs — a software table version
//! runs at multiple GB/s, which is plenty next to the disk.
//!
//! The implementation is the standard reflected CRC-32/iSCSI:
//! polynomial `0x1EDC6F41` (reflected `0x82F63B78`), init `!0`,
//! xor-out `!0`, matching the `crc32c` crates and SSE4.2 `crc32` opcode
//! byte-for-byte (test-pinned vectors below).

/// The reflected CRC32C polynomial.
const POLY: u32 = 0x82F6_3B78;

/// 8 slicing tables, built at compile time.
static TABLES: [[u32; 256]; 8] = build_tables();

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut s = 1;
    while s < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[s - 1][i];
            t[s][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        s += 1;
    }
    t
}

/// A streaming CRC32C hasher.
///
/// ```
/// use succinct::checksum::Crc32c;
/// let mut h = Crc32c::new();
/// h.update(b"123456789");
/// assert_eq!(h.finalize(), 0xE306_9283); // the CRC-32/iSCSI check value
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Crc32c {
    state: u32,
}

impl Default for Crc32c {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32c {
    /// A fresh hasher (initial state `!0`).
    pub fn new() -> Self {
        Self { state: !0 }
    }

    /// Feeds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything fed so far (the hasher stays usable).
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC32C of a byte slice.
pub fn crc32c(bytes: &[u8]) -> u32 {
    let mut h = Crc32c::new();
    h.update(bytes);
    h.finalize()
}

/// A [`std::io::Write`] adapter hashing everything written through it
/// (the snapshot writers stack this over the file to produce the
/// trailing checksum footer without a second pass).
pub struct CrcWriter<W> {
    inner: W,
    crc: Crc32c,
    written: u64,
}

impl<W: std::io::Write> CrcWriter<W> {
    /// Wraps `inner`, starting a fresh checksum.
    pub fn new(inner: W) -> Self {
        Self {
            inner,
            crc: Crc32c::new(),
            written: 0,
        }
    }

    /// The checksum of the bytes written so far.
    pub fn digest(&self) -> u32 {
        self.crc.finalize()
    }

    /// Bytes written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The wrapped writer (for writing unhashed trailer bytes).
    pub fn inner_mut(&mut self) -> &mut W {
        &mut self.inner
    }
}

impl<W: std::io::Write> std::io::Write for CrcWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A [`std::io::Read`] adapter hashing everything read through it (the
/// loaders use it to verify the checksum footer after parsing the
/// payload, again without a second pass).
pub struct CrcReader<R> {
    inner: R,
    crc: Crc32c,
    read: u64,
}

impl<R: std::io::Read> CrcReader<R> {
    /// Wraps `inner`, starting a fresh checksum.
    pub fn new(inner: R) -> Self {
        Self {
            inner,
            crc: Crc32c::new(),
            read: 0,
        }
    }

    /// Feeds bytes consumed *before* wrapping (e.g. a magic sniffed off
    /// the raw stream) into the checksum, so the digest still covers the
    /// whole file prefix.
    pub fn preread(&mut self, bytes: &[u8]) {
        self.crc.update(bytes);
        self.read += bytes.len() as u64;
    }

    /// The checksum of the bytes read so far.
    pub fn digest(&self) -> u32 {
        self.crc.finalize()
    }

    /// Bytes read so far (prefed bytes included).
    pub fn read_count(&self) -> u64 {
        self.read
    }

    /// The wrapped reader (for reading unhashed trailer bytes).
    pub fn inner_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: std::io::Read> std::io::Read for CrcReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        self.read += n as u64;
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The standard CRC-32/iSCSI check vectors — pinning the exact
    /// polynomial/reflection/xor convention, byte-compatible with the
    /// SSE4.2 `crc32` instruction and every other CRC32C implementation.
    #[test]
    fn known_vectors() {
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(b"a"), 0xC1D0_4330);
        assert_eq!(crc32c(b"abc"), 0x364B_3FB7);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
    }

    /// Slicing-by-8 must agree with the bytewise reference at every
    /// alignment and length.
    #[test]
    fn slicing_matches_bytewise() {
        let data: Vec<u8> = (0..1024u32)
            .map(|i| (i.wrapping_mul(31) >> 3) as u8)
            .collect();
        let bytewise = |bytes: &[u8]| {
            let mut crc = !0u32;
            for &b in bytes {
                crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
            }
            !crc
        };
        for start in 0..8 {
            for len in [0, 1, 7, 8, 9, 63, 64, 65, 1000] {
                let slice = &data[start..start + len];
                assert_eq!(crc32c(slice), bytewise(slice), "start {start} len {len}");
            }
        }
    }

    /// Streaming in arbitrary chunkings matches the one-shot digest.
    #[test]
    fn streaming_is_chunking_independent() {
        let data: Vec<u8> = (0..777u32).map(|i| (i * 7 + 3) as u8).collect();
        let whole = crc32c(&data);
        for chunk in [1, 3, 8, 13, 64, 777] {
            let mut h = Crc32c::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), whole, "chunk {chunk}");
        }
    }

    #[test]
    fn writer_and_reader_adapters_agree() {
        use std::io::{Read, Write};
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut w = CrcWriter::new(Vec::new());
        w.write_all(data).unwrap();
        assert_eq!(w.digest(), crc32c(data));
        assert_eq!(w.written(), data.len() as u64);

        let mut r = CrcReader::new(&data[..]);
        r.preread(b""); // no-op preread keeps the digest unchanged
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(r.digest(), crc32c(data));

        // Sniffing a prefix off the raw stream then prefeeding it gives
        // the same digest as reading everything through the adapter.
        let (magic, rest) = data.split_at(8);
        let mut r = CrcReader::new(rest);
        r.preread(magic);
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).unwrap();
        assert_eq!(r.digest(), crc32c(data));
    }
}
