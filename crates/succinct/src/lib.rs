#![warn(missing_docs)]

//! Succinct data structures underlying the ring index.
//!
//! This crate re-implements, natively in Rust, the subset of succinct data
//! structures that the Ring-RPQ system (Arroyuelo, Hogan, Navarro,
//! Rojas-Ledesma; arXiv:2111.04556) takes from `sdsl-lite`:
//!
//! * [`BitVec`]: a plain, growable bit vector.
//! * [`RankSelect`]: an immutable bit vector with *O*(1) `rank` and
//!   fast `select`, the primitive everything else is built from (§3.5 of the
//!   paper, \[10, 39\]).
//! * [`IntVec`]: a fixed-width packed integer vector (the "plain
//!   representation" the paper compares index sizes against).
//! * [`WaveletTree`]: the classical pointer-based wavelet tree of
//!   Grossi, Gupta and Vitter \[23\], used here as a readable reference
//!   implementation and for cross-validation.
//! * [`WaveletMatrix`]: the wavelet matrix of Claude, Navarro and
//!   Ordóñez \[11\], the representation the paper's implementation uses for
//!   the large-alphabet sequences `L_s` and `L_p` (§5). It exposes the
//!   *guided traversal* API ([`wavelet_matrix::RangeGuide`]) that the RPQ
//!   engine uses to realize the B-masked and D-masked range searches of
//!   §4.1–§4.2.
//!
//! All structures report their heap footprint through [`SpaceUsage`], which
//! the benchmark harness uses to regenerate the space column of Table 2.

pub mod bitvec;
pub mod checksum;
pub mod elias_fano;
pub mod int_vec;
pub mod io;
pub mod mapped;
pub mod mmap;
pub mod rank_select;
pub mod storage;
pub mod util;
pub mod wavelet_matrix;
pub mod wavelet_tree;

pub use bitvec::BitVec;
pub use checksum::{crc32c, Crc32c};
pub use elias_fano::EliasFano;
pub use int_vec::IntVec;
pub use mmap::{MappedFile, ResidentMode};
pub use rank_select::RankSelect;
pub use storage::Slab;
pub use wavelet_matrix::WaveletMatrix;
pub use wavelet_tree::WaveletTree;

/// Heap space accounting, in bytes, for regenerating the paper's Table 2
/// (index space in bytes per edge).
pub trait SpaceUsage {
    /// Total heap bytes owned by this structure (excluding `size_of::<Self>()`
    /// unless noted otherwise).
    fn size_bytes(&self) -> usize;
}

impl<T: Copy> SpaceUsage for Vec<T> {
    fn size_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}
