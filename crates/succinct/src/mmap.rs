//! Minimal read-only memory mapping with a heap fallback.
//!
//! The build environment has no network access, so instead of the usual
//! `memmap2`/`libc` crates this module binds `mmap`/`munmap` directly
//! via `extern "C"` on 64-bit unix. Everywhere else (and whenever the
//! caller forces it) the "map" is a plain heap read into an 8-byte
//! aligned buffer, so the rest of the code sees one type either way.

use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

/// Where the bytes of an opened index actually live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidentMode {
    /// Kernel-managed mapping; pages fault in on demand and cost no
    /// process heap.
    Mmap,
    /// Whole file read into an aligned heap buffer (non-unix platforms,
    /// explicit opt-out, or empty files).
    Heap,
}

impl ResidentMode {
    /// Stable lowercase label for metrics and CLI output.
    pub fn as_str(self) -> &'static str {
        match self {
            ResidentMode::Mmap => "mmap",
            ResidentMode::Heap => "heap",
        }
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        // 64-bit unix only: `off_t` is passed as i64 there, which is the
        // ABI these declarations assume. 32-bit targets take the heap
        // fallback instead of risking a mismatched call.
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }

    pub fn map_failed() -> *mut c_void {
        usize::MAX as *mut c_void
    }
}

/// An open index file: either a real `mmap` region or an owned aligned
/// heap buffer. Immutable after construction; shared via `Arc` by every
/// [`crate::Slab`] carved out of it.
pub struct MappedFile {
    ptr: *const u8,
    len: usize,
    mode: ResidentMode,
    /// Keeps the heap-fallback buffer alive; `None` for real mappings.
    /// `u64` elements guarantee 8-byte alignment of the base pointer.
    heap: Option<Vec<u64>>,
}

// SAFETY: the region is read-only for the life of the value (PROT_READ
// private mapping or an owned buffer nobody else can reach), so shared
// access from any thread is fine.
unsafe impl Send for MappedFile {}
unsafe impl Sync for MappedFile {}

impl MappedFile {
    /// Opens `path`, preferring a real `mmap` where supported.
    pub fn open(path: &Path) -> io::Result<Arc<MappedFile>> {
        Self::open_with(path, true)
    }

    /// Opens `path` reading it fully into an aligned heap buffer — the
    /// portable fallback, also useful to compare resident modes.
    pub fn open_heap(path: &Path) -> io::Result<Arc<MappedFile>> {
        Self::open_with(path, false)
    }

    fn open_with(path: &Path, prefer_mmap: bool) -> io::Result<Arc<MappedFile>> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        if len > usize::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "file too large to map on this platform",
            ));
        }
        let len = len as usize;
        // mmap(len = 0) is EINVAL; an empty file is trivially "heap".
        if prefer_mmap && len > 0 {
            if let Some(mapped) = Self::try_mmap(&file, len) {
                return Ok(Arc::new(mapped));
            }
        }
        let mut buf = vec![0u64; len.div_ceil(8)];
        {
            // SAFETY: viewing an initialized u64 buffer as bytes.
            let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
            file.read_exact(bytes)?;
        }
        let ptr = buf.as_ptr() as *const u8;
        Ok(Arc::new(MappedFile {
            ptr,
            len,
            mode: ResidentMode::Heap,
            heap: Some(buf),
        }))
    }

    #[cfg(all(unix, target_pointer_width = "64"))]
    fn try_mmap(file: &File, len: usize) -> Option<MappedFile> {
        use std::os::unix::io::AsRawFd;
        // SAFETY: a fresh read-only private mapping of an open fd; the
        // kernel validates every argument and we check for MAP_FAILED.
        let ptr = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if ptr == sys::map_failed() || ptr.is_null() {
            return None;
        }
        Some(MappedFile {
            ptr: ptr as *const u8,
            len,
            mode: ResidentMode::Mmap,
            heap: None,
        })
    }

    #[cfg(not(all(unix, target_pointer_width = "64")))]
    fn try_mmap(_file: &File, _len: usize) -> Option<MappedFile> {
        None
    }

    /// The full contents of the file.
    pub fn as_bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: ptr/len describe the live mapping or the owned buffer.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// File length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the bytes live in a kernel mapping or on the heap.
    pub fn mode(&self) -> ResidentMode {
        self.mode
    }
}

impl Drop for MappedFile {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if self.mode == ResidentMode::Mmap && self.heap.is_none() && self.len > 0 {
            // SAFETY: exactly the region returned by mmap in try_mmap.
            unsafe {
                sys::munmap(self.ptr as *mut std::ffi::c_void, self.len);
            }
        }
    }
}

impl std::fmt::Debug for MappedFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedFile")
            .field("len", &self.len)
            .field("mode", &self.mode)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("rpq_mmap_test_{}_{}", std::process::id(), name));
        p
    }

    #[test]
    fn mmap_and_heap_see_identical_bytes() {
        let path = temp_path("roundtrip");
        let payload: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        std::fs::write(&path, &payload).unwrap();
        let mapped = MappedFile::open(&path).unwrap();
        let heaped = MappedFile::open_heap(&path).unwrap();
        assert_eq!(mapped.as_bytes(), &payload[..]);
        assert_eq!(heaped.as_bytes(), &payload[..]);
        assert_eq!(heaped.mode(), ResidentMode::Heap);
        #[cfg(all(unix, target_pointer_width = "64"))]
        assert_eq!(mapped.mode(), ResidentMode::Mmap);
        // Both bases are 8-byte aligned (page-aligned mmap; u64 buffer).
        assert_eq!(mapped.as_bytes().as_ptr() as usize % 8, 0);
        assert_eq!(heaped.as_bytes().as_ptr() as usize % 8, 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_is_heap_mode() {
        let path = temp_path("empty");
        std::fs::write(&path, b"").unwrap();
        let m = MappedFile::open(&path).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.mode(), ResidentMode::Heap);
        assert_eq!(m.as_bytes(), b"");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(MappedFile::open(Path::new("/nonexistent/rpq-no-such-file")).is_err());
    }
}
