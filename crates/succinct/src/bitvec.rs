//! A plain, growable bit vector backed by `u64` words.

use crate::SpaceUsage;

/// A growable sequence of bits.
///
/// `BitVec` is the mutable builder; freeze it into a [`crate::RankSelect`]
/// to answer `rank`/`select` queries.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an empty bit vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty bit vector with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        Self {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Creates a bit vector of `len` zeros.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Builds from an iterator of bits.
    pub fn from_bits<I: IntoIterator<Item = bool>>(bits: I) -> Self {
        let mut bv = Self::new();
        for b in bits {
            bv.push(b);
        }
        bv
    }

    /// Number of bits stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector holds no bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a bit.
    #[inline]
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Returns the bit at `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets the bit at `i`.
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn set(&mut self, i: usize, bit: bool) {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        let mask = 1u64 << (i % 64);
        if bit {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Total number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The backing words; bits beyond `len` are zero.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Consumes the vector, returning `(words, len)`.
    pub fn into_raw(self) -> (Vec<u64>, usize) {
        (self.words, self.len)
    }

    /// Iterates over all bits.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

impl SpaceUsage for BitVec {
    fn size_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

impl FromIterator<bool> for BitVec {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        Self::from_bits(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let bv = BitVec::new();
        assert_eq!(bv.len(), 0);
        assert!(bv.is_empty());
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn push_get_roundtrip() {
        let pattern = |i: usize| i.is_multiple_of(3) || i % 7 == 2;
        let mut bv = BitVec::new();
        for i in 0..1000 {
            bv.push(pattern(i));
        }
        assert_eq!(bv.len(), 1000);
        for i in 0..1000 {
            assert_eq!(bv.get(i), pattern(i), "bit {i}");
        }
    }

    #[test]
    fn set_flips_bits() {
        let mut bv = BitVec::zeros(130);
        assert!(!bv.get(129));
        bv.set(129, true);
        assert!(bv.get(129));
        bv.set(129, false);
        assert!(!bv.get(129));
        assert_eq!(bv.count_ones(), 0);
    }

    #[test]
    fn count_ones_matches_iter() {
        let bv = BitVec::from_bits((0..500).map(|i| i % 5 == 0));
        assert_eq!(bv.count_ones(), bv.iter().filter(|&b| b).count());
        assert_eq!(bv.count_ones(), 100);
    }

    #[test]
    fn words_padding_is_zero() {
        let bv = BitVec::from_bits((0..65).map(|_| true));
        assert_eq!(bv.words().len(), 2);
        assert_eq!(bv.words()[1], 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let bv = BitVec::zeros(10);
        bv.get(10);
    }

    #[test]
    fn from_iterator_collect() {
        let bv: BitVec = vec![true, false, true].into_iter().collect();
        assert_eq!(bv.len(), 3);
        assert!(bv.get(0) && !bv.get(1) && bv.get(2));
    }
}
