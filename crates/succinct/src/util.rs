//! Small utilities shared across the workspace: a fast hasher for integer
//! keys and an epoch-stamped array realizing constant-time lazy
//! initialization.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplication-based hasher (as used by rustc). The paper's
/// duplicate-elimination sets (`std::unordered_set` in C++) are hot; the
/// default SipHash is needlessly slow for `u64` keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u8(b);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// A fixed-size packed bitset backed by `u64` words: 1 bit per flag
/// instead of the byte `Vec<bool>` costs, so large flag tables (one per
/// graph node or wavelet node) stay cache-resident.
#[derive(Clone, Debug)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    /// A set of `len` flags, all clear.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)],
            len,
        }
    }

    /// Number of flags.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set has no flags.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads flag `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Sets flag `i`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears flag `i`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of set flags.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Heap bytes owned by the set.
    pub fn size_bytes(&self) -> usize {
        self.words.capacity() * 8
    }
}

/// An array of `u64` cells with *O*(1) logical reset.
///
/// This realizes the compact constant-time lazy-initialization structure the
/// paper cites (\[40, App. C\]) for the per-node visited masks `D[s]` and the
/// per-wavelet-node masks `B[v]`/`D[v]`: memory is allocated once and a
/// 32-bit epoch stamp decides whether a cell's stored value is current.
#[derive(Clone, Debug)]
pub struct EpochArray {
    values: Vec<u64>,
    stamps: Vec<u32>,
    epoch: u32,
}

impl EpochArray {
    /// Creates an array of `len` cells, all logically zero.
    pub fn new(len: usize) -> Self {
        Self {
            values: vec![0; len],
            stamps: vec![0; len],
            epoch: 1,
        }
    }

    /// Number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the array has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Logically zeroes every cell in *O*(1) (amortized: a real wipe happens
    /// once every `u32::MAX` resets when the epoch wraps).
    pub fn reset(&mut self) {
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Reads cell `i` (zero if untouched since the last [`reset`](Self::reset)).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        if self.stamps[i] == self.epoch {
            self.values[i]
        } else {
            0
        }
    }

    /// Writes cell `i`.
    #[inline]
    pub fn set(&mut self, i: usize, value: u64) {
        self.stamps[i] = self.epoch;
        self.values[i] = value;
    }

    /// ORs `mask` into cell `i`, returning the new value.
    #[inline]
    pub fn or_with(&mut self, i: usize, mask: u64) -> u64 {
        let v = self.get(i) | mask;
        self.set(i, v);
        v
    }

    /// Heap bytes owned by the array.
    pub fn size_bytes(&self) -> usize {
        self.values.capacity() * 8 + self.stamps.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fxhash_distributes_u64_keys() {
        let mut set = FxHashSet::default();
        for i in 0..10_000u64 {
            set.insert(i * 64);
        }
        assert_eq!(set.len(), 10_000);
        assert!(set.contains(&6400));
        assert!(!set.contains(&6401));
    }

    #[test]
    fn fxhash_map_basic() {
        let mut m: FxHashMap<(u64, u64), u64> = FxHashMap::default();
        m.insert((1, 2), 3);
        m.insert((2, 1), 4);
        assert_eq!(m.get(&(1, 2)), Some(&3));
        assert_eq!(m.get(&(2, 1)), Some(&4));
    }

    #[test]
    fn bitset_set_get_clear() {
        let mut s = BitSet::new(300);
        assert_eq!(s.len(), 300);
        assert!(!s.is_empty());
        assert!(!s.get(299));
        s.set(0);
        s.set(63);
        s.set(64);
        s.set(299);
        assert!(s.get(0) && s.get(63) && s.get(64) && s.get(299));
        assert!(!s.get(65));
        assert_eq!(s.count_ones(), 4);
        s.clear(64);
        assert!(!s.get(64));
        assert_eq!(s.count_ones(), 3);
        // An eighth of the Vec<bool> footprint.
        assert!(s.size_bytes() <= 300 / 8 + 8);
        assert!(BitSet::new(0).is_empty());
    }

    #[test]
    fn epoch_array_reset_is_logical_zero() {
        let mut a = EpochArray::new(8);
        a.set(3, 42);
        a.or_with(4, 0b101);
        assert_eq!(a.get(3), 42);
        assert_eq!(a.get(4), 0b101);
        assert_eq!(a.get(0), 0);
        a.reset();
        for i in 0..8 {
            assert_eq!(a.get(i), 0, "cell {i} after reset");
        }
        assert_eq!(a.or_with(3, 0b10), 0b10);
    }

    #[test]
    fn epoch_array_many_resets() {
        let mut a = EpochArray::new(2);
        for round in 0..1000u64 {
            a.reset();
            assert_eq!(a.get(0), 0);
            a.set(0, round);
            assert_eq!(a.get(0), round);
        }
    }
}
