//! Building blocks of the mappable on-disk format.
//!
//! Unlike [`crate::io`] (a portable stream format whose reader copies
//! everything onto the heap and rebuilds the select directories), this
//! module defines **in-place** encodings: every array lands in the file
//! 8-byte aligned and byte-for-byte identical to its in-memory layout,
//! so loading is a bounds/shape check plus a [`Slab`] pointing into the
//! mapped file. The directories are stored, not rebuilt — that is what
//! makes cold open O(header) instead of O(index).
//!
//! The format is little-endian and the in-place reader reinterprets file
//! bytes as native `u64`/`u32`, so mapped opening is gated to
//! little-endian hosts (the portable [`crate::io`] format remains
//! available everywhere).
//!
//! [`SectionWriter`] serializes one section (tracking its own offset so
//! it can self-align); [`MapReader`] walks a section of a
//! [`MappedFile`], enforcing bounds and the 8-byte alignment invariant
//! on every array it hands out. On top of those, this module provides
//! the codecs for the succinct primitives ([`RankSelect`], [`IntVec`],
//! [`WaveletMatrix`], [`EliasFano`]); the ring crate composes them into
//! whole-index sections.

use std::io::{self, Write};
use std::sync::Arc;

use crate::mmap::MappedFile;
use crate::storage::Slab;
use crate::{EliasFano, IntVec, RankSelect, WaveletMatrix};

/// Alignment (bytes) of every array in the mapped format: the strictest
/// alignment of the element types (`u64`).
pub const ALIGN: usize = 8;

/// A corrupt-data error (same flavor the stream format uses).
pub fn err_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Whether this host can reinterpret the mapped format in place.
pub fn host_supported() -> bool {
    cfg!(target_endian = "little")
}

/// Writes one section of the mapped format, tracking the running offset
/// so arrays can be padded to [`ALIGN`] as they are emitted.
pub struct SectionWriter<W: Write> {
    out: W,
    pos: u64,
}

impl<W: Write> SectionWriter<W> {
    /// Starts a section at offset 0 of `out` (sections are positioned by
    /// the table of contents, which itself keeps them 8-byte aligned, so
    /// in-section offsets equal in-file alignment).
    pub fn new(out: W) -> Self {
        Self { out, pos: 0 }
    }

    /// Bytes written so far.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// Finishes the section, returning the writer.
    pub fn into_inner(self) -> W {
        self.out
    }

    /// Writes one little-endian `u64`.
    pub fn u64(&mut self, x: u64) -> io::Result<()> {
        self.out.write_all(&x.to_le_bytes())?;
        self.pos += 8;
        Ok(())
    }

    /// Writes a `u64` array in file order.
    pub fn u64s(&mut self, xs: &[u64]) -> io::Result<()> {
        #[cfg(target_endian = "little")]
        {
            // SAFETY: reading a POD slice as bytes.
            let bytes = unsafe {
                std::slice::from_raw_parts(xs.as_ptr() as *const u8, std::mem::size_of_val(xs))
            };
            self.out.write_all(bytes)?;
        }
        #[cfg(not(target_endian = "little"))]
        for &x in xs {
            self.out.write_all(&x.to_le_bytes())?;
        }
        self.pos += 8 * xs.len() as u64;
        Ok(())
    }

    /// Writes a `u32` array in file order (callers pad afterwards).
    pub fn u32s(&mut self, xs: &[u32]) -> io::Result<()> {
        #[cfg(target_endian = "little")]
        {
            // SAFETY: reading a POD slice as bytes.
            let bytes = unsafe {
                std::slice::from_raw_parts(xs.as_ptr() as *const u8, std::mem::size_of_val(xs))
            };
            self.out.write_all(bytes)?;
        }
        #[cfg(not(target_endian = "little"))]
        for &x in xs {
            self.out.write_all(&x.to_le_bytes())?;
        }
        self.pos += 4 * xs.len() as u64;
        Ok(())
    }

    /// Writes raw bytes (callers pad afterwards).
    pub fn bytes(&mut self, xs: &[u8]) -> io::Result<()> {
        self.out.write_all(xs)?;
        self.pos += xs.len() as u64;
        Ok(())
    }

    /// Zero-pads to the next [`ALIGN`] boundary.
    pub fn pad(&mut self) -> io::Result<()> {
        let rem = (self.pos % ALIGN as u64) as usize;
        if rem != 0 {
            self.out.write_all(&[0u8; ALIGN][..ALIGN - rem])?;
            self.pos += (ALIGN - rem) as u64;
        }
        Ok(())
    }
}

/// Reads one section of a mapped file, enforcing bounds and the 8-byte
/// alignment invariant, and carving zero-copy [`Slab`]s out of it.
pub struct MapReader {
    map: Arc<MappedFile>,
    pos: usize,
    end: usize,
}

impl MapReader {
    /// A reader over `map[start..start + len]`.
    pub fn new(map: Arc<MappedFile>, start: usize, len: usize) -> io::Result<Self> {
        let end = start
            .checked_add(len)
            .ok_or_else(|| err_data("section range overflows"))?;
        if end > map.len() {
            return Err(err_data("section extends past end of file"));
        }
        Ok(Self {
            map,
            pos: start,
            end,
        })
    }

    /// Bytes left in the section.
    pub fn remaining(&self) -> usize {
        self.end - self.pos
    }

    /// Errors unless the section was consumed exactly.
    pub fn finish(self) -> io::Result<()> {
        if self.pos != self.end {
            return Err(err_data("section has trailing bytes"));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> io::Result<usize> {
        if n > self.remaining() {
            return Err(err_data("section truncated"));
        }
        let at = self.pos;
        self.pos += n;
        Ok(at)
    }

    /// Reads one little-endian `u64`.
    pub fn u64(&mut self) -> io::Result<u64> {
        let at = self.take(8)?;
        let bytes = &self.map.as_bytes()[at..at + 8];
        Ok(u64::from_le_bytes(bytes.try_into().unwrap()))
    }

    /// Reads a `u64` declared as a length/count, bounding it so corrupt
    /// headers can't drive preallocation or multiplication overflow.
    pub fn len_u64(&mut self, max: u64) -> io::Result<usize> {
        let x = self.u64()?;
        if x > max {
            return Err(err_data(format!("declared length {x} exceeds limit {max}")));
        }
        Ok(x as usize)
    }

    fn aligned_to(&self, align: usize) -> bool {
        self.pos.is_multiple_of(align)
    }

    /// Borrows the next `n` `u64`s in place. The offset must sit on an
    /// [`ALIGN`] boundary — a misaligned `&[u64]` reinterpretation would
    /// be undefined behavior, so this is checked unconditionally.
    pub fn slab_u64(&mut self, n: usize) -> io::Result<Slab<u64>> {
        if !self.aligned_to(8) {
            return Err(err_data("u64 array is not 8-byte aligned"));
        }
        let bytes = n
            .checked_mul(8)
            .ok_or_else(|| err_data("u64 array length overflows"))?;
        let at = self.take(bytes)?;
        Ok(Slab::from_mapped(Arc::clone(&self.map), at, n))
    }

    /// Borrows the next `n` `u32`s in place, then skips the pad to the
    /// next [`ALIGN`] boundary.
    pub fn slab_u32(&mut self, n: usize) -> io::Result<Slab<u32>> {
        if !self.aligned_to(4) {
            return Err(err_data("u32 array is not 4-byte aligned"));
        }
        let bytes = n
            .checked_mul(4)
            .ok_or_else(|| err_data("u32 array length overflows"))?;
        let at = self.take(bytes)?;
        let slab = Slab::from_mapped(Arc::clone(&self.map), at, n);
        self.skip_pad()?;
        Ok(slab)
    }

    /// Borrows the next `n` bytes in place, then skips the pad to the
    /// next [`ALIGN`] boundary.
    pub fn slab_u8(&mut self, n: usize) -> io::Result<Slab<u8>> {
        let at = self.take(n)?;
        let slab = Slab::from_mapped(Arc::clone(&self.map), at, n);
        self.skip_pad()?;
        Ok(slab)
    }

    fn skip_pad(&mut self) -> io::Result<()> {
        let rem = self.pos % ALIGN;
        if rem != 0 {
            self.take(ALIGN - rem)?;
        }
        Ok(())
    }
}

/// Generous structural bound on element counts (2^40, ~1 T elements):
/// real indexes are far below it, and it keeps `count * width`
/// arithmetic comfortably inside `u64`.
pub const MAX_LEN: u64 = 1 << 40;

const WORDS_PER_SUPER: usize = 8;
const SUPER_STRIDE: usize = WORDS_PER_SUPER + 2;

/// Writes a [`RankSelect`] in place: `[len, n_ones, rate1, rate0]`, the
/// interleaved superblock records, then both select sample directories.
pub fn write_rank_select<W: Write>(w: &mut SectionWriter<W>, rs: &RankSelect) -> io::Result<()> {
    let (data, sel1, sel0) = rs.raw_parts();
    let (rate1, rate0) = rs.select_sample_rates();
    w.u64(rs.len() as u64)?;
    w.u64(rs.count_ones() as u64)?;
    w.u64(rate1 as u64)?;
    w.u64(rate0 as u64)?;
    w.u64s(data)?;
    w.u32s(sel1)?;
    w.pad()?;
    w.u32s(sel0)?;
    w.pad()
}

/// Reads a [`RankSelect`] written by [`write_rank_select`], borrowing
/// its arrays from the mapped file.
pub fn read_rank_select(r: &mut MapReader) -> io::Result<RankSelect> {
    let len = r.len_u64(MAX_LEN)?;
    let n_ones = r.len_u64(MAX_LEN)?;
    let rate1 = r.len_u64(MAX_LEN)?;
    let rate0 = r.len_u64(MAX_LEN)?;
    if n_ones > len {
        return Err(err_data("rank/select one-count exceeds bit length"));
    }
    if rate1 == 0 || rate0 == 0 {
        return Err(err_data("rank/select sample rate must be positive"));
    }
    let n_super = len.div_ceil(64).div_ceil(WORDS_PER_SUPER);
    let data = r.slab_u64(n_super * SUPER_STRIDE)?;
    let sel1 = r.slab_u32(n_ones.div_ceil(rate1))?;
    let sel0 = r.slab_u32((len - n_ones).div_ceil(rate0))?;
    RankSelect::from_raw_parts(data, len, n_ones, sel1, sel0, rate1, rate0).map_err(err_data)
}

/// Writes an [`IntVec`] in place: `[width, len]` then the packed words.
pub fn write_int_vec<W: Write>(w: &mut SectionWriter<W>, v: &IntVec) -> io::Result<()> {
    w.u64(v.width() as u64)?;
    w.u64(v.len() as u64)?;
    w.u64s(v.words())
}

/// Reads an [`IntVec`] written by [`write_int_vec`].
pub fn read_int_vec(r: &mut MapReader) -> io::Result<IntVec> {
    let width = r.len_u64(64)?;
    let len = r.len_u64(MAX_LEN)?;
    if width == 0 {
        return Err(err_data("packed vector width must be positive"));
    }
    let words = r.slab_u64((len * width).div_ceil(64))?;
    IntVec::from_raw_parts(words, width, len).map_err(err_data)
}

/// Writes a [`WaveletMatrix`] in place: `[sigma, len]` then one
/// [`RankSelect`] per bit level (the level count is implied by `sigma`;
/// the per-level zero counts are recomputed on load).
pub fn write_wavelet_matrix<W: Write>(
    w: &mut SectionWriter<W>,
    wm: &WaveletMatrix,
) -> io::Result<()> {
    w.u64(wm.sigma())?;
    w.u64(wm.len() as u64)?;
    for level in wm.raw_levels() {
        write_rank_select(w, level)?;
    }
    Ok(())
}

/// Reads a [`WaveletMatrix`] written by [`write_wavelet_matrix`].
pub fn read_wavelet_matrix(r: &mut MapReader) -> io::Result<WaveletMatrix> {
    let sigma = r.u64()?;
    if sigma == 0 || sigma > MAX_LEN {
        return Err(err_data("wavelet matrix alphabet size out of range"));
    }
    let len = r.len_u64(MAX_LEN)?;
    let width = crate::int_vec::bits_for(sigma.saturating_sub(1)).max(1);
    let mut levels = Vec::with_capacity(width);
    for _ in 0..width {
        levels.push(read_rank_select(r)?);
    }
    WaveletMatrix::from_raw_parts(levels, len, sigma).map_err(err_data)
}

/// Writes an [`EliasFano`] in place: `[n, universe, low_bits]`, the low
/// halves, then the unary high bits.
pub fn write_elias_fano<W: Write>(w: &mut SectionWriter<W>, ef: &EliasFano) -> io::Result<()> {
    let (lows, highs, low_bits) = ef.raw_parts();
    w.u64(ef.len() as u64)?;
    w.u64(ef.universe())?;
    w.u64(low_bits as u64)?;
    write_int_vec(w, lows)?;
    write_rank_select(w, highs)
}

/// Reads an [`EliasFano`] written by [`write_elias_fano`].
pub fn read_elias_fano(r: &mut MapReader) -> io::Result<EliasFano> {
    let n = r.len_u64(MAX_LEN)?;
    let universe = r.u64()?;
    let low_bits = r.len_u64(64)?;
    let lows = read_int_vec(r)?;
    let highs = read_rank_select(r)?;
    EliasFano::from_raw_parts(lows, highs, low_bits, n, universe).map_err(err_data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitVec;

    fn write_section(
        f: impl FnOnce(&mut SectionWriter<&mut Vec<u8>>) -> io::Result<()>,
    ) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = SectionWriter::new(&mut buf);
        f(&mut w).unwrap();
        w.pad().unwrap();
        buf
    }

    fn map_of(bytes: &[u8]) -> Arc<MappedFile> {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "rpq_mapped_unit_{}_{}",
            std::process::id(),
            bytes.len()
        ));
        std::fs::write(&p, bytes).unwrap();
        let m = MappedFile::open(&p).unwrap();
        std::fs::remove_file(&p).ok();
        m
    }

    #[test]
    fn rank_select_roundtrips_in_place() {
        let bits: Vec<bool> = (0..5000).map(|i| i % 7 == 0 || i % 31 == 4).collect();
        let rs = RankSelect::new(BitVec::from_bits(bits.iter().copied()));
        let buf = write_section(|w| write_rank_select(w, &rs));
        let map = map_of(&buf);
        let mut r = MapReader::new(Arc::clone(&map), 0, buf.len()).unwrap();
        let back = read_rank_select(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.len(), rs.len());
        assert_eq!(back.count_ones(), rs.count_ones());
        for i in (0..=5000).step_by(13) {
            assert_eq!(back.rank1(i), rs.rank1(i));
        }
        for k in (0..rs.count_ones()).step_by(7) {
            assert_eq!(back.select1(k), rs.select1(k));
        }
        for k in (0..rs.count_zeros()).step_by(97) {
            assert_eq!(back.select0(k), rs.select0(k));
        }
        back.verify_deep().unwrap();
    }

    #[test]
    fn wavelet_matrix_roundtrips_in_place() {
        let syms: Vec<u64> = (0..3000u64).map(|i| (i * 2654435761) % 117).collect();
        let wm = WaveletMatrix::new(&syms, 117);
        let buf = write_section(|w| write_wavelet_matrix(w, &wm));
        let map = map_of(&buf);
        let mut r = MapReader::new(map, 0, buf.len()).unwrap();
        let back = read_wavelet_matrix(&mut r).unwrap();
        r.finish().unwrap();
        for (i, &s) in syms.iter().enumerate() {
            assert_eq!(back.access(i), s, "access({i})");
        }
        assert_eq!(back.rank(33, 2500), wm.rank(33, 2500));
    }

    #[test]
    fn elias_fano_roundtrips_in_place() {
        let mut vals: Vec<u64> = (0..800u64).map(|i| i * 37 % 20000).collect();
        vals.sort_unstable();
        let ef = EliasFano::new(&vals, 20000);
        let buf = write_section(|w| write_elias_fano(w, &ef));
        let map = map_of(&buf);
        let mut r = MapReader::new(map, 0, buf.len()).unwrap();
        let back = read_elias_fano(&mut r).unwrap();
        r.finish().unwrap();
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(back.get(i), v);
        }
        assert_eq!(back.rank_leq(9999), ef.rank_leq(9999));
    }

    #[test]
    fn truncated_section_is_an_error() {
        let bits: Vec<bool> = (0..2000).map(|i| i % 3 == 0).collect();
        let rs = RankSelect::new(BitVec::from_bits(bits.iter().copied()));
        let buf = write_section(|w| write_rank_select(w, &rs));
        for cut in [0, 8, 31, buf.len() / 2, buf.len() - 1] {
            let map = map_of(&buf[..cut]);
            let mut r = MapReader::new(map, 0, cut).unwrap();
            assert!(read_rank_select(&mut r).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn misaligned_u64_slab_is_rejected() {
        // A reader whose cursor lands off the 8-byte grid must refuse to
        // hand out a &[u64] view.
        let buf = vec![0u8; 64];
        let map = map_of(&buf);
        let mut r = MapReader::new(map, 0, 64).unwrap();
        r.slab_u8(4).unwrap(); // consumes 4 bytes + 4 pad — still aligned
        assert!(r.slab_u64(1).is_ok());
        let map2 = map_of(&buf);
        let mut r2 = MapReader::new(map2, 1, 32).unwrap();
        assert!(r2.slab_u64(1).is_err(), "offset 1 must be rejected");
    }

    #[test]
    fn oversized_declared_length_is_an_error() {
        // A header claiming 2^40 bits must fail fast on bounds, not
        // preallocate or overflow.
        let buf = write_section(|w| {
            w.u64(MAX_LEN)?; // len
            w.u64(1)?; // n_ones
            w.u64(16)?; // rate1
            w.u64(16) // rate0
        });
        let map = map_of(&buf);
        let mut r = MapReader::new(map, 0, buf.len()).unwrap();
        assert!(read_rank_select(&mut r).is_err());
    }
}
