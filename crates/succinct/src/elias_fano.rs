//! Elias–Fano encoding of monotone sequences.
//!
//! A non-decreasing sequence of `n` values over universe `[0, u)` in
//! `n·⌈log₂(u/n)⌉ + 2n + o(n)` bits with *O*(1) access and *O*(log)
//! predecessor queries — the textbook representation for the ring's
//! boundary arrays `C_x` (long runs of similar counts compress well) and
//! a staple of the succinct toolbox the paper builds on.
//!
//! Layout: each value splits into `l` low bits (packed in an [`IntVec`])
//! and a high part, unary-coded into a bit vector: value `i`'s high part
//! `h_i` contributes a one at position `h_i + i`.

use crate::int_vec::bits_for;
use crate::{BitVec, IntVec, RankSelect, SpaceUsage};

/// An Elias–Fano encoded non-decreasing sequence.
#[derive(Clone, Debug)]
pub struct EliasFano {
    lows: IntVec,
    highs: RankSelect,
    low_bits: usize,
    n: usize,
    universe: u64,
}

impl EliasFano {
    /// Encodes `values`, which must be non-decreasing and `< universe`.
    ///
    /// # Panics
    /// Panics if the sequence decreases or exceeds the universe.
    pub fn new(values: &[u64], universe: u64) -> Self {
        let n = values.len();
        for w in values.windows(2) {
            assert!(w[0] <= w[1], "sequence must be non-decreasing");
        }
        if let Some(&last) = values.last() {
            assert!(
                last < universe.max(1),
                "value {last} outside universe {universe}"
            );
        }
        // l = floor(log2(u/n)) clamped to sensible bounds.
        let low_bits = if n == 0 {
            1
        } else {
            let ratio = universe.max(1) / n as u64;
            if ratio <= 1 {
                1
            } else {
                bits_for(ratio) - 1
            }
        }
        .max(1);
        let mut lows = IntVec::new(low_bits);
        let max_high = values.last().map_or(0, |&v| (v >> low_bits) as usize);
        let mut highs = BitVec::with_capacity(n + max_high + 1);
        let mut prev_high = 0usize;
        for &v in values {
            lows.push(v & ((1u64 << low_bits) - 1));
            let h = (v >> low_bits) as usize;
            for _ in prev_high..h {
                highs.push(false);
            }
            highs.push(true);
            prev_high = h;
        }
        Self {
            lows,
            highs: RankSelect::new(highs),
            low_bits,
            n,
            universe,
        }
    }

    /// Internal components, for the mapped on-disk format writer
    /// ([`crate::mapped`]): `(lows, highs, low_bits)`.
    pub(crate) fn raw_parts(&self) -> (&IntVec, &RankSelect, usize) {
        (&self.lows, &self.highs, self.low_bits)
    }

    /// Reassembles a sequence from stored parts — the mapped-format load
    /// path. Validates the component shapes against `n`/`universe`; the
    /// values themselves are only re-decoded (O(n)) in debug builds,
    /// like the deep rank/select check.
    pub(crate) fn from_raw_parts(
        lows: IntVec,
        highs: RankSelect,
        low_bits: usize,
        n: usize,
        universe: u64,
    ) -> Result<Self, &'static str> {
        if low_bits == 0 || low_bits != lows.width() {
            return Err("Elias-Fano low-bit width mismatch");
        }
        if lows.len() != n || highs.count_ones() != n {
            return Err("Elias-Fano component length mismatch");
        }
        let ef = Self {
            lows,
            highs,
            low_bits,
            n,
            universe,
        };
        #[cfg(debug_assertions)]
        {
            let mut prev = 0u64;
            for i in 0..ef.n {
                let v = ef.get(i);
                if v < prev {
                    return Err("Elias-Fano values decode non-monotone");
                }
                if v >= universe.max(1) {
                    return Err("Elias-Fano value outside universe");
                }
                prev = v;
            }
        }
        Ok(ef)
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The universe bound.
    #[inline]
    pub fn universe(&self) -> u64 {
        self.universe
    }

    /// The `i`-th value, in *O*(1).
    ///
    /// # Panics
    /// Panics if `i >= len` (via the underlying select).
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        let pos = self.highs.select1(i).expect("index within sequence");
        let high = (pos - i) as u64;
        (high << self.low_bits) | self.lows.get(i)
    }

    /// Number of values `<= x` (the predecessor-count / `owner` query).
    pub fn rank_leq(&self, x: u64) -> usize {
        if self.n == 0 {
            return 0;
        }
        let h = (x >> self.low_bits) as usize;
        // Values with high part < h: ones before the h-th zero.
        let start = if h == 0 {
            0
        } else {
            match self.highs.select0(h - 1) {
                Some(p) => self.highs.rank1(p),
                None => self.n,
            }
        };
        // Values with high part == h occupy a contiguous index range;
        // scan it with binary search over the lows.
        let end = match self.highs.select0(h) {
            Some(p) => self.highs.rank1(p),
            None => self.n,
        };
        let lo_x = x & ((1u64 << self.low_bits) - 1);
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.lows.get(mid) <= lo_x {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Smallest value `>= x`, with its index, or `None`.
    pub fn successor(&self, x: u64) -> Option<(usize, u64)> {
        let idx = if x == 0 { 0 } else { self.rank_leq(x - 1) };
        (idx < self.n).then(|| (idx, self.get(idx)))
    }

    /// Iterates all values.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.n).map(move |i| self.get(i))
    }
}

impl SpaceUsage for EliasFano {
    fn size_bytes(&self) -> usize {
        self.lows.size_bytes() + self.highs.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(values: &[u64], universe: u64) {
        let ef = EliasFano::new(values, universe);
        assert_eq!(ef.len(), values.len());
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(ef.get(i), v, "get({i})");
        }
        for x in 0..universe.min(300) {
            let naive = values.iter().filter(|&&v| v <= x).count();
            assert_eq!(ef.rank_leq(x), naive, "rank_leq({x})");
            let succ = values
                .iter()
                .enumerate()
                .find(|(_, &v)| v >= x)
                .map(|(i, &v)| (i, v));
            assert_eq!(ef.successor(x), succ, "successor({x})");
        }
        assert_eq!(ef.iter().collect::<Vec<_>>(), values);
    }

    #[test]
    fn small_sequences() {
        check(&[], 100);
        check(&[0], 1);
        check(&[5], 100);
        check(&[0, 0, 0], 10);
        check(&[1, 3, 3, 7, 20, 99], 100);
        check(&[0, 1, 2, 3, 4, 5], 6);
    }

    #[test]
    fn clustered_and_sparse() {
        // Dense cluster then a long gap — the case EF shines on.
        let mut v: Vec<u64> = (0..64).collect();
        v.extend([200, 201, 250]);
        check(&v, 256);
        // Very sparse.
        check(&[0, 1 << 20, 1 << 30], 1 << 31);
    }

    #[test]
    fn cumulative_counts_shape() {
        // The ring's C arrays: cumulative, duplicate-heavy.
        let counts = [0u64, 4, 8, 8, 8, 10, 14, 16, 16];
        check(&counts, 17);
        let ef = EliasFano::new(&counts, 17);
        // owner-style query: values <= 9 are {0, 4, 8, 8, 8}; the block
        // containing position 9 is therefore index 5 - 1 = 4's successor.
        assert_eq!(ef.rank_leq(9), 5);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn decreasing_rejected() {
        EliasFano::new(&[3, 2], 10);
    }

    #[test]
    fn space_beats_plain_for_sparse() {
        let values: Vec<u64> = (0..1000u64).map(|i| i * 1000).collect();
        let ef = EliasFano::new(&values, 1_000_000);
        // Plain u64s: 8000 bytes. EF: ~n(2 + log2(u/n)) bits ≈ 1.5 kB.
        assert!(ef.size_bytes() < 3000, "EF size {}", ef.size_bytes());
    }
}
