//! Borrow-or-own word storage behind the succinct structures.
//!
//! A [`Slab`] is an immutable array of plain words that either owns a
//! heap `Vec<T>` or borrows an 8-byte-aligned region of a memory-mapped
//! index file ([`crate::mmap::MappedFile`]). Readers always go through a
//! cached `(ptr, len)` pair, so the heap and mapped paths compile to the
//! same branch-free slice access — the zero-copy trick of mappable
//! succinct archives: the structure's query code never knows (or pays
//! for) where its words live.

use std::ops::Deref;
use std::sync::Arc;

use crate::mmap::MappedFile;
use crate::SpaceUsage;

mod sealed {
    pub trait Sealed {}
    impl Sealed for u8 {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// Plain-old-data element types a [`Slab`] may hold: fixed-size
/// little-endian integers with no padding and no invalid bit patterns,
/// so reinterpreting mapped file bytes as `[T]` is sound (given the
/// alignment the mapped format guarantees).
pub trait Pod: sealed::Sealed + Copy + Send + Sync + 'static {}
impl Pod for u8 {}
impl Pod for u32 {}
impl Pod for u64 {}

enum Backing<T: Pod> {
    /// Heap storage (the build path and the non-mmap load fallback).
    Owned(Vec<T>),
    /// A region of a mapped file, kept alive by the `Arc`.
    Mapped(Arc<MappedFile>),
}

/// An immutable array of words, heap-owned or borrowed from a mapped
/// file, with branch-free `&[T]` access either way.
pub struct Slab<T: Pod> {
    /// Cached view into the backing; recomputed whenever the backing
    /// changes (never for mapped slabs — the map is pinned by the Arc).
    ptr: *const T,
    len: usize,
    backing: Backing<T>,
}

// SAFETY: a `Slab` is immutable through `&self` (mutators require
// `&mut`), the owned backing is owned by the slab itself, and the mapped
// backing is a read-only private mapping pinned by an `Arc`.
unsafe impl<T: Pod> Send for Slab<T> {}
unsafe impl<T: Pod> Sync for Slab<T> {}

impl<T: Pod> Slab<T> {
    /// An empty owned slab.
    pub fn new() -> Self {
        Vec::new().into()
    }

    /// Wraps `n` elements of `map` starting at `byte_offset`.
    ///
    /// The caller (the mapped-format reader) must have verified that the
    /// region lies within the map and that `byte_offset` is aligned to
    /// `align_of::<T>()`; both are re-asserted here because a misaligned
    /// reinterpretation would be undefined behavior, not just a wrong
    /// answer.
    pub(crate) fn from_mapped(map: Arc<MappedFile>, byte_offset: usize, n: usize) -> Self {
        let bytes = map.as_bytes();
        let end = byte_offset
            .checked_add(n * std::mem::size_of::<T>())
            .expect("mapped slab range overflows");
        assert!(end <= bytes.len(), "mapped slab out of bounds");
        let ptr = unsafe { bytes.as_ptr().add(byte_offset) } as *const T;
        assert!(
            (ptr as usize).is_multiple_of(std::mem::align_of::<T>()),
            "mapped slab is misaligned"
        );
        Self {
            ptr,
            len: n,
            backing: Backing::Mapped(map),
        }
    }

    /// Whether this slab borrows a mapped file (vs owning heap memory).
    pub fn is_mapped(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_))
    }

    /// Appends an element. Only owned slabs grow.
    ///
    /// # Panics
    /// Panics on a mapped slab (mapped structures are immutable).
    pub fn push(&mut self, x: T) {
        match &mut self.backing {
            Backing::Owned(v) => {
                v.push(x);
                self.ptr = v.as_ptr();
                self.len = v.len();
            }
            Backing::Mapped(_) => panic!("cannot grow a mapped slab"),
        }
    }

    /// Reserves capacity for `additional` more elements. Only owned
    /// slabs grow.
    ///
    /// # Panics
    /// Panics on a mapped slab (mapped structures are immutable).
    pub fn reserve(&mut self, additional: usize) {
        match &mut self.backing {
            Backing::Owned(v) => {
                v.reserve(additional);
                self.ptr = v.as_ptr();
            }
            Backing::Mapped(_) => panic!("cannot grow a mapped slab"),
        }
    }

    /// Mutable access to the elements. Only owned slabs mutate.
    ///
    /// # Panics
    /// Panics on a mapped slab (mapped structures are immutable).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.backing {
            Backing::Owned(v) => v.as_mut_slice(),
            Backing::Mapped(_) => panic!("cannot mutate a mapped slab"),
        }
    }

    /// Heap bytes owned by this slab (0 when it borrows a map — that
    /// memory is the kernel page cache's, which is the whole point).
    pub fn heap_bytes(&self) -> usize {
        match &self.backing {
            Backing::Owned(v) => v.capacity() * std::mem::size_of::<T>(),
            Backing::Mapped(_) => 0,
        }
    }
}

impl<T: Pod> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Pod> From<Vec<T>> for Slab<T> {
    fn from(v: Vec<T>) -> Self {
        Self {
            ptr: v.as_ptr(),
            len: v.len(),
            backing: Backing::Owned(v),
        }
    }
}

impl<T: Pod> Deref for Slab<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: `ptr`/`len` always describe the live backing — the
        // owned vector (whose buffer only moves under `&mut self`, which
        // refreshes the cache) or the pinned mapped region.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl<T: Pod> Clone for Slab<T> {
    fn clone(&self) -> Self {
        match &self.backing {
            Backing::Owned(v) => v.clone().into(),
            Backing::Mapped(m) => Self {
                ptr: self.ptr,
                len: self.len,
                backing: Backing::Mapped(Arc::clone(m)),
            },
        }
    }
}

impl<T: Pod + std::fmt::Debug> std::fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl<T: Pod + PartialEq> PartialEq for Slab<T> {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl<T: Pod + Eq> Eq for Slab<T> {}

impl<T: Pod> SpaceUsage for Slab<T> {
    fn size_bytes(&self) -> usize {
        self.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_roundtrip_and_growth() {
        let mut s: Slab<u64> = vec![1, 2, 3].into();
        assert_eq!(&s[..], &[1, 2, 3]);
        assert!(!s.is_mapped());
        for i in 0..1000 {
            s.push(i);
        }
        assert_eq!(s.len(), 1003);
        assert_eq!(s[1002], 999);
        let c = s.clone();
        assert_eq!(c, s);
        s.as_mut_slice()[0] = 7;
        assert_eq!(s[0], 7);
        assert_eq!(c[0], 1, "clone is independent");
    }

    #[test]
    fn empty_slab_is_safe() {
        let s: Slab<u32> = Slab::new();
        assert!(s.is_empty());
        assert_eq!(&s[..], &[] as &[u32]);
        assert_eq!(s.heap_bytes(), 0);
    }

    #[test]
    fn slab_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Slab<u64>>();
        assert_send_sync::<Slab<u32>>();
    }
}
