//! Property-based cross-validation of the succinct structures: the wavelet
//! matrix, pointer wavelet tree, and a naive vector-backed reference must
//! agree on every operation for arbitrary inputs.

use proptest::prelude::*;
use succinct::wavelet_matrix::MultiRangeGuide;
use succinct::{BitVec, IntVec, RankSelect, WaveletMatrix, WaveletTree};

fn naive_rank(syms: &[u64], sym: u64, i: usize) -> usize {
    syms[..i].iter().filter(|&&s| s == sym).count()
}

/// All-admitting multi-range guide collecting `(item, sym, rb, re)`.
struct CollectMulti(Vec<(u32, u64, usize, usize)>);
impl MultiRangeGuide for CollectMulti {
    fn enter_node(&mut self, _: usize, _: u64) -> bool {
        true
    }
    fn enter_item(&mut self, _: u32, _: usize, _: u64) -> bool {
        true
    }
    fn leaf(&mut self, item: u32, sym: u64, rb: usize, re: usize) {
        self.0.push((item, sym, rb, re));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_select_agree_with_naive(bits in prop::collection::vec(any::<bool>(), 0..2000)) {
        let rs = RankSelect::new(BitVec::from_bits(bits.iter().copied()));
        let mut ones = 0usize;
        for (i, &bit) in bits.iter().enumerate() {
            prop_assert_eq!(rs.rank1(i), ones);
            prop_assert_eq!(rs.rank0(i), i - ones);
            if bit {
                prop_assert_eq!(rs.select1(ones), Some(i));
                ones += 1;
            }
        }
        prop_assert_eq!(rs.rank1(bits.len()), ones);
        prop_assert_eq!(rs.select1(ones), None);
    }

    #[test]
    fn select0_is_inverse_of_rank0(bits in prop::collection::vec(any::<bool>(), 0..1500)) {
        let rs = RankSelect::new(BitVec::from_bits(bits.iter().copied()));
        let mut zeros = 0usize;
        for (i, &bit) in bits.iter().enumerate() {
            if !bit {
                prop_assert_eq!(rs.select0(zeros), Some(i));
                zeros += 1;
            }
        }
        prop_assert_eq!(rs.select0(zeros), None);
    }

    /// The sampled select directory at every stride boundary: for each
    /// multiple of the sampling rate, `select` must invert `rank` exactly
    /// (these are the positions the directory indexes directly, where an
    /// off-by-one in sample construction would surface).
    #[test]
    fn select_inverts_rank_at_sample_strides(
        bits in prop::collection::vec(any::<bool>(), 0..6000),
        rate in 1usize..64,
    ) {
        let rs = RankSelect::with_select_sample(BitVec::from_bits(bits.iter().copied()), rate);
        let ones: Vec<usize> = (0..bits.len()).filter(|&i| bits[i]).collect();
        let zeros: Vec<usize> = (0..bits.len()).filter(|&i| !bits[i]).collect();
        let mut k = 0usize;
        while k < ones.len() {
            prop_assert_eq!(rs.select1(k), Some(ones[k]), "select1 stride {}", k);
            prop_assert_eq!(rs.rank1(ones[k]), k);
            k += rate;
        }
        let mut k = 0usize;
        while k < zeros.len() {
            prop_assert_eq!(rs.select0(k), Some(zeros[k]), "select0 stride {}", k);
            prop_assert_eq!(rs.rank0(zeros[k]), k);
            k += rate;
        }
        prop_assert_eq!(rs.select1(ones.len()), None);
        prop_assert_eq!(rs.select0(zeros.len()), None);
    }

    /// `rank1_pair(b, e)` must equal two independent `rank1` calls for
    /// every boundary pair — in particular across superblock boundaries,
    /// where the shared-probe fast path must bow out.
    #[test]
    fn rank1_pair_equals_two_ranks(
        bits in prop::collection::vec(any::<bool>(), 0..4000),
        queries in prop::collection::vec((0usize..4001, 0usize..4001), 1..40),
    ) {
        let rs = RankSelect::new(BitVec::from_bits(bits.iter().copied()));
        for &(x, y) in &queries {
            let (mut b, mut e) = (x.min(bits.len()), y.min(bits.len()));
            if b > e { std::mem::swap(&mut b, &mut e); }
            prop_assert_eq!(rs.rank1_pair(b, e), (rs.rank1(b), rs.rank1(e)));
            prop_assert_eq!(rs.rank0_pair(b, e), (rs.rank0(b), rs.rank0(e)));
        }
    }

    /// The frontier-batched traversal is exactly the union of per-range
    /// guided traversals (item-tagged), for arbitrary range frontiers.
    #[test]
    fn guided_traverse_multi_equals_per_range_union(
        syms in prop::collection::vec(0u64..60, 1..500),
        raw_ranges in prop::collection::vec((0usize..500, 0usize..500), 0..40),
    ) {
        let n = syms.len();
        let wm = WaveletMatrix::new(&syms, 60);
        let ranges: Vec<(usize, usize)> = raw_ranges
            .iter()
            .map(|&(x, y)| {
                let (b, e) = (x.min(n), y.min(n));
                (b.min(e), b.max(e))
            })
            .collect();
        let mut guide = CollectMulti(Vec::new());
        wm.guided_traverse_multi(&ranges, &mut guide);
        let mut got = guide.0;
        got.sort_unstable();
        let mut expected = Vec::new();
        for (i, &(b, e)) in ranges.iter().enumerate() {
            wm.range_distinct(b, e, &mut |s, rb, re| expected.push((i as u32, s, rb, re)));
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Batched wavelet rank ≡ per-position rank.
    #[test]
    fn rank_batch_equals_rank(
        syms in prop::collection::vec(0u64..32, 0..400),
        sym in 0u64..32,
        raw_pos in prop::collection::vec(0usize..401, 0..50),
    ) {
        let wm = WaveletMatrix::new(&syms, 32);
        let mut positions: Vec<usize> =
            raw_pos.iter().map(|&p| p.min(syms.len())).collect();
        let expected: Vec<usize> = positions.iter().map(|&i| wm.rank(sym, i)).collect();
        wm.rank_batch(sym, &mut positions);
        prop_assert_eq!(positions, expected);
    }

    #[test]
    fn int_vec_roundtrip(values in prop::collection::vec(0u64..(1 << 37), 0..300)) {
        let v = IntVec::from_slice(&values);
        prop_assert_eq!(v.len(), values.len());
        for (i, &x) in values.iter().enumerate() {
            prop_assert_eq!(v.get(i), x);
        }
        prop_assert_eq!(v.iter().collect::<Vec<_>>(), values);
    }

    #[test]
    fn wavelet_structures_agree(
        syms in prop::collection::vec(0u64..50, 0..400),
        queries in prop::collection::vec((0u64..50, 0usize..400), 1..20),
    ) {
        let sigma = 50;
        let wt = WaveletTree::new(&syms, sigma);
        let wm = WaveletMatrix::new(&syms, sigma);
        for &(sym, raw_i) in &queries {
            let i = raw_i.min(syms.len());
            let expected = naive_rank(&syms, sym, i);
            prop_assert_eq!(wt.rank(sym, i), expected);
            prop_assert_eq!(wm.rank(sym, i), expected);
        }
        for (i, &s) in syms.iter().enumerate() {
            prop_assert_eq!(wt.access(i), s);
            prop_assert_eq!(wm.access(i), s);
        }
    }

    #[test]
    fn wavelet_select_agrees(syms in prop::collection::vec(0u64..12, 0..300)) {
        let wt = WaveletTree::new(&syms, 12);
        let wm = WaveletMatrix::new(&syms, 12);
        for sym in 0..12u64 {
            let total = naive_rank(&syms, sym, syms.len());
            for k in 0..total {
                let expected = syms.iter().enumerate()
                    .filter(|(_, &s)| s == sym)
                    .map(|(i, _)| i)
                    .nth(k);
                prop_assert_eq!(wt.select(sym, k), expected);
                prop_assert_eq!(wm.select(sym, k), expected);
            }
            prop_assert_eq!(wt.select(sym, total), None);
            prop_assert_eq!(wm.select(sym, total), None);
        }
    }

    #[test]
    fn range_distinct_agrees(
        syms in prop::collection::vec(0u64..30, 1..300),
        b_frac in 0.0f64..1.0,
        e_frac in 0.0f64..1.0,
    ) {
        let n = syms.len();
        let (mut b, mut e) = (
            (b_frac * n as f64) as usize,
            (e_frac * n as f64) as usize,
        );
        if b > e { std::mem::swap(&mut b, &mut e); }
        let wt = WaveletTree::new(&syms, 30);
        let wm = WaveletMatrix::new(&syms, 30);
        let mut from_wt = Vec::new();
        wt.range_distinct(b, e, &mut |s, rb, re| from_wt.push((s, rb, re)));
        let mut from_wm = Vec::new();
        wm.range_distinct(b, e, &mut |s, rb, re| from_wm.push((s, rb, re)));
        prop_assert_eq!(&from_wt, &from_wm);
        // Rank offsets must reconstruct per-symbol occurrence counts.
        for &(s, rb, re) in &from_wt {
            prop_assert_eq!(re - rb, syms[b..e].iter().filter(|&&x| x == s).count());
            prop_assert_eq!(rb, naive_rank(&syms, s, b));
        }
    }

    #[test]
    fn range_next_value_agrees(
        syms in prop::collection::vec(0u64..40, 1..250),
        x in 0u64..45,
    ) {
        let wt = WaveletTree::new(&syms, 40);
        let wm = WaveletMatrix::new(&syms, 40);
        let b = syms.len() / 4;
        let e = syms.len();
        let expected = syms[b..e].iter().copied().filter(|&s| s >= x).min();
        prop_assert_eq!(wt.range_next_value(b, e, x).map(|t| t.0), expected);
        prop_assert_eq!(wm.range_next_value(b, e, x).map(|t| t.0), expected);
    }
}
