//! `Send + Sync` audit: every structure a query server shares across
//! worker threads must be free of interior mutability. The succinct
//! layer is the foundation — a `Ring` is built out of these.

use succinct::{BitVec, EliasFano, IntVec, RankSelect, WaveletMatrix, WaveletTree};

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn shared_structures_are_send_sync() {
    assert_send_sync::<BitVec>();
    assert_send_sync::<RankSelect>();
    assert_send_sync::<IntVec>();
    assert_send_sync::<EliasFano>();
    assert_send_sync::<WaveletTree>();
    assert_send_sync::<WaveletMatrix>();
}
