#![warn(missing_docs)]

//! **rpq-server** — a concurrent query service over the ring index.
//!
//! The ring (Arroyuelo et al., ICDE 2022) is a read-optimized, immutable
//! structure: once built, any number of threads can evaluate 2RPQs
//! against one shared copy. This crate turns that property into a
//! service layer:
//!
//! * [`RpqServer`] — a std-thread worker pool owning an
//!   `Arc<dyn QuerySource>` (the façade's `RpqDatabase` implements the
//!   trait), with a session API (`submit`, `submit_batch`, `poll`,
//!   `cancel`, `wait`) and a blocking convenience (`query_blocking`);
//! * [`plan_cache`] — compiled-query sharing: normalized pattern →
//!   Glushkov product automaton + bit-parallel tables, one `Arc` for all
//!   workers;
//! * [`result_cache`] — an LRU over complete answer sets with byte-size
//!   accounting and an invalidation hook;
//! * admission control — a bounded queue ([`RpqError::Overloaded`]) and
//!   per-query [`QueryBudget`]s (result/time partials,
//!   [`RpqError::BudgetExceeded`] hard aborts);
//! * [`metrics`] — per-engine latency histograms (queue wait and
//!   execution time measured separately), cache hit rates, queue gauges
//!   and planner-accuracy accounting, exported as JSON and in the
//!   Prometheus text format;
//! * [`slowlog`] — a bounded log of the N worst queries with their full
//!   execution profiles.
//!
//! ```
//! use std::sync::Arc;
//! use ring::ring::RingOptions;
//! use ring::{Graph, Ring, Triple};
//! use rpq_server::{IndexSource, RpqServer, ServerConfig};
//!
//! let g = Graph::from_triples(vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2)]);
//! let ring = Ring::build(&g, RingOptions::default());
//! let server = RpqServer::start(
//!     Arc::new(IndexSource::id_only(ring)),
//!     ServerConfig { workers: 2, ..ServerConfig::default() },
//! )
//! .unwrap();
//! let answer = server.query_blocking("0", "0+", "?y").unwrap();
//! assert_eq!(answer.pairs, vec![(0, 1), (0, 2)]);
//! server.shutdown();
//! ```

pub mod lru;
pub mod metrics;
pub mod plan_cache;
pub mod result_cache;
pub mod server;
pub mod slowlog;
pub mod source;

pub use plan_cache::PlanCache;
pub use result_cache::{ResultCache, ResultKey};
pub use server::{
    DrainReport, QueryAnswer, QueryBudget, QueryStatus, QueryTicket, RpqServer, ServerConfig,
};
pub use slowlog::{SlowEntry, SlowLog};
pub use source::{IndexSource, IndexStats, LiveSource, QuerySource, ShardStat, UpdateStats};

/// Errors of the serving layer. `Parse` and `UnknownNode` are
/// synchronous (reported at submit); the rest surface through
/// `poll`/`wait`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RpqError {
    /// The path expression failed to parse or mentions an unknown
    /// predicate.
    Parse(String),
    /// An endpoint names a node absent from the dictionary.
    UnknownNode(String),
    /// Admission control rejected the query: the pending queue is full.
    Overloaded {
        /// Jobs pending when the submission was rejected.
        pending: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The query's product-node budget ran out mid-evaluation.
    BudgetExceeded {
        /// Product-graph nodes visited before the abort.
        visited: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The engine rejected the query.
    Query(rpq_core::QueryError),
    /// The query was cancelled before producing an answer.
    Cancelled,
    /// The server is shutting down.
    ShuttingDown,
    /// The ticket does not name a live job.
    UnknownTicket,
    /// Evaluation panicked; the worker recovered and kept serving.
    Internal(String),
    /// The server configuration is unusable (rejected at construction,
    /// or a call that the configuration can never satisfy).
    InvalidConfig(String),
}

impl std::fmt::Display for RpqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RpqError::Parse(m) => write!(f, "parse error: {m}"),
            RpqError::UnknownNode(n) => write!(f, "unknown node '{n}'"),
            RpqError::Overloaded { pending, capacity } => {
                write!(f, "server overloaded: {pending}/{capacity} queries pending")
            }
            RpqError::BudgetExceeded { visited, budget } => {
                write!(
                    f,
                    "node budget exceeded: {visited} product nodes visited (budget {budget})"
                )
            }
            RpqError::Query(e) => write!(f, "query error: {e}"),
            RpqError::Cancelled => write!(f, "query cancelled"),
            RpqError::ShuttingDown => write!(f, "server shutting down"),
            RpqError::UnknownTicket => write!(f, "unknown ticket"),
            RpqError::Internal(m) => write!(f, "internal error: {m}"),
            RpqError::InvalidConfig(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for RpqError {}

/// Locks a mutex, recovering the data from a poisoned lock instead of
/// propagating the panic into the caller.
///
/// A worker panicking mid-evaluation poisons whatever mutex its stack
/// happened to hold — most damagingly a job's `status` mutex, which
/// every client thread then touches through `wait`/`poll`/`cancel`. All
/// server mutexes guard state that is consistent at every lock
/// acquisition (status transitions are single-writer per job, the queue
/// and jobs map are plain collections mutated under the lock), so
/// recovering the guard is sound: the panic is still surfaced — the
/// worker's `catch_unwind` fails the job with [`RpqError::Internal`] —
/// but it stays one query's failure instead of cascading panics into
/// every thread that later locks the same mutex.
pub(crate) fn lock_ignore_poison<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl From<rpq_core::QueryError> for RpqError {
    fn from(e: rpq_core::QueryError) -> Self {
        RpqError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The whole service layer must be shareable across threads.
    #[test]
    fn server_types_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RpqServer>();
        assert_send_sync::<PlanCache>();
        assert_send_sync::<ResultCache>();
        assert_send_sync::<metrics::Metrics>();
        assert_send_sync::<SlowLog>();
        assert_send_sync::<QueryAnswer>();
        assert_send_sync::<RpqError>();
        assert_send_sync::<IndexSource>();
    }
}
