//! What a server serves: a shared, immutable ring index plus the name
//! dictionaries needed to parse string-level queries.
//!
//! The façade crate's `RpqDatabase` implements [`QuerySource`]; id-level
//! embedders (benchmarks, tests) can use [`IndexSource`] directly, with
//! or without dictionaries.

use automata::parser::LabelResolver;
use ring::{Dict, Id, Ring};

/// A queryable database: the ring plus name resolution. Implementations
/// must be immutable once served — every worker reads them concurrently
/// (hence the `Send + Sync` bound, which the whole `ring`/`succinct`/
/// `automata` stack satisfies: no interior mutability anywhere).
pub trait QuerySource: Send + Sync {
    /// The shared ring index.
    fn ring(&self) -> &Ring;
    /// Resolves a node name to its id.
    fn node_id(&self, name: &str) -> Option<Id>;
    /// The name of a node id (for rendering answers).
    fn node_name(&self, id: Id) -> Option<String>;
    /// Resolves a predicate name to its id.
    fn pred_id(&self, name: &str) -> Option<Id>;
}

/// A [`QuerySource`] over explicit parts. Without dictionaries, names are
/// decimal ids — the form synthetic workloads use.
pub struct IndexSource {
    ring: Ring,
    nodes: Option<Dict>,
    preds: Option<Dict>,
}

impl IndexSource {
    /// A source with name dictionaries.
    pub fn new(ring: Ring, nodes: Dict, preds: Dict) -> Self {
        Self {
            ring,
            nodes: Some(nodes),
            preds: Some(preds),
        }
    }

    /// A dictionary-less source: node and predicate names are decimal ids.
    pub fn id_only(ring: Ring) -> Self {
        Self {
            ring,
            nodes: None,
            preds: None,
        }
    }
}

impl QuerySource for IndexSource {
    fn ring(&self) -> &Ring {
        &self.ring
    }

    fn node_id(&self, name: &str) -> Option<Id> {
        match &self.nodes {
            Some(d) => d.get(name),
            None => name
                .parse::<Id>()
                .ok()
                .filter(|&id| id < self.ring.n_nodes()),
        }
    }

    fn node_name(&self, id: Id) -> Option<String> {
        match &self.nodes {
            Some(d) => (id < d.len() as Id).then(|| d.name(id).to_string()),
            None => (id < self.ring.n_nodes()).then(|| id.to_string()),
        }
    }

    fn pred_id(&self, name: &str) -> Option<Id> {
        match &self.preds {
            Some(d) => d.get(name),
            None => name
                .parse::<Id>()
                .ok()
                .filter(|&id| id < self.ring.n_preds_base()),
        }
    }
}

/// The [`LabelResolver`] a server builds over its source to parse path
/// expressions: predicate names through the source, inverses through the
/// ring's completed alphabet.
pub(crate) struct SourceResolver<'a> {
    pub(crate) source: &'a dyn QuerySource,
}

impl LabelResolver for SourceResolver<'_> {
    fn resolve(&self, name: &str) -> Option<Id> {
        self.source.pred_id(name)
    }

    fn inverse(&self, label: Id) -> Id {
        self.source.ring().inverse_label(label)
    }
}
