//! What a server serves: an evaluation **snapshot** (ring plus optional
//! delta overlay, stamped with an epoch) and the name dictionaries
//! needed to parse string-level queries.
//!
//! The façade crate's `RpqDatabase` and `UpdatableDatabase` implement
//! [`QuerySource`]; id-level embedders (benchmarks, tests) can use
//! [`IndexSource`] (immutable) or [`LiveSource`] (an updatable
//! [`TripleStore`] behind the same interface) directly, with or without
//! dictionaries.

use std::sync::Arc;

use automata::parser::LabelResolver;
use ring::store::TripleStore;
use ring::{Dict, Id, Ring};
use rpq_core::SourceSnapshot;

/// Live update counters an updatable source exports (rendered into the
/// server's metrics JSON).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Current snapshot epoch.
    pub epoch: u64,
    /// Committed update batches.
    pub commits: u64,
    /// Ring rebuilds (explicit, automatic, or alphabet-extending).
    pub compactions: u64,
    /// Added triples in the committed overlay.
    pub delta_adds: usize,
    /// Tombstoned triples in the committed overlay.
    pub delta_deletes: usize,
    /// Buffered, uncommitted operations.
    pub pending_ops: usize,
}

impl From<ring::store::StoreStats> for UpdateStats {
    fn from(s: ring::store::StoreStats) -> Self {
        Self {
            epoch: s.epoch,
            commits: s.commits,
            compactions: s.compactions,
            delta_adds: s.delta_adds,
            delta_deletes: s.delta_deletes,
            pending_ops: s.pending_ops,
        }
    }
}

/// Cold-start facts about the served index: how it was brought into
/// memory and where its payload bytes live. Sources opened from a
/// mapped `RRPQM01` file report `mmap` residency and the mapping size;
/// everything else is heap-resident. Rendered into both metrics
/// exporters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexStats {
    /// Wall time of the open call, microseconds (0 = built in memory).
    pub open_us: u64,
    /// `"mmap"` or `"heap"`.
    pub resident_mode: &'static str,
    /// Bytes held by a kernel mapping (0 in heap mode).
    pub mapped_bytes: u64,
}

impl Default for IndexStats {
    fn default() -> Self {
        Self {
            open_us: 0,
            resident_mode: "heap",
            mapped_bytes: 0,
        }
    }
}

/// Per-shard serving facts for a horizontally sharded source — one row
/// per shard in both metrics exporters, so operators can see skew
/// (triples, bytes) and scatter-gather traffic (probes) per shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStat {
    /// Completed triples the shard holds.
    pub triples: usize,
    /// Index size of the shard's ring in bytes.
    pub bytes: usize,
    /// Scatter-gather probes the shard has served (monotonic counter).
    pub probes: u64,
}

/// A queryable database: snapshot capture plus name resolution.
/// Snapshots are immutable once captured, so any number of workers can
/// evaluate against one concurrently; updatable sources publish new
/// snapshots (with bumped epochs) instead of mutating old ones.
pub trait QuerySource: Send + Sync {
    /// Captures the current evaluation snapshot (cheap: `Arc` clones).
    /// Immutable sources return the same epoch-0 snapshot forever.
    fn snapshot(&self) -> SourceSnapshot;
    /// Resolves a node name to its id.
    fn node_id(&self, name: &str) -> Option<Id>;
    /// The name of a node id (for rendering answers).
    fn node_name(&self, id: Id) -> Option<String>;
    /// Resolves a predicate name to its id.
    fn pred_id(&self, name: &str) -> Option<Id>;
    /// Live update counters, for sources that support updates.
    fn update_stats(&self) -> Option<UpdateStats> {
        None
    }
    /// Cold-start facts (open latency, heap-vs-mmap residency), for
    /// sources that track how they were opened.
    fn index_info(&self) -> Option<IndexStats> {
        None
    }
    /// Per-shard rows for horizontally sharded sources (`None` =
    /// unsharded). Rendered as the `shards` section of both metrics
    /// exporters.
    fn shard_stats(&self) -> Option<Vec<ShardStat>> {
        None
    }
    /// Flushes durable state — for sources with a write-ahead log,
    /// persist a snapshot and rotate the log, returning the
    /// checkpointed epoch. `None` means the source has nothing durable
    /// to flush (the default); [`RpqServer::drain`](crate::RpqServer::drain)
    /// calls this once in-flight queries have finished.
    fn checkpoint(&self) -> Option<std::io::Result<u64>> {
        None
    }
}

/// An immutable [`QuerySource`] over explicit parts. Without
/// dictionaries, names are decimal ids — the form synthetic workloads
/// use.
pub struct IndexSource {
    ring: Arc<Ring>,
    shards: Option<Arc<[rpq_core::ShardPart]>>,
    nodes: Option<Dict>,
    preds: Option<Dict>,
}

impl IndexSource {
    /// A source with name dictionaries.
    pub fn new(ring: Ring, nodes: Dict, preds: Dict) -> Self {
        Self {
            ring: Arc::new(ring),
            shards: None,
            nodes: Some(nodes),
            preds: Some(preds),
        }
    }

    /// A dictionary-less source: node and predicate names are decimal ids.
    pub fn id_only(ring: Ring) -> Self {
        Self {
            ring: Arc::new(ring),
            shards: None,
            nodes: None,
            preds: None,
        }
    }

    /// A dictionary-less horizontally sharded source: one sub-ring per
    /// shard, every query scatter-gathered across the partition. The
    /// rings must share the global node/predicate universes (as
    /// `ring::sharded::ShardedIndex`-built ones do); name resolution
    /// uses shard 0's universes. A single ring degenerates to
    /// [`IndexSource::id_only`].
    ///
    /// # Panics
    /// Panics if `rings` is empty.
    pub fn sharded_id_only(rings: Vec<Ring>) -> Self {
        assert!(!rings.is_empty(), "a sharded source needs >= 1 ring");
        let parts: Vec<rpq_core::ShardPart> = rings
            .into_iter()
            .map(|r| rpq_core::ShardPart::new(Arc::new(r)))
            .collect();
        let parts: Arc<[rpq_core::ShardPart]> = Arc::from(parts);
        Self {
            ring: Arc::clone(&parts[0].ring),
            shards: (parts.len() > 1).then_some(parts),
            nodes: None,
            preds: None,
        }
    }
}

impl QuerySource for IndexSource {
    fn snapshot(&self) -> SourceSnapshot {
        match &self.shards {
            Some(parts) => SourceSnapshot::sharded(Arc::clone(parts)),
            None => SourceSnapshot::immutable(Arc::clone(&self.ring)),
        }
    }

    fn node_id(&self, name: &str) -> Option<Id> {
        match &self.nodes {
            Some(d) => d.get(name),
            None => name
                .parse::<Id>()
                .ok()
                .filter(|&id| id < self.ring.n_nodes()),
        }
    }

    fn node_name(&self, id: Id) -> Option<String> {
        match &self.nodes {
            Some(d) => (id < d.len() as Id).then(|| d.name(id).to_string()),
            None => (id < self.ring.n_nodes()).then(|| id.to_string()),
        }
    }

    fn pred_id(&self, name: &str) -> Option<Id> {
        match &self.preds {
            Some(d) => d.get(name),
            None => name
                .parse::<Id>()
                .ok()
                .filter(|&id| id < self.ring.n_preds_base()),
        }
    }

    fn shard_stats(&self) -> Option<Vec<ShardStat>> {
        let parts = self.shards.as_ref()?;
        Some(
            parts
                .iter()
                .map(|p| ShardStat {
                    triples: p.ring.n_triples(),
                    bytes: p.ring.size_bytes(),
                    probes: p.probe_count(),
                })
                .collect(),
        )
    }
}

/// An updatable [`QuerySource`]: an id-level [`TripleStore`] served
/// live. Names are decimal ids (like [`IndexSource::id_only`]); the
/// name-level updatable API lives in the façade crate. Writers keep a
/// reference to the same `Arc<LiveSource>` the server holds and
/// insert/delete/commit through [`LiveSource::store`] while queries run.
pub struct LiveSource {
    store: TripleStore,
}

impl LiveSource {
    /// Wraps a store for serving.
    pub fn new(store: TripleStore) -> Self {
        Self { store }
    }

    /// The underlying store (for writers: insert/delete/commit/compact).
    pub fn store(&self) -> &TripleStore {
        &self.store
    }
}

impl QuerySource for LiveSource {
    fn snapshot(&self) -> SourceSnapshot {
        SourceSnapshot::from_store(&self.store.snapshot())
    }

    fn node_id(&self, name: &str) -> Option<Id> {
        let snap = self.store.snapshot();
        name.parse::<Id>().ok().filter(|&id| id < snap.n_nodes())
    }

    fn node_name(&self, id: Id) -> Option<String> {
        (id < self.store.snapshot().n_nodes()).then(|| id.to_string())
    }

    fn pred_id(&self, name: &str) -> Option<Id> {
        let snap = self.store.snapshot();
        name.parse::<Id>()
            .ok()
            .filter(|&id| id < snap.ring.n_preds_base().max(snap.graph.n_preds()))
    }

    fn update_stats(&self) -> Option<UpdateStats> {
        Some(self.store.stats().into())
    }
}

/// The [`LabelResolver`] a server builds over its source to parse path
/// expressions: predicate names through the source, inverses through the
/// completed alphabet of the snapshot captured for the query.
pub(crate) struct SourceResolver<'a> {
    pub(crate) source: &'a dyn QuerySource,
    pub(crate) snapshot: &'a SourceSnapshot,
}

impl LabelResolver for SourceResolver<'_> {
    fn resolve(&self, name: &str) -> Option<Id> {
        self.source.pred_id(name)
    }

    fn inverse(&self, label: Id) -> Id {
        self.snapshot.ring.inverse_label(label)
    }
}
