//! A bounded slow-query log: the N worst queries by end-to-end latency,
//! each with its full [`QueryProfile`].
//!
//! The log keeps entries sorted worst-first. Offering an entry below the
//! configured threshold is a no-op; once the log is full, a new entry
//! must beat the current minimum to get in (the minimum is evicted).
//! Recording is off the query hot path — the worker offers an entry
//! only after the answer is already published — and the single mutex is
//! uncontended unless many queries cross the threshold simultaneously.

use std::sync::Mutex;
use std::time::Duration;

use rpq_core::jsonw::JsonWriter;
use rpq_core::{EvalRoute, QueryProfile};

/// One logged slow query.
#[derive(Clone, Debug)]
pub struct SlowEntry {
    /// Monotonic sequence number (order of admission into the log).
    pub seq: u64,
    /// Normalized path-expression pattern (the plan-cache key).
    pub pattern: String,
    /// Subject endpoint (`?var` or a node id rendered as decimal).
    pub subject: String,
    /// Object endpoint.
    pub object: String,
    /// End-to-end latency, submit → answer, microseconds.
    pub total_us: u64,
    /// Time spent queued before a worker picked the job up.
    pub queue_wait_us: u64,
    /// The route executed; `None` for result-cache hits.
    pub route: Option<EvalRoute>,
    /// Whether the answer came from the result cache.
    pub cache_hit: bool,
    /// Result pairs returned.
    pub pairs: u64,
    /// The answer was truncated at the result limit.
    pub truncated: bool,
    /// The answer was cut short by the timeout.
    pub timed_out: bool,
    /// The query's execution profile, when profiling captured one.
    pub profile: Option<Box<QueryProfile>>,
}

impl SlowEntry {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object()
            .field_u64("seq", self.seq)
            .field_str("pattern", &self.pattern)
            .field_str("subject", &self.subject)
            .field_str("object", &self.object)
            .field_u64("total_us", self.total_us)
            .field_u64("queue_wait_us", self.queue_wait_us);
        match self.route {
            Some(r) => w.field_str("route", r.name()),
            None => w.key("route").null(),
        };
        w.field_bool("cache_hit", self.cache_hit)
            .field_u64("pairs", self.pairs)
            .field_bool("truncated", self.truncated)
            .field_bool("timed_out", self.timed_out);
        if let Some(p) = &self.profile {
            w.key("profile").raw(&p.to_json());
        }
        w.end_object();
    }
}

struct Inner {
    seq: u64,
    /// Sorted worst-first by `total_us` (ties broken by older first).
    entries: Vec<SlowEntry>,
}

/// The bounded worst-N log. `capacity == 0` disables it entirely —
/// every offer is rejected without taking the lock's contents into
/// account.
pub struct SlowLog {
    capacity: usize,
    threshold_us: u64,
    inner: Mutex<Inner>,
}

impl SlowLog {
    /// A log keeping the `capacity` worst queries at or above
    /// `threshold`.
    pub fn new(capacity: usize, threshold: Duration) -> Self {
        Self {
            capacity,
            threshold_us: threshold.as_micros().min(u128::from(u64::MAX)) as u64,
            inner: Mutex::new(Inner {
                seq: 0,
                entries: Vec::new(),
            }),
        }
    }

    /// Whether the log records anything at all.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// The admission threshold, microseconds.
    pub fn threshold_us(&self) -> u64 {
        self.threshold_us
    }

    /// Offers an entry; returns whether it was admitted. Entries below
    /// the threshold, or not worse than the log's current minimum when
    /// full, are rejected.
    pub fn offer(&self, mut entry: SlowEntry) -> bool {
        if self.capacity == 0 || entry.total_us < self.threshold_us {
            return false;
        }
        let mut inner = crate::lock_ignore_poison(&self.inner);
        if inner.entries.len() >= self.capacity
            && entry.total_us <= inner.entries.last().map_or(0, |e| e.total_us)
        {
            return false;
        }
        entry.seq = inner.seq;
        inner.seq += 1;
        // Insert keeping worst-first order; equal latencies keep the
        // older entry ahead (stable position via partition_point).
        let at = inner
            .entries
            .partition_point(|e| e.total_us >= entry.total_us);
        inner.entries.insert(at, entry);
        if inner.entries.len() > self.capacity {
            inner.entries.pop();
        }
        true
    }

    /// Number of logged entries.
    pub fn len(&self) -> usize {
        crate::lock_ignore_poison(&self.inner).entries.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the entries, worst-first.
    pub fn entries(&self) -> Vec<SlowEntry> {
        crate::lock_ignore_poison(&self.inner).entries.clone()
    }

    /// Renders `{"threshold_us":..,"capacity":..,"entries":[..]}` with
    /// entries worst-first.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.begin_object()
            .field_u64("threshold_us", self.threshold_us)
            .field_u64("capacity", self.capacity as u64)
            .key("entries")
            .begin_array();
        for e in crate::lock_ignore_poison(&self.inner).entries.iter() {
            e.write_json(&mut w);
        }
        w.end_array().end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(total_us: u64) -> SlowEntry {
        SlowEntry {
            seq: 0,
            pattern: "a+".into(),
            subject: "?x".into(),
            object: "?y".into(),
            total_us,
            queue_wait_us: 1,
            route: Some(EvalRoute::ALL[0]),
            cache_hit: false,
            pairs: 3,
            truncated: false,
            timed_out: false,
            profile: None,
        }
    }

    #[test]
    fn threshold_rejects_fast_queries() {
        let log = SlowLog::new(4, Duration::from_micros(100));
        assert!(!log.offer(entry(99)));
        assert!(log.offer(entry(100)));
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn capacity_zero_disables() {
        let log = SlowLog::new(0, Duration::ZERO);
        assert!(!log.enabled());
        assert!(!log.offer(entry(1_000_000)));
        assert!(log.is_empty());
    }

    #[test]
    fn evicts_the_least_slow_once_full() {
        let log = SlowLog::new(3, Duration::ZERO);
        for us in [500, 100, 300] {
            assert!(log.offer(entry(us)));
        }
        // 50 is faster than everything logged: rejected.
        assert!(!log.offer(entry(50)));
        // 400 beats the current minimum (100): admitted, 100 evicted.
        assert!(log.offer(entry(400)));
        let totals: Vec<u64> = log.entries().iter().map(|e| e.total_us).collect();
        assert_eq!(totals, vec![500, 400, 300]);
        // Ties with the minimum do not churn the log.
        assert!(!log.offer(entry(300)));
    }

    #[test]
    fn json_shape_is_stable() {
        let log = SlowLog::new(2, Duration::ZERO);
        log.offer(entry(42));
        let json = log.to_json();
        assert_eq!(
            json,
            "{\"threshold_us\":0,\"capacity\":2,\"entries\":[\
             {\"seq\":0,\"pattern\":\"a+\",\"subject\":\"?x\",\"object\":\"?y\",\
             \"total_us\":42,\"queue_wait_us\":1,\"route\":\"fastpath\",\
             \"cache_hit\":false,\"pairs\":3,\"truncated\":false,\"timed_out\":false}]}"
        );
    }
}
