//! The answer cache: `(normalized pattern, endpoints)` → shared, sorted
//! answer set, bounded by bytes with LRU eviction.
//!
//! Only *complete* answers are cached — anything truncated, timed out or
//! budget-aborted is request-specific and gets recomputed. A cached
//! answer is therefore valid for any later request of the same key
//! regardless of that request's limits (a full set subsumes every
//! partial). The ring is immutable, so entries never go stale today;
//! [`ResultCache::invalidate_all`] is the hook a future update path
//! (reindex, delta overlay) must call, and bumps a generation counter so
//! in-flight insertions from before the invalidation are dropped instead
//! of resurrecting stale data.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use rpq_core::Term;

use crate::lru::Lru;
use crate::metrics::CacheStats;
use crate::server::QueryAnswer;

/// Cache key: the plan's normalized pattern, the two endpoints, and the
/// snapshot epoch the query was submitted under. The epoch makes cross-
/// epoch hits structurally impossible — even a pre-bump answer inserted
/// *after* the bump-triggered invalidation (a worker racing a commit)
/// can only ever be found by queries of its own epoch.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ResultKey {
    /// Normalized pattern ([`rpq_core::PreparedQuery::cache_key`]).
    pub pattern: String,
    /// Subject endpoint.
    pub subject: Term,
    /// Object endpoint.
    pub object: Term,
    /// Snapshot epoch captured at submit time.
    pub epoch: u64,
}

/// A bounded, shared cache of complete query answers.
pub struct ResultCache {
    inner: Mutex<Lru<ResultKey, (u64, Arc<QueryAnswer>)>>,
    generation: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `budget_bytes` of answer pairs. A budget
    /// of 0 disables caching entirely.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            inner: Mutex::new(Lru::new(budget_bytes)),
            generation: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Looks up a cached answer.
    pub fn get(&self, key: &ResultKey) -> Option<Arc<QueryAnswer>> {
        let hit = {
            let gen = self.generation.load(Ordering::Acquire);
            let mut inner = crate::lock_ignore_poison(&self.inner);
            match inner.get(key) {
                Some((g, ans)) if *g == gen => Some(Arc::clone(ans)),
                _ => None,
            }
        };
        match hit {
            Some(ans) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(ans)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Caches a complete answer (the caller guarantees completeness).
    /// The entry's cost is the answer's pair bytes plus key overhead.
    pub fn insert(&self, key: ResultKey, answer: Arc<QueryAnswer>) {
        let cost = answer.size_bytes() + key.pattern.len() + 64;
        let gen = self.generation.load(Ordering::Acquire);
        crate::lock_ignore_poison(&self.inner).insert(key, (gen, answer), cost);
    }

    /// Invalidation hook: drops everything and bumps the generation so
    /// racing insertions of pre-invalidation answers are ignored on read.
    pub fn invalidate_all(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        crate::lock_ignore_poison(&self.inner).clear();
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Bytes currently accounted to cached answers.
    pub fn used_bytes(&self) -> usize {
        crate::lock_ignore_poison(&self.inner).used()
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let inner = crate::lock_ignore_poison(&self.inner);
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions: inner.evictions(),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: inner.len(),
            used: inner.used(),
            budget: inner.budget(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(pairs: Vec<(u64, u64)>) -> Arc<QueryAnswer> {
        Arc::new(QueryAnswer {
            pairs,
            truncated: false,
            timed_out: false,
            route: None,
            stats: Default::default(),
            profile: None,
        })
    }

    fn key(p: &str) -> ResultKey {
        ResultKey {
            pattern: p.to_string(),
            subject: Term::Const(0),
            object: Term::Var,
            epoch: 0,
        }
    }

    #[test]
    fn round_trip_and_counters() {
        let cache = ResultCache::new(1 << 16);
        assert!(cache.get(&key("0+")).is_none());
        cache.insert(key("0+"), answer(vec![(0, 1), (0, 2)]));
        let hit = cache.get(&key("0+")).unwrap();
        assert_eq!(hit.pairs, vec![(0, 1), (0, 2)]);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        // Different endpoints are a different key.
        let other = ResultKey {
            subject: Term::Var,
            ..key("0+")
        };
        assert!(cache.get(&other).is_none());
    }

    #[test]
    fn byte_budget_evicts() {
        // Each entry costs ~ 16·pairs + pattern + 64; a tight budget only
        // keeps one.
        let cache = ResultCache::new(200);
        cache.insert(key("a"), answer(vec![(0, 0); 5]));
        cache.insert(key("b"), answer(vec![(1, 1); 5]));
        assert!(cache.get(&key("a")).is_none());
        assert!(cache.get(&key("b")).is_some());
        assert!(cache.used_bytes() <= 200);
    }

    #[test]
    fn zero_budget_disables() {
        let cache = ResultCache::new(0);
        cache.insert(key("a"), answer(vec![(0, 0)]));
        assert!(cache.get(&key("a")).is_none());
    }

    #[test]
    fn invalidation_empties_and_bumps_generation() {
        let cache = ResultCache::new(1 << 16);
        cache.insert(key("a"), answer(vec![(0, 0)]));
        cache.invalidate_all();
        assert!(cache.get(&key("a")).is_none());
        // Fresh insertions after the bump are served again.
        cache.insert(key("a"), answer(vec![(0, 0)]));
        assert!(cache.get(&key("a")).is_some());
    }
}
