//! A cost-aware LRU map: every entry carries an explicit cost (bytes,
//! entry counts — the unit is the caller's) and the map evicts from the
//! cold end whenever the total cost exceeds its budget.
//!
//! Implemented as a hash map into a slab of doubly-linked entries, so
//! `get`/`insert`/eviction are all O(1); no external crates. The caches
//! of this crate wrap it in a `Mutex` — the map itself is single-threaded
//! on purpose (lock-holding sections are a few pointer swaps).

use std::hash::Hash;
use succinct::util::FxHashMap;

struct Entry<K, V> {
    key: K,
    value: V,
    cost: usize,
    prev: Option<usize>,
    next: Option<usize>,
}

/// A bounded map with least-recently-used eviction and per-entry costs.
pub struct Lru<K, V> {
    map: FxHashMap<K, usize>,
    /// Slot storage; `None` marks slots on the free list.
    slab: Vec<Option<Entry<K, V>>>,
    free: Vec<usize>,
    /// Most recently used.
    head: Option<usize>,
    /// Least recently used.
    tail: Option<usize>,
    budget: usize,
    used: usize,
    evictions: u64,
}

impl<K: Hash + Eq + Clone, V> Lru<K, V> {
    /// An LRU holding at most `budget` total cost.
    pub fn new(budget: usize) -> Self {
        Self {
            map: FxHashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            head: None,
            tail: None,
            budget,
            used: 0,
            evictions: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total cost of the live entries.
    pub fn used(&self) -> usize {
        self.used
    }

    /// The cost budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Entries evicted to make room since construction.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key`, marking the entry most-recently-used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.move_to_front(idx);
        Some(&self.slab[idx].as_ref().expect("live slot").value)
    }

    /// Inserts (or replaces) `key` with the given cost, evicting cold
    /// entries as needed. An entry whose cost alone exceeds the budget is
    /// not cached at all (any previous value under the key is still
    /// removed, keeping the map consistent with the new value's absence).
    pub fn insert(&mut self, key: K, value: V, cost: usize) {
        self.remove(&key);
        if cost > self.budget {
            return;
        }
        while self.used + cost > self.budget {
            let Some(tail) = self.tail else { break };
            self.detach(tail);
            self.evictions += 1;
        }
        let entry = Entry {
            key: key.clone(),
            value,
            cost,
            prev: None,
            next: self.head,
        };
        let idx = if let Some(free) = self.free.pop() {
            self.slab[free] = Some(entry);
            free
        } else {
            self.slab.push(Some(entry));
            self.slab.len() - 1
        };
        if let Some(h) = self.head {
            self.slab[h].as_mut().expect("live slot").prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
        self.map.insert(key, idx);
        self.used += cost;
    }

    /// Removes `key`, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = *self.map.get(key)?;
        Some(self.detach(idx))
    }

    /// Drops every entry (the eviction counter is preserved).
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = None;
        self.tail = None;
        self.used = 0;
    }

    /// Unlinks and frees slot `idx`, returning its value.
    fn detach(&mut self, idx: usize) -> V {
        self.unlink(idx);
        let entry = self.slab[idx].take().expect("live slot");
        self.map.remove(&entry.key);
        self.used -= entry.cost;
        self.free.push(idx);
        entry.value
    }

    /// Detaches `idx` from the recency list.
    fn unlink(&mut self, idx: usize) {
        let slot = self.slab[idx].as_ref().expect("live slot");
        let (prev, next) = (slot.prev, slot.next);
        match prev {
            Some(p) => self.slab[p].as_mut().expect("live slot").next = next,
            None => self.head = next,
        }
        match next {
            Some(n) => self.slab[n].as_mut().expect("live slot").prev = prev,
            None => self.tail = prev,
        }
        let slot = self.slab[idx].as_mut().expect("live slot");
        slot.prev = None;
        slot.next = None;
    }

    fn move_to_front(&mut self, idx: usize) {
        if self.head == Some(idx) {
            return;
        }
        self.unlink(idx);
        self.slab[idx].as_mut().expect("live slot").next = self.head;
        if let Some(h) = self.head {
            self.slab[h].as_mut().expect("live slot").prev = Some(idx);
        }
        self.head = Some(idx);
        if self.tail.is_none() {
            self.tail = Some(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_evict_in_recency_order() {
        let mut lru: Lru<u32, &str> = Lru::new(3);
        lru.insert(1, "a", 1);
        lru.insert(2, "b", 1);
        lru.insert(3, "c", 1);
        assert_eq!(lru.len(), 3);
        assert_eq!(lru.used(), 3);
        // Touch 1 so 2 becomes the coldest.
        assert_eq!(lru.get(&1), Some(&"a"));
        lru.insert(4, "d", 1);
        assert_eq!(lru.get(&2), None, "coldest entry evicted");
        assert_eq!(lru.get(&1), Some(&"a"));
        assert_eq!(lru.get(&3), Some(&"c"));
        assert_eq!(lru.get(&4), Some(&"d"));
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn costs_drive_eviction() {
        let mut lru: Lru<u32, Vec<u8>> = Lru::new(100);
        lru.insert(1, vec![0; 40], 40);
        lru.insert(2, vec![0; 40], 40);
        // 90 bytes doesn't fit next to either: both evicted.
        lru.insert(3, vec![0; 90], 90);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.used(), 90);
        assert_eq!(lru.evictions(), 2);
        // Oversized entries are refused outright.
        lru.insert(4, vec![0; 200], 200);
        assert_eq!(lru.get(&4), None);
        assert_eq!(lru.get(&3), Some(&vec![0u8; 90]));
    }

    #[test]
    fn replace_updates_cost() {
        let mut lru: Lru<&str, u64> = Lru::new(10);
        lru.insert("k", 1, 8);
        lru.insert("k", 2, 3);
        assert_eq!(lru.used(), 3);
        assert_eq!(lru.get(&"k"), Some(&2));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn remove_and_clear() {
        let mut lru: Lru<u32, u32> = Lru::new(10);
        for i in 0..5 {
            lru.insert(i, i * 10, 1);
        }
        assert_eq!(lru.remove(&3), Some(30));
        assert_eq!(lru.remove(&3), None);
        assert_eq!(lru.len(), 4);
        assert_eq!(lru.used(), 4);
        lru.clear();
        assert!(lru.is_empty());
        assert_eq!(lru.used(), 0);
        // Reusable after clear.
        lru.insert(9, 9, 1);
        assert_eq!(lru.get(&9), Some(&9));
    }

    #[test]
    fn single_entry_list_invariants() {
        let mut lru: Lru<u32, u32> = Lru::new(1);
        lru.insert(1, 1, 1);
        lru.insert(2, 2, 1);
        assert_eq!(lru.get(&1), None);
        assert_eq!(lru.get(&2), Some(&2));
        assert_eq!(lru.remove(&2), Some(2));
        assert!(lru.is_empty());
    }
}
