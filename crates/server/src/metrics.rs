//! The server's metrics registry: lock-free counters, queue-depth
//! gauges, and per-engine latency histograms, exported as JSON and as
//! Prometheus text format.
//!
//! Histogram buckets are powers of two in microseconds (bucket `i` holds
//! latencies in `[2^(i-1), 2^i)` µs, bucket 0 holds sub-microsecond
//! observations), which spans 1 µs – ~1 h in 32 buckets and makes
//! quantile estimation a single scan. Everything is atomics — recording
//! a sample on the hot path is a handful of relaxed adds.
//!
//! Both exporters render the same registry: `registry_json` is the
//! structured snapshot the CLI's `stats`/`.metrics` surfaces print, and
//! `registry_prometheus` maps the identical atomics onto the
//! Prometheus text exposition format (the log₂-µs buckets become
//! cumulative `le`-labelled buckets in seconds).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rpq_core::jsonw::JsonWriter;
use rpq_core::EvalRoute;

const BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram (microseconds).
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        self.record_value(latency.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one raw sample (microseconds for latency histograms, but
    /// any unitless magnitude works — the planner-misprediction
    /// histograms store ratios ×1000).
    pub fn record_value(&self, value: u64) {
        let bucket = (64 - value.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Snapshot of the per-bucket counts (bucket `i` = samples in
    /// `[2^(i-1), 2^i)` µs).
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        let mut counts = [0u64; BUCKETS];
        for (c, b) in counts.iter_mut().zip(self.buckets.iter()) {
            *c = b.load(Ordering::Relaxed);
        }
        counts
    }

    /// Approximate `q`-quantile in microseconds (upper bound of the
    /// bucket the quantile falls in). Returns 0 with no samples.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        1u64 << (BUCKETS - 1)
    }

    fn non_empty(&self) -> bool {
        self.count() > 0
    }

    /// Renders `{"count":..,"sum_us":..,"p50_us":..,"p99_us":..,
    /// "buckets_log2_us":[..]}` with the bucket array truncated at the
    /// last non-zero bucket.
    fn write_json(&self, w: &mut JsonWriter) {
        let counts = self.bucket_counts();
        let last = counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        w.begin_object()
            .field_u64("count", self.count())
            .field_u64("sum_us", self.sum_us())
            .field_u64("p50_us", self.quantile_us(0.50))
            .field_u64("p99_us", self.quantile_us(0.99))
            .key("buckets_log2_us")
            .begin_array();
        for &c in &counts[..=last] {
            w.u64(c);
        }
        w.end_array().end_object();
    }
}

/// Number of evaluation routes ([`EvalRoute::ALL`]).
const ROUTES: usize = EvalRoute::ALL.len();

/// The registry: query-lifecycle counters, admission gauges, planner
/// decision counts and cost-model accountability, and one latency
/// histogram per evaluation route (plus cache hits, queue wait,
/// execution time, and the all-routes end-to-end aggregate).
pub struct Metrics {
    started: Instant,
    /// Queries accepted into the queue.
    pub submitted: AtomicU64,
    /// Queries that produced an answer (including truncated/timed-out
    /// partials and result-cache hits).
    pub completed: AtomicU64,
    /// Queries that failed evaluation.
    pub failed: AtomicU64,
    /// Queries cancelled before producing an answer.
    pub cancelled: AtomicU64,
    /// Submissions rejected because the queue was full.
    pub rejected_overload: AtomicU64,
    /// Queries aborted because their node budget ran out.
    pub budget_exceeded: AtomicU64,
    /// Current queue depth.
    pub queue_depth: AtomicUsize,
    /// High-water mark of the queue depth.
    pub queue_peak: AtomicUsize,
    /// End-to-end latency (submit → answer, queue wait included), all
    /// completions.
    pub latency_all: Histogram,
    /// Time jobs spent queued before a worker picked them up.
    pub queue_wait: Histogram,
    /// Pure evaluation time (worker pickup → answer), evaluated queries
    /// only — cache hits do no evaluation and are excluded.
    pub latency_exec: Histogram,
    /// End-to-end latency of result-cache hits.
    pub latency_cached: Histogram,
    /// Evaluation latency per route, indexed by [`EvalRoute::index`]:
    /// fastpath, bitparallel, split, fallback.
    pub latency_by_route: [Histogram; ROUTES],
    /// Planner decisions per route (every evaluated query counts once,
    /// whether or not it completed; cache hits never reach the planner).
    pub planner_decisions: [AtomicU64; ROUTES],
    /// Sum of the planner's `estimated_cost` per executed route.
    pub est_cost_by_route: [AtomicU64; ROUTES],
    /// Sum of product-graph nodes actually visited per executed route.
    pub actual_nodes_by_route: [AtomicU64; ROUTES],
    /// Sum of wavelet rank operations actually performed per executed
    /// route.
    pub actual_rank_ops_by_route: [AtomicU64; ROUTES],
    /// Per-route misprediction ratio ×1000 (`(actual_nodes + 1) * 1000 /
    /// (estimated_cost + 1)`): 1000 is a perfect estimate, above it the
    /// planner underestimated, below it overestimated.
    pub misprediction_by_route: [Histogram; ROUTES],
    /// Wavelet rank computations performed by batched traversals, summed
    /// over every evaluated query.
    pub rank_ops: AtomicU64,
    /// Rank computations the frontier batching avoided (vs per-range
    /// traversal) — the succinct hot-path win, observable in production.
    pub rank_ops_saved: AtomicU64,
    /// BFS levels / fast-path sweeps that fanned out across the
    /// intra-query worker pool, summed over every evaluated query.
    pub parallel_levels: AtomicU64,
    /// Frontier chunks merged back from the pool (chunks ÷ levels is the
    /// average fan-out actually achieved).
    pub parallel_chunks: AtomicU64,
    /// Parallel levels per evaluation route, indexed by
    /// [`EvalRoute::index`] — which routes actually benefit from
    /// intra-query fan-out.
    pub parallel_levels_by_route: [AtomicU64; ROUTES],
    /// Parallel chunks per evaluation route.
    pub parallel_chunks_by_route: [AtomicU64; ROUTES],
    /// Snapshot-epoch bumps observed at submit time (each one dropped
    /// the plan and result caches).
    pub epoch_bumps: AtomicU64,
    /// Graceful drains started ([`RpqServer::drain`](crate::RpqServer::drain)).
    pub drains: AtomicU64,
    /// Backlogged queries that finished within a drain deadline.
    pub drained_jobs: AtomicU64,
    /// Queries a drain deadline aborted while still queued.
    pub aborted_jobs: AtomicU64,
    /// Successful durable checkpoints (snapshot persisted, WAL rotated).
    pub checkpoints: AtomicU64,
    /// Checkpoint attempts that failed.
    pub checkpoint_failures: AtomicU64,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Self {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            budget_exceeded: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_peak: AtomicUsize::new(0),
            latency_all: Histogram::default(),
            queue_wait: Histogram::default(),
            latency_exec: Histogram::default(),
            latency_cached: Histogram::default(),
            latency_by_route: Default::default(),
            planner_decisions: Default::default(),
            est_cost_by_route: Default::default(),
            actual_nodes_by_route: Default::default(),
            actual_rank_ops_by_route: Default::default(),
            misprediction_by_route: Default::default(),
            rank_ops: AtomicU64::new(0),
            rank_ops_saved: AtomicU64::new(0),
            parallel_levels: AtomicU64::new(0),
            parallel_chunks: AtomicU64::new(0),
            parallel_levels_by_route: Default::default(),
            parallel_chunks_by_route: Default::default(),
            epoch_bumps: AtomicU64::new(0),
            drains: AtomicU64::new(0),
            drained_jobs: AtomicU64::new(0),
            aborted_jobs: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            checkpoint_failures: AtomicU64::new(0),
        }
    }

    /// Folds one query's traversal counters into the registry
    /// (per-route parallel counters when the route is known).
    pub fn note_traversal(&self, route: Option<EvalRoute>, stats: &rpq_core::TraversalStats) {
        self.rank_ops.fetch_add(stats.rank_ops, Ordering::Relaxed);
        self.rank_ops_saved
            .fetch_add(stats.rank_ops_saved, Ordering::Relaxed);
        self.parallel_levels
            .fetch_add(stats.parallel_levels, Ordering::Relaxed);
        self.parallel_chunks
            .fetch_add(stats.parallel_chunks, Ordering::Relaxed);
        if let Some(r) = route {
            self.parallel_levels_by_route[r.index()]
                .fetch_add(stats.parallel_levels, Ordering::Relaxed);
            self.parallel_chunks_by_route[r.index()]
                .fetch_add(stats.parallel_chunks, Ordering::Relaxed);
        }
    }

    /// The histogram for one evaluation route.
    pub fn route_histogram(&self, route: EvalRoute) -> &Histogram {
        &self.latency_by_route[route.index()]
    }

    /// Counts one planner decision for `route`.
    pub fn note_planner_decision(&self, route: EvalRoute) {
        self.planner_decisions[route.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed plan's estimate against what evaluation
    /// actually cost: `estimated` is the planner's `estimated_cost`,
    /// `actual_nodes` the product-graph nodes visited, `actual_rank_ops`
    /// the wavelet ranks performed. The misprediction histogram stores
    /// `(actual_nodes + 1) * 1000 / (estimated + 1)`.
    pub fn note_plan_accuracy(
        &self,
        route: EvalRoute,
        estimated: u64,
        actual_nodes: u64,
        actual_rank_ops: u64,
    ) {
        let i = route.index();
        self.est_cost_by_route[i].fetch_add(estimated, Ordering::Relaxed);
        self.actual_nodes_by_route[i].fetch_add(actual_nodes, Ordering::Relaxed);
        self.actual_rank_ops_by_route[i].fetch_add(actual_rank_ops, Ordering::Relaxed);
        let ratio = (actual_nodes + 1).saturating_mul(1000) / (estimated + 1);
        self.misprediction_by_route[i].record_value(ratio);
    }

    pub(crate) fn note_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Seconds since the registry (= the server) started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }
}

/// Cache counters the server snapshots into the JSON export.
pub(crate) struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
    pub entries: usize,
    pub used: usize,
    pub budget: usize,
}

impl CacheStats {
    fn write_json(&self, w: &mut JsonWriter) {
        w.begin_object()
            .field_u64("hits", self.hits)
            .field_u64("misses", self.misses)
            .field_u64("evictions", self.evictions)
            .field_u64("invalidations", self.invalidations)
            .field_u64("entries", self.entries as u64)
            .field_u64("used", self.used as u64)
            .field_u64("budget", self.budget as u64)
            .end_object();
    }
}

/// Renders the full registry (plus cache snapshots, worker count, and
/// the source's update counters) as one JSON object.
#[allow(clippy::too_many_arguments)]
pub(crate) fn registry_json(
    m: &Metrics,
    workers: usize,
    intra_query_threads: usize,
    queue_capacity: usize,
    plan_cache: &CacheStats,
    result_cache: &CacheStats,
    epoch: u64,
    updates: Option<crate::source::UpdateStats>,
    index: Option<crate::source::IndexStats>,
    shards: Option<&[crate::source::ShardStat]>,
) -> String {
    let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let mut w = JsonWriter::new();
    w.begin_object()
        .field_u64(
            "uptime_ms",
            m.uptime().as_millis().min(u128::from(u64::MAX)) as u64,
        )
        .field_u64("workers", workers as u64);
    w.key("queries")
        .begin_object()
        .field_u64("submitted", g(&m.submitted))
        .field_u64("completed", g(&m.completed))
        .field_u64("failed", g(&m.failed))
        .field_u64("cancelled", g(&m.cancelled))
        .field_u64("rejected_overload", g(&m.rejected_overload))
        .field_u64("budget_exceeded", g(&m.budget_exceeded))
        .end_object();
    w.key("queue")
        .begin_object()
        .field_u64("depth", m.queue_depth.load(Ordering::Relaxed) as u64)
        .field_u64("peak", m.queue_peak.load(Ordering::Relaxed) as u64)
        .field_u64("capacity", queue_capacity as u64)
        .end_object();
    w.key("planner")
        .begin_object()
        .key("decisions")
        .begin_object();
    for r in EvalRoute::ALL {
        w.field_u64(
            r.name(),
            m.planner_decisions[r.index()].load(Ordering::Relaxed),
        );
    }
    w.end_object();
    w.key("accuracy").begin_object();
    for r in EvalRoute::ALL {
        let i = r.index();
        if !m.misprediction_by_route[i].non_empty() {
            continue;
        }
        w.key(r.name())
            .begin_object()
            .field_u64("estimated_cost_sum", g(&m.est_cost_by_route[i]))
            .field_u64("actual_nodes_sum", g(&m.actual_nodes_by_route[i]))
            .field_u64("actual_rank_ops_sum", g(&m.actual_rank_ops_by_route[i]))
            .key("misprediction_x1000");
        m.misprediction_by_route[i].write_json(&mut w);
        w.end_object();
    }
    w.end_object().end_object();
    w.key("traversal")
        .begin_object()
        .field_u64("rank_ops", g(&m.rank_ops))
        .field_u64("rank_ops_saved", g(&m.rank_ops_saved))
        .end_object();
    w.key("parallel")
        .begin_object()
        .field_u64("intra_query_threads", intra_query_threads as u64)
        .field_u64("pool_capacity", rpq_core::parallel::pool_capacity() as u64)
        .field_u64("pool_in_use", rpq_core::parallel::pool_in_use() as u64)
        .field_u64("levels", g(&m.parallel_levels))
        .field_u64("chunks", g(&m.parallel_chunks))
        .key("by_route")
        .begin_object();
    for r in EvalRoute::ALL {
        let levels = m.parallel_levels_by_route[r.index()].load(Ordering::Relaxed);
        let chunks = m.parallel_chunks_by_route[r.index()].load(Ordering::Relaxed);
        if levels > 0 {
            w.key(r.name())
                .begin_object()
                .field_u64("levels", levels)
                .field_u64("chunks", chunks)
                .end_object();
        }
    }
    w.end_object().end_object();
    let u = updates.unwrap_or_default();
    w.key("updates")
        .begin_object()
        .field_u64("epoch", epoch)
        .field_u64("epoch_bumps_observed", g(&m.epoch_bumps))
        .field_u64("commits", u.commits)
        .field_u64("compactions", u.compactions)
        .field_u64("delta_adds", u.delta_adds as u64)
        .field_u64("delta_deletes", u.delta_deletes as u64)
        .field_u64("pending_ops", u.pending_ops as u64)
        .end_object();
    w.key("durability")
        .begin_object()
        .field_u64("drains", g(&m.drains))
        .field_u64("drained_jobs", g(&m.drained_jobs))
        .field_u64("aborted_jobs", g(&m.aborted_jobs))
        .field_u64("checkpoints", g(&m.checkpoints))
        .field_u64("checkpoint_failures", g(&m.checkpoint_failures))
        .end_object();
    let ix = index.unwrap_or_default();
    w.key("index")
        .begin_object()
        .field_u64("open_us", ix.open_us)
        .field_str("resident_mode", ix.resident_mode)
        .field_u64("mapped_bytes", ix.mapped_bytes)
        .end_object();
    if let Some(shards) = shards {
        w.key("shards")
            .begin_object()
            .field_u64("count", shards.len() as u64)
            .key("rows")
            .begin_array();
        for s in shards {
            w.begin_object()
                .field_u64("triples", s.triples as u64)
                .field_u64("bytes", s.bytes as u64)
                .field_u64("probes", s.probes)
                .end_object();
        }
        w.end_array().end_object();
    }
    w.key("plan_cache");
    plan_cache.write_json(&mut w);
    w.key("result_cache");
    result_cache.write_json(&mut w);
    w.key("latency_us").begin_object().key("all");
    m.latency_all.write_json(&mut w);
    if m.queue_wait.non_empty() {
        w.key("queue_wait");
        m.queue_wait.write_json(&mut w);
    }
    if m.latency_exec.non_empty() {
        w.key("exec");
        m.latency_exec.write_json(&mut w);
    }
    for r in EvalRoute::ALL {
        let hist = m.route_histogram(r);
        if hist.non_empty() {
            w.key(r.name());
            hist.write_json(&mut w);
        }
    }
    if m.latency_cached.non_empty() {
        w.key("cached");
        m.latency_cached.write_json(&mut w);
    }
    w.end_object().end_object();
    w.finish()
}

/// Appends one `# HELP` / `# TYPE` header pair.
fn prom_header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

/// Appends one unlabelled sample line.
fn prom_sample(out: &mut String, name: &str, value: impl std::fmt::Display) {
    let _ = writeln!(out, "{name} {value}");
}

/// Appends one sample line with a single label.
fn prom_labeled(
    out: &mut String,
    name: &str,
    label: &str,
    label_value: &str,
    value: impl std::fmt::Display,
) {
    let _ = writeln!(out, "{name}{{{label}=\"{label_value}\"}} {value}");
}

/// Appends a full Prometheus histogram: cumulative `_bucket` lines up to
/// the last non-zero bucket plus `+Inf`, then `_sum` and `_count`.
/// `label`/`label_value` (optional) tag every line; `scale` divides the
/// raw log₂ bucket upper bounds (1e6 turns µs buckets into seconds, 1.0
/// keeps raw magnitudes).
fn prom_histogram(
    out: &mut String,
    name: &str,
    label: Option<(&str, &str)>,
    h: &Histogram,
    scale: f64,
) {
    let tag = |le: &str| match label {
        Some((k, v)) => format!("{{{k}=\"{v}\",le=\"{le}\"}}"),
        None => format!("{{le=\"{le}\"}}"),
    };
    let suffix = match label {
        Some((k, v)) => format!("{{{k}=\"{v}\"}}"),
        None => String::new(),
    };
    let counts = h.bucket_counts();
    let mut cum = 0u64;
    if let Some(last) = counts.iter().rposition(|&c| c > 0) {
        for (i, &c) in counts.iter().take(last + 1).enumerate() {
            cum += c;
            let le = (1u64 << i) as f64 / scale;
            let _ = writeln!(out, "{name}_bucket{} {cum}", tag(&le.to_string()));
        }
    }
    let _ = writeln!(out, "{name}_bucket{} {}", tag("+Inf"), h.count());
    let _ = writeln!(out, "{name}_sum{suffix} {}", h.sum_us() as f64 / scale);
    let _ = writeln!(out, "{name}_count{suffix} {}", h.count());
}

/// Renders the registry in the Prometheus text exposition format
/// (v0.0.4): the same atomics as [`registry_json`], one `# HELP`/`#
/// TYPE` pair per family, log₂-µs histogram buckets mapped to cumulative
/// `le` bounds in seconds.
#[allow(clippy::too_many_arguments)]
pub(crate) fn registry_prometheus(
    m: &Metrics,
    workers: usize,
    intra_query_threads: usize,
    queue_capacity: usize,
    plan_cache: &CacheStats,
    result_cache: &CacheStats,
    epoch: u64,
    updates: Option<crate::source::UpdateStats>,
    index: Option<crate::source::IndexStats>,
    shards: Option<&[crate::source::ShardStat]>,
) -> String {
    let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let mut out = String::with_capacity(8192);

    prom_header(
        &mut out,
        "rpq_uptime_seconds",
        "Seconds since the server started.",
        "gauge",
    );
    prom_sample(&mut out, "rpq_uptime_seconds", m.uptime().as_secs_f64());
    prom_header(
        &mut out,
        "rpq_workers",
        "Configured worker threads.",
        "gauge",
    );
    prom_sample(&mut out, "rpq_workers", workers);
    prom_header(
        &mut out,
        "rpq_intra_query_threads",
        "Threads one query may fan its BFS levels across.",
        "gauge",
    );
    prom_sample(&mut out, "rpq_intra_query_threads", intra_query_threads);

    for (name, help, v) in [
        (
            "rpq_queries_submitted_total",
            "Queries accepted into the queue.",
            g(&m.submitted),
        ),
        (
            "rpq_queries_completed_total",
            "Queries that produced an answer.",
            g(&m.completed),
        ),
        (
            "rpq_queries_failed_total",
            "Queries that failed evaluation.",
            g(&m.failed),
        ),
        (
            "rpq_queries_cancelled_total",
            "Queries cancelled before an answer.",
            g(&m.cancelled),
        ),
        (
            "rpq_queries_rejected_overload_total",
            "Submissions rejected by admission control.",
            g(&m.rejected_overload),
        ),
        (
            "rpq_queries_budget_exceeded_total",
            "Queries aborted on an exhausted node budget.",
            g(&m.budget_exceeded),
        ),
        (
            "rpq_epoch_bumps_total",
            "Snapshot-epoch bumps observed at submit time.",
            g(&m.epoch_bumps),
        ),
        (
            "rpq_rank_ops_total",
            "Wavelet rank operations performed.",
            g(&m.rank_ops),
        ),
        (
            "rpq_rank_ops_saved_total",
            "Rank operations avoided by frontier batching.",
            g(&m.rank_ops_saved),
        ),
    ] {
        prom_header(&mut out, name, help, "counter");
        prom_sample(&mut out, name, v);
    }

    prom_header(
        &mut out,
        "rpq_queue_depth",
        "Jobs currently queued.",
        "gauge",
    );
    prom_sample(
        &mut out,
        "rpq_queue_depth",
        m.queue_depth.load(Ordering::Relaxed),
    );
    prom_header(
        &mut out,
        "rpq_queue_peak",
        "Queue-depth high-water mark.",
        "gauge",
    );
    prom_sample(
        &mut out,
        "rpq_queue_peak",
        m.queue_peak.load(Ordering::Relaxed),
    );
    prom_header(
        &mut out,
        "rpq_queue_capacity",
        "Configured queue capacity.",
        "gauge",
    );
    prom_sample(&mut out, "rpq_queue_capacity", queue_capacity);

    prom_header(
        &mut out,
        "rpq_planner_decisions_total",
        "Planner route decisions.",
        "counter",
    );
    for r in EvalRoute::ALL {
        prom_labeled(
            &mut out,
            "rpq_planner_decisions_total",
            "route",
            r.name(),
            m.planner_decisions[r.index()].load(Ordering::Relaxed),
        );
    }
    {
        let accuracy: [(&str, &str, &[AtomicU64; ROUTES]); 3] = [
            (
                "rpq_planner_estimated_cost_total",
                "Sum of planner cost estimates per executed route.",
                &m.est_cost_by_route,
            ),
            (
                "rpq_planner_actual_nodes_total",
                "Sum of product-graph nodes actually visited per executed route.",
                &m.actual_nodes_by_route,
            ),
            (
                "rpq_planner_actual_rank_ops_total",
                "Sum of rank operations actually performed per executed route.",
                &m.actual_rank_ops_by_route,
            ),
        ];
        for (name, help, arr) in accuracy {
            prom_header(&mut out, name, help, "counter");
            for r in EvalRoute::ALL {
                prom_labeled(&mut out, name, "route", r.name(), g(&arr[r.index()]));
            }
        }
    }
    prom_header(
        &mut out,
        "rpq_planner_misprediction_x1000",
        "Actual-vs-estimated cost ratio x1000 per executed route (1000 = perfect).",
        "histogram",
    );
    for r in EvalRoute::ALL {
        let h = &m.misprediction_by_route[r.index()];
        if h.non_empty() {
            prom_histogram(
                &mut out,
                "rpq_planner_misprediction_x1000",
                Some(("route", r.name())),
                h,
                1.0,
            );
        }
    }

    prom_header(
        &mut out,
        "rpq_parallel_levels_total",
        "BFS levels fanned across the intra-query pool, per route.",
        "counter",
    );
    for r in EvalRoute::ALL {
        prom_labeled(
            &mut out,
            "rpq_parallel_levels_total",
            "route",
            r.name(),
            m.parallel_levels_by_route[r.index()].load(Ordering::Relaxed),
        );
    }
    prom_header(
        &mut out,
        "rpq_parallel_chunks_total",
        "Frontier chunks merged back from the pool, per route.",
        "counter",
    );
    for r in EvalRoute::ALL {
        prom_labeled(
            &mut out,
            "rpq_parallel_chunks_total",
            "route",
            r.name(),
            m.parallel_chunks_by_route[r.index()].load(Ordering::Relaxed),
        );
    }
    prom_header(
        &mut out,
        "rpq_helper_pool_capacity",
        "Process-wide intra-query helper token capacity.",
        "gauge",
    );
    prom_sample(
        &mut out,
        "rpq_helper_pool_capacity",
        rpq_core::parallel::pool_capacity(),
    );
    prom_header(
        &mut out,
        "rpq_helper_pool_in_use",
        "Helper tokens currently checked out.",
        "gauge",
    );
    prom_sample(
        &mut out,
        "rpq_helper_pool_in_use",
        rpq_core::parallel::pool_in_use(),
    );

    {
        type CacheField = fn(&CacheStats) -> u64;
        let caches: [(&str, &str, &str, CacheField); 7] = [
            ("rpq_cache_hits_total", "Cache hits.", "counter", |c| c.hits),
            ("rpq_cache_misses_total", "Cache misses.", "counter", |c| {
                c.misses
            }),
            (
                "rpq_cache_evictions_total",
                "Cache evictions.",
                "counter",
                |c| c.evictions,
            ),
            (
                "rpq_cache_invalidations_total",
                "Cache invalidations.",
                "counter",
                |c| c.invalidations,
            ),
            ("rpq_cache_entries", "Live cache entries.", "gauge", |c| {
                c.entries as u64
            }),
            (
                "rpq_cache_used_bytes",
                "Bytes held by the cache.",
                "gauge",
                |c| c.used as u64,
            ),
            (
                "rpq_cache_budget_bytes",
                "Cache byte budget.",
                "gauge",
                |c| c.budget as u64,
            ),
        ];
        for (name, help, kind, f) in caches {
            prom_header(&mut out, name, help, kind);
            prom_labeled(&mut out, name, "cache", "plan", f(plan_cache));
            prom_labeled(&mut out, name, "cache", "result", f(result_cache));
        }
    }

    let u = updates.unwrap_or_default();
    prom_header(
        &mut out,
        "rpq_snapshot_epoch",
        "Current snapshot epoch.",
        "gauge",
    );
    prom_sample(&mut out, "rpq_snapshot_epoch", epoch);
    for (name, help, v) in [
        (
            "rpq_update_commits_total",
            "Update batches committed.",
            u.commits,
        ),
        (
            "rpq_update_compactions_total",
            "Delta compactions into the ring.",
            u.compactions,
        ),
        (
            "rpq_delta_adds_total",
            "Triples added through the delta overlay.",
            u.delta_adds as u64,
        ),
        (
            "rpq_delta_deletes_total",
            "Triples deleted through the delta overlay.",
            u.delta_deletes as u64,
        ),
    ] {
        prom_header(&mut out, name, help, "counter");
        prom_sample(&mut out, name, v);
    }
    prom_header(
        &mut out,
        "rpq_pending_ops",
        "Update operations not yet committed.",
        "gauge",
    );
    prom_sample(&mut out, "rpq_pending_ops", u.pending_ops);

    for (name, help, v) in [
        ("rpq_drains_total", "Graceful drains started.", g(&m.drains)),
        (
            "rpq_drained_jobs_total",
            "Backlogged queries finished within a drain deadline.",
            g(&m.drained_jobs),
        ),
        (
            "rpq_aborted_jobs_total",
            "Queries a drain deadline aborted while queued.",
            g(&m.aborted_jobs),
        ),
        (
            "rpq_checkpoints_total",
            "Durable checkpoints (snapshot persisted, WAL rotated).",
            g(&m.checkpoints),
        ),
        (
            "rpq_checkpoint_failures_total",
            "Checkpoint attempts that failed.",
            g(&m.checkpoint_failures),
        ),
    ] {
        prom_header(&mut out, name, help, "counter");
        prom_sample(&mut out, name, v);
    }

    let ix = index.unwrap_or_default();
    prom_header(
        &mut out,
        "rpq_index_open_us",
        "Wall time of the index open call, microseconds (0 = built in memory).",
        "gauge",
    );
    prom_sample(&mut out, "rpq_index_open_us", ix.open_us);
    prom_header(
        &mut out,
        "rpq_index_resident_mode",
        "Where the index payload lives: 1 on the active mode label.",
        "gauge",
    );
    for mode in ["heap", "mmap"] {
        prom_labeled(
            &mut out,
            "rpq_index_resident_mode",
            "mode",
            mode,
            u64::from(mode == ix.resident_mode),
        );
    }
    prom_header(
        &mut out,
        "rpq_index_mapped_bytes",
        "Bytes of the index held by a kernel mapping (0 in heap mode).",
        "gauge",
    );
    prom_sample(&mut out, "rpq_index_mapped_bytes", ix.mapped_bytes);

    if let Some(shards) = shards {
        prom_header(
            &mut out,
            "rpq_shards",
            "Shards of the served index (absent when unsharded).",
            "gauge",
        );
        prom_sample(&mut out, "rpq_shards", shards.len());
        type ShardField = fn(&crate::source::ShardStat) -> u64;
        let per_shard: [(&str, &str, &str, ShardField); 3] = [
            (
                "rpq_shard_triples",
                "Completed triples held by one shard.",
                "gauge",
                |s| s.triples as u64,
            ),
            (
                "rpq_shard_bytes",
                "Index bytes of one shard's ring.",
                "gauge",
                |s| s.bytes as u64,
            ),
            (
                "rpq_shard_probes_total",
                "Scatter-gather probes served by one shard.",
                "counter",
                |s| s.probes,
            ),
        ];
        for (name, help, kind, f) in per_shard {
            prom_header(&mut out, name, help, kind);
            for (i, s) in shards.iter().enumerate() {
                prom_labeled(&mut out, name, "shard", &i.to_string(), f(s));
            }
        }
    }

    prom_header(
        &mut out,
        "rpq_query_latency_seconds",
        "End-to-end query latency (queue wait included).",
        "histogram",
    );
    prom_histogram(
        &mut out,
        "rpq_query_latency_seconds",
        None,
        &m.latency_all,
        1e6,
    );
    prom_header(
        &mut out,
        "rpq_queue_wait_seconds",
        "Time jobs waited in the queue.",
        "histogram",
    );
    prom_histogram(&mut out, "rpq_queue_wait_seconds", None, &m.queue_wait, 1e6);
    prom_header(
        &mut out,
        "rpq_query_exec_seconds",
        "Pure evaluation time (cache hits excluded).",
        "histogram",
    );
    prom_histogram(
        &mut out,
        "rpq_query_exec_seconds",
        None,
        &m.latency_exec,
        1e6,
    );
    prom_header(
        &mut out,
        "rpq_query_route_latency_seconds",
        "Evaluation latency per route (result-cache hits as route=\"cached\").",
        "histogram",
    );
    for r in EvalRoute::ALL {
        let h = m.route_histogram(r);
        if h.non_empty() {
            prom_histogram(
                &mut out,
                "rpq_query_route_latency_seconds",
                Some(("route", r.name())),
                h,
                1e6,
            );
        }
    }
    if m.latency_cached.non_empty() {
        prom_histogram(
            &mut out,
            "rpq_query_route_latency_seconds",
            Some(("route", "cached")),
            &m.latency_cached,
            1e6,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for us in [1u64, 2, 4, 100, 100, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum_us(), 5307);
        // p50 falls in the 100 µs cluster: bucket upper bound 128.
        assert_eq!(h.quantile_us(0.5), 128);
        // p99 is the 5 ms outlier's bucket: upper bound 8192.
        assert_eq!(h.quantile_us(0.99), 8192);
        assert_eq!(Histogram::default().quantile_us(0.5), 0);
    }

    #[test]
    fn zero_latency_goes_to_bucket_zero() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(1.0), 1);
    }

    #[test]
    fn histogram_json_truncates_at_last_nonzero_bucket() {
        let h = Histogram::default();
        h.record(Duration::from_micros(3));
        let mut w = JsonWriter::new();
        h.write_json(&mut w);
        assert_eq!(
            w.finish(),
            "{\"count\":1,\"sum_us\":3,\"p50_us\":4,\"p99_us\":4,\
             \"buckets_log2_us\":[0,0,1]}"
        );
        let mut w = JsonWriter::new();
        Histogram::default().write_json(&mut w);
        assert_eq!(
            w.finish(),
            "{\"count\":0,\"sum_us\":0,\"p50_us\":0,\"p99_us\":0,\
             \"buckets_log2_us\":[0]}"
        );
    }

    #[test]
    fn plan_accuracy_ratio_is_centred_at_1000() {
        let m = Metrics::new();
        let r = EvalRoute::ALL[0];
        // Perfect estimate: ratio 1000.
        m.note_plan_accuracy(r, 99, 99, 7);
        // 4x underestimate: ratio 4000.
        m.note_plan_accuracy(r, 24, 99, 0);
        let h = &m.misprediction_by_route[r.index()];
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum_us(), 1000 + 4000);
        assert_eq!(m.est_cost_by_route[r.index()].load(Ordering::Relaxed), 123);
        assert_eq!(
            m.actual_nodes_by_route[r.index()].load(Ordering::Relaxed),
            198
        );
        assert_eq!(
            m.actual_rank_ops_by_route[r.index()].load(Ordering::Relaxed),
            7
        );
    }

    /// The Prometheus rendering must be well-formed: exactly one HELP and
    /// one TYPE line per family, every sample named after a declared
    /// family, histogram buckets cumulative and capped by `+Inf`.
    #[test]
    fn prometheus_output_is_well_formed() {
        let m = Metrics::new();
        m.submitted.fetch_add(3, Ordering::Relaxed);
        m.latency_all.record(Duration::from_micros(250));
        m.latency_all.record(Duration::from_micros(90_000));
        m.queue_wait.record(Duration::from_micros(10));
        m.latency_exec.record(Duration::from_micros(240));
        m.route_histogram(EvalRoute::ALL[1])
            .record(Duration::from_micros(240));
        m.latency_cached.record(Duration::from_micros(5));
        m.note_plan_accuracy(EvalRoute::ALL[1], 10, 20, 5);
        let cache = CacheStats {
            hits: 1,
            misses: 2,
            evictions: 0,
            invalidations: 0,
            entries: 1,
            used: 64,
            budget: 1024,
        };
        let shard_rows = [
            crate::source::ShardStat {
                triples: 10,
                bytes: 2048,
                probes: 7,
            },
            crate::source::ShardStat {
                triples: 6,
                bytes: 1024,
                probes: 0,
            },
        ];
        let text = registry_prometheus(
            &m,
            2,
            1,
            16,
            &cache,
            &cache,
            0,
            None,
            Some(crate::source::IndexStats {
                open_us: 1234,
                resident_mode: "mmap",
                mapped_bytes: 4096,
            }),
            Some(&shard_rows),
        );

        let mut declared = std::collections::HashSet::new();
        let mut helps = std::collections::HashSet::new();
        let mut types = std::collections::HashSet::new();
        for line in text.lines() {
            assert!(!line.is_empty(), "no blank lines in exposition");
            if let Some(rest) = line.strip_prefix("# HELP ") {
                let name = rest.split(' ').next().unwrap();
                assert!(helps.insert(name.to_string()), "duplicate HELP for {name}");
                declared.insert(name.to_string());
            } else if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split(' ');
                let name = it.next().unwrap();
                let kind = it.next().unwrap();
                assert!(
                    matches!(kind, "counter" | "gauge" | "histogram"),
                    "bad TYPE {kind}"
                );
                assert!(types.insert(name.to_string()), "duplicate TYPE for {name}");
            } else {
                let name_part = line.split([' ', '{']).next().unwrap();
                let family = name_part
                    .strip_suffix("_bucket")
                    .or_else(|| name_part.strip_suffix("_sum"))
                    .or_else(|| name_part.strip_suffix("_count"))
                    .filter(|f| declared.contains(*f))
                    .unwrap_or(name_part);
                assert!(
                    declared.contains(family),
                    "sample {name_part} has no HELP/TYPE"
                );
                let value = line.rsplit(' ').next().unwrap();
                assert!(
                    value.parse::<f64>().is_ok(),
                    "unparseable sample value in {line:?}"
                );
            }
        }
        assert_eq!(helps, types, "HELP and TYPE sets must match");

        // Histogram buckets: cumulative, ending at +Inf == _count.
        assert!(text.contains("rpq_query_latency_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("rpq_query_latency_seconds_count 2"));
        assert!(
            text.contains("rpq_query_route_latency_seconds_bucket{route=\"cached\",le=\"+Inf\"} 1")
        );
        // 250 µs lands in the bucket with upper bound 256 µs.
        assert!(text.contains("rpq_query_latency_seconds_bucket{le=\"0.000256\"} 1"));
        // Sharded sources get one row per shard.
        assert!(text.contains("rpq_shards 2"));
        assert!(text.contains("rpq_shard_triples{shard=\"0\"} 10"));
        assert!(text.contains("rpq_shard_probes_total{shard=\"1\"} 0"));
    }

    /// Unsharded sources must not emit the shard families at all — an
    /// always-zero `rpq_shards` would read as "sharded with 0 shards".
    #[test]
    fn prometheus_omits_shard_families_when_unsharded() {
        let m = Metrics::new();
        let cache = CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            invalidations: 0,
            entries: 0,
            used: 0,
            budget: 0,
        };
        let text = registry_prometheus(&m, 1, 1, 8, &cache, &cache, 0, None, None, None);
        assert!(!text.contains("rpq_shard"));
    }

    #[test]
    fn registry_json_keeps_the_cache_grep_shape() {
        let m = Metrics::new();
        let cache = CacheStats {
            hits: 1,
            misses: 0,
            evictions: 0,
            invalidations: 0,
            entries: 1,
            used: 16,
            budget: 1024,
        };
        let json = registry_json(&m, 1, 1, 8, &cache, &cache, 0, None, None, None);
        // The CI server-smoke step greps for this exact byte shape.
        assert!(json.contains("\"result_cache\":{\"hits\":1"), "{json}");
        assert!(json.contains("\"latency_us\":{\"all\":{\"count\":0"));
        assert!(json.contains("\"planner\":{\"decisions\":{\"fastpath\":0"));
        // Unsharded sources have no shards section at all.
        assert!(!json.contains("\"shards\""));

        let rows = [crate::source::ShardStat {
            triples: 4,
            bytes: 512,
            probes: 9,
        }];
        let sharded = registry_json(&m, 1, 1, 8, &cache, &cache, 0, None, None, Some(&rows));
        assert!(
            sharded.contains(
                "\"shards\":{\"count\":1,\"rows\":[{\"triples\":4,\"bytes\":512,\"probes\":9}]}"
            ),
            "{sharded}"
        );
    }
}
