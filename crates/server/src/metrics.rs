//! The server's metrics registry: lock-free counters, queue-depth
//! gauges, and per-engine latency histograms, exported as JSON.
//!
//! Histogram buckets are powers of two in microseconds (bucket `i` holds
//! latencies in `[2^(i-1), 2^i)` µs, bucket 0 holds sub-microsecond
//! observations), which spans 1 µs – ~1 h in 32 buckets and makes
//! quantile estimation a single scan. Everything is atomics — recording
//! a sample on the hot path is a handful of relaxed adds.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rpq_core::EvalRoute;

const BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram (microseconds).
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples, microseconds.
    pub fn sum_us(&self) -> u64 {
        self.sum_us.load(Ordering::Relaxed)
    }

    /// Approximate `q`-quantile in microseconds (upper bound of the
    /// bucket the quantile falls in). Returns 0 with no samples.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        1u64 << (BUCKETS - 1)
    }

    fn non_empty(&self) -> bool {
        self.count() > 0
    }

    fn to_json(&self) -> String {
        let mut buckets = String::from("[");
        let mut last_non_zero = 0;
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                last_non_zero = i;
            }
        }
        for (i, &c) in counts.iter().take(last_non_zero + 1).enumerate() {
            if i > 0 {
                buckets.push(',');
            }
            buckets.push_str(&c.to_string());
        }
        buckets.push(']');
        format!(
            "{{\"count\":{},\"sum_us\":{},\"p50_us\":{},\"p99_us\":{},\"buckets_log2_us\":{}}}",
            self.count(),
            self.sum_us(),
            self.quantile_us(0.50),
            self.quantile_us(0.99),
            buckets
        )
    }
}

/// Number of evaluation routes ([`EvalRoute::ALL`]).
const ROUTES: usize = EvalRoute::ALL.len();

/// The registry: query-lifecycle counters, admission gauges, planner
/// decision counts, and one latency histogram per evaluation route
/// (plus cache hits and the all-routes aggregate).
pub struct Metrics {
    started: Instant,
    /// Queries accepted into the queue.
    pub submitted: AtomicU64,
    /// Queries that produced an answer (including truncated/timed-out
    /// partials and result-cache hits).
    pub completed: AtomicU64,
    /// Queries that failed evaluation.
    pub failed: AtomicU64,
    /// Queries cancelled before producing an answer.
    pub cancelled: AtomicU64,
    /// Submissions rejected because the queue was full.
    pub rejected_overload: AtomicU64,
    /// Queries aborted because their node budget ran out.
    pub budget_exceeded: AtomicU64,
    /// Current queue depth.
    pub queue_depth: AtomicUsize,
    /// High-water mark of the queue depth.
    pub queue_peak: AtomicUsize,
    /// End-to-end latency, all completions.
    pub latency_all: Histogram,
    /// Latency of result-cache hits.
    pub latency_cached: Histogram,
    /// Latency per evaluation route, indexed by [`EvalRoute::index`]:
    /// fastpath, bitparallel, split, fallback.
    pub latency_by_route: [Histogram; ROUTES],
    /// Planner decisions per route (every evaluated query counts once,
    /// whether or not it completed; cache hits never reach the planner).
    pub planner_decisions: [AtomicU64; ROUTES],
    /// Wavelet rank computations performed by batched traversals, summed
    /// over every evaluated query.
    pub rank_ops: AtomicU64,
    /// Rank computations the frontier batching avoided (vs per-range
    /// traversal) — the succinct hot-path win, observable in production.
    pub rank_ops_saved: AtomicU64,
    /// BFS levels / fast-path sweeps that fanned out across the
    /// intra-query worker pool, summed over every evaluated query.
    pub parallel_levels: AtomicU64,
    /// Frontier chunks merged back from the pool (chunks ÷ levels is the
    /// average fan-out actually achieved).
    pub parallel_chunks: AtomicU64,
    /// Parallel levels per evaluation route, indexed by
    /// [`EvalRoute::index`] — which routes actually benefit from
    /// intra-query fan-out.
    pub parallel_levels_by_route: [AtomicU64; ROUTES],
    /// Parallel chunks per evaluation route.
    pub parallel_chunks_by_route: [AtomicU64; ROUTES],
    /// Snapshot-epoch bumps observed at submit time (each one dropped
    /// the plan and result caches).
    pub epoch_bumps: AtomicU64,
}

impl Metrics {
    pub(crate) fn new() -> Self {
        Self {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
            rejected_overload: AtomicU64::new(0),
            budget_exceeded: AtomicU64::new(0),
            queue_depth: AtomicUsize::new(0),
            queue_peak: AtomicUsize::new(0),
            latency_all: Histogram::default(),
            latency_cached: Histogram::default(),
            latency_by_route: Default::default(),
            planner_decisions: Default::default(),
            rank_ops: AtomicU64::new(0),
            rank_ops_saved: AtomicU64::new(0),
            parallel_levels: AtomicU64::new(0),
            parallel_chunks: AtomicU64::new(0),
            parallel_levels_by_route: Default::default(),
            parallel_chunks_by_route: Default::default(),
            epoch_bumps: AtomicU64::new(0),
        }
    }

    /// Folds one query's traversal counters into the registry
    /// (per-route parallel counters when the route is known).
    pub fn note_traversal(&self, route: Option<EvalRoute>, stats: &rpq_core::TraversalStats) {
        self.rank_ops.fetch_add(stats.rank_ops, Ordering::Relaxed);
        self.rank_ops_saved
            .fetch_add(stats.rank_ops_saved, Ordering::Relaxed);
        self.parallel_levels
            .fetch_add(stats.parallel_levels, Ordering::Relaxed);
        self.parallel_chunks
            .fetch_add(stats.parallel_chunks, Ordering::Relaxed);
        if let Some(r) = route {
            self.parallel_levels_by_route[r.index()]
                .fetch_add(stats.parallel_levels, Ordering::Relaxed);
            self.parallel_chunks_by_route[r.index()]
                .fetch_add(stats.parallel_chunks, Ordering::Relaxed);
        }
    }

    /// The histogram for one evaluation route.
    pub fn route_histogram(&self, route: EvalRoute) -> &Histogram {
        &self.latency_by_route[route.index()]
    }

    /// Counts one planner decision for `route`.
    pub fn note_planner_decision(&self, route: EvalRoute) {
        self.planner_decisions[route.index()].fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_queue_depth(&self, depth: usize) {
        self.queue_depth.store(depth, Ordering::Relaxed);
        self.queue_peak.fetch_max(depth, Ordering::Relaxed);
    }

    /// Seconds since the registry (= the server) started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }
}

/// Cache counters the server snapshots into the JSON export.
pub(crate) struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
    pub invalidations: u64,
    pub entries: usize,
    pub used: usize,
    pub budget: usize,
}

impl CacheStats {
    fn to_json(&self) -> String {
        format!(
            "{{\"hits\":{},\"misses\":{},\"evictions\":{},\"invalidations\":{},\
             \"entries\":{},\"used\":{},\"budget\":{}}}",
            self.hits,
            self.misses,
            self.evictions,
            self.invalidations,
            self.entries,
            self.used,
            self.budget
        )
    }
}

/// Renders the full registry (plus cache snapshots, worker count, and
/// the source's update counters) as one JSON object.
#[allow(clippy::too_many_arguments)]
pub(crate) fn registry_json(
    m: &Metrics,
    workers: usize,
    intra_query_threads: usize,
    queue_capacity: usize,
    plan_cache: &CacheStats,
    result_cache: &CacheStats,
    epoch: u64,
    updates: Option<crate::source::UpdateStats>,
) -> String {
    let g = |c: &AtomicU64| c.load(Ordering::Relaxed);
    let mut routes = String::new();
    for r in EvalRoute::ALL {
        let hist = m.route_histogram(r);
        if hist.non_empty() {
            routes.push_str(&format!(",\"{}\":{}", r.name(), hist.to_json()));
        }
    }
    if m.latency_cached.non_empty() {
        routes.push_str(&format!(",\"cached\":{}", m.latency_cached.to_json()));
    }
    let mut decisions = String::new();
    for (i, r) in EvalRoute::ALL.into_iter().enumerate() {
        if i > 0 {
            decisions.push(',');
        }
        decisions.push_str(&format!(
            "\"{}\":{}",
            r.name(),
            m.planner_decisions[r.index()].load(Ordering::Relaxed)
        ));
    }
    let mut par_routes = String::new();
    for r in EvalRoute::ALL {
        let levels = m.parallel_levels_by_route[r.index()].load(Ordering::Relaxed);
        let chunks = m.parallel_chunks_by_route[r.index()].load(Ordering::Relaxed);
        if levels > 0 {
            if !par_routes.is_empty() {
                par_routes.push(',');
            }
            par_routes.push_str(&format!(
                "\"{}\":{{\"levels\":{levels},\"chunks\":{chunks}}}",
                r.name()
            ));
        }
    }
    let parallel_json = format!(
        "{{\"intra_query_threads\":{},\"pool_capacity\":{},\
         \"levels\":{},\"chunks\":{},\"by_route\":{{{}}}}}",
        intra_query_threads,
        rpq_core::parallel::pool_capacity(),
        g(&m.parallel_levels),
        g(&m.parallel_chunks),
        par_routes
    );
    let u = updates.unwrap_or_default();
    let updates_json = format!(
        "{{\"epoch\":{},\"epoch_bumps_observed\":{},\"commits\":{},\"compactions\":{},\
         \"delta_adds\":{},\"delta_deletes\":{},\"pending_ops\":{}}}",
        epoch,
        g(&m.epoch_bumps),
        u.commits,
        u.compactions,
        u.delta_adds,
        u.delta_deletes,
        u.pending_ops
    );
    format!(
        "{{\"uptime_ms\":{},\"workers\":{},\
         \"queries\":{{\"submitted\":{},\"completed\":{},\"failed\":{},\"cancelled\":{},\
         \"rejected_overload\":{},\"budget_exceeded\":{}}},\
         \"queue\":{{\"depth\":{},\"peak\":{},\"capacity\":{}}},\
         \"planner\":{{\"decisions\":{{{}}}}},\
         \"traversal\":{{\"rank_ops\":{},\"rank_ops_saved\":{}}},\
         \"parallel\":{},\
         \"updates\":{},\
         \"plan_cache\":{},\"result_cache\":{},\
         \"latency_us\":{{\"all\":{}{}}}}}",
        m.uptime().as_millis(),
        workers,
        g(&m.submitted),
        g(&m.completed),
        g(&m.failed),
        g(&m.cancelled),
        g(&m.rejected_overload),
        g(&m.budget_exceeded),
        m.queue_depth.load(Ordering::Relaxed),
        m.queue_peak.load(Ordering::Relaxed),
        queue_capacity,
        decisions,
        m.rank_ops.load(Ordering::Relaxed),
        m.rank_ops_saved.load(Ordering::Relaxed),
        parallel_json,
        updates_json,
        plan_cache.to_json(),
        result_cache.to_json(),
        m.latency_all.to_json(),
        routes
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for us in [1u64, 2, 4, 100, 100, 100, 5000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.sum_us(), 5307);
        // p50 falls in the 100 µs cluster: bucket upper bound 128.
        assert_eq!(h.quantile_us(0.5), 128);
        // p99 is the 5 ms outlier's bucket: upper bound 8192.
        assert_eq!(h.quantile_us(0.99), 8192);
        assert_eq!(Histogram::default().quantile_us(0.5), 0);
    }

    #[test]
    fn zero_latency_goes_to_bucket_zero() {
        let h = Histogram::default();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile_us(1.0), 1);
    }
}
