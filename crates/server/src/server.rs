//! The query service: a std-thread worker pool over one shared,
//! immutable ring index, with admission control at the front and the
//! plan/result caches behind it.
//!
//! Life of a query: [`RpqServer::submit`] parses and resolves the string
//! query on the caller's thread (so parse errors are synchronous), then
//! tries to enqueue it — a full queue is an [`RpqError::Overloaded`]
//! rejection, *before* any evaluation work is spent (admission control).
//! A worker pops the job, consults the result cache, then the plan
//! cache (compiling the Glushkov product automaton on a miss), and runs
//! the engine under the job's [`QueryBudget`]. Results come back through
//! [`RpqServer::poll`] / [`RpqServer::wait`] as shared `Arc` answers;
//! [`RpqServer::cancel`] removes queued jobs immediately and flags
//! running ones (best effort — the engine's own timeout bounds how long
//! a running query can linger).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ring::Id;
use rpq_core::{
    EngineOptions, EvalRoute, PreparedQuery, RpqEngine, RpqQuery, SourceSnapshot, Term,
    TraversalStats,
};
use succinct::util::FxHashMap;

use crate::metrics::{registry_json, registry_prometheus, Metrics};
use crate::plan_cache::PlanCache;
use crate::result_cache::{ResultCache, ResultKey};
use crate::slowlog::{SlowEntry, SlowLog};
use crate::source::{QuerySource, SourceResolver};
use crate::{lock_ignore_poison, RpqError};

/// Per-query evaluation budgets. `max_results` and `timeout` return
/// partial answers with the corresponding flag set; an exhausted
/// `node_budget` is a hard [`RpqError::BudgetExceeded`] failure.
#[derive(Clone, Copy, Debug)]
pub struct QueryBudget {
    /// Stop after this many result pairs (partial answer, `truncated`).
    pub max_results: usize,
    /// Give up after this much wall-clock time (partial answer,
    /// `timed_out`).
    pub timeout: Option<Duration>,
    /// Abort after visiting this many product-graph nodes (hard error).
    pub node_budget: Option<u64>,
}

impl Default for QueryBudget {
    fn default() -> Self {
        Self {
            max_results: 1_000_000,
            timeout: Some(Duration::from_secs(30)),
            node_budget: None,
        }
    }
}

/// Server construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Worker threads. Must be non-zero unless [`Self::admission_only`]
    /// is set — `workers: 0` on a serving configuration used to silently
    /// strand every submission in the queue forever, so
    /// [`RpqServer::start`] now rejects it with
    /// [`RpqError::InvalidConfig`].
    pub workers: usize,
    /// Admission-only mode: accept and queue submissions but spawn no
    /// workers, so nothing ever runs — for tests and drain scenarios.
    /// [`RpqServer::wait`] on a queued job fails fast with
    /// [`RpqError::InvalidConfig`] instead of blocking forever; `poll`
    /// as usual.
    pub admission_only: bool,
    /// Threads a single query may fan its BFS levels and fast-path
    /// sweeps across ([`EngineOptions::intra_query_threads`]). Clamped at
    /// start so `workers × intra_query_threads` cannot exceed the
    /// machine's parallelism; the process-wide token pool additionally
    /// bounds actual helper threads at runtime. `1` (the default) keeps
    /// every query single-threaded.
    pub intra_query_threads: usize,
    /// Queue capacity; submissions beyond it are rejected
    /// ([`RpqError::Overloaded`]).
    pub max_pending: usize,
    /// Byte budget of the compiled-plan cache.
    pub plan_cache_bytes: usize,
    /// Byte budget of the result cache (`0` disables it).
    pub result_cache_bytes: usize,
    /// Budget applied to queries submitted without an explicit one.
    pub default_budget: QueryBudget,
    /// §3.3 vertical split width `d` of the bit-parallel transition
    /// tables compiled into cached plans (a table-layout knob — not
    /// rare-label splitting, which the planner chooses per query as
    /// `EvalRoute::Split`).
    pub bp_split_width: usize,
    /// Collect a [`rpq_core::QueryProfile`] for every evaluated query
    /// and attach it to the [`QueryAnswer`]. Off by default — profiling
    /// is opt-in and evaluation is bit-identical either way (the planner
    /// never reads the flag). Implied for slow-log candidates when
    /// [`Self::slow_log_capacity`] is non-zero.
    pub profile: bool,
    /// Keep the N worst queries (by end-to-end latency) in the slow-query
    /// log, full profiles included. `0` (the default) disables the log
    /// and the profiling it implies.
    pub slow_log_capacity: usize,
    /// Only queries at or above this end-to-end latency are slow-log
    /// candidates.
    pub slow_log_threshold: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            admission_only: false,
            intra_query_threads: 1,
            max_pending: 1024,
            plan_cache_bytes: 4 << 20,
            result_cache_bytes: 16 << 20,
            default_budget: QueryBudget::default(),
            bp_split_width: automata::bitparallel::DEFAULT_SPLIT_WIDTH,
            profile: false,
            slow_log_capacity: 0,
            slow_log_threshold: Duration::from_millis(100),
        }
    }
}

/// A finished answer: distinct pairs in sorted order (deterministic
/// across runs and thread counts), shared via `Arc` between the jobs
/// map, the result cache and any number of clients.
#[derive(Clone, Debug, Default)]
pub struct QueryAnswer {
    /// Distinct `(subject, object)` pairs, sorted ascending.
    pub pairs: Vec<(Id, Id)>,
    /// The result limit was hit (answer is a prefix of the full set).
    pub truncated: bool,
    /// The timeout was hit (answer is partial).
    pub timed_out: bool,
    /// The evaluation route the planner chose and the worker executed
    /// (`None` only for answers predating evaluation, which do not
    /// occur in practice; cache hits keep the original run's route).
    pub route: Option<EvalRoute>,
    /// Engine traversal statistics.
    pub stats: TraversalStats,
    /// The query's execution profile, present when the server runs with
    /// [`ServerConfig::profile`] (or an active slow log). Cached answers
    /// get a fresh minimal profile per hit (`cache_hit: true`, queue
    /// wait only) — the original run's profile is never replayed.
    pub profile: Option<Box<rpq_core::QueryProfile>>,
}

impl QueryAnswer {
    /// Whether this is the full answer set (cacheable).
    pub fn is_complete(&self) -> bool {
        !self.truncated && !self.timed_out
    }

    /// Heap bytes of the pair vector (result-cache accounting).
    pub fn size_bytes(&self) -> usize {
        self.pairs.len() * std::mem::size_of::<(Id, Id)>()
    }
}

/// What [`RpqServer::drain`] accomplished.
#[derive(Clone, Debug, Default)]
pub struct DrainReport {
    /// Backlogged queries (queued or running at drain start) that
    /// finished within the deadline.
    pub drained: usize,
    /// Queries still queued when the deadline expired, failed with
    /// [`RpqError::ShuttingDown`].
    pub aborted: usize,
    /// The epoch the source checkpointed its durable state at (`None`
    /// when the source has nothing durable, or the checkpoint failed).
    pub checkpoint_epoch: Option<u64>,
    /// Why the checkpoint failed, if it did.
    pub checkpoint_error: Option<String>,
}

/// Handle to a submitted query.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryTicket {
    id: u64,
}

impl QueryTicket {
    /// The server-unique job id.
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// Lifecycle of a submitted query.
#[derive(Clone, Debug)]
pub enum QueryStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is evaluating it.
    Running,
    /// Finished with an answer.
    Done(Arc<QueryAnswer>),
    /// Finished with an error.
    Failed(RpqError),
    /// Cancelled before producing an answer.
    Cancelled,
}

struct Job {
    query: RpqQuery,
    key: ResultKey,
    budget: QueryBudget,
    /// When the job was admitted — queue wait is measured from here to
    /// worker pickup, end-to-end latency from here to the answer.
    submitted: Instant,
    /// The evaluation snapshot captured at submit time: the query runs
    /// against exactly this epoch's ring + delta, no matter how many
    /// commits land before a worker picks it up.
    snapshot: SourceSnapshot,
    status: Mutex<QueryStatus>,
    done: Condvar,
    cancel: AtomicBool,
}

impl Job {
    fn finish(&self, status: QueryStatus) {
        // Recovering from poison matters most right here: the worker's
        // panic handler calls `finish` on the very job whose evaluation
        // just panicked, possibly with this mutex poisoned.
        *lock_ignore_poison(&self.status) = status;
        self.done.notify_all();
    }
}

struct Shared {
    source: Arc<dyn QuerySource>,
    config: ServerConfig,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// Set by [`RpqServer::drain`]: stop admitting, keep evaluating.
    draining: AtomicBool,
    /// Jobs a worker has claimed (status `Running`) but not finished —
    /// what a drain waits on after the queue empties.
    in_flight: std::sync::atomic::AtomicUsize,
    jobs: Mutex<FxHashMap<u64, Arc<Job>>>,
    next_id: AtomicU64,
    plan_cache: PlanCache,
    result_cache: ResultCache,
    metrics: Metrics,
    slow_log: SlowLog,
    /// Highest snapshot epoch observed; a submit that sees a newer one
    /// invalidates both caches (compiled plans may embed a stale
    /// alphabet after a rebuild; results are epoch-keyed on top).
    cache_epoch: AtomicU64,
}

/// The concurrent query service. Dropping the server shuts it down
/// (joining every worker); prefer [`RpqServer::shutdown`] for an
/// explicit, observable stop.
pub struct RpqServer {
    shared: Arc<Shared>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl RpqServer {
    /// Starts the worker pool over `source`.
    ///
    /// Rejects configurations that can never serve: `workers == 0`
    /// without [`ServerConfig::admission_only`] would strand every
    /// submission as `Queued` forever. `intra_query_threads` is clamped
    /// so `workers × intra_query_threads` cannot oversubscribe the
    /// machine.
    pub fn start(source: Arc<dyn QuerySource>, mut config: ServerConfig) -> Result<Self, RpqError> {
        if config.workers == 0 && !config.admission_only {
            return Err(RpqError::InvalidConfig(
                "workers == 0 would queue every submission forever; \
                 set admission_only for a queue-only server"
                    .into(),
            ));
        }
        let avail = std::thread::available_parallelism().map_or(1, |n| n.get());
        config.intra_query_threads = config
            .intra_query_threads
            .max(1)
            .min((avail / config.workers.max(1)).max(1));
        let epoch0 = source.snapshot().epoch;
        let shared = Arc::new(Shared {
            source,
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            in_flight: std::sync::atomic::AtomicUsize::new(0),
            jobs: Mutex::new(FxHashMap::default()),
            next_id: AtomicU64::new(1),
            plan_cache: PlanCache::new(config.plan_cache_bytes, config.bp_split_width),
            result_cache: ResultCache::new(config.result_cache_bytes),
            metrics: Metrics::new(),
            slow_log: SlowLog::new(config.slow_log_capacity, config.slow_log_threshold),
            cache_epoch: AtomicU64::new(epoch0),
        });
        let n_workers = if config.admission_only {
            0
        } else {
            config.workers
        };
        let handles = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("rpq-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning worker thread")
            })
            .collect();
        Ok(Self {
            shared,
            handles: Mutex::new(handles),
        })
    }

    /// The source being served.
    pub fn source(&self) -> &Arc<dyn QuerySource> {
        &self.shared.source
    }

    /// The metrics registry (live counters).
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Parses a string query against the source's dictionaries without
    /// submitting it.
    pub fn parse(&self, subject: &str, expr: &str, object: &str) -> Result<RpqQuery, RpqError> {
        let snapshot = self.shared.source.snapshot();
        self.parse_at(subject, expr, object, &snapshot)
    }

    fn parse_at(
        &self,
        subject: &str,
        expr: &str,
        object: &str,
        snapshot: &SourceSnapshot,
    ) -> Result<RpqQuery, RpqError> {
        let resolver = SourceResolver {
            source: &*self.shared.source,
            snapshot,
        };
        let e = automata::parser::parse(expr, &resolver)
            .map_err(|err| RpqError::Parse(err.to_string()))?;
        let term = |name: &str| -> Result<Term, RpqError> {
            if name.starts_with('?') {
                Ok(Term::Var)
            } else {
                self.shared
                    .source
                    .node_id(name)
                    .map(Term::Const)
                    .ok_or_else(|| RpqError::UnknownNode(name.to_string()))
            }
        };
        Ok(RpqQuery::new(term(subject)?, e, term(object)?))
    }

    /// Submits a string query under the default budget.
    pub fn submit(&self, subject: &str, expr: &str, object: &str) -> Result<QueryTicket, RpqError> {
        self.submit_with(subject, expr, object, self.shared.config.default_budget)
    }

    /// Submits a string query under an explicit budget. Parse and
    /// resolution errors are synchronous; admission rejections
    /// ([`RpqError::Overloaded`]) happen before any evaluation work.
    pub fn submit_with(
        &self,
        subject: &str,
        expr: &str,
        object: &str,
        budget: QueryBudget,
    ) -> Result<QueryTicket, RpqError> {
        let snapshot = self.shared.source.snapshot();
        let query = self.parse_at(subject, expr, object, &snapshot)?;
        self.submit_parsed_at(query, budget, snapshot)
    }

    /// Submits an id-level query (the path benchmarks and embedders use;
    /// no dictionary lookups).
    pub fn submit_parsed(
        &self,
        query: RpqQuery,
        budget: QueryBudget,
    ) -> Result<QueryTicket, RpqError> {
        let snapshot = self.shared.source.snapshot();
        self.submit_parsed_at(query, budget, snapshot)
    }

    fn submit_parsed_at(
        &self,
        query: RpqQuery,
        budget: QueryBudget,
        snapshot: SourceSnapshot,
    ) -> Result<QueryTicket, RpqError> {
        if self.shared.shutdown.load(Ordering::Acquire)
            || self.shared.draining.load(Ordering::Acquire)
        {
            return Err(RpqError::ShuttingDown);
        }
        self.note_epoch(snapshot.epoch);
        let key = ResultKey {
            pattern: PreparedQuery::cache_key(&query.expr),
            subject: query.subject,
            object: query.object,
            epoch: snapshot.epoch,
        };
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let job = Arc::new(Job {
            query,
            key,
            budget,
            submitted: Instant::now(),
            snapshot,
            status: Mutex::new(QueryStatus::Queued),
            done: Condvar::new(),
            cancel: AtomicBool::new(false),
        });
        {
            let mut queue = lock_ignore_poison(&self.shared.queue);
            // Re-checked under the queue lock: shutdown() drains the queue
            // after setting the flag, so a push racing past the earlier
            // check would strand the job as Queued forever (and a drain
            // that observed an empty queue must not admit a straggler).
            if self.shared.shutdown.load(Ordering::Acquire)
                || self.shared.draining.load(Ordering::Acquire)
            {
                return Err(RpqError::ShuttingDown);
            }
            if queue.len() >= self.shared.config.max_pending {
                self.shared
                    .metrics
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                return Err(RpqError::Overloaded {
                    pending: queue.len(),
                    capacity: self.shared.config.max_pending,
                });
            }
            queue.push_back(Arc::clone(&job));
            self.shared.metrics.note_queue_depth(queue.len());
        }
        lock_ignore_poison(&self.shared.jobs).insert(id, job);
        self.shared
            .metrics
            .submitted
            .fetch_add(1, Ordering::Relaxed);
        self.shared.queue_cv.notify_one();
        Ok(QueryTicket { id })
    }

    /// Submits many string queries; each slot gets its own ticket or
    /// synchronous error (one rejected query does not fail the batch).
    pub fn submit_batch(
        &self,
        queries: &[(&str, &str, &str)],
    ) -> Vec<Result<QueryTicket, RpqError>> {
        queries
            .iter()
            .map(|&(s, e, o)| self.submit(s, e, o))
            .collect()
    }

    /// Snapshot of a job's status; `None` for unknown (or forgotten)
    /// tickets.
    pub fn poll(&self, ticket: &QueryTicket) -> Option<QueryStatus> {
        let job = lock_ignore_poison(&self.shared.jobs)
            .get(&ticket.id)
            .cloned()?;
        let status = lock_ignore_poison(&job.status).clone();
        Some(status)
    }

    /// Cancels a job. Queued jobs terminate immediately; running jobs
    /// are flagged (best effort — their answer is discarded when the
    /// worker finishes). Returns whether the job can still be affected.
    pub fn cancel(&self, ticket: &QueryTicket) -> bool {
        let Some(job) = lock_ignore_poison(&self.shared.jobs)
            .get(&ticket.id)
            .cloned()
        else {
            return false;
        };
        job.cancel.store(true, Ordering::Release);
        let mut status = lock_ignore_poison(&job.status);
        match &*status {
            QueryStatus::Queued => {
                *status = QueryStatus::Cancelled;
                drop(status);
                job.done.notify_all();
                self.shared
                    .metrics
                    .cancelled
                    .fetch_add(1, Ordering::Relaxed);
                true
            }
            QueryStatus::Running => true,
            _ => false,
        }
    }

    /// Blocks until the job finishes, then removes it from the job
    /// table and returns its outcome.
    ///
    /// On an admission-only server nothing ever runs, so waiting on a
    /// queued job fails fast with [`RpqError::InvalidConfig`] instead of
    /// blocking forever (the job stays queued and pollable).
    pub fn wait(&self, ticket: &QueryTicket) -> Result<Arc<QueryAnswer>, RpqError> {
        let job = lock_ignore_poison(&self.shared.jobs)
            .get(&ticket.id)
            .cloned()
            .ok_or(RpqError::UnknownTicket)?;
        if self.shared.config.admission_only
            && matches!(*lock_ignore_poison(&job.status), QueryStatus::Queued)
        {
            return Err(RpqError::InvalidConfig(
                "wait() would block forever: this server is admission-only \
                 (no workers); poll() instead"
                    .into(),
            ));
        }
        let outcome = {
            let mut status = lock_ignore_poison(&job.status);
            loop {
                match &*status {
                    QueryStatus::Done(a) => break Ok(Arc::clone(a)),
                    QueryStatus::Failed(e) => break Err(e.clone()),
                    QueryStatus::Cancelled => break Err(RpqError::Cancelled),
                    QueryStatus::Queued | QueryStatus::Running => {
                        status = job
                            .done
                            .wait(status)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                }
            }
        };
        self.forget(ticket);
        outcome
    }

    /// Drops a finished (or unwanted) job from the job table. Jobs whose
    /// outcome was consumed through [`Self::wait`] are forgotten
    /// automatically; pure [`Self::poll`] users call this when done.
    pub fn forget(&self, ticket: &QueryTicket) {
        lock_ignore_poison(&self.shared.jobs).remove(&ticket.id);
    }

    /// Submit-and-wait convenience under the default budget.
    pub fn query_blocking(
        &self,
        subject: &str,
        expr: &str,
        object: &str,
    ) -> Result<Arc<QueryAnswer>, RpqError> {
        let ticket = self.submit(subject, expr, object)?;
        self.wait(&ticket)
    }

    /// Renders an answer's id pairs as name pairs (ids without a
    /// dictionary entry print as decimal).
    pub fn resolve_pairs(&self, answer: &QueryAnswer) -> Vec<(String, String)> {
        let name = |id: Id| {
            self.shared
                .source
                .node_name(id)
                .unwrap_or_else(|| id.to_string())
        };
        answer
            .pairs
            .iter()
            .map(|&(s, o)| (name(s), name(o)))
            .collect()
    }

    /// Drops every cached plan and result (the invalidation hook an
    /// index-update path must call; epoch bumps observed at submit time
    /// call it automatically).
    pub fn invalidate_caches(&self) {
        self.shared.plan_cache.invalidate_all();
        self.shared.result_cache.invalidate_all();
    }

    /// Observes a snapshot epoch: a bump past the last one seen drops
    /// both caches (results are additionally epoch-keyed, so even racing
    /// insertions of older answers cannot serve a newer epoch).
    fn note_epoch(&self, epoch: u64) {
        let prev = self.shared.cache_epoch.fetch_max(epoch, Ordering::AcqRel);
        if epoch > prev {
            self.shared
                .metrics
                .epoch_bumps
                .fetch_add(1, Ordering::Relaxed);
            self.invalidate_caches();
        }
    }

    /// Current queue depth.
    pub fn queue_depth(&self) -> usize {
        lock_ignore_poison(&self.shared.queue).len()
    }

    /// The full metrics registry as a JSON object.
    pub fn metrics_json(&self) -> String {
        let updates = self.shared.source.update_stats();
        let index = self.shared.source.index_info();
        let shards = self.shared.source.shard_stats();
        let epoch = self.shared.source.snapshot().epoch;
        registry_json(
            &self.shared.metrics,
            self.shared.config.workers,
            self.shared.config.intra_query_threads,
            self.shared.config.max_pending,
            &self.shared.plan_cache.stats(),
            &self.shared.result_cache.stats(),
            epoch,
            updates,
            index,
            shards.as_deref(),
        )
    }

    /// The full metrics registry in the Prometheus text exposition
    /// format (the same atomics as [`Self::metrics_json`]).
    pub fn prometheus_metrics(&self) -> String {
        let updates = self.shared.source.update_stats();
        let index = self.shared.source.index_info();
        let shards = self.shared.source.shard_stats();
        let epoch = self.shared.source.snapshot().epoch;
        registry_prometheus(
            &self.shared.metrics,
            self.shared.config.workers,
            self.shared.config.intra_query_threads,
            self.shared.config.max_pending,
            &self.shared.plan_cache.stats(),
            &self.shared.result_cache.stats(),
            epoch,
            updates,
            index,
            shards.as_deref(),
        )
    }

    /// The slow-query log (worst queries by end-to-end latency; empty
    /// unless [`ServerConfig::slow_log_capacity`] is non-zero).
    pub fn slow_log(&self) -> &SlowLog {
        &self.shared.slow_log
    }

    /// The slow-query log rendered as one JSON object, worst query
    /// first.
    pub fn slow_queries_json(&self) -> String {
        self.shared.slow_log.to_json()
    }

    /// Stops accepting work, joins every worker, and fails whatever was
    /// still queued with [`RpqError::ShuttingDown`]. Idempotent; also
    /// runs on drop. Tickets stay pollable afterwards.
    pub fn shutdown(&self) {
        self.shutdown_impl();
    }

    /// Gracefully winds the server down: stops admitting new queries
    /// (submissions fail with [`RpqError::ShuttingDown`] immediately),
    /// waits up to `deadline` for the queue and every in-flight query to
    /// finish, then shuts down — aborting whatever the deadline left
    /// queued — and finally asks the source to
    /// [checkpoint](QuerySource::checkpoint) its durable state (for a
    /// WAL'd live source: persist a snapshot and rotate the log).
    /// Idempotent like [`Self::shutdown`]; the report says how the
    /// backlog fared.
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        self.shared.draining.store(true, Ordering::Release);
        let start = Instant::now();
        // Queue length and the in-flight count must be read under one
        // queue lock: `pop_job` moves a job from the queue into
        // `in_flight` while holding it, so a lock-free pair of reads
        // could observe the job in neither place — and a drain seeing
        // that phantom empty state would report a still-running backlog
        // as drained.
        let backlog = {
            let queue = lock_ignore_poison(&self.shared.queue);
            queue.len() + self.shared.in_flight.load(Ordering::Acquire)
        };
        while start.elapsed() < deadline {
            let idle = {
                let queue = lock_ignore_poison(&self.shared.queue);
                queue.is_empty() && self.shared.in_flight.load(Ordering::Acquire) == 0
            };
            if idle {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let aborted = self.shutdown_impl();
        let drained = backlog.saturating_sub(aborted);
        let metrics = &self.shared.metrics;
        metrics.drains.fetch_add(1, Ordering::Relaxed);
        metrics
            .drained_jobs
            .fetch_add(drained as u64, Ordering::Relaxed);
        metrics
            .aborted_jobs
            .fetch_add(aborted as u64, Ordering::Relaxed);
        let (checkpoint_epoch, checkpoint_error) = match self.shared.source.checkpoint() {
            None => (None, None),
            Some(Ok(epoch)) => {
                metrics.checkpoints.fetch_add(1, Ordering::Relaxed);
                (Some(epoch), None)
            }
            Some(Err(err)) => {
                metrics.checkpoint_failures.fetch_add(1, Ordering::Relaxed);
                (None, Some(err.to_string()))
            }
        };
        DrainReport {
            drained,
            aborted,
            checkpoint_epoch,
            checkpoint_error,
        }
    }

    /// Fails queued jobs, joins workers; returns how many jobs were
    /// aborted (failed with [`RpqError::ShuttingDown`]).
    fn shutdown_impl(&self) -> usize {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        let handles = std::mem::take(&mut *lock_ignore_poison(&self.handles));
        for h in handles {
            let _ = h.join();
        }
        let leftovers: Vec<Arc<Job>> = lock_ignore_poison(&self.shared.queue).drain(..).collect();
        let mut aborted = 0;
        for job in leftovers {
            let mut status = lock_ignore_poison(&job.status);
            if matches!(*status, QueryStatus::Queued) {
                *status = QueryStatus::Failed(RpqError::ShuttingDown);
                drop(status);
                job.done.notify_all();
                aborted += 1;
            }
        }
        self.shared.metrics.note_queue_depth(0);
        aborted
    }
}

impl Drop for RpqServer {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Pops the next job, or `None` on shutdown.
///
/// A popped job is counted into `in_flight` *before* the queue lock is
/// released, so at no instant is a live job visible in neither the
/// queue nor the in-flight count. (Incrementing only after the pop
/// returned used to open exactly that window, and a concurrent
/// [`RpqServer::drain`] observing it reported the backlog drained while
/// the job was still about to run.) Callers own the slot: they must
/// decrement `in_flight` once the job is finished *or* skipped.
fn pop_job(shared: &Shared) -> Option<Arc<Job>> {
    let mut queue = lock_ignore_poison(&shared.queue);
    loop {
        if shared.shutdown.load(Ordering::Acquire) {
            return None;
        }
        if let Some(job) = queue.pop_front() {
            shared.metrics.note_queue_depth(queue.len());
            shared.in_flight.fetch_add(1, Ordering::AcqRel);
            return Some(job);
        }
        queue = shared
            .queue_cv
            .wait(queue)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

fn worker_loop(shared: &Shared) {
    // Jobs run against the snapshot captured at their submit time. The
    // engine's mask tables are sized to one snapshot's ring, so the
    // worker keeps an engine per *epoch*, rebuilding only when the next
    // job's snapshot epoch differs from the current one.
    let mut next: Option<Arc<Job>> = None;
    'epoch: loop {
        let job = match next.take().or_else(|| pop_job(shared)) {
            Some(job) => job,
            None => return,
        };
        let snap = job.snapshot.clone();
        let mut engine = RpqEngine::over(&snap);
        let mut current = Some(job);
        loop {
            let job = match current.take().or_else(|| pop_job(shared)) {
                Some(job) => job,
                None => return,
            };
            if job.snapshot.epoch != snap.epoch {
                next = Some(job);
                continue 'epoch;
            }
            // Claim the job: skip it if a cancel won the race. A skipped
            // job gives its in-flight slot (taken by `pop_job`) back.
            {
                let mut status = lock_ignore_poison(&job.status);
                if !matches!(*status, QueryStatus::Queued) {
                    shared.in_flight.fetch_sub(1, Ordering::AcqRel);
                    continue;
                }
                *status = QueryStatus::Running;
            }
            // A panicking evaluation must not strand the job as Running
            // (a `wait` would block forever) nor shrink the worker pool:
            // fail the job, rebuild the engine (its mask tables may be
            // mid-update), and keep serving.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_job(shared, &mut engine, &job)
            }));
            if outcome.is_err() {
                shared.metrics.failed.fetch_add(1, Ordering::Relaxed);
                job.finish(QueryStatus::Failed(RpqError::Internal(
                    "query evaluation panicked; see server logs".into(),
                )));
                engine = RpqEngine::over(&snap);
            }
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        }
    }
}

/// Offers a completed answer to the slow-query log (no-op when the log
/// is disabled or the query beat the threshold).
fn offer_slow(shared: &Shared, job: &Job, answer: &QueryAnswer, total_us: u64, queue_wait_us: u64) {
    if !shared.slow_log.enabled() {
        return;
    }
    let term = |t: &Term| match t {
        Term::Var => "?".to_string(),
        Term::Const(id) => id.to_string(),
    };
    shared.slow_log.offer(SlowEntry {
        seq: 0,
        pattern: job.key.pattern.clone(),
        subject: term(&job.key.subject),
        object: term(&job.key.object),
        total_us,
        queue_wait_us,
        route: answer.route,
        cache_hit: answer
            .profile
            .as_ref()
            .is_some_and(|p| p.cache_hit == Some(true)),
        pairs: answer.pairs.len() as u64,
        truncated: answer.truncated,
        timed_out: answer.timed_out,
        profile: answer.profile.clone(),
    });
}

fn run_job(shared: &Shared, engine: &mut RpqEngine<'_>, job: &Job) {
    let metrics = &shared.metrics;
    let picked = Instant::now();
    let queue_wait = picked.duration_since(job.submitted);
    let queue_wait_us = queue_wait.as_micros().min(u128::from(u64::MAX)) as u64;
    metrics.queue_wait.record(queue_wait);
    // Profiles are collected when asked for, or whenever the slow log is
    // live (its entries are useless without one). Evaluation results are
    // bit-identical either way — the planner never reads the flag.
    let want_profile = shared.config.profile || shared.slow_log.enabled();

    if let Some(answer) = shared.result_cache.get(&job.key) {
        // A cached complete set subsumes any partial, but the requester's
        // `max_results` still bounds the payload it receives: hand back a
        // truncated prefix when the cached set is larger. (`node_budget`
        // caps evaluation work; a cache hit does none, so it never fails
        // a hit.)
        let answer = if answer.pairs.len() > job.budget.max_results {
            Arc::new(QueryAnswer {
                pairs: answer.pairs[..job.budget.max_results].to_vec(),
                truncated: true,
                timed_out: false,
                route: answer.route,
                stats: answer.stats,
                profile: None,
            })
        } else {
            answer
        };
        let total = job.submitted.elapsed();
        let mut profiled = Arc::clone(&answer);
        if want_profile {
            // A hit does no planning or evaluation; its profile records
            // the queue wait and lookup time only.
            let mut fresh = (*answer).clone();
            fresh.profile = Some(Box::new(rpq_core::QueryProfile {
                total_us: total.as_micros().min(u128::from(u64::MAX)) as u64,
                queue_wait_us: Some(queue_wait_us),
                cache_hit: Some(true),
                ..Default::default()
            }));
            profiled = Arc::new(fresh);
        }
        metrics.latency_cached.record(total);
        metrics.latency_all.record(total);
        metrics.completed.fetch_add(1, Ordering::Relaxed);
        offer_slow(
            shared,
            job,
            &profiled,
            total.as_micros().min(u128::from(u64::MAX)) as u64,
            queue_wait_us,
        );
        // Profiles reach the client only when asked for; a slow-log-only
        // configuration keeps them internal.
        job.finish(QueryStatus::Done(if shared.config.profile {
            profiled
        } else {
            answer
        }));
        return;
    }

    let ring = &*job.snapshot.ring;
    let compile_t0 = Instant::now();
    let plan = match shared
        .plan_cache
        .get_or_compile(&job.query.expr, job.snapshot.epoch, &|l| {
            ring.inverse_label(l)
        }) {
        Ok(plan) => plan,
        Err(e) => {
            metrics.failed.fetch_add(1, Ordering::Relaxed);
            job.finish(QueryStatus::Failed(RpqError::Query(e)));
            return;
        }
    };
    // Plan-cache lookup + (on a miss) Glushkov compilation time.
    let compile_us = compile_t0.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
    let opts = EngineOptions {
        limit: job.budget.max_results,
        timeout: job.budget.timeout,
        node_budget: job.budget.node_budget,
        bp_split_width: shared.config.bp_split_width,
        intra_query_threads: shared.config.intra_query_threads,
        profile: want_profile,
        ..EngineOptions::default()
    };
    let result = engine.evaluate_prepared(&plan, job.query.subject, job.query.object, &opts);

    let out = match result {
        Ok(out) => out,
        Err(e) => {
            metrics.failed.fetch_add(1, Ordering::Relaxed);
            job.finish(QueryStatus::Failed(RpqError::Query(e)));
            return;
        }
    };
    // The route the planner chose and the engine executed — recorded in
    // the output itself, so metrics can never disagree with evaluation.
    let route = out.plan.as_ref().map(|p| p.route);
    if let Some(r) = route {
        metrics.note_planner_decision(r);
    }
    metrics.note_traversal(route, &out.stats);
    // Cost-model accountability: every executed plan's estimate against
    // what evaluation actually visited (budget-aborted runs included —
    // gross underestimates are exactly the interesting samples).
    if let Some(p) = out.plan.as_ref() {
        metrics.note_plan_accuracy(
            p.route,
            p.estimated_cost,
            out.stats.product_nodes,
            out.stats.rank_ops,
        );
    }
    if out.budget_exhausted {
        metrics.budget_exceeded.fetch_add(1, Ordering::Relaxed);
        metrics.failed.fetch_add(1, Ordering::Relaxed);
        job.finish(QueryStatus::Failed(RpqError::BudgetExceeded {
            visited: out.stats.product_nodes,
            budget: job.budget.node_budget.unwrap_or(0),
        }));
        return;
    }

    let mut pairs = out.pairs;
    pairs.sort_unstable();
    pairs.dedup();
    let mut profile = out.profile;
    if let Some(p) = profile.as_deref_mut() {
        p.queue_wait_us = Some(queue_wait_us);
        p.compile_us = Some(compile_us);
        p.cache_hit = Some(false);
    }
    let answer = Arc::new(QueryAnswer {
        pairs,
        truncated: out.truncated,
        timed_out: out.timed_out,
        route,
        stats: out.stats,
        profile,
    });
    // Profiles are per-execution: the cached copy — and, when only the
    // slow log wanted one, the published answer — are stripped so no
    // request ever sees another run's timings.
    let stripped = if answer.profile.is_some() {
        Arc::new(QueryAnswer {
            profile: None,
            ..(*answer).clone()
        })
    } else {
        Arc::clone(&answer)
    };
    if answer.is_complete() {
        shared
            .result_cache
            .insert(job.key.clone(), Arc::clone(&stripped));
    }
    let exec = picked.elapsed();
    let total = job.submitted.elapsed();
    metrics.latency_exec.record(exec);
    metrics.latency_all.record(total);
    if let Some(r) = route {
        metrics.route_histogram(r).record(exec);
    }
    if job.cancel.load(Ordering::Acquire) {
        metrics.cancelled.fetch_add(1, Ordering::Relaxed);
        job.finish(QueryStatus::Cancelled);
    } else {
        metrics.completed.fetch_add(1, Ordering::Relaxed);
        offer_slow(
            shared,
            job,
            &answer,
            total.as_micros().min(u128::from(u64::MAX)) as u64,
            queue_wait_us,
        );
        job.finish(QueryStatus::Done(if shared.config.profile {
            answer
        } else {
            stripped
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::IndexSource;
    use ring::ring::RingOptions;
    use ring::{Graph, Ring, Triple};

    fn tiny_server(config: ServerConfig) -> RpqServer {
        let g = Graph::from_triples(vec![Triple::new(0, 0, 1), Triple::new(1, 0, 2)]);
        let ring = Ring::build(&g, RingOptions::default());
        RpqServer::start(Arc::new(IndexSource::id_only(ring)), config).unwrap()
    }

    /// Panics while holding the job's status mutex, poisoning it — the
    /// state a worker panic used to leave behind.
    fn poison_status(job: &Arc<Job>) {
        let j = Arc::clone(job);
        let outcome = std::thread::Builder::new()
            .name("poisoner".into())
            .spawn(move || {
                let _guard = j.status.lock().unwrap();
                panic!("deliberately poisoning the status mutex");
            })
            .unwrap()
            .join();
        assert!(outcome.is_err());
        assert!(job.status.is_poisoned());
    }

    /// Regression: a poisoned status mutex used to turn every client
    /// touch (`poll`, `cancel`, `wait`) into a fresh panic via
    /// `.lock().unwrap()`. All of them must recover the lock and keep
    /// the job's lifecycle working. Deterministic via `admission_only`:
    /// the job is pinned at `Queued`, so the poison always lands first.
    #[test]
    fn poisoned_status_mutex_does_not_cascade_into_clients() {
        let server = tiny_server(ServerConfig {
            workers: 0,
            admission_only: true,
            ..ServerConfig::default()
        });
        let ticket = server.submit("0", "0", "?y").unwrap();
        let job = lock_ignore_poison(&server.shared.jobs)
            .get(&ticket.id)
            .cloned()
            .unwrap();
        poison_status(&job);

        assert!(matches!(server.poll(&ticket), Some(QueryStatus::Queued)));
        assert!(server.cancel(&ticket), "cancel must work through poison");
        assert!(matches!(server.poll(&ticket), Some(QueryStatus::Cancelled)));
        assert!(matches!(server.wait(&ticket), Err(RpqError::Cancelled)));
        server.shutdown();
    }

    /// The same sweep on a serving pool: jobs whose status mutex was
    /// poisoned mid-queue must still be claimed, evaluated and finished
    /// by the worker, and `wait` must hand their answers back instead of
    /// propagating the poison.
    #[test]
    fn wait_on_a_poisoned_job_still_returns_its_answer() {
        let server = tiny_server(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let tickets: Vec<QueryTicket> = (0..16)
            .map(|_| server.submit("?x", "0+", "?y").unwrap())
            .collect();
        // Poison every job still reachable — some queued, some already
        // running or done, covering both claim-time and finish-time
        // recovery in the worker.
        for t in &tickets {
            if let Some(job) = lock_ignore_poison(&server.shared.jobs).get(&t.id).cloned() {
                poison_status(&job);
            }
        }
        for t in &tickets {
            let answer = server.wait(t).expect("a poisoned job must still finish");
            assert_eq!(answer.pairs, vec![(0, 1), (0, 2), (1, 2)]);
        }
        server.shutdown();
    }
}
