//! The compiled-query plan cache: normalized pattern → shared
//! [`PreparedQuery`] (Glushkov product automaton + split bit-parallel
//! tables, both directions).
//!
//! Keys are the canonical rendering of the *parsed, id-level* expression
//! ([`PreparedQuery::cache_key`]), so surface variations — whitespace,
//! redundant parentheses, different IRI spellings resolving to the same
//! predicate — collapse onto one plan. Plans are immutable, so one
//! `Arc<PreparedQuery>` is handed to any number of workers at once;
//! compilation on a miss happens *outside* the lock (two racing workers
//! may both compile; the map keeps one — cheaper than serializing every
//! compile behind the mutex).
//!
//! A cached `PreparedQuery` is *route-agnostic*: it holds the compiled
//! automata every route can need, and the cost-based planner
//! (`rpq_core::planner`) picks the route — fastpath, bitparallel,
//! split, or fallback — per call from the query's endpoints and the
//! ring's live statistics. One cached entry therefore serves all four
//! routes, the rare-label split route included.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use automata::{Label, Regex};
use rpq_core::{PreparedQuery, QueryError};

use crate::lru::Lru;
use crate::metrics::CacheStats;

/// A bounded, shared cache of compiled plans (LRU by byte cost).
///
/// Keys carry the snapshot **epoch** the plan was compiled against: a
/// compiled plan embeds the ring's inverse-label involution (`p̂ = p +
/// n_preds_base`), which an alphabet-extending rebuild changes — so a
/// queued old-epoch job racing past the bump-triggered invalidation
/// must never hand its plan to a newer epoch.
pub struct PlanCache {
    inner: Mutex<Lru<(u64, String), Arc<PreparedQuery>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    split_width: usize,
}

impl PlanCache {
    /// A cache holding at most `budget_bytes` of compiled tables.
    pub fn new(budget_bytes: usize, split_width: usize) -> Self {
        Self {
            inner: Mutex::new(Lru::new(budget_bytes)),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            split_width,
        }
    }

    /// Looks up the plan for `expr` at `epoch`, compiling and caching
    /// it on a miss. `inv` is the involution of *that epoch's* ring.
    pub fn get_or_compile(
        &self,
        expr: &Regex,
        epoch: u64,
        inv: &impl Fn(Label) -> Label,
    ) -> Result<Arc<PreparedQuery>, QueryError> {
        let key = (epoch, PreparedQuery::cache_key(expr));
        if let Some(plan) = crate::lock_ignore_poison(&self.inner).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(plan));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(PreparedQuery::compile(expr, inv, self.split_width)?);
        let cost = plan.size_bytes() + std::mem::size_of::<u64>();
        self.inner
            .lock()
            .unwrap()
            .insert(key, Arc::clone(&plan), cost);
        Ok(plan)
    }

    /// Drops every cached plan (invalidation hook: plans never go stale
    /// against an immutable ring, but a future reindex path calls this).
    pub fn invalidate_all(&self) {
        self.invalidations.fetch_add(1, Ordering::Relaxed);
        crate::lock_ignore_poison(&self.inner).clear();
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Live entry count.
    pub fn len(&self) -> usize {
        crate::lock_ignore_poison(&self.inner).len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn stats(&self) -> CacheStats {
        let inner = crate::lock_ignore_poison(&self.inner);
        CacheStats {
            hits: self.hits(),
            misses: self.misses(),
            evictions: inner.evictions(),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            entries: inner.len(),
            used: inner.used(),
            budget: inner.budget(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(l: Label) -> Label {
        if l < 4 {
            l + 4
        } else {
            l - 4
        }
    }

    #[test]
    fn hit_returns_same_plan() {
        let cache = PlanCache::new(1 << 20, 8);
        let e = Regex::Plus(Box::new(Regex::label(1)));
        let p1 = cache.get_or_compile(&e, 0, &inv).unwrap();
        let p2 = cache.get_or_compile(&e, 0, &inv).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn structurally_equal_exprs_share_a_plan() {
        let cache = PlanCache::new(1 << 20, 8);
        let a = Regex::concat(Regex::label(0), Regex::label(1));
        let b = Regex::concat(Regex::label(0), Regex::label(1));
        cache.get_or_compile(&a, 0, &inv).unwrap();
        cache.get_or_compile(&b, 0, &inv).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn invalidate_clears() {
        let cache = PlanCache::new(1 << 20, 8);
        cache.get_or_compile(&Regex::label(0), 0, &inv).unwrap();
        cache.invalidate_all();
        assert!(cache.is_empty());
        cache.get_or_compile(&Regex::label(0), 0, &inv).unwrap();
        assert_eq!(cache.misses(), 2);
    }

    /// Different epochs never share a plan, even for the same pattern —
    /// the alphabet (hence the compiled inverse tables) may differ.
    #[test]
    fn epochs_do_not_share_plans() {
        let cache = PlanCache::new(1 << 20, 8);
        let e = Regex::label(0);
        let p1 = cache.get_or_compile(&e, 1, &inv).unwrap();
        let p2 = cache.get_or_compile(&e, 2, &inv).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.len(), 2);
    }
}
